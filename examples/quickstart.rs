//! Quickstart: the power of two choices on a geometric space, in ~40 lines.
//!
//! Builds a ring of `n` random servers, throws `n` balls at it with
//! `d = 1` and `d = 2` probes, and prints the maximum loads next to the
//! theory bands. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use two_choices::core::sim::run_trial;
use two_choices::core::space::RingSpace;
use two_choices::core::strategy::Strategy;
use two_choices::core::theory::{one_choice_typical, two_choice_band};
use two_choices::util::rng::Xoshiro256pp;

fn main() {
    let n = 1 << 16; // 65,536 servers — and as many items
    let mut rng = Xoshiro256pp::from_u64(2024);

    // Servers are hashed to uniformly random points on the unit circle;
    // each server owns the arc ending at its position (consistent hashing).
    let space = RingSpace::random(n, &mut rng);

    // d = 1: classical consistent hashing. Items probe one random point.
    let one = run_trial(&space, &Strategy::one_choice(), n, &mut rng);

    // d = 2: each item probes two random points and joins the less loaded
    // owner. Same space, same items — one extra hash.
    let two = run_trial(&space, &Strategy::two_choice(), n, &mut rng);

    println!("n = m = {n}");
    println!(
        "d = 1: max load = {:<3} (theory ~ ln n / ln ln n      = {:.1})",
        one.max_load,
        one_choice_typical(n)
    );
    println!(
        "d = 2: max load = {:<3} (theory ~ ln ln n / ln 2 + O(1) = {:.1} + O(1))",
        two.max_load,
        two_choice_band(n, 2)
    );

    // The load *profile* shows where the mass went: how many servers hold
    // at least i items under each policy.
    println!("\nservers with load >= i:");
    println!("{:>3}  {:>8}  {:>8}", "i", "d=1", "d=2");
    let depth = one.max_load.max(two.max_load);
    for i in 1..=depth {
        println!(
            "{i:>3}  {:>8}  {:>8}",
            one.bins_with_load_at_least(i),
            two.bins_with_load_at_least(i)
        );
    }
    println!("\nTwo choices collapse the tail from Θ(log n/log log n) to");
    println!("log log n / log d + O(1) — Theorem 1 of the paper.");
}
