//! The paper's 2-D motivating example (§1.1): assigning bank customers to
//! ATMs spread over a city.
//!
//! ATMs are random points on the torus (the "city"); each customer is
//! suggested `d` candidate locations (home, work, …) and registers with
//! the nearest machine to the candidate whose machine is least loaded.
//! The paper's footnote 2 notes that real customers are *not* uniformly
//! distributed; the second half of this example repeats the experiment
//! with customers drawn from population clusters and shows the two-choice
//! benefit survives (as the footnote predicts), even though Theorem 1's
//! hypotheses no longer hold.
//!
//! ```text
//! cargo run --release --example atm_placement
//! ```

use two_choices::core::experiment::ClusterMix;
use two_choices::torus::{TorusPoint, TorusSites};
use two_choices::util::rng::Xoshiro256pp;

/// Assigns `customers` to machines, each considering `d` candidate
/// locations drawn from `sample`, and returns the loads.
fn assign<F: FnMut(&mut Xoshiro256pp) -> TorusPoint>(
    atms: &TorusSites,
    customers: usize,
    d: usize,
    rng: &mut Xoshiro256pp,
    mut sample: F,
) -> Vec<u32> {
    let mut loads = vec![0u32; atms.len()];
    for _ in 0..customers {
        let mut best = usize::MAX;
        let mut best_load = u32::MAX;
        for _ in 0..d {
            let machine = atms.owner(sample(rng));
            if loads[machine] < best_load {
                best_load = loads[machine];
                best = machine;
            }
        }
        loads[best] += 1;
    }
    loads
}

fn report(title: &str, loads_by_d: &[(usize, Vec<u32>)]) {
    println!("{title}");
    println!("{:>4} {:>10} {:>10}", "d", "max load", "stddev");
    for (d, loads) in loads_by_d {
        let max = loads.iter().copied().max().unwrap_or(0);
        let mean = loads.iter().map(|&l| f64::from(l)).sum::<f64>() / loads.len() as f64;
        let var = loads
            .iter()
            .map(|&l| (f64::from(l) - mean).powi(2))
            .sum::<f64>()
            / loads.len() as f64;
        println!("{d:>4} {max:>10} {:>10.2}", var.sqrt());
    }
    println!();
}

fn main() {
    let n_atms = 4096;
    let customers = 4096;
    let mut rng = Xoshiro256pp::from_u64(99);
    let atms = TorusSites::random(n_atms, &mut rng);

    // --- Uniform customers: exactly the paper's Section 3 model. --------
    let uniform: Vec<(usize, Vec<u32>)> = [1usize, 2, 3]
        .iter()
        .map(|&d| {
            let loads = assign(&atms, customers, d, &mut rng, TorusPoint::random);
            (d, loads)
        })
        .collect();
    report(
        &format!("Uniform customers ({n_atms} ATMs, {customers} customers):"),
        &uniform,
    );

    // --- Clustered customers: downtown + two suburbs + uniform rest. ----
    let mix = ClusterMix {
        centers: vec![(0.5, 0.5), (0.2, 0.8), (0.8, 0.25)],
        sigma: 0.05,
        cluster_weight: 0.7,
    };
    let clustered: Vec<(usize, Vec<u32>)> = [1usize, 2, 3]
        .iter()
        .map(|&d| {
            let loads = assign(&atms, customers, d, &mut rng, |rng| {
                let (x, y) = mix.sample(rng);
                TorusPoint::new(x, y)
            });
            (d, loads)
        })
        .collect();
    report(
        "Clustered customers (70% from 3 population centres, sigma = 0.05):",
        &clustered,
    );

    println!("Clustering overloads downtown machines under d = 1; giving each");
    println!("customer d = 2 candidate machines recovers most of the balance —");
    println!("the behaviour the paper's footnote 2 anticipates beyond Theorem 1.");
}
