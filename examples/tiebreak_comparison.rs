//! Table 3 in miniature: how the tie-breaking rule changes the maximum
//! load at `d = 2`, including Vöcking's split always-go-left scheme.
//!
//! The paper's Section 4 observation: breaking ties toward the *smaller*
//! arc beats random tie-breaking and even Vöcking's scheme — because the
//! analysis bounds the total length of heavily loaded arcs, and placing
//! ties on small arcs directly suppresses that total.
//!
//! ```text
//! cargo run --release --example tiebreak_comparison
//! ```

use two_choices::core::experiment::{sweep_kind, SweepConfig};
use two_choices::core::space::SpaceKind;
use two_choices::core::strategy::{Strategy, TieBreak};
use two_choices::core::theory::{two_choice_band, voecking_band};

fn main() {
    let n = 1 << 14;
    let config = SweepConfig::new(100).with_seed(5);

    let policies = [
        (
            "arc-larger",
            Strategy::with_tie_break(2, TieBreak::LargerRegion),
        ),
        ("arc-random", Strategy::with_tie_break(2, TieBreak::Random)),
        ("arc-left", Strategy::with_tie_break(2, TieBreak::Leftmost)),
        (
            "arc-smaller",
            Strategy::with_tie_break(2, TieBreak::SmallerRegion),
        ),
        ("voecking", Strategy::voecking(2)),
    ];

    println!(
        "Random arcs, n = m = {n}, d = 2, {} trials\n",
        config.trials
    );
    println!("{:<14} {:>10} distribution", "tie-break", "mean max");
    for (name, strategy) in policies {
        let cell = sweep_kind(SpaceKind::Ring, strategy, n, n, &config);
        println!(
            "{name:<14} {:>10.2} {}",
            cell.stats.mean(),
            cell.paper_style()
        );
    }

    println!(
        "\ntheory: plain band ln ln n / ln 2 = {:.2};",
        two_choice_band(n, 2)
    );
    println!(
        "voecking band ln ln n / (2 ln phi_2) = {:.2} (phi_2 = golden ratio).",
        voecking_band(n, 2)
    );
    println!("Expected ordering: arc-larger worst, then arc-random ~ arc-left,");
    println!("then voecking, with arc-smaller best (the paper's open problem).");
}
