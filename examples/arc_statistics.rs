//! Why consistent hashing is imbalanced — and exactly how much: the arc
//! order statistics behind Theorem 1.
//!
//! Places `n` servers on the ring and compares the measured arc-length
//! order statistics against the exact closed forms (Rényi spacings
//! representation) and the paper's Lemma 4/6 upper bounds, showing both
//! that the substrate is statistically correct and how much slack the
//! paper's bounds carry.
//!
//! ```text
//! cargo run --release --example arc_statistics
//! ```

use two_choices::ring::spacings::{
    arc_survival, expected_kth_longest, expected_max_arc, expected_top_a_sum,
};
use two_choices::ring::tail::{lemma6_bound, longest_arc_bound};
use two_choices::ring::RingPartition;
use two_choices::util::rng::Xoshiro256pp;
use two_choices::util::stats::RunningStats;

fn main() {
    let n = 1 << 14;
    let trials = 200;
    let mut rng = Xoshiro256pp::from_u64(314);

    // Collect order statistics over trials.
    let mut max_stats = RunningStats::new();
    let mut k10_stats = RunningStats::new();
    let mut top64_stats = RunningStats::new();
    let mut count_c4 = RunningStats::new();
    for _ in 0..trials {
        let part = RingPartition::random(n, &mut rng);
        let mut arcs = part.arc_lengths();
        arcs.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        max_stats.push(arcs[0] * n as f64);
        k10_stats.push(arcs[9] * n as f64);
        top64_stats.push(arcs[..64].iter().sum::<f64>());
        count_c4.push(arcs.iter().filter(|&&l| l >= 4.0 / n as f64).count() as f64);
    }

    println!("n = {n} servers, {trials} trials; arc lengths in units of 1/n\n");
    println!("{:<34} {:>10} {:>10}", "quantity", "measured", "exact");
    println!(
        "{:<34} {:>10.2} {:>10.2}",
        "longest arc (x n)",
        max_stats.mean(),
        expected_max_arc(n) * n as f64
    );
    println!(
        "{:<34} {:>10.2} {:>10.2}",
        "10th longest arc (x n)",
        k10_stats.mean(),
        expected_kth_longest(n, 10) * n as f64
    );
    println!(
        "{:<34} {:>10.4} {:>10.4}",
        "sum of 64 longest arcs",
        top64_stats.mean(),
        expected_top_a_sum(n, 64)
    );
    println!(
        "{:<34} {:>10.1} {:>10.1}",
        "#arcs >= 4/n",
        count_c4.mean(),
        n as f64 * arc_survival(n, 4.0 / n as f64)
    );

    println!("\npaper's upper bounds (the proofs only need these, loosely):");
    println!(
        "  longest arc:      bound 4 ln n / n = {:.2}/n   vs exact mean {:.2}/n",
        longest_arc_bound(n) * n as f64,
        expected_max_arc(n) * n as f64
    );
    println!(
        "  top-64 arc sum:   bound 2(a/n)ln(n/a) = {:.4} vs exact mean {:.4}",
        lemma6_bound(n, 64),
        expected_top_a_sum(n, 64)
    );

    println!(
        "\nThe longest arc is ~ln n = {:.1} times the average — that is the",
        (n as f64).ln()
    );
    println!("Θ(log n) imbalance of plain consistent hashing that two choices");
    println!("erase (Theorem 1), and the tail the paper's Lemmas 4-6 control.");
}
