//! The paper's §1.1 DHT application: load balancing a Chord-style
//! distributed hash table.
//!
//! Compares three deployments of the same 1024-node system storing 16k
//! items:
//!
//! 1. plain consistent hashing (cheap, badly balanced),
//! 2. Chord's virtual servers — every node simulates ⌈log₂ n⌉ ring
//!    positions (balanced, but `log n`× routing state), and
//! 3. the paper's two-choices placement (balanced, one pointer per item,
//!    one extra lookup hop).
//!
//! ```text
//! cargo run --release --example chord_load_balance
//! ```

use two_choices::dht::chord::ChordRing;
use two_choices::dht::placement::{evaluate, PlacementPolicy};
use two_choices::util::rng::Xoshiro256pp;

fn main() {
    let n = 1024;
    let m = 16 * n as u64;
    let v = (n as f64).log2().ceil() as usize;
    let lookups = 5000;
    let mut rng = Xoshiro256pp::from_u64(7);

    println!("Chord DHT: {n} physical nodes, {m} items\n");
    println!(
        "{:<18} {:>9} {:>9} {:>10} {:>11} {:>13}",
        "scheme", "max load", "sigma", "mean hops", "redirect %", "state/node"
    );

    // 1. Plain consistent hashing: one ring position per node.
    let plain = ChordRing::new(n, &mut rng);
    let r = evaluate(&plain, PlacementPolicy::Consistent, m, lookups, &mut rng);
    let l = r.lookup.as_ref().expect("lookups sampled");
    println!(
        "{:<18} {:>9} {:>9.2} {:>10.2} {:>11.1} {:>13}",
        "consistent",
        r.load.max,
        r.load.stddev,
        l.mean_hops,
        100.0 * l.redirect_rate,
        "64 fingers"
    );

    // 2. Virtual servers: v ring positions per node (Chord's remedy).
    let virt = ChordRing::with_virtual_servers(n, v, &mut rng);
    let r = evaluate(&virt, PlacementPolicy::Consistent, m, lookups, &mut rng);
    let l = r.lookup.as_ref().expect("lookups sampled");
    println!(
        "{:<18} {:>9} {:>9.2} {:>10.2} {:>11.1} {:>13}",
        format!("virtual x{v}"),
        r.load.max,
        r.load.stddev,
        l.mean_hops,
        100.0 * l.redirect_rate,
        format!("{} fingers", 64 * v)
    );

    // 3. Two choices: items hash twice, stored at the lighter owner, with
    //    a redirection pointer at the primary location.
    let r = evaluate(
        &plain,
        PlacementPolicy::DChoice { d: 2 },
        m,
        lookups,
        &mut rng,
    );
    let l = r.lookup.as_ref().expect("lookups sampled");
    println!(
        "{:<18} {:>9} {:>9.2} {:>10.2} {:>11.1} {:>13}",
        "two-choice",
        r.load.max,
        r.load.stddev,
        l.mean_hops,
        100.0 * l.redirect_rate,
        "64 fingers"
    );

    println!(
        "\nmean load is {:.1} items/node in every scheme; only the spread differs.",
        m as f64 / n as f64
    );
    println!("Two choices matches the virtual-server balance with 1/{v} the");
    println!("routing state, paying ~1 extra hop on redirected lookups ([3], §1.1).");
}
