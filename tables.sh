#!/usr/bin/env bash
# Regenerates (or, with --check, verifies) the committed table
# expectations: results/*.json and EXPERIMENTS.md. All flags are passed
# through to the run_tables driver:
#
#   ./tables.sh                 # reference scale: rewrite results/ + EXPERIMENTS.md
#   ./tables.sh --check         # rerun and diff against the committed numbers
#   ./tables.sh --check --against results/v1
#                               # diff against the archived pre-lane-contract
#                               #   numbers (the stream-migration evidence)
#   ./tables.sh --render        # no run: EXPERIMENTS.md == render(results/*.json)
#   ./tables.sh --quick         # CI-scale expectations (results/quick/)
#   ./tables.sh --quick --check # fast half of the ci.sh gate (ci.sh also runs
#                               #   the reference-scale --check)
#   ./tables.sh --full          # the paper's 1000-trial scale (hours; results/full/)
set -euo pipefail
cd "$(dirname "$0")"
exec cargo run --release -q -p geo2c-bench --bin run_tables -- "$@"
