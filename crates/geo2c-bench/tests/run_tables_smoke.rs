//! End-to-end smoke test for the `run_tables` driver: a `--quick` run
//! must produce parseable `ResultSet` JSON for every experiment, and the
//! `--check` mode must accept what was just written and reject a
//! tampered expectation.

use geo2c_bench::experiments::SUITE_IDS;
use geo2c_report::{Json, ResultSet};
use std::path::PathBuf;
use std::process::Command;

fn run(dir: &PathBuf, extra: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_run_tables"));
    cmd.arg("--quick").arg("--dir").arg(dir).args(extra);
    cmd.output().expect("run_tables executes")
}

#[test]
fn quick_run_produces_parseable_result_sets_and_check_works() {
    let dir = std::env::temp_dir().join(format!("geo2c-run-tables-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Write mode: every experiment lands as its own ResultSet file.
    let output = run(&dir, &[]);
    assert!(output.status.success(), "write run failed: {output:?}");
    let results_dir = dir.join("results").join("quick");
    for id in SUITE_IDS {
        let path = results_dir.join(format!("{id}.json"));
        let set =
            ResultSet::load(&path).unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        let experiment = set.experiment(id).expect("experiment under its own id");
        assert!(!experiment.cells.is_empty(), "{id} has no cells");
        assert_eq!(experiment.spec.seed, 0);
        assert!(experiment.spec.trials > 0);
        // Table cells carry max-load distributions with one entry per
        // trial; serving aggregates per-server loads (n per trial) and
        // churn is metric-only.
        let cell = &experiment.cells[0];
        match id {
            "dimension" => {}
            "churn" => assert!(cell.distribution.is_none(), "churn cells are metric-only"),
            "replication" => assert!(
                cell.distribution.is_none(),
                "replication cells are metric-only"
            ),
            "dht" => assert!(cell.distribution.is_none(), "dht cells are metric-only"),
            "durability" => {
                assert!(
                    cell.distribution.is_none(),
                    "durability cells are metric-only"
                );
                assert!(
                    cell.metrics.iter().any(|(k, _)| k == "replay_mean"),
                    "durability cells carry the replay-cost metric"
                );
            }
            "resilience" => {
                assert!(
                    cell.distribution.is_none(),
                    "resilience cells are metric-only"
                );
                assert!(
                    cell.metrics.iter().any(|(k, _)| k == "availability_pct"),
                    "resilience cells carry the availability metric"
                );
            }
            "scaling" => {
                assert!(cell.distribution.is_none(), "scaling cells are metric-only");
                // The wall-clock throughput column must be present (it
                // renders) but `~`-prefixed (so `--check` skips it).
                assert!(
                    cell.metrics.iter().any(|(k, _)| k == "~balls_per_s"),
                    "scaling cells carry the informational throughput metric"
                );
            }
            "serving" => {
                let n = experiment
                    .spec
                    .params
                    .iter()
                    .find(|(k, _)| k == "servers")
                    .and_then(|(_, v)| v.as_u64())
                    .expect("servers param");
                let dist = cell.distribution.as_ref().expect("distribution");
                assert_eq!(dist.total(), experiment.spec.trials as u64 * n);
            }
            _ => {
                let dist = cell.distribution.as_ref().expect("distribution");
                assert_eq!(dist.total(), experiment.spec.trials as u64);
            }
        }
    }
    // The quick scale never touches EXPERIMENTS.md (reference scale only).
    assert!(!dir.join("EXPERIMENTS.md").exists());

    // Check mode: a fresh identical run passes against what was written.
    let output = run(&dir, &["--check"]);
    assert!(
        output.status.success(),
        "self-check failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // A subset check via --only runs (and compares) just those members.
    let output = run(&dir, &["--check", "--only", "serving,churn"]);
    assert!(
        output.status.success(),
        "--only self-check failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("2 experiments"), "stdout: {stdout}");

    // Tamper with one committed distribution: the check must fail loudly.
    let victim = results_dir.join("table1.json");
    let mut set = ResultSet::load(&victim).unwrap();
    let cell = &mut set.experiments[0].cells[0];
    let trials = cell.distribution.as_ref().unwrap().total();
    let mut skewed = geo2c_util::hist::Counter::new();
    skewed.add_n(40, trials); // an absurd max load in every trial
    cell.distribution = Some(skewed);
    set.save(&victim).unwrap();

    let output = run(&dir, &["--check"]);
    assert!(!output.status.success(), "tampered check must fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("check FAILED"), "stderr: {stderr}");
    assert!(stderr.contains("table1"), "stderr: {stderr}");

    // A missing expectation file is reported as such, not as a diff.
    std::fs::remove_file(&victim).unwrap();
    let output = run(&dir, &["--check"]);
    assert!(!output.status.success());
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("cannot load committed expectations"),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn only_flag_rejects_unknown_experiment_ids() {
    // `--only` must fail fast on a typo'd id — before any suite work —
    // and name the valid suite members in the error.
    let output = Command::new(env!("CARGO_BIN_EXE_run_tables"))
        .args(["--quick", "--only", "bogus"])
        .output()
        .expect("run_tables executes");
    assert!(!output.status.success(), "--only bogus must exit non-zero");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unknown experiment 'bogus'"),
        "stderr: {stderr}"
    );
    for id in SUITE_IDS {
        assert!(
            stderr.contains(id),
            "error must name suite id {id}: {stderr}"
        );
    }
}

#[test]
fn quick_expectations_in_the_repository_match_the_current_scale() {
    // The committed results/quick/*.json must carry the spec the QUICK
    // scale would run today — otherwise ci.sh's `--quick --check` is
    // comparing apples to stale oranges and its failure message will
    // blame the numbers instead of the spec. (The full comparison runs
    // in CI; this test just pins the committed spec shape so drift is
    // caught even when tests run without the CI script.)
    let repo_quick: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "results", "quick"]
        .iter()
        .collect();
    let scale = geo2c_bench::experiments::QUICK;
    for id in SUITE_IDS {
        let path = repo_quick.join(format!("{id}.json"));
        let set = ResultSet::load(&path)
            .unwrap_or_else(|e| panic!("{} must exist and parse: {e}", path.display()));
        let spec = &set.experiment(id).expect("experiment present").spec;
        let expected_trials = match id {
            "table2" => scale.torus_trials,
            "dimension" => scale.dim_trials,
            "ring_chart" => scale.chart_trials,
            "tabulation" => scale.tab_trials,
            "heavy" => scale.heavy_trials,
            "serving" => scale.serve_trials,
            "resilience" => scale.resil_trials,
            "churn" => scale.churn_trials,
            "replication" => scale.repl_trials,
            "dht" => scale.dht_trials,
            "scaling" => scale.scaling_trials,
            "durability" => scale.durability_trials,
            _ => scale.ring_trials,
        };
        assert_eq!(spec.trials, expected_trials, "{id}: stale trials");
        if id == "dimension" {
            // The dimension sweep was resized to paper-scale n; the
            // committed quick expectation must carry the spec the QUICK
            // scale would run today, so `--quick --check` round-trips.
            let committed_n = spec
                .params
                .iter()
                .find(|(k, _)| k == "n")
                .and_then(|(_, v)| v.as_usize())
                .expect("n param");
            assert_eq!(committed_n, 1usize << scale.dim_exp, "{id}: stale n");
        }
        if id == "table1" || id == "table3" {
            let ns: Vec<usize> = scale.ring_sizes();
            let committed: Vec<usize> = spec
                .params
                .iter()
                .find(|(k, _)| k == "n")
                .and_then(|(_, v)| v.as_array())
                .expect("n param")
                .iter()
                .filter_map(Json::as_usize)
                .collect();
            assert_eq!(committed, ns, "{id}: stale sweep sizes");
        }
    }
}
