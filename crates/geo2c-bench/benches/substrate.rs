//! Substrate ablation benches (experiment E12):
//!
//! * grid-accelerated vs brute-force nearest neighbour on the torus —
//!   the design choice that makes Table 2 feasible at large `n`;
//! * the same ablation on the 3-torus (the K-d orthant fast path behind
//!   the `dimension` sweep), single vs batched vs brute;
//! * ring owner lookup (binary search) cost;
//! * exact Voronoi cell construction (grid-accelerated vs all-pairs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geo2c_ring::{Ownership, RingPartition, RingPoint};
use geo2c_torus::grid::nearest_brute;
use geo2c_torus::kd::{kd_nearest_brute, KdPoint, KdSites};
use geo2c_torus::{TorusPoint, TorusSites};
use geo2c_util::rng::Xoshiro256pp;
use rand::Rng;

fn bench_nearest_neighbour(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_grid_vs_brute");
    group.sample_size(10);
    for exp in [8u32, 12] {
        let n = 1usize << exp;
        let mut rng = Xoshiro256pp::from_u64(1);
        let sites = TorusSites::random(n, &mut rng);
        let queries: Vec<TorusPoint> = (0..1024).map(|_| TorusPoint::random(&mut rng)).collect();
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, _| {
            b.iter(|| queries.iter().map(|&q| sites.owner(q)).sum::<usize>());
        });
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&q| nearest_brute(q, sites.points()))
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

fn bench_kd_nearest_neighbour(c: &mut Criterion) {
    let mut group = c.benchmark_group("kd_nn_grid_vs_brute");
    group.sample_size(10);
    for exp in [8u32, 12] {
        let n = 1usize << exp;
        let mut rng = Xoshiro256pp::from_u64(4);
        let sites = KdSites::<3>::random(n, &mut rng);
        let queries: Vec<KdPoint<3>> = (0..1024).map(|_| KdPoint::random(&mut rng)).collect();
        let mut owners = vec![0usize; queries.len()];
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, _| {
            b.iter(|| queries.iter().map(|q| sites.owner(q)).sum::<usize>());
        });
        group.bench_with_input(BenchmarkId::new("grid_batched", n), &n, |b, _| {
            b.iter(|| {
                sites.owners_into(&queries, &mut owners);
                owners.iter().sum::<usize>()
            });
        });
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| kd_nearest_brute(q, sites.points()))
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

fn bench_ring_owner(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_owner_lookup");
    group.sample_size(10);
    for exp in [12u32, 16, 20] {
        let n = 1usize << exp;
        let mut rng = Xoshiro256pp::from_u64(2);
        let part = RingPartition::random(n, &mut rng);
        let queries: Vec<RingPoint> = (0..4096).map(|_| RingPoint::random(&mut rng)).collect();
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("successor", n), &n, |b, _| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&q| part.owner(q, Ownership::Successor))
                    .sum::<usize>()
            });
        });
        // The binary-search oracle the bucket accelerant replaced: the
        // ablation that shows what the fast path buys.
        group.bench_with_input(BenchmarkId::new("successor_binary", n), &n, |b, _| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&q| part.successor_index_binary(q))
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

fn bench_voronoi_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("voronoi_cell_construction");
    group.sample_size(10);
    let n = 1usize << 10;
    let mut rng = Xoshiro256pp::from_u64(3);
    let sites = TorusSites::random(n, &mut rng);
    let idx: Vec<usize> = (0..64).map(|_| rng.gen_range(0..n)).collect();
    group.throughput(Throughput::Elements(idx.len() as u64));
    group.bench_function("grid_accelerated", |b| {
        b.iter(|| idx.iter().map(|&i| sites.cell(i).area()).sum::<f64>());
    });
    group.bench_function("brute_all_pairs", |b| {
        b.iter(|| idx.iter().map(|&i| sites.cell_brute(i).area()).sum::<f64>());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_nearest_neighbour,
    bench_kd_nearest_neighbour,
    bench_ring_owner,
    bench_voronoi_cells
);
criterion_main!(benches);
