//! Benches for the lemma-validation machinery: arc-census cost (Lemmas
//! 4–6) and the six-sector occupancy test plus cell-area sweep (Lemmas
//! 8–9). These dominate the `lemmas` binary's runtime, so regressions
//! here make the validation sweep impractical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geo2c_ring::tail::{count_arcs_at_least, sum_longest_arcs};
use geo2c_ring::RingPartition;
use geo2c_torus::sector::has_empty_sector;
use geo2c_torus::TorusSites;
use geo2c_util::rng::Xoshiro256pp;

fn bench_arc_census(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma_arc_census");
    group.sample_size(10);
    let n = 1usize << 16;
    let mut rng = Xoshiro256pp::from_u64(1);
    let part = RingPartition::random(n, &mut rng);
    let arcs = part.arc_lengths();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("count_at_least", |b| {
        b.iter(|| count_arcs_at_least(&arcs, 4.0 / n as f64));
    });
    group.bench_function("sum_longest_1024", |b| {
        b.iter(|| sum_longest_arcs(&arcs, 1024));
    });
    group.finish();
}

fn bench_sector_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma_sector_occupancy");
    group.sample_size(10);
    for exp in [10u32, 12] {
        let n = 1usize << exp;
        let mut rng = Xoshiro256pp::from_u64(2);
        let sites = TorusSites::random(n, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("all_sites_c6", n), &n, |b, &n| {
            b.iter(|| (0..n).filter(|&i| has_empty_sector(&sites, i, 6.0)).count());
        });
    }
    group.finish();
}

fn bench_cell_area_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma_cell_areas");
    group.sample_size(10);
    let n = 1usize << 10;
    let mut rng = Xoshiro256pp::from_u64(3);
    let sites = TorusSites::random(n, &mut rng);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("all_cells", |b| {
        b.iter(|| sites.cell_areas().iter().sum::<f64>());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_arc_census,
    bench_sector_test,
    bench_cell_area_sweep
);
criterion_main!(benches);
