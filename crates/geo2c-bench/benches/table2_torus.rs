//! Criterion bench for Table 2's workload: one full trial on the torus
//! (site placement + grid build + `m = n` insertions), per `d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geo2c_core::sim::run_trial;
use geo2c_core::space::TorusSpace;
use geo2c_core::strategy::Strategy;
use geo2c_util::rng::Xoshiro256pp;

fn bench_torus_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_torus_trial");
    group.sample_size(10);
    let n = 1usize << 10;
    group.throughput(Throughput::Elements(n as u64));
    for d in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let strategy = Strategy::d_choice(d);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = Xoshiro256pp::from_u64(seed);
                let space = TorusSpace::random(n, &mut rng);
                run_trial(&space, &strategy, n, &mut rng).max_load
            });
        });
    }
    group.finish();
}

fn bench_torus_scaling(c: &mut Criterion) {
    // Insertion cost should stay ~O(1) per ball as n grows (grid NN).
    let mut group = c.benchmark_group("table2_torus_insert_scaling");
    group.sample_size(10);
    for exp in [8u32, 10, 12] {
        let n = 1usize << exp;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            let mut rng = Xoshiro256pp::from_u64(11);
            let space = TorusSpace::random(n, &mut rng);
            let strategy = Strategy::two_choice();
            b.iter(|| run_trial(&space, &strategy, n, &mut rng).max_load);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_torus_trials, bench_torus_scaling);
criterion_main!(benches);
