//! Criterion bench for Table 1's workload: one full trial (space build +
//! `m = n` insertions) on the ring, per `d`.
//!
//! Not a reproduction of the table itself (the `table1` binary does that);
//! this tracks the *cost* of regenerating each cell so substrate
//! regressions are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geo2c_core::sim::run_trial;
use geo2c_core::space::{RingSpace, Space};
use geo2c_core::strategy::Strategy;
use geo2c_util::rng::Xoshiro256pp;

fn bench_ring_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_ring_trial");
    group.sample_size(10);
    let n = 1usize << 12;
    group.throughput(Throughput::Elements(n as u64));
    for d in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let strategy = Strategy::d_choice(d);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = Xoshiro256pp::from_u64(seed);
                let space = RingSpace::random(n, &mut rng);
                run_trial(&space, &strategy, n, &mut rng).max_load
            });
        });
    }
    group.finish();
}

fn bench_ring_build_vs_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_ring_phases");
    group.sample_size(10);
    let n = 1usize << 14;
    group.bench_function("build_partition", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = Xoshiro256pp::from_u64(seed);
            RingSpace::random(n, &mut rng).num_servers()
        });
    });
    group.bench_function("insert_only_d2", |b| {
        let mut rng = Xoshiro256pp::from_u64(7);
        let space = RingSpace::random(n, &mut rng);
        let strategy = Strategy::two_choice();
        b.iter(|| run_trial(&space, &strategy, n, &mut rng).max_load);
    });
    group.finish();
}

criterion_group!(benches, bench_ring_trials, bench_ring_build_vs_insert);
criterion_main!(benches);
