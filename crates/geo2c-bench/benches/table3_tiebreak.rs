//! Criterion bench for Table 3's workload: tie-break policies on the ring
//! at `d = 2` (plus Vöcking). Region-size tie-breaks add a lookup per tie;
//! this measures the overhead of each policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geo2c_core::sim::run_trial;
use geo2c_core::space::RingSpace;
use geo2c_core::strategy::{Strategy, TieBreak};
use geo2c_util::rng::Xoshiro256pp;

fn bench_tiebreaks(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_tiebreak_trial");
    group.sample_size(10);
    let n = 1usize << 12;
    group.throughput(Throughput::Elements(n as u64));
    let policies = [
        (
            "arc-larger",
            Strategy::with_tie_break(2, TieBreak::LargerRegion),
        ),
        ("arc-random", Strategy::with_tie_break(2, TieBreak::Random)),
        ("arc-left", Strategy::with_tie_break(2, TieBreak::Leftmost)),
        (
            "arc-smaller",
            Strategy::with_tie_break(2, TieBreak::SmallerRegion),
        ),
        ("voecking", Strategy::voecking(2)),
    ];
    for (name, strategy) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, s| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = Xoshiro256pp::from_u64(seed);
                let space = RingSpace::random(n, &mut rng);
                run_trial(&space, s, n, &mut rng).max_load
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tiebreaks);
criterion_main!(benches);
