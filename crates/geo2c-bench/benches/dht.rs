//! DHT application benches (experiment E11's cost side):
//! ring construction (with/without virtual servers), item placement per
//! policy, and greedy finger-table lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geo2c_dht::chord::ChordRing;
use geo2c_dht::id::NodeId;
use geo2c_dht::placement::{evaluate, PlacementPolicy};
use geo2c_util::rng::Xoshiro256pp;
use rand::Rng;

fn bench_ring_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_ring_build");
    group.sample_size(10);
    let n = 1usize << 10;
    for v in [1usize, 10] {
        group.bench_with_input(BenchmarkId::new("virtual", v), &v, |b, &v| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = Xoshiro256pp::from_u64(seed);
                ChordRing::with_virtual_servers(n, v, &mut rng).num_virtual()
            });
        });
    }
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_placement");
    group.sample_size(10);
    let n = 1usize << 10;
    let m = 1u64 << 14;
    group.throughput(Throughput::Elements(m));
    let mut rng = Xoshiro256pp::from_u64(5);
    let ring = ChordRing::new(n, &mut rng);
    for (name, policy) in [
        ("consistent", PlacementPolicy::Consistent),
        ("2-choice", PlacementPolicy::DChoice { d: 2 }),
        ("4-choice", PlacementPolicy::DChoice { d: 4 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            let mut rng = Xoshiro256pp::from_u64(6);
            b.iter(|| evaluate(&ring, p, m, 0, &mut rng).load.max);
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_lookup");
    group.sample_size(10);
    for exp in [8u32, 12] {
        let n = 1usize << exp;
        let mut rng = Xoshiro256pp::from_u64(7);
        let ring = ChordRing::new(n, &mut rng);
        let queries: Vec<(usize, NodeId)> = (0..2048)
            .map(|_| (rng.gen_range(0..n), NodeId(rng.gen::<u64>())))
            .collect();
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&(s, k)| u64::from(ring.lookup(s, k).1))
                    .sum::<u64>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ring_build, bench_placement, bench_lookup);
criterion_main!(benches);
