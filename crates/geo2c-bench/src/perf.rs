//! Persisted performance benchmarks: the hot-path micro-benches behind
//! `results/bench/`.
//!
//! The criterion shim prints ns/iter to stdout and forgets it; this
//! module measures the same way (adaptive doubling until a ~20 ms window,
//! best of three windows) but returns the numbers and persists them as a
//! provenance-stamped [`geo2c_report::ResultSet`], so a perf PR can prove
//! a speedup against a committed baseline instead of asserting it.
//!
//! The suite deliberately benches only *public, stable* entry points
//! (`RingPartition::owner` via [`geo2c_core::space::RingSpace`],
//! `TorusSites::owner`, `sim::run_trial`) so a baseline captured before a
//! refactor stays comparable with one captured after: same ids, same
//! workloads, different implementation. Implementation-level ablations
//! (grid vs brute force, fast successor vs binary search) live in the
//! criterion benches (`cargo bench -p geo2c-bench --bench substrate`),
//! which are free to reach into internals.
//!
//! Driven by the `run_benches` binary; see the "Performance methodology"
//! section of the README for the workflow and the regression gate.

use geo2c_core::load::{LoadRead, LoadState, PackedLoads, ShardedLoads};
use geo2c_core::sim::{run_trial, run_trial_into};
use geo2c_core::space::{KdTorusSpace, RingSpace, TorusSpace, UniformSpace};
use geo2c_core::strategy::{Strategy, TieBreak};
use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json};
use geo2c_ring::RingPoint;
use geo2c_serve::{DurableEngine, FaultPlan, ServeConfig, ServeEngine, SessionLife};
use geo2c_torus::kd::{KdPoint, KdSites};
use geo2c_torus::TorusPoint;
use geo2c_util::rng::{BallLanes, Xoshiro256pp};
use rand::RngCore as _;
use std::time::{Duration, Instant};

/// Target measurement window per repeat (mirrors the criterion shim).
pub const MEASURE_WINDOW: Duration = Duration::from_millis(20);

/// Timed windows per benchmark; the best (lowest ns/iter) wins, which is
/// the standard defence against scheduler noise on a busy box.
pub const REPEATS: usize = 3;

/// One measurement: mean ns per iteration over the best window.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Nanoseconds per iteration (best window).
    pub ns_per_iter: f64,
    /// Iterations in the measured window.
    pub iters: u64,
}

/// Times `routine` adaptively: doubles the iteration count until a window
/// exceeds `window`, repeats `repeats` times, keeps the fastest window.
pub fn time_with<O, F: FnMut() -> O>(window: Duration, repeats: usize, mut routine: F) -> Timing {
    // Warm-up (and a correctness smoke run).
    std::hint::black_box(routine());
    let mut best = Timing {
        ns_per_iter: f64::INFINITY,
        iters: 0,
    };
    let mut iters: u64 = 1;
    for _ in 0..repeats.max(1) {
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= window || iters >= (1 << 24) {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                if ns < best.ns_per_iter {
                    best = Timing {
                        ns_per_iter: ns,
                        iters,
                    };
                }
                break;
            }
            iters = iters.saturating_mul(2);
        }
    }
    best
}

/// [`time_with`] at the standard window and repeat count.
pub fn time<O, F: FnMut() -> O>(routine: F) -> Timing {
    time_with(MEASURE_WINDOW, REPEATS, routine)
}

/// Which workload a benchmark runs (setup happens inside [`BenchDef::run`]
/// so suite construction stays free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BenchKind {
    /// Batch of successor-owner lookups on a random ring partition.
    RingOwner,
    /// Batch of nearest-site lookups on random torus sites.
    TorusOwner,
    /// Batch of nearest-site lookups on the `K`-torus (`K` ∈ {3, 4}).
    KdOwner { k: usize },
    /// Batch of [`geo2c_core::load::LoadRead::min_load_of`] least-of-d
    /// resolutions over a populated load vector — [`MIN_LOAD_D`] probes
    /// per query, wide enough to exercise the full unrolled lane-gather
    /// fold — against the flat or the nibble-packed backing.
    MinLoad { packed: bool },
    /// One full `run_trial` (m = n insertions) on a fixed ring space.
    TrialRing { d: usize },
    /// One full `run_trial` on a fixed torus space.
    TrialTorus { d: usize },
    /// One full `run_trial` on a fixed 3-torus space (random tie-break:
    /// the per-ball probe-block engine path).
    TrialKd { d: usize },
    /// One full `run_trial` on a fixed 3-torus space with the arc-left
    /// tie-break (tie-break-free: the cross-ball batched engine path).
    TrialKdLeft { d: usize },
    /// One full `run_trial` on uniform bins (the RNG + load-vector floor).
    TrialUniform { d: usize },
    /// One serving run (`geo2c-serve`): 4n arrival events with
    /// exponential departures (mean life n) on a fixed ring space —
    /// the heap-draining, admission-controlled variant of `TrialRing`.
    TrialServe { d: usize },
    /// The `TrialServe` workload under a region outage: a quarter of the
    /// ring crashes at `n` events and recovers at `3n`, with a retry
    /// budget of 1 — the fault-application, eager-purge, and retry-lane
    /// overheads on top of `serving_d2_random`.
    TrialServeFaults { d: usize },
    /// The `TrialServe` workload under the durability discipline
    /// (`geo2c_serve::DurableEngine`): engine creation (seed checkpoint
    /// and journal header), the write-ahead journal frames, and one
    /// full steady-state checkpoint at the run's end boundary — the
    /// fsync-free journaling overhead on top of `serving_d2_random`,
    /// gated in `ci.sh`.
    TrialServeJournaled { d: usize },
    /// One full laned trial on uniform bins against an alternative
    /// load-state backing (`run_trial_into`): the `TrialUniform` workload
    /// with the flat `Vec<u32>` swapped for a packed/sharded backing.
    TrialScaling { d: usize, backing: ScalingBacking },
}

/// Probes per `min_load_of` query in the [`BenchKind::MinLoad`] benches:
/// one full lane-gather block, the widest unrolled path.
const MIN_LOAD_D: usize = 8;

/// One batch of least-of-d resolutions, monomorphized per backing so the
/// bench times the real (inlined) fast path, not a vtable.
fn min_load_queries<S: LoadRead>(state: &S, probes: &[usize]) -> u64 {
    probes
        .chunks_exact(MIN_LOAD_D)
        .map(|q| u64::from(state.min_load_of(q)))
        .sum::<u64>()
}

/// Which load-state backing a `TrialScaling` bench drives. `Flat` runs
/// the same `Vec<u32>` engine as `uniform_d2_random` so the `scaling_*`
/// trio diffs self-contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScalingBacking {
    Flat,
    PackedNibble,
    Sharded,
}

/// Owner-lookup workload on the `K`-torus (monomorphized per dimension).
fn kd_owner_bench<const K: usize>(
    n: usize,
    elems: u64,
    rng: &mut Xoshiro256pp,
    window: Duration,
    repeats: usize,
) -> Timing {
    let sites = KdSites::<K>::random(n, rng);
    let queries: Vec<KdPoint<K>> = (0..elems).map(|_| KdPoint::random(rng)).collect();
    time_with(window, repeats, || {
        queries.iter().map(|q| sites.owner(q)).sum::<usize>()
    })
}

/// One benchmark of the persisted suite.
#[derive(Debug, Clone, Copy)]
pub struct BenchDef {
    /// Coordinate: bench family (`"substrate"` or `"trial"`).
    pub group: &'static str,
    /// Coordinate: bench name within the family.
    pub name: &'static str,
    /// Servers (`n = 2^exp`).
    pub exp: u32,
    /// Work items per iteration (owner lookups, or balls placed).
    pub elems: u64,
    kind: BenchKind,
}

impl BenchDef {
    /// `n = 2^exp`.
    #[must_use]
    pub fn n(&self) -> usize {
        1usize << self.exp
    }

    /// Stable human id, e.g. `substrate/ring_owner/2^20`.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}",
            self.group,
            self.name,
            crate::pow2_label(self.n())
        )
    }

    /// Runs the benchmark (setup + measurement) deterministically in
    /// `seed` up to timing noise.
    #[must_use]
    pub fn run(&self, seed: u64, window: Duration, repeats: usize) -> Timing {
        let n = self.n();
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        match self.kind {
            BenchKind::RingOwner => {
                let space = RingSpace::random(n, &mut rng);
                let queries: Vec<RingPoint> = (0..self.elems)
                    .map(|_| RingPoint::random(&mut rng))
                    .collect();
                time_with(window, repeats, || {
                    queries.iter().map(|&q| space.owner_of(q)).sum::<usize>()
                })
            }
            BenchKind::TorusOwner => {
                let space = TorusSpace::random(n, &mut rng);
                let queries: Vec<TorusPoint> = (0..self.elems)
                    .map(|_| TorusPoint::random(&mut rng))
                    .collect();
                time_with(window, repeats, || {
                    queries
                        .iter()
                        .map(|&q| space.sites().owner(q))
                        .sum::<usize>()
                })
            }
            BenchKind::KdOwner { k } => match k {
                3 => kd_owner_bench::<3>(n, self.elems, &mut rng, window, repeats),
                4 => kd_owner_bench::<4>(n, self.elems, &mut rng, window, repeats),
                other => panic!("no K = {other} owner bench instantiated"),
            },
            BenchKind::MinLoad { packed } => {
                // Loads stay below the nibble ceiling so both backings
                // resolve the identical vector.
                let loads: Vec<u32> = (0..n).map(|_| (rng.next_u64() % 15) as u32).collect();
                let probes: Vec<usize> = (0..self.elems as usize * MIN_LOAD_D)
                    .map(|_| (rng.next_u64() % n as u64) as usize)
                    .collect();
                if packed {
                    let mut state = PackedLoads::nibble(n);
                    for (s, &l) in loads.iter().enumerate() {
                        if l != 0 {
                            state.set(s, l);
                        }
                    }
                    time_with(window, repeats, || min_load_queries(&state, &probes))
                } else {
                    time_with(window, repeats, || min_load_queries(&loads, &probes))
                }
            }
            BenchKind::TrialRing { d } => {
                let space = RingSpace::random(n, &mut rng);
                let strategy = Strategy::d_choice(d);
                time_with(window, repeats, || {
                    run_trial(&space, &strategy, n, &mut rng).max_load
                })
            }
            BenchKind::TrialTorus { d } => {
                let space = TorusSpace::random(n, &mut rng);
                let strategy = Strategy::d_choice(d);
                time_with(window, repeats, || {
                    run_trial(&space, &strategy, n, &mut rng).max_load
                })
            }
            BenchKind::TrialKd { d } => {
                let space = KdTorusSpace::<3>::random(n, &mut rng);
                let strategy = Strategy::d_choice(d);
                time_with(window, repeats, || {
                    run_trial(&space, &strategy, n, &mut rng).max_load
                })
            }
            BenchKind::TrialKdLeft { d } => {
                let space = KdTorusSpace::<3>::random(n, &mut rng);
                let strategy = Strategy::with_tie_break(d, TieBreak::Leftmost);
                time_with(window, repeats, || {
                    run_trial(&space, &strategy, n, &mut rng).max_load
                })
            }
            BenchKind::TrialUniform { d } => {
                let space = UniformSpace::new(n);
                let strategy = Strategy::d_choice(d);
                time_with(window, repeats, || {
                    run_trial(&space, &strategy, n, &mut rng).max_load
                })
            }
            BenchKind::TrialServe { d } => {
                let space = RingSpace::random(n, &mut rng);
                let config = ServeConfig {
                    strategy: Strategy::d_choice(d),
                    capacity: None,
                    life: SessionLife::Exponential { mean: n as f64 },
                    retries: 0,
                };
                let events = self.elems;
                let root = rng.next_u64();
                time_with(window, repeats, || {
                    let mut engine = ServeEngine::new(space.clone(), config, root);
                    engine.run(events);
                    engine.peak_load()
                })
            }
            BenchKind::TrialServeFaults { d } => {
                let space = RingSpace::random(n, &mut rng);
                let config = ServeConfig {
                    strategy: Strategy::d_choice(d),
                    capacity: None,
                    life: SessionLife::Exponential { mean: n as f64 },
                    retries: 1,
                };
                let events = self.elems;
                let plan = FaultPlan::region_outage(
                    n,
                    0,
                    (n / 4).max(1),
                    events / 4,
                    Some(3 * events / 4),
                );
                let root = rng.next_u64();
                time_with(window, repeats, || {
                    let mut engine = ServeEngine::new(space.clone(), config, root);
                    engine.run_with_faults(events, &plan);
                    engine.peak_load()
                })
            }
            BenchKind::TrialServeJournaled { d } => {
                let space = RingSpace::random(n, &mut rng);
                let config = ServeConfig {
                    strategy: Strategy::d_choice(d),
                    capacity: None,
                    life: SessionLife::Exponential { mean: n as f64 },
                    retries: 0,
                };
                let events = self.elems;
                // One checkpoint interval per run: each iteration pays
                // the seed image, `events / every = 1` full checkpoint
                // of ~n in-flight sessions, and the journal frames —
                // the per-interval durability cost, amortized over a
                // whole interval of serving, exactly as deployed.
                let every = events;
                let root = rng.next_u64();
                // The bench times the fsync-free journaling discipline
                // (codec + framing + atomic-rename protocol), not the
                // host's disk dentry latency, so scratch space prefers
                // a memory-backed filesystem when one is mounted.
                let shm = std::path::Path::new("/dev/shm");
                let scratch = if shm.is_dir() {
                    shm.to_path_buf()
                } else {
                    std::env::temp_dir()
                };
                let dir = scratch.join(format!(
                    "geo2c-bench-journal-{}-{root:016x}",
                    std::process::id()
                ));
                let timing = time_with(window, repeats, || {
                    let mut engine =
                        DurableEngine::create(&dir, space.clone(), config, root, every)
                            .expect("journal dir");
                    engine
                        .run_journaled(events, &FaultPlan::empty())
                        .expect("journaled run");
                    engine.engine().peak_load()
                });
                let _ = std::fs::remove_dir_all(&dir);
                timing
            }
            BenchKind::TrialScaling { d, backing } => {
                let space = UniformSpace::new(n);
                let strategy = Strategy::d_choice(d);
                match backing {
                    ScalingBacking::Flat => time_with(window, repeats, || {
                        run_trial(&space, &strategy, n, &mut rng).max_load
                    }),
                    ScalingBacking::PackedNibble => time_with(window, repeats, || {
                        let lanes = BallLanes::new(rng.next_u64());
                        let mut loads = PackedLoads::nibble(n);
                        run_trial_into(&space, &strategy, n, &lanes, &mut loads)
                    }),
                    ScalingBacking::Sharded => time_with(window, repeats, || {
                        let lanes = BallLanes::new(rng.next_u64());
                        let mut loads = ShardedLoads::byte(n);
                        run_trial_into(&space, &strategy, n, &lanes, &mut loads)
                    }),
                }
            }
        }
    }
}

/// A named parameter set for the persisted bench suite. The two scales
/// write different baseline files (`results/bench/baseline.json` vs
/// `results/bench/quick.json`) and are never compared with each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchScale {
    /// Scale name (also the baseline file stem).
    pub name: &'static str,
    /// Ring owner-lookup size exponent.
    pub ring_exp: u32,
    /// Torus owner-lookup size exponent.
    pub torus_exp: u32,
    /// `K`-torus owner-lookup size exponent (K ∈ {3, 4}).
    pub kd_exp: u32,
    /// End-to-end ring trial size exponent.
    pub trial_ring_exp: u32,
    /// End-to-end torus trial size exponent.
    pub trial_torus_exp: u32,
    /// End-to-end 3-torus trial size exponent.
    pub trial_kd_exp: u32,
    /// Serving trial size exponent (4n events per iteration).
    pub trial_serve_exp: u32,
    /// Owner lookups per iteration for the substrate benches.
    pub queries: u64,
}

/// CI scale: runs in a few seconds on one core.
pub const QUICK: BenchScale = BenchScale {
    name: "quick",
    ring_exp: 12,
    torus_exp: 10,
    kd_exp: 10,
    trial_ring_exp: 12,
    trial_torus_exp: 10,
    trial_kd_exp: 9,
    trial_serve_exp: 10,
    queries: 4096,
};

/// Baseline scale: the committed before/after evidence (`n` large enough
/// that the owner-lookup asymptotics dominate; tens of seconds).
pub const FULL: BenchScale = BenchScale {
    name: "full",
    ring_exp: 20,
    torus_exp: 16,
    kd_exp: 16,
    trial_ring_exp: 20,
    trial_torus_exp: 16,
    trial_kd_exp: 13,
    trial_serve_exp: 14,
    queries: 4096,
};

impl BenchScale {
    /// Looks a scale up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<&'static BenchScale> {
        [&QUICK, &FULL].into_iter().find(|s| s.name == name)
    }

    /// The benchmark suite at this scale, in run order.
    #[must_use]
    pub fn suite(&self) -> Vec<BenchDef> {
        vec![
            BenchDef {
                group: "substrate",
                name: "ring_owner",
                exp: self.ring_exp,
                elems: self.queries,
                kind: BenchKind::RingOwner,
            },
            BenchDef {
                group: "substrate",
                name: "torus_owner",
                exp: self.torus_exp,
                elems: self.queries,
                kind: BenchKind::TorusOwner,
            },
            BenchDef {
                group: "substrate",
                name: "kd3_owner",
                exp: self.kd_exp,
                elems: self.queries,
                kind: BenchKind::KdOwner { k: 3 },
            },
            BenchDef {
                group: "substrate",
                name: "kd4_owner",
                exp: self.kd_exp,
                elems: self.queries,
                kind: BenchKind::KdOwner { k: 4 },
            },
            // The least-of-d resolver in isolation, flat vs nibble-packed
            // (the ROADMAP "SIMD-width compare" item, measured): 8-wide
            // `min_load_of` queries over a populated load vector at the
            // big-trial n.
            BenchDef {
                group: "substrate",
                name: "min_load_flat",
                exp: self.trial_ring_exp,
                elems: self.queries,
                kind: BenchKind::MinLoad { packed: false },
            },
            BenchDef {
                group: "substrate",
                name: "min_load_packed",
                exp: self.trial_ring_exp,
                elems: self.queries,
                kind: BenchKind::MinLoad { packed: true },
            },
            BenchDef {
                group: "trial",
                name: "ring_d2_random",
                exp: self.trial_ring_exp,
                elems: 1u64 << self.trial_ring_exp,
                kind: BenchKind::TrialRing { d: 2 },
            },
            BenchDef {
                group: "trial",
                name: "torus_d2_random",
                exp: self.trial_torus_exp,
                elems: 1u64 << self.trial_torus_exp,
                kind: BenchKind::TrialTorus { d: 2 },
            },
            BenchDef {
                group: "trial",
                name: "kd3_d2_random",
                exp: self.trial_kd_exp,
                elems: 1u64 << self.trial_kd_exp,
                kind: BenchKind::TrialKd { d: 2 },
            },
            BenchDef {
                group: "trial",
                name: "kd3_d2_left",
                exp: self.trial_kd_exp,
                elems: 1u64 << self.trial_kd_exp,
                kind: BenchKind::TrialKdLeft { d: 2 },
            },
            BenchDef {
                group: "trial",
                name: "uniform_d2_random",
                exp: self.trial_ring_exp,
                elems: 1u64 << self.trial_ring_exp,
                kind: BenchKind::TrialUniform { d: 2 },
            },
            // The load-state backing trio at the same n as
            // `uniform_d2_random`, so flat-vs-packed diffs directly.
            BenchDef {
                group: "trial",
                name: "scaling_flat",
                exp: self.trial_ring_exp,
                elems: 1u64 << self.trial_ring_exp,
                kind: BenchKind::TrialScaling {
                    d: 2,
                    backing: ScalingBacking::Flat,
                },
            },
            BenchDef {
                group: "trial",
                name: "scaling_packed",
                exp: self.trial_ring_exp,
                elems: 1u64 << self.trial_ring_exp,
                kind: BenchKind::TrialScaling {
                    d: 2,
                    backing: ScalingBacking::PackedNibble,
                },
            },
            BenchDef {
                group: "trial",
                name: "scaling_sharded",
                exp: self.trial_ring_exp,
                elems: 1u64 << self.trial_ring_exp,
                kind: BenchKind::TrialScaling {
                    d: 2,
                    backing: ScalingBacking::Sharded,
                },
            },
            BenchDef {
                group: "trial",
                name: "serving_d2_random",
                exp: self.trial_serve_exp,
                elems: 4u64 << self.trial_serve_exp,
                kind: BenchKind::TrialServe { d: 2 },
            },
            // The same serving workload under a region outage + retry
            // budget, so the resilience layer's overhead diffs directly
            // against serving_d2_random.
            BenchDef {
                group: "trial",
                name: "serving_faults_d2",
                exp: self.trial_serve_exp,
                elems: 4u64 << self.trial_serve_exp,
                kind: BenchKind::TrialServeFaults { d: 2 },
            },
            // The same serving workload under the checkpoint/journal
            // discipline (4 checkpoints per run), so the durability
            // layer's overhead diffs directly against serving_d2_random;
            // ci.sh gates the ratio at 1.25x.
            BenchDef {
                group: "trial",
                name: "serving_d2_journaled",
                exp: self.trial_serve_exp,
                elems: 4u64 << self.trial_serve_exp,
                kind: BenchKind::TrialServeJournaled { d: 2 },
            },
        ]
    }
}

/// Whether a bench id matches a comma-separated substring filter
/// (`None` matches everything) — the `--only` semantics shared by the
/// diff gate and the run mode.
#[must_use]
pub fn matches_only(id: &str, only: Option<&str>) -> bool {
    match only {
        None => true,
        Some(patterns) => patterns
            .split(',')
            .any(|pat| !pat.is_empty() && id.contains(pat)),
    }
}

/// Runs the suite at `scale` and packages it as an [`ExperimentResult`]
/// (spec id `"bench"`), one cell per benchmark with `ns_per_iter`,
/// `elems_per_s`, and `iters` metrics.
#[must_use]
pub fn run_bench_suite(
    scale: &BenchScale,
    seed: u64,
    window: Duration,
    repeats: usize,
) -> ExperimentResult {
    run_bench_suite_only(scale, seed, window, repeats, None)
}

/// [`run_bench_suite`] restricted to the benches whose id matches the
/// comma-separated `only` filter — for iterating on one hot path (and
/// for subset `--check`s) without paying for the whole suite.
#[must_use]
pub fn run_bench_suite_only(
    scale: &BenchScale,
    seed: u64,
    window: Duration,
    repeats: usize,
    only: Option<&str>,
) -> ExperimentResult {
    let suite: Vec<BenchDef> = scale
        .suite()
        .into_iter()
        .filter(|b| matches_only(&b.id(), only))
        .collect();
    let spec = ExperimentSpec::new(
        "bench",
        "Hot-path micro-benchmarks (criterion-shim-style ns/iter)",
    )
    .trials(repeats)
    .seed(seed)
    .param("scale", Json::str(scale.name))
    .param("window_ms", Json::from_u64(window.as_millis() as u64))
    .param(
        "benches",
        Json::Arr(suite.iter().map(|b| Json::str(b.id())).collect()),
    );
    let mut result = ExperimentResult::new(spec);
    for bench in &suite {
        eprintln!("  running {} ...", bench.id());
        let timing = bench.run(seed, window, repeats);
        let elems_per_s = bench.elems as f64 / (timing.ns_per_iter / 1e9);
        result.push(
            Cell::new()
                .coord("group", Json::str(bench.group))
                .coord("name", Json::str(bench.name))
                .coord("n", Json::from_usize(bench.n()))
                .metric("elems", Json::from_u64(bench.elems))
                .metric("ns_per_iter", Json::num(timing.ns_per_iter))
                .metric("elems_per_s", Json::num(elems_per_s))
                .metric("iters", Json::from_u64(timing.iters)),
        );
    }
    result
}

/// Reads a named `f64` metric off a cell.
#[must_use]
pub fn metric_f64(cell: &Cell, key: &str) -> Option<f64> {
    cell.metrics
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_f64())
}

/// One before/after (or fresh/committed) pairing of the same benchmark.
#[derive(Debug, Clone)]
pub struct BenchComparison {
    /// Cell label (`group=…, name=…, n=…`).
    pub id: String,
    /// ns/iter on the left side (fresh run, or "after" file).
    pub left_ns: f64,
    /// ns/iter on the right side (committed baseline, or "before" file).
    pub right_ns: f64,
}

impl BenchComparison {
    /// `right / left`: >1 means the left side is faster (a speedup).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.right_ns / self.left_ns
    }

    /// `(left - right) / right` in percent: >0 means the left side is
    /// slower (a regression against the right side).
    #[must_use]
    pub fn regression_pct(&self) -> f64 {
        (self.left_ns - self.right_ns) / self.right_ns * 100.0
    }
}

/// Pairs the cells of two bench results by coordinates. Returns the
/// pairings plus the labels present on only one side (either direction is
/// a structural mismatch the caller should surface).
#[must_use]
pub fn pair_benches(
    left: &ExperimentResult,
    right: &ExperimentResult,
) -> (Vec<BenchComparison>, Vec<String>) {
    let mut pairs = Vec::new();
    let mut unmatched = Vec::new();
    for lcell in &left.cells {
        match right.cells.iter().find(|r| r.coords == lcell.coords) {
            Some(rcell) => {
                if let (Some(l), Some(r)) = (
                    metric_f64(lcell, "ns_per_iter"),
                    metric_f64(rcell, "ns_per_iter"),
                ) {
                    pairs.push(BenchComparison {
                        id: lcell.label(),
                        left_ns: l,
                        right_ns: r,
                    });
                } else {
                    unmatched.push(format!("{}: missing ns_per_iter metric", lcell.label()));
                }
            }
            None => unmatched.push(format!("{}: only on one side", lcell.label())),
        }
    }
    for rcell in &right.cells {
        if !left.cells.iter().any(|l| l.coords == rcell.coords) {
            unmatched.push(format!("{}: only on one side", rcell.label()));
        }
    }
    (pairs, unmatched)
}

/// Human-readable ns with sensible precision.
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scale tiny enough to measure in milliseconds.
    const TINY: BenchScale = BenchScale {
        name: "tiny",
        ring_exp: 4,
        torus_exp: 3,
        kd_exp: 3,
        trial_ring_exp: 4,
        trial_torus_exp: 3,
        trial_kd_exp: 3,
        trial_serve_exp: 3,
        queries: 16,
    };

    fn tiny_run(seed: u64) -> ExperimentResult {
        run_bench_suite(&TINY, seed, Duration::from_micros(200), 1)
    }

    #[test]
    fn timer_measures_something() {
        let mut x = 0u64;
        let t = time_with(Duration::from_micros(100), 2, || {
            x = x.wrapping_add(1);
            x
        });
        assert!(t.ns_per_iter > 0.0);
        assert!(t.iters > 0);
    }

    #[test]
    fn suite_produces_one_cell_per_bench() {
        let result = tiny_run(1);
        assert_eq!(result.spec.id, "bench");
        assert_eq!(result.cells.len(), TINY.suite().len());
        for cell in &result.cells {
            let ns = metric_f64(cell, "ns_per_iter").expect("ns metric");
            assert!(ns.is_finite() && ns > 0.0, "{}: {ns}", cell.label());
            assert!(metric_f64(cell, "elems_per_s").expect("rate") > 0.0);
        }
    }

    #[test]
    fn bench_ids_are_stable_and_scoped() {
        let ids: Vec<String> = FULL.suite().iter().map(BenchDef::id).collect();
        assert!(ids.contains(&"substrate/ring_owner/2^20".to_string()));
        assert!(ids.contains(&"trial/ring_d2_random/2^20".to_string()));
        assert!(ids.contains(&"trial/torus_d2_random/2^16".to_string()));
        assert!(ids.contains(&"substrate/kd3_owner/2^16".to_string()));
        assert!(ids.contains(&"substrate/kd4_owner/2^16".to_string()));
        assert!(ids.contains(&"substrate/min_load_flat/2^20".to_string()));
        assert!(ids.contains(&"substrate/min_load_packed/2^20".to_string()));
        assert!(ids.contains(&"trial/kd3_d2_random/2^13".to_string()));
        assert!(ids.contains(&"trial/kd3_d2_left/2^13".to_string()));
        assert!(ids.contains(&"trial/serving_d2_random/2^14".to_string()));
        assert!(ids.contains(&"trial/serving_faults_d2/2^14".to_string()));
        assert!(ids.contains(&"trial/serving_d2_journaled/2^14".to_string()));
        assert!(ids.contains(&"trial/scaling_flat/2^20".to_string()));
        assert!(ids.contains(&"trial/scaling_packed/2^20".to_string()));
        assert!(ids.contains(&"trial/scaling_sharded/2^20".to_string()));
        assert_eq!(BenchScale::by_name("quick"), Some(&QUICK));
        assert_eq!(BenchScale::by_name("full"), Some(&FULL));
        assert_eq!(BenchScale::by_name("nope"), None);
        // Quick and full share bench (group, name) pairs so the two
        // baseline files stay structurally parallel.
        let names = |s: &BenchScale| {
            s.suite()
                .iter()
                .map(|b| (b.group, b.name))
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&QUICK), names(&FULL));
    }

    #[test]
    fn pairing_matches_by_coords_and_flags_mismatch() {
        let a = tiny_run(2);
        let b = tiny_run(3);
        let (pairs, unmatched) = pair_benches(&a, &b);
        assert_eq!(pairs.len(), a.cells.len());
        assert!(unmatched.is_empty(), "{unmatched:?}");
        for p in &pairs {
            assert!(p.speedup() > 0.0);
            assert!(p.regression_pct().is_finite());
        }

        let mut truncated = b.clone();
        truncated.cells.pop();
        let (pairs, unmatched) = pair_benches(&a, &truncated);
        assert_eq!(pairs.len(), a.cells.len() - 1);
        assert_eq!(unmatched.len(), 1);
    }

    #[test]
    fn comparison_math() {
        let c = BenchComparison {
            id: "x".into(),
            left_ns: 50.0,
            right_ns: 100.0,
        };
        assert!((c.speedup() - 2.0).abs() < 1e-12);
        assert!((c.regression_pct() + 50.0).abs() < 1e-12);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
    }
}
