//! Experiment E14: load *profiles* versus the fluid-limit predictor.
//!
//! The paper's conclusion asks whether the differential-equation method
//! (accurate for uniform bins) can predict the load distribution in the
//! geometric settings. This binary measures the mean number of servers
//! with load ≥ i for uniform bins, the ring, and the torus, next to the
//! fluid-limit prediction `n·s_i` (exact only for uniform bins), so the
//! geometric deviation is visible — the executable version of that open
//! question.
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin profile [--trials T] [--json PATH]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_core::experiment::mean_load_profile;
use geo2c_core::space::{RingSpace, TorusSpace, UniformSpace};
use geo2c_core::strategy::Strategy;
use geo2c_core::theory::fluid_limit_profile;
use geo2c_report::markdown::render_text;
use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json};
use geo2c_util::rng::Xoshiro256pp;

fn main() {
    let cli = Cli::parse(100, (12, 12), 16);
    banner("E14: mean #servers with load >= i (m = n, d = 2)", &cli);
    let config = cli.sweep_config();
    let n = 1usize << cli.max_exp;

    let uniform = mean_load_profile(
        move |_rng: &mut Xoshiro256pp| UniformSpace::new(n),
        Strategy::two_choice(),
        n,
        "profile/uniform",
        &config,
    );
    let ring = mean_load_profile(
        move |rng: &mut Xoshiro256pp| RingSpace::random(n, rng),
        Strategy::two_choice(),
        n,
        "profile/ring",
        &config,
    );
    let torus = mean_load_profile(
        move |rng: &mut Xoshiro256pp| TorusSpace::random(n, rng),
        Strategy::two_choice(),
        n,
        "profile/torus",
        &config,
    );
    let depth = uniform.len().max(ring.len()).max(torus.len()).max(6);
    let fluid = fluid_limit_profile(2, 1.0, depth);

    let spec = ExperimentSpec::new("profile", "E14: mean load profile vs the fluid limit")
        .paper_ref("conclusion (open question)")
        .trials(cli.trials)
        .seed(cli.seed)
        .param("n", Json::from_usize(n))
        .param("d", Json::from_usize(2))
        .param("m", Json::str("n"));
    let mut result = ExperimentResult::new(spec);
    let get = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
    for (i, &fluid_share) in fluid.iter().enumerate().take(depth) {
        result.push(
            Cell::new()
                .coord("load_at_least", Json::from_usize(i + 1))
                .metric("fluid_n_si", Json::num(n as f64 * fluid_share))
                .metric("uniform", Json::num(get(&uniform, i)))
                .metric("ring", Json::num(get(&ring, i)))
                .metric("torus", Json::num(get(&torus, i))),
        );
    }
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!("n = {}, d = 2, {} trials.", pow2_label(n), cli.trials);
    println!("The fluid limit nails the uniform column; the geometric columns");
    println!("carry a heavier tail at every level — the gap the paper's");
    println!("conclusion flags as an open modelling question.");
}
