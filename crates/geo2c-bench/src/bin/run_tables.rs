//! The unified table driver: runs the paper's table suite (Tables 1–3
//! plus the higher-dimension sweep), persists every run as a
//! provenance-stamped `geo2c_report::ResultSet` under `results/`, and
//! renders `EXPERIMENTS.md` — the committed expectations every doc
//! comment in the workspace refers to. Normally invoked as `./tables.sh`
//! from the repository root.
//!
//! ```text
//! run_tables [--quick | --full] [--check [--against DIR]] [--render]
//!            [--only ID,ID] [--dir DIR] [--seed S] [--threads T]
//! ```
//!
//! * *(no flags)* — run the **reference** scale (the committed
//!   `EXPERIMENTS.md` numbers, ≈1 minute single-core), write
//!   `results/{table1,table2,table3,dimension}.json` and regenerate
//!   `EXPERIMENTS.md` byte-identically.
//! * `--quick` — the CI / smoke scale (seconds); writes
//!   `results/quick/*.json` and leaves `EXPERIMENTS.md` alone.
//! * `--full` — the paper's own parameters (1000 trials, `n` up to
//!   `2^24`; hours of CPU); writes `results/full/*.json`.
//! * `--check` — *compare instead of write*: rerun the selected scale
//!   and diff it against the committed JSON within statistical
//!   tolerance (`geo2c_util::stats::{two_proportion_z, welch_z}`;
//!   z ≤ 4 plus small absolute slack). Exits non-zero on any
//!   discrepancy, including spec drift. CI runs `--quick --check`.
//! * `--check --against DIR` — diff against the expectation files in
//!   `DIR` instead (e.g. the archived `results/v1/` pre-lane-contract
//!   numbers: the statistical-equivalence evidence for the one-time
//!   stream migration). Experiments missing from `DIR` are skipped
//!   with a note instead of failing, and the `EXPERIMENTS.md`
//!   rendering check is skipped (it belongs to the committed set).
//! * `--render` — no suite run: verify `EXPERIMENTS.md` is byte-
//!   identical to the rendering of the committed `results/*.json`
//!   (the cheap half of the reference-scale check; CI runs it on
//!   every build).
//! * `--only ID,ID` — run (and check or write) just the named suite
//!   members, e.g. `--only serving,churn`. The `EXPERIMENTS.md`
//!   rendering check/write is skipped (the document is a function of
//!   the *whole* committed set).

use geo2c_bench::experiments::{self, Scale, FULL, QUICK, REFERENCE};
use geo2c_core::experiment::SweepConfig;
use geo2c_report::{compare_sets, ExperimentResult, Provenance, ResultSet, Tolerance};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    scale: &'static Scale,
    check: bool,
    render: bool,
    against: Option<PathBuf>,
    only: Option<Vec<String>>,
    dir: PathBuf,
    seed: u64,
    threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: &REFERENCE,
        check: false,
        render: false,
        against: None,
        only: None,
        dir: PathBuf::from("."),
        seed: 0,
        threads: geo2c_util::parallel::num_threads(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |argv: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{flag} requires a value"))
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.scale = &QUICK,
            "--full" => args.scale = &FULL,
            "--check" => args.check = true,
            "--render" => args.render = true,
            "--against" => args.against = Some(PathBuf::from(take(&argv, &mut i, "--against"))),
            "--only" => {
                let ids: Vec<String> = take(&argv, &mut i, "--only")
                    .split(',')
                    .map(str::to_string)
                    .collect();
                for id in &ids {
                    assert!(
                        experiments::SUITE_IDS.contains(&id.as_str()),
                        "--only: unknown experiment '{id}' (suite: {})",
                        experiments::SUITE_IDS.join(", ")
                    );
                }
                args.only = Some(ids);
            }
            "--dir" => args.dir = PathBuf::from(take(&argv, &mut i, "--dir")),
            "--seed" => args.seed = take(&argv, &mut i, "--seed").parse().expect("seed"),
            "--threads" => {
                args.threads = take(&argv, &mut i, "--threads").parse().expect("threads");
            }
            other => panic!(
                "unknown flag '{other}'\nusage: run_tables [--quick | --full] \
                 [--check [--against DIR]] [--render] [--only ID,ID] [--dir DIR] \
                 [--seed S] [--threads T]"
            ),
        }
        i += 1;
    }
    args
}

/// `results/` for the reference scale, `results/<scale>/` otherwise.
fn results_dir(base: &Path, scale: &Scale) -> PathBuf {
    let root = base.join("results");
    if scale.name == REFERENCE.name {
        root
    } else {
        root.join(scale.name)
    }
}

fn run_suite(
    scale: &Scale,
    seed: u64,
    threads: usize,
    only: Option<&[String]>,
) -> Vec<ExperimentResult> {
    let wanted = |id: &str| only.map_or(true, |ids| ids.iter().any(|want| want == id));
    let config = |trials: usize| SweepConfig {
        trials,
        threads,
        seed,
    };
    let ring = config(scale.ring_trials);
    let torus = config(scale.torus_trials);
    let dim = config(scale.dim_trials);
    let chart = config(scale.chart_trials);
    let tab = config(scale.tab_trials);
    let heavy = config(scale.heavy_trials);
    let serve = config(scale.serve_trials);
    let resil = config(scale.resil_trials);
    let churn = config(scale.churn_trials);
    let repl = config(scale.repl_trials);
    let dht = config(scale.dht_trials);
    let scaling = config(scale.scaling_trials);
    let durability = config(scale.durability_trials);
    let provenance_line = |label: &str, config: &SweepConfig| {
        let pairs: Vec<String> = config
            .describe()
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        eprintln!("  {label}: {}", pairs.join(" "));
    };
    eprintln!(
        "running the {} scale (ring n = {:?}, torus n = {:?}, dimension n = 2^{}, \
         ring chart n = 2^{}, heavy n = 2^{}, serving n = 2^{}, resilience n = 2^{}, \
         churn n = 2^{}, replication n = 2^{}, dht n = 2^{}, scaling n = 2^{}, \
         durability n = 2^{})",
        scale.name,
        scale.ring_sizes(),
        scale.torus_sizes(),
        scale.dim_exp,
        scale.chart_exp,
        scale.heavy_exp,
        scale.serve_exp,
        scale.resil_exp,
        scale.churn_exp,
        scale.repl_exp,
        scale.dht_exp,
        scale.scaling_exp,
        scale.durability_exp,
    );
    if let Some(ids) = only {
        eprintln!("  only: {}", ids.join(", "));
    }
    provenance_line("ring", &ring);
    provenance_line("torus", &torus);
    provenance_line("dimension", &dim);
    provenance_line("ring_chart", &chart);
    provenance_line("tabulation", &tab);
    provenance_line("heavy", &heavy);
    provenance_line("serving", &serve);
    provenance_line("resilience", &resil);
    provenance_line("churn", &churn);
    provenance_line("replication", &repl);
    provenance_line("dht", &dht);
    provenance_line("scaling", &scaling);
    provenance_line("durability", &durability);
    let mut results = Vec::new();
    if wanted("table1") {
        results.push(experiments::table1(&scale.ring_sizes(), &ring));
    }
    if wanted("table2") {
        results.push(experiments::table2(&scale.torus_sizes(), &torus));
    }
    if wanted("table3") {
        results.push(experiments::table3(&scale.ring_sizes(), &ring, true));
    }
    if wanted("dimension") {
        results.push(experiments::dimension(1usize << scale.dim_exp, &dim));
    }
    if wanted("ring_chart") {
        results.push(experiments::ring_chart(1usize << scale.chart_exp, &chart));
    }
    if wanted("tabulation") {
        results.push(experiments::tabulation(1usize << scale.tab_exp, &tab));
    }
    if wanted("heavy") {
        results.push(experiments::heavy(1usize << scale.heavy_exp, &heavy));
    }
    if wanted("serving") {
        results.push(experiments::serving(1usize << scale.serve_exp, &serve));
    }
    if wanted("resilience") {
        results.push(experiments::resilience(1usize << scale.resil_exp, &resil));
    }
    if wanted("churn") {
        results.push(experiments::churn(1usize << scale.churn_exp, &churn));
    }
    if wanted("replication") {
        results.push(experiments::replication(1usize << scale.repl_exp, &repl));
    }
    if wanted("dht") {
        results.push(experiments::dht(1usize << scale.dht_exp, &dht));
    }
    if wanted("scaling") {
        results.push(experiments::scaling(1usize << scale.scaling_exp, &scaling));
    }
    if wanted("durability") {
        results.push(experiments::durability(
            1usize << scale.durability_exp,
            &durability,
        ));
    }
    results
}

/// Loads every committed expectation file *before* the (potentially long)
/// suite run, so a missing or corrupt file fails instantly. Also returns
/// the source file of each loaded experiment, so a later `--check`
/// failure can say *which file's* cell drifted instead of leaving a
/// multi-file run ambiguous.
fn load_expected(
    dir: &Path,
    seed: u64,
    lenient: bool,
    only: Option<&[String]>,
) -> Result<(ResultSet, Vec<(String, PathBuf)>), ExitCode> {
    let mut expected = ResultSet::new(Provenance::capture(seed));
    let mut sources = Vec::new();
    let mut missing = Vec::new();
    for id in experiments::SUITE_IDS {
        if !only.map_or(true, |ids| ids.iter().any(|want| want == id)) {
            continue;
        }
        let path = dir.join(format!("{id}.json"));
        match ResultSet::load(&path) {
            Ok(set) => {
                for result in &set.experiments {
                    sources.push((result.spec.id.clone(), path.clone()));
                }
                expected.experiments.extend(set.experiments);
            }
            Err(e) => missing.push(format!("{}: {e}", path.display())),
        }
    }
    // `--against` archives may legitimately predate newer experiments
    // (e.g. results/v1/ has no `tabulation`): skip those with a note as
    // long as something is comparable.
    if missing.is_empty() || (lenient && !expected.experiments.is_empty()) {
        for m in &missing {
            eprintln!("note: skipping (not in the archive): {m}");
        }
        Ok((expected, sources))
    } else {
        eprintln!("cannot load committed expectations:");
        for m in &missing {
            eprintln!("  {m}");
        }
        eprintln!("run `./tables.sh` (or `./tables.sh --quick`) to generate them first");
        Err(ExitCode::from(2))
    }
}

fn check(
    fresh: &ResultSet,
    expected: &ResultSet,
    sources: &[(String, PathBuf)],
    args: &Args,
    dir: &Path,
    scale: &Scale,
) -> ExitCode {
    // Against an explicit archive, compare only the experiments the
    // archive holds (it may predate newer suite members).
    let mut fresh_view = ResultSet::new(fresh.provenance.clone());
    for result in &fresh.experiments {
        if expected.experiment(&result.spec.id).is_some() {
            fresh_view.experiments.push(result.clone());
        } else if args.against.is_some() {
            eprintln!("note: {} not in the archive; skipped", result.spec.id);
        } else {
            fresh_view.experiments.push(result.clone());
        }
    }
    let mut diffs = compare_sets(&fresh_view, expected, &Tolerance::default());
    // At the reference scale, EXPERIMENTS.md is part of the committed
    // expectations too: it must be exactly what the committed results
    // render to, or the headline document has drifted from the data.
    // (Not when diffing against an archive or a `--only` subset: the
    // document is a function of the whole committed set.)
    if scale.name == REFERENCE.name && args.against.is_none() && args.only.is_none() {
        let md_path = args.dir.join("EXPERIMENTS.md");
        let committed_md = std::fs::read_to_string(&md_path).unwrap_or_default();
        if committed_md != experiments::experiments_markdown(expected) {
            diffs.push(geo2c_report::Discrepancy {
                experiment: "EXPERIMENTS.md".into(),
                cell: String::new(),
                message: format!(
                    "{} is not the rendering of the committed results/*.json — \
                     it was hand-edited or not regenerated",
                    md_path.display()
                ),
            });
        }
    }
    if diffs.is_empty() {
        println!(
            "check OK: {} experiments consistent with {}",
            fresh_view.experiments.len(),
            dir.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "check FAILED: {} discrepancies against {}",
            diffs.len(),
            dir.display()
        );
        let source_of = |experiment: &str| {
            sources.iter().find(|(id, _)| id == experiment).map_or_else(
                || "<no committed file>".to_string(),
                |(_, p)| p.display().to_string(),
            )
        };
        for d in &diffs {
            eprintln!("  {d}");
        }
        // Per-experiment summary: exactly which cells drifted, and which
        // committed file holds the expectation they drifted from.
        eprintln!("drift summary (cell -> expectation file):");
        let mut seen: Vec<&str> = Vec::new();
        for d in &diffs {
            if !seen.contains(&d.experiment.as_str()) {
                seen.push(&d.experiment);
            }
        }
        for experiment in seen {
            let cells: Vec<&str> = diffs
                .iter()
                .filter(|d| d.experiment == experiment)
                .map(|d| {
                    if d.cell.is_empty() {
                        "<spec>"
                    } else {
                        d.cell.as_str()
                    }
                })
                .collect();
            eprintln!(
                "  {experiment}: {} drifted ({}) vs {}",
                cells.len(),
                cells.join("; "),
                source_of(experiment)
            );
        }
        let flag = if scale.name == REFERENCE.name {
            String::new()
        } else {
            format!(" --{}", scale.name)
        };
        eprintln!(
            "if the change is intentional, regenerate the expectations with \
             `./tables.sh{flag}` and commit the diff"
        );
        ExitCode::FAILURE
    }
}

fn write(set: &ResultSet, args: &Args, dir: &Path) -> ExitCode {
    for result in &set.experiments {
        let mut single = ResultSet::new(set.provenance.clone());
        single.push(result.clone());
        let path = dir.join(format!("{}.json", result.spec.id));
        if let Err(e) = single.save(&path) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    // A `--only` subset never rewrites EXPERIMENTS.md: the document
    // renders the whole committed set, not a slice of it.
    if args.scale.name == REFERENCE.name && args.only.is_none() {
        let md_path = args.dir.join("EXPERIMENTS.md");
        if let Err(e) = std::fs::write(&md_path, experiments::experiments_markdown(set)) {
            eprintln!("cannot write {}: {e}", md_path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", md_path.display());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.render {
        // No suite run: EXPERIMENTS.md must be the exact rendering of
        // the committed reference results.
        let dir = results_dir(&args.dir, &REFERENCE);
        let (expected, _) = match load_expected(&dir, args.seed, false, None) {
            Ok(loaded) => loaded,
            Err(code) => return code,
        };
        let md_path = args.dir.join("EXPERIMENTS.md");
        let committed = std::fs::read_to_string(&md_path).unwrap_or_default();
        return if committed == experiments::experiments_markdown(&expected) {
            println!(
                "render OK: {} is byte-identical to the rendering of {}",
                md_path.display(),
                dir.display()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "render FAILED: {} is not the rendering of {} — \
                 it was hand-edited or not regenerated (run `./tables.sh`)",
                md_path.display(),
                dir.display()
            );
            ExitCode::FAILURE
        };
    }
    let dir = match &args.against {
        Some(archive) => archive.clone(),
        None => results_dir(&args.dir, args.scale),
    };
    // Fail fast on missing/corrupt expectations before the long run.
    let expected = if args.check {
        match load_expected(
            &dir,
            args.seed,
            args.against.is_some(),
            args.only.as_deref(),
        ) {
            Ok(expected) => Some(expected),
            Err(code) => return code,
        }
    } else {
        None
    };

    let results = run_suite(args.scale, args.seed, args.threads, args.only.as_deref());
    let mut set = ResultSet::new(Provenance::capture(args.seed));
    set.experiments = results;

    match expected {
        Some((expected, sources)) => check(&set, &expected, &sources, &args, &dir, args.scale),
        None => write(&set, &args, &dir),
    }
}
