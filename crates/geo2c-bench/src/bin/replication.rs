//! Experiment E17: replication × placement policy — a thin CLI front
//! end over [`geo2c_bench::experiments::replication`], which is the
//! gated suite member behind `results/replication.json`.
//!
//! Combines successor-list replication (Chord/CFS reliability) with each
//! placement policy and reports the three-way trade-off: storage load,
//! post-failure availability, and balance. This is the "maintaining
//! reliability" direction the paper's conclusion leaves open. The
//! numbers here are the same computation `./tables.sh` commits: one
//! constructor, two entry points.
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin replication [--trials T] [--json PATH]
//! ```

use geo2c_bench::{banner, experiments, pow2_label, Cli};
use geo2c_core::experiment::SweepConfig;
use geo2c_report::markdown::render_text;

fn main() {
    let cli = Cli::parse(16, (10, 10), 12);
    banner(
        "E17: replication x placement (items = 16 x nodes, 30% failures)",
        &cli,
    );
    let n = 1usize << cli.max_exp;
    let config = SweepConfig {
        trials: cli.trials,
        threads: cli.threads,
        seed: cli.seed,
    };
    let result = experiments::replication(n, &config);
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!(
        "n = {} nodes, m = {} items, 30% failures. Availability is set by r",
        pow2_label(n),
        16 * n,
    );
    println!("(≈ 1 − fail^r); balance is set by the placement policy — the two");
    println!("mechanisms compose, which is the practical claim behind §1.1.");
}
