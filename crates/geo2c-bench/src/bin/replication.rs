//! Experiment E17: replication × placement policy.
//!
//! Combines successor-list replication (Chord/CFS reliability) with each
//! placement policy and reports the three-way trade-off: storage load,
//! post-failure availability, and balance. This is the "maintaining
//! reliability" direction the paper's conclusion leaves open.
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin replication [--trials T] [--json PATH]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_dht::chord::ChordRing;
use geo2c_dht::placement::PlacementPolicy;
use geo2c_dht::replication::{availability_after_failures, place_replicated};
use geo2c_report::markdown::render_text;
use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json};
use geo2c_util::parallel::parallel_map;
use geo2c_util::rng::StreamSeeder;
use geo2c_util::stats::RunningStats;

fn main() {
    let cli = Cli::parse(16, (10, 10), 12);
    banner(
        "E17: replication x placement (items = 16 x nodes, 30% failures)",
        &cli,
    );
    let n = 1usize << cli.max_exp;
    let m = (16 * n) as u64;
    let fail = 0.3;
    let seeder = StreamSeeder::new(cli.seed).child("replication");

    let spec = ExperimentSpec::new("replication", "E17: replication x placement trade-off")
        .paper_ref("conclusion (reliability)")
        .trials(cli.trials)
        .seed(cli.seed)
        .param("nodes", Json::from_usize(n))
        .param("items", Json::from_u64(m))
        .param("fail_fraction", Json::num(fail));
    let mut result = ExperimentResult::new(spec);

    for (name, policy) in [
        ("consistent", PlacementPolicy::Consistent),
        ("2-choice", PlacementPolicy::DChoice { d: 2 }),
    ] {
        for r in [1usize, 2, 3] {
            let rows: Vec<(f64, f64)> = parallel_map(cli.trials, cli.threads, |trial| {
                let mut rng = seeder.child(&format!("{name}/r{r}")).stream(trial as u64);
                let ring = ChordRing::new(n, &mut rng);
                let placement = place_replicated(&ring, policy, m, r);
                let avail = availability_after_failures(&placement, n, fail, &mut rng);
                (f64::from(placement.max_load()), avail.available)
            });
            let mut max_load = RunningStats::new();
            let mut avail = RunningStats::new();
            for (ml, av) in rows {
                max_load.push(ml);
                avail.push(av);
            }
            result.push(
                Cell::new()
                    .coord("scheme", Json::str(name))
                    .coord("replicas", Json::from_usize(r))
                    .metric("max_load_mean", Json::num(max_load.mean()))
                    .metric("mean_load", Json::num(r as f64 * m as f64 / n as f64))
                    .metric("availability_pct", Json::num(100.0 * avail.mean())),
            );
        }
        eprintln!("--- {name} done ---");
    }
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!(
        "n = {} nodes, m = {m} items, {:.0}% failures. Availability is set by r",
        pow2_label(n),
        fail * 100.0
    );
    println!("(≈ 1 − fail^r); balance is set by the placement policy — the two");
    println!("mechanisms compose, which is the practical claim behind §1.1.");
}
