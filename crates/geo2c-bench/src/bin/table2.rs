//! Regenerates the paper's **Table 2**: distribution of the maximum load
//! with random Voronoi cells on the 2-D torus, `m = n`, `d ∈ {1, 2, 3, 4}`.
//!
//! Paper parameters: `n ∈ {2^8, 2^12, 2^16, 2^20}`, 1000 trials, random
//! tie-breaking. Defaults here are laptop-scale (`n ≤ 2^14`, 100 trials);
//! pass `--full` for the paper's sweep.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin table2 [--full] [--trials T]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_core::experiment::sweep_kind;
use geo2c_core::space::SpaceKind;
use geo2c_core::strategy::Strategy;
use geo2c_util::table::TextTable;

fn main() {
    let cli = Cli::parse(100, (8, 14), 20);
    banner(
        "Table 2: experimental maximum load with random torus polygons (m = n)",
        &cli,
    );
    let config = cli.sweep_config();

    let ds = [1usize, 2, 3, 4];
    let mut table =
        TextTable::new(std::iter::once("n".to_string()).chain(ds.iter().map(|d| format!("d={d}"))));
    for n in cli.sweep_sizes() {
        let mut row = vec![pow2_label(n)];
        for &d in &ds {
            let cell = sweep_kind(SpaceKind::Torus, Strategy::d_choice(d), n, n, &config);
            row.push(cell.distribution.paper_column().trim_end().to_string());
        }
        table.push_row(row);
        println!("--- n = {} done ---", pow2_label(n));
    }
    println!("{table}");
}
