//! Regenerates the paper's **Table 2**: distribution of the maximum load
//! with random Voronoi cells on the 2-D torus, `m = n`, `d ∈ {1, 2, 3, 4}`.
//!
//! Paper parameters: `n ∈ {2^8, 2^12, 2^16, 2^20}`, 1000 trials, random
//! tie-breaking. Defaults here are laptop-scale (`n ≤ 2^14`, 100 trials);
//! pass `--full` for the paper's sweep and `--json PATH` to persist the
//! run (committed expectations: `results/table2.json`, rendered in
//! `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin table2 [--full] [--trials T] [--json PATH]
//! ```

use geo2c_bench::{banner, experiments, Cli};
use geo2c_report::markdown::render_text_pivot;

fn main() {
    let cli = Cli::parse(100, (8, 14), 20);
    banner(
        "Table 2: experimental maximum load with random torus polygons (m = n)",
        &cli,
    );

    let result = experiments::table2(&cli.sweep_sizes(), &cli.sweep_config());
    println!("{}", render_text_pivot(&result, "n", "d"));
    cli.write_results(std::slice::from_ref(&result));
}
