//! Regenerates the paper's **Table 1**: distribution of the maximum load
//! with random arcs on the ring, `m = n` balls, `d ∈ {1, 2, 3, 4}`.
//!
//! Paper parameters: `n ∈ {2^8, 2^12, 2^16, 2^20, 2^24}`, 1000 trials,
//! ties broken randomly. Defaults here are laptop-scale
//! (`n ≤ 2^16`, 200 trials); pass `--full` for the paper's sweep and
//! `--json PATH` to persist the run as a `geo2c-report` `ResultSet`
//! (the committed expectations live in `results/table1.json`; see
//! `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin table1 [--full] [--trials T] [--json PATH]
//! ```

use geo2c_bench::{banner, experiments, pow2_label, Cli};
use geo2c_core::theory::two_choice_band;
use geo2c_report::markdown::render_text_pivot;

fn main() {
    let cli = Cli::parse(200, (8, 16), 24);
    banner(
        "Table 1: experimental maximum load with random arcs (m = n)",
        &cli,
    );

    let result = experiments::table1(&cli.sweep_sizes(), &cli.sweep_config());
    println!("{}", render_text_pivot(&result, "n", "d"));
    cli.write_results(std::slice::from_ref(&result));

    println!("theory band (log log n / log d, additive O(1) not predicted):");
    for n in cli.sweep_sizes() {
        let bands: Vec<String> = [2usize, 3, 4]
            .iter()
            .map(|&d| format!("d={d}: {:.2}", two_choice_band(n, d)))
            .collect();
        println!("  n={}: {}", pow2_label(n), bands.join("  "));
    }
}
