//! Regenerates the paper's **Table 1**: distribution of the maximum load
//! with random arcs on the ring, `m = n` balls, `d ∈ {1, 2, 3, 4}`.
//!
//! Paper parameters: `n ∈ {2^8, 2^12, 2^16, 2^20, 2^24}`, 1000 trials,
//! ties broken randomly. Defaults here are laptop-scale
//! (`n ≤ 2^16`, 200 trials); pass `--full` for the paper's sweep.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin table1 [--full] [--trials T]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_core::experiment::sweep_kind;
use geo2c_core::space::SpaceKind;
use geo2c_core::strategy::Strategy;
use geo2c_core::theory::two_choice_band;
use geo2c_util::table::TextTable;

fn main() {
    let cli = Cli::parse(200, (8, 16), 24);
    banner(
        "Table 1: experimental maximum load with random arcs (m = n)",
        &cli,
    );
    let config = cli.sweep_config();

    let ds = [1usize, 2, 3, 4];
    let mut table =
        TextTable::new(std::iter::once("n".to_string()).chain(ds.iter().map(|d| format!("d={d}"))));
    for n in cli.sweep_sizes() {
        let mut row = vec![pow2_label(n)];
        for &d in &ds {
            let cell = sweep_kind(SpaceKind::Ring, Strategy::d_choice(d), n, n, &config);
            row.push(cell.distribution.paper_column().trim_end().to_string());
        }
        table.push_row(row);
        // Stream output row-by-row so long sweeps show progress.
        println!("--- n = {} done ---", pow2_label(n));
    }
    println!("{table}");

    println!("theory band (log log n / log d, additive O(1) not predicted):");
    for n in cli.sweep_sizes() {
        let bands: Vec<String> = ds
            .iter()
            .skip(1)
            .map(|&d| format!("d={d}: {:.2}", two_choice_band(n, d)))
            .collect();
        println!("  n={}: {}", pow2_label(n), bands.join("  "));
    }
}
