//! The persisted-benchmark driver: runs the hot-path micro-bench suite
//! (`geo2c_bench::perf`), maintains the committed baselines under
//! `results/bench/`, and gates perf regressions in CI.
//!
//! ```text
//! run_benches [--quick] [--check] [--tolerance PCT] [--seed S]
//!             [--dir DIR] [--out PATH] [--against PATH]
//! run_benches --diff AFTER.json BEFORE.json
//! ```
//!
//! * *(no flags)* — run the **full** scale and write
//!   `results/bench/baseline.json` (the committed "after" evidence and
//!   the regression-gate reference).
//! * `--quick` — the CI scale (seconds); file stem `quick.json`.
//! * `--check` — rerun the selected scale and fail if any benchmark is
//!   more than `--tolerance` percent (default 50) slower than the
//!   committed baseline. Improvements never fail; structural drift
//!   (bench added/removed/renamed) always does.
//! * `--out PATH` — write somewhere else (used to capture
//!   `results/bench/before.json` at a pre-optimization commit).
//! * `--against PATH` — check against an explicit baseline file.
//! * `--diff A B` — no benches run: load two persisted runs and print
//!   the per-bench speedup of `A` over `B` (e.g. the committed
//!   `baseline.json` over `before.json`).

use geo2c_bench::perf::{self, fmt_ns, pair_benches, run_bench_suite, BenchScale, FULL, QUICK};
use geo2c_report::{ExperimentResult, Provenance, ResultSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    scale: &'static BenchScale,
    check: bool,
    tolerance_pct: f64,
    seed: u64,
    dir: PathBuf,
    out: Option<PathBuf>,
    against: Option<PathBuf>,
    diff: Option<(PathBuf, PathBuf)>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: &FULL,
        check: false,
        tolerance_pct: 50.0,
        seed: 0,
        dir: PathBuf::from("."),
        out: None,
        against: None,
        diff: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |argv: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{flag} requires a value"))
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.scale = &QUICK,
            "--check" => args.check = true,
            "--tolerance" => {
                args.tolerance_pct = take(&argv, &mut i, "--tolerance")
                    .parse()
                    .expect("tolerance percent");
            }
            "--seed" => args.seed = take(&argv, &mut i, "--seed").parse().expect("seed"),
            "--dir" => args.dir = PathBuf::from(take(&argv, &mut i, "--dir")),
            "--out" => args.out = Some(PathBuf::from(take(&argv, &mut i, "--out"))),
            "--against" => args.against = Some(PathBuf::from(take(&argv, &mut i, "--against"))),
            "--diff" => {
                let a = PathBuf::from(take(&argv, &mut i, "--diff"));
                let b = PathBuf::from(take(&argv, &mut i, "--diff"));
                args.diff = Some((a, b));
            }
            other => panic!(
                "unknown flag '{other}'\nusage: run_benches [--quick] [--check] \
                 [--tolerance PCT] [--seed S] [--dir DIR] [--out PATH] [--against PATH] \
                 | --diff AFTER BEFORE"
            ),
        }
        i += 1;
    }
    args
}

fn baseline_path(args: &Args) -> PathBuf {
    args.dir.join("results").join("bench").join(format!(
        "{}.json",
        if args.scale.name == QUICK.name {
            "quick"
        } else {
            "baseline"
        }
    ))
}

fn load_bench(path: &Path) -> Result<ExperimentResult, ExitCode> {
    match ResultSet::load(path) {
        Ok(set) => match set.experiment("bench") {
            Some(result) => Ok(result.clone()),
            None => {
                eprintln!("{}: no 'bench' experiment in file", path.display());
                Err(ExitCode::from(2))
            }
        },
        Err(e) => {
            eprintln!("cannot load {}: {e}", path.display());
            Err(ExitCode::from(2))
        }
    }
}

fn print_table(result: &ExperimentResult) {
    println!(
        "{:<34} {:>12} {:>16} {:>10}",
        "bench", "ns/iter", "throughput", "iters"
    );
    for cell in &result.cells {
        let ns = perf::metric_f64(cell, "ns_per_iter").unwrap_or(f64::NAN);
        let rate = perf::metric_f64(cell, "elems_per_s").unwrap_or(f64::NAN);
        let iters = cell
            .metrics
            .iter()
            .find(|(k, _)| k == "iters")
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(0);
        println!(
            "{:<34} {:>12} {:>14.3e}/s {:>10}",
            cell.label(),
            fmt_ns(ns),
            rate,
            iters
        );
    }
}

fn diff(after_path: &Path, before_path: &Path) -> ExitCode {
    let (after, before) = match (load_bench(after_path), load_bench(before_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(c), _) | (_, Err(c)) => return c,
    };
    let (pairs, unmatched) = pair_benches(&after, &before);
    println!(
        "speedup of {} over {}:",
        after_path.display(),
        before_path.display()
    );
    println!(
        "{:<34} {:>12} {:>12} {:>9}",
        "bench", "before", "after", "speedup"
    );
    for p in &pairs {
        println!(
            "{:<34} {:>12} {:>12} {:>8.2}x",
            p.id,
            fmt_ns(p.right_ns),
            fmt_ns(p.left_ns),
            p.speedup()
        );
    }
    for u in &unmatched {
        println!("  (unpaired) {u}");
    }
    ExitCode::SUCCESS
}

fn check(
    fresh: &ExperimentResult,
    committed: &ExperimentResult,
    baseline_file: &Path,
    tolerance_pct: f64,
) -> ExitCode {
    let (pairs, unmatched) = pair_benches(fresh, committed);
    let mut failures = Vec::new();
    for u in &unmatched {
        failures.push(format!(
            "structural drift vs {}: {u}",
            baseline_file.display()
        ));
    }
    println!(
        "{:<34} {:>12} {:>12} {:>9}",
        "bench", "baseline", "fresh", "delta"
    );
    for p in &pairs {
        let delta = p.regression_pct();
        println!(
            "{:<34} {:>12} {:>12} {:>+8.1}%",
            p.id,
            fmt_ns(p.right_ns),
            fmt_ns(p.left_ns),
            delta
        );
        if delta > tolerance_pct {
            failures.push(format!(
                "{}: {} -> {} ({delta:+.1}%, tolerance {tolerance_pct}%)",
                p.id,
                fmt_ns(p.right_ns),
                fmt_ns(p.left_ns)
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "bench check OK: {} benches within {tolerance_pct}% of {}",
            pairs.len(),
            baseline_file.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench check FAILED against {}:", baseline_file.display());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "if the slowdown is intentional, regenerate the baseline with `run_benches{}` \
             and commit the diff",
            if baseline_file.ends_with("quick.json") {
                " --quick"
            } else {
                ""
            }
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some((after, before)) = &args.diff {
        return diff(after, before);
    }

    // Fail fast on a missing/corrupt baseline before the measurement run.
    let committed = if args.check {
        let baseline_file = args.against.clone().unwrap_or_else(|| baseline_path(&args));
        match load_bench(&baseline_file) {
            Ok(result) => Some((result, baseline_file)),
            Err(code) => {
                eprintln!(
                    "run `run_benches` (or `run_benches --quick`) to create the baseline first"
                );
                return code;
            }
        }
    } else {
        None
    };

    eprintln!(
        "running the {} bench scale (seed {})",
        args.scale.name, args.seed
    );
    let fresh = run_bench_suite(args.scale, args.seed, perf::MEASURE_WINDOW, perf::REPEATS);

    if let Some((committed, baseline_file)) = committed {
        return check(&fresh, &committed, &baseline_file, args.tolerance_pct);
    }

    print_table(&fresh);
    let path = args.out.clone().unwrap_or_else(|| baseline_path(&args));
    let mut set = ResultSet::new(Provenance::capture(args.seed));
    set.push(fresh);
    if let Err(e) = set.save(&path) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    ExitCode::SUCCESS
}
