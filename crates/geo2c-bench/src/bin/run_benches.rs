//! The persisted-benchmark driver: runs the hot-path micro-bench suite
//! (`geo2c_bench::perf`), maintains the committed baselines under
//! `results/bench/`, and gates perf regressions in CI.
//!
//! ```text
//! run_benches [--quick] [--check] [--tolerance PCT] [--seed S]
//!             [--dir DIR] [--out PATH] [--against PATH] [--archive [LABEL]]
//!             [--only SUBSTR[,SUBSTR]] [--repeats N] [--window-ms MS]
//! run_benches --diff AFTER.json BEFORE.json [--min-speedup R --only SUBSTR[,SUBSTR]]
//! run_benches --ratio FILE.json NUM_NAME DEN_NAME MAX
//! ```
//!
//! `--repeats` / `--window-ms` override the measurement methodology
//! (default 3 × ~20 ms best-of windows) — raise repeats on a noisy
//! host. Both are recorded in the persisted spec (`trials` and the
//! `window_ms` param), so runs carry their methodology with them.
//!
//! * *(no flags)* — run the **full** scale and write
//!   `results/bench/baseline.json` (the committed "after" evidence and
//!   the regression-gate reference).
//! * `--quick` — the CI scale (seconds); file stem `quick.json`.
//! * `--check` — rerun the selected scale and fail if any benchmark is
//!   more than `--tolerance` percent (default 50) slower than the
//!   committed baseline. Improvements never fail; structural drift
//!   (bench added/removed/renamed) always does.
//! * `--out PATH` — write somewhere else.
//! * `--against PATH` — check against an explicit baseline file.
//! * `--archive [LABEL]` — capture pre-optimization evidence: run the
//!   selected scale and write `results/bench/before_<LABEL>.json`.
//!   Without a label the next `prN` is chosen automatically (one past
//!   the highest committed `before_prN.json`), so each PR's "before"
//!   lands in its own file and the trajectory of archives stays
//!   comparable instead of a rolling `before.json` being overwritten.
//! * `--only SUBSTR[,SUBSTR]` *(run mode)* — run only the benches whose
//!   id contains a pattern. A filtered run is a subset, so it must name
//!   its own destination with `--out` — it never overwrites a committed
//!   baseline or archive. For iterating on one hot path.
//! * `--diff A B` — no benches run: load two persisted runs and print
//!   the per-bench speedup of `A` over `B` (e.g. the committed
//!   `baseline.json` over `before_pr5.json`). With `--min-speedup R`
//!   the diff *gates*: every pair whose id contains `--only SUBSTR`
//!   (default: all pairs) must show a speedup of at least `R`, or the
//!   exit status is non-zero — this is how ci.sh pins a perf PR's
//!   headline claim to the committed evidence.
//! * `--ratio FILE NUM DEN MAX` — no benches run: a *cross-bench* gate
//!   within one persisted run. The bench named `NUM` must show at most
//!   `MAX` times the ns/iter of the bench named `DEN` (names are the
//!   `name` coordinate, e.g. `serving_d2_journaled`). Because both sides
//!   were measured back-to-back on the same host, the ratio is
//!   machine-independent evidence — this is how ci.sh bounds the
//!   journaling overhead against the plain serving trial.

use geo2c_bench::perf::{
    self, fmt_ns, pair_benches, run_bench_suite_only, BenchScale, FULL, QUICK,
};
use geo2c_report::{ExperimentResult, Provenance, ResultSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    scale: &'static BenchScale,
    check: bool,
    tolerance_pct: f64,
    seed: u64,
    dir: PathBuf,
    out: Option<PathBuf>,
    against: Option<PathBuf>,
    diff: Option<(PathBuf, PathBuf)>,
    ratio: Option<(PathBuf, String, String, f64)>,
    archive: Option<Option<String>>,
    min_speedup: Option<f64>,
    only: Option<String>,
    repeats: usize,
    window_ms: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: &FULL,
        check: false,
        tolerance_pct: 50.0,
        seed: 0,
        dir: PathBuf::from("."),
        out: None,
        against: None,
        diff: None,
        ratio: None,
        archive: None,
        min_speedup: None,
        only: None,
        repeats: perf::REPEATS,
        window_ms: perf::MEASURE_WINDOW.as_millis() as u64,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |argv: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{flag} requires a value"))
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.scale = &QUICK,
            "--check" => args.check = true,
            "--tolerance" => {
                args.tolerance_pct = take(&argv, &mut i, "--tolerance")
                    .parse()
                    .expect("tolerance percent");
            }
            "--seed" => args.seed = take(&argv, &mut i, "--seed").parse().expect("seed"),
            "--dir" => args.dir = PathBuf::from(take(&argv, &mut i, "--dir")),
            "--out" => args.out = Some(PathBuf::from(take(&argv, &mut i, "--out"))),
            "--against" => args.against = Some(PathBuf::from(take(&argv, &mut i, "--against"))),
            "--diff" => {
                let a = PathBuf::from(take(&argv, &mut i, "--diff"));
                let b = PathBuf::from(take(&argv, &mut i, "--diff"));
                args.diff = Some((a, b));
            }
            "--ratio" => {
                let file = PathBuf::from(take(&argv, &mut i, "--ratio"));
                let num = take(&argv, &mut i, "--ratio");
                let den = take(&argv, &mut i, "--ratio");
                let max: f64 = take(&argv, &mut i, "--ratio").parse().expect("max ratio");
                assert!(max > 0.0, "--ratio limit must be positive");
                args.ratio = Some((file, num, den, max));
            }
            "--archive" => {
                // The label is optional: consume the next token only if it
                // is not a flag.
                match argv.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        args.archive = Some(Some(next.clone()));
                        i += 1;
                    }
                    _ => args.archive = Some(None),
                }
            }
            "--min-speedup" => {
                args.min_speedup = Some(
                    take(&argv, &mut i, "--min-speedup")
                        .parse()
                        .expect("speedup ratio"),
                );
            }
            "--only" => args.only = Some(take(&argv, &mut i, "--only")),
            "--repeats" => {
                args.repeats = take(&argv, &mut i, "--repeats")
                    .parse()
                    .expect("repeat count");
            }
            "--window-ms" => {
                args.window_ms = take(&argv, &mut i, "--window-ms")
                    .parse()
                    .expect("window millis");
            }
            other => panic!(
                "unknown flag '{other}'\nusage: run_benches [--quick] [--check] \
                 [--tolerance PCT] [--seed S] [--dir DIR] [--out PATH] [--against PATH] \
                 [--archive [LABEL]] [--only SUBSTR[,SUBSTR]] [--repeats N] [--window-ms MS] \
                 | --diff AFTER BEFORE [--min-speedup R --only SUBSTR[,SUBSTR]] \
                 | --ratio FILE NUM_NAME DEN_NAME MAX"
            ),
        }
        i += 1;
    }
    // Contradictory destinations/modes are rejected rather than silently
    // resolved: --check writes nothing (an --archive capture would be
    // skipped), and --archive has its own output-naming scheme.
    assert!(
        !(args.archive.is_some() && args.check),
        "--archive runs write an archive; --check writes nothing — pick one"
    );
    assert!(
        !(args.archive.is_some() && args.out.is_some()),
        "--archive names its own output (before_<LABEL>.json); drop --out"
    );
    // A filtered measurement is a subset of the suite: letting it land in
    // baseline/archive/check paths would shrink the committed coverage.
    if args.only.is_some() && args.diff.is_none() {
        assert!(
            !args.check && args.archive.is_none() && args.out.is_some(),
            "--only runs a subset; write it to an explicit --out \
             (not a baseline, archive, or --check)"
        );
    }
    args
}

fn bench_dir(args: &Args) -> PathBuf {
    args.dir.join("results").join("bench")
}

fn baseline_path(args: &Args) -> PathBuf {
    bench_dir(args).join(format!(
        "{}.json",
        if args.scale.name == QUICK.name {
            "quick"
        } else {
            "baseline"
        }
    ))
}

/// The per-PR archive file for `--archive`: `before_<LABEL>.json`, or —
/// with no label — `before_prN.json` for the smallest `N` one past every
/// committed `before_pr*.json` (so successive PRs never overwrite each
/// other's "before" evidence).
fn archive_path(args: &Args, label: Option<&str>) -> PathBuf {
    let dir = bench_dir(args);
    let label = match label {
        Some(l) => l.to_string(),
        None => {
            let mut next = 1u32;
            if let Ok(entries) = std::fs::read_dir(&dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if let Some(num) = name
                        .strip_prefix("before_pr")
                        .and_then(|rest| rest.strip_suffix(".json"))
                    {
                        if let Ok(n) = num.parse::<u32>() {
                            next = next.max(n + 1);
                        }
                    }
                }
            }
            format!("pr{next}")
        }
    };
    dir.join(format!("before_{label}.json"))
}

fn load_bench(path: &Path) -> Result<ExperimentResult, ExitCode> {
    match ResultSet::load(path) {
        Ok(set) => match set.experiment("bench") {
            Some(result) => Ok(result.clone()),
            None => {
                eprintln!("{}: no 'bench' experiment in file", path.display());
                Err(ExitCode::from(2))
            }
        },
        Err(e) => {
            eprintln!("cannot load {}: {e}", path.display());
            Err(ExitCode::from(2))
        }
    }
}

fn print_table(result: &ExperimentResult) {
    println!(
        "{:<34} {:>12} {:>16} {:>10}",
        "bench", "ns/iter", "throughput", "iters"
    );
    for cell in &result.cells {
        let ns = perf::metric_f64(cell, "ns_per_iter").unwrap_or(f64::NAN);
        let rate = perf::metric_f64(cell, "elems_per_s").unwrap_or(f64::NAN);
        let iters = cell
            .metrics
            .iter()
            .find(|(k, _)| k == "iters")
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(0);
        println!(
            "{:<34} {:>12} {:>14.3e}/s {:>10}",
            cell.label(),
            fmt_ns(ns),
            rate,
            iters
        );
    }
}

fn diff(
    after_path: &Path,
    before_path: &Path,
    min_speedup: Option<f64>,
    only: Option<&str>,
) -> ExitCode {
    let (after, before) = match (load_bench(after_path), load_bench(before_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(c), _) | (_, Err(c)) => return c,
    };
    let (pairs, unmatched) = pair_benches(&after, &before);
    println!(
        "speedup of {} over {}:",
        after_path.display(),
        before_path.display()
    );
    println!(
        "{:<34} {:>12} {:>12} {:>9}",
        "bench", "before", "after", "speedup"
    );
    // `--only` takes a comma-separated list of id substrings.
    let matches_only = |id: &str| perf::matches_only(id, only);
    let mut failures = Vec::new();
    for p in &pairs {
        let gated = matches_only(&p.id);
        println!(
            "{:<34} {:>12} {:>12} {:>8.2}x{}",
            p.id,
            fmt_ns(p.right_ns),
            fmt_ns(p.left_ns),
            p.speedup(),
            if gated && min_speedup.is_some() {
                "  [gated]"
            } else {
                ""
            }
        );
        if let Some(min) = min_speedup {
            if gated && p.speedup() < min {
                failures.push(format!("{}: {:.2}x < required {min}x", p.id, p.speedup()));
            }
        }
    }
    for u in &unmatched {
        println!("  (unpaired) {u}");
    }
    if let Some(min) = min_speedup {
        let gated = pairs.iter().filter(|p| matches_only(&p.id)).count();
        // Every --only pattern must cover at least one pair: a gated
        // bench silently falling out of either file (rename, partial
        // regeneration) must fail the gate, not shrink it.
        if let Some(patterns) = only {
            for pat in patterns.split(',').filter(|pat| !pat.is_empty()) {
                if !pairs.iter().any(|p| p.id.contains(pat)) {
                    failures.push(format!(
                        "--only pattern {pat:?} matches no paired bench — \
                         gated coverage shrank"
                    ));
                }
            }
        }
        if gated == 0 {
            eprintln!(
                "speedup gate FAILED: no bench matches --only {:?}",
                only.unwrap_or("")
            );
            return ExitCode::FAILURE;
        }
        if failures.is_empty() {
            println!(
                "speedup gate OK: {gated} gated benches all at least {min}x faster than {}",
                before_path.display()
            );
        } else {
            eprintln!("speedup gate FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The `--ratio` cross-bench gate: within one persisted run, the bench
/// named `num` must cost at most `max` times the ns/iter of the bench
/// named `den`. Both sides come from the same back-to-back measurement,
/// so the bound holds machine-independently.
fn ratio(path: &Path, num: &str, den: &str, max: f64) -> ExitCode {
    let result = match load_bench(path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let find = |name: &str| {
        let mut hits = result.cells.iter().filter(|c| {
            c.coords
                .iter()
                .any(|(k, v)| k == "name" && v.as_str() == Some(name))
        });
        let first = hits.next();
        assert!(
            hits.next().is_none(),
            "bench name {name:?} is ambiguous in {}",
            path.display()
        );
        first.and_then(|c| perf::metric_f64(c, "ns_per_iter"))
    };
    let (Some(num_ns), Some(den_ns)) = (find(num), find(den)) else {
        eprintln!(
            "ratio gate FAILED: {} must hold both benches {num:?} and {den:?}",
            path.display()
        );
        return ExitCode::from(2);
    };
    let observed = num_ns / den_ns;
    if observed <= max {
        println!(
            "ratio gate OK: {num} is {observed:.3}x {den} (limit {max}x) in {}",
            path.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "ratio gate FAILED: {num} is {observed:.3}x {den}, over the {max}x limit in {} — \
             the overhead grew; fix it or re-justify the bound",
            path.display()
        );
        ExitCode::FAILURE
    }
}

fn check(
    fresh: &ExperimentResult,
    committed: &ExperimentResult,
    baseline_file: &Path,
    tolerance_pct: f64,
) -> ExitCode {
    let (pairs, unmatched) = pair_benches(fresh, committed);
    let mut failures = Vec::new();
    for u in &unmatched {
        failures.push(format!(
            "structural drift vs {}: {u}",
            baseline_file.display()
        ));
    }
    println!(
        "{:<34} {:>12} {:>12} {:>9}",
        "bench", "baseline", "fresh", "delta"
    );
    for p in &pairs {
        let delta = p.regression_pct();
        println!(
            "{:<34} {:>12} {:>12} {:>+8.1}%",
            p.id,
            fmt_ns(p.right_ns),
            fmt_ns(p.left_ns),
            delta
        );
        if delta > tolerance_pct {
            failures.push(format!(
                "{}: {} -> {} ({delta:+.1}%, tolerance {tolerance_pct}%)",
                p.id,
                fmt_ns(p.right_ns),
                fmt_ns(p.left_ns)
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "bench check OK: {} benches within {tolerance_pct}% of {}",
            pairs.len(),
            baseline_file.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench check FAILED against {}:", baseline_file.display());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "if the slowdown is intentional, regenerate the baseline with `run_benches{}` \
             and commit the diff",
            if baseline_file.ends_with("quick.json") {
                " --quick"
            } else {
                ""
            }
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some((after, before)) = &args.diff {
        return diff(after, before, args.min_speedup, args.only.as_deref());
    }
    if let Some((file, num, den, max)) = &args.ratio {
        return ratio(file, num, den, *max);
    }

    // Fail fast on a missing/corrupt baseline before the measurement run.
    let committed = if args.check {
        let baseline_file = args.against.clone().unwrap_or_else(|| baseline_path(&args));
        match load_bench(&baseline_file) {
            Ok(result) => Some((result, baseline_file)),
            Err(code) => {
                eprintln!(
                    "run `run_benches` (or `run_benches --quick`) to create the baseline first"
                );
                return code;
            }
        }
    } else {
        None
    };

    eprintln!(
        "running the {} bench scale (seed {}, {} repeats of {} ms windows)",
        args.scale.name, args.seed, args.repeats, args.window_ms
    );
    let fresh = run_bench_suite_only(
        args.scale,
        args.seed,
        std::time::Duration::from_millis(args.window_ms),
        args.repeats,
        args.only.as_deref(),
    );

    if let Some((committed, baseline_file)) = committed {
        return check(&fresh, &committed, &baseline_file, args.tolerance_pct);
    }

    print_table(&fresh);
    let path = match &args.archive {
        Some(label) => archive_path(&args, label.as_deref()),
        None => args.out.clone().unwrap_or_else(|| baseline_path(&args)),
    };
    let mut set = ResultSet::new(Provenance::capture(args.seed));
    set.push(fresh);
    if let Err(e) = set.save(&path) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    ExitCode::SUCCESS
}
