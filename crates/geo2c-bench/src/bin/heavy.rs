//! Experiment E9: the `m ≠ n` remark (§2, remark 3) — a thin CLI front
//! end over [`geo2c_bench::experiments::heavy`], which is the gated
//! suite member behind `results/heavy.json`.
//!
//! With `m` balls and `n` bins the paper states the two-choice maximum
//! is `O(m/n) + O(log log n / log d)` w.h.p. This binary sweeps the
//! ratio `m/n ∈ {1/4, 1, 4, 16}` on the ring and the uniform baseline
//! and reports mean max load, the `m/n` floor, and the measured slack.
//! The numbers here are the same computation `./tables.sh` commits: one
//! constructor, two entry points.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin heavy [--max-exp K] [--json PATH]
//! ```

use geo2c_bench::{banner, experiments, pow2_label, Cli};
use geo2c_core::experiment::SweepConfig;
use geo2c_core::theory::two_choice_band;
use geo2c_report::markdown::render_text;

fn main() {
    let cli = Cli::parse(100, (12, 12), 16);
    banner("E9: heavily-loaded case (m != n), d = 2", &cli);
    let n = 1usize << cli.max_exp;
    let config = SweepConfig {
        trials: cli.trials,
        threads: cli.threads,
        seed: cli.seed,
    };
    let result = experiments::heavy(n, &config);
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!(
        "n = {}; additive band log log n / log 2 = {:.2}. Expect slack to stay",
        pow2_label(n),
        two_choice_band(n, 2)
    );
    println!("O(log log n) as m/n grows (it may even shrink: absolute loads smooth out).");
}
