//! Experiment E9: the `m ≠ n` remark (§2, remark 3).
//!
//! With `m` balls and `n` bins the paper states the two-choice maximum is
//! `O(m/n) + O(log log n / log d)` w.h.p. This binary sweeps the ratio
//! `m/n ∈ {1/4, 1, 4, 16}` on the ring and the uniform baseline and
//! reports mean max load, the `m/n` floor, and the measured slack.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin heavy [--max-exp K] [--json PATH]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_core::experiment::heavy_load_sweep;
use geo2c_core::space::SpaceKind;
use geo2c_core::strategy::Strategy;
use geo2c_core::theory::two_choice_band;
use geo2c_report::markdown::render_text;
use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json};

fn main() {
    let cli = Cli::parse(100, (12, 12), 16);
    banner("E9: heavily-loaded case (m != n), d = 2", &cli);
    let config = cli.sweep_config();
    let n = 1usize << cli.max_exp;
    let ms = [n / 4, n, 4 * n, 16 * n];

    let spec = ExperimentSpec::new("heavy", "E9: heavily-loaded case (m != n, d = 2)")
        .paper_ref("§2 remark 3")
        .trials(cli.trials)
        .seed(cli.seed)
        .param("n", Json::from_usize(n))
        .param("d", Json::from_usize(2))
        .param(
            "m",
            Json::Arr(ms.iter().map(|&m| Json::from_usize(m)).collect()),
        );
    let mut result = ExperimentResult::new(spec);

    for kind in [SpaceKind::Uniform, SpaceKind::Ring] {
        let rows = heavy_load_sweep(kind, Strategy::two_choice(), n, &ms, &config);
        for row in rows {
            result.push(
                Cell::new()
                    .coord("space", Json::str(kind.name()))
                    .coord("m", Json::from_usize(row.m))
                    .metric("m_over_n", Json::num(row.average_load))
                    .metric("mean_max", Json::num(row.mean_max))
                    .metric("slack", Json::num(row.mean_max - row.average_load))
                    .dist(row.distribution),
            );
        }
        eprintln!("--- {} done ---", kind.name());
    }
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!(
        "n = {}; additive band log log n / log 2 = {:.2}. Expect slack to stay",
        pow2_label(n),
        two_choice_band(n, 2)
    );
    println!("O(log log n) as m/n grows (it may even shrink: absolute loads smooth out).");
}
