//! Experiment E11: the §1.1 Chord application.
//!
//! Compares, on a Chord-style DHT, the three ways to balance item load:
//! plain consistent hashing, `v = ⌈log₂ n⌉` virtual servers (Chord's own
//! mitigation), and `d`-choice placement with redirection pointers (the
//! paper's proposal). Reports max/mean/σ of the per-server load and the
//! lookup-hop cost of each configuration.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin dht [--trials T] [--max-exp K] [--json PATH]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_dht::chord::ChordRing;
use geo2c_dht::placement::{evaluate, PlacementPolicy};
use geo2c_report::markdown::render_text;
use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json};
use geo2c_util::parallel::parallel_map;
use geo2c_util::rng::StreamSeeder;
use geo2c_util::stats::RunningStats;

struct Config {
    name: &'static str,
    virtual_servers: usize,
    policy: PlacementPolicy,
}

fn main() {
    let cli = Cli::parse(20, (10, 10), 14);
    banner("E11: Chord DHT load balance (items = 16 x nodes)", &cli);
    let n = 1usize << cli.max_exp;
    let m = (16 * n) as u64;
    let v = (n as f64).log2().ceil() as usize;
    let lookup_samples = 2000;

    let configs = [
        Config {
            name: "consistent",
            virtual_servers: 1,
            policy: PlacementPolicy::Consistent,
        },
        Config {
            name: "virtual(log n)",
            virtual_servers: v,
            policy: PlacementPolicy::Consistent,
        },
        Config {
            name: "2-choice",
            virtual_servers: 1,
            policy: PlacementPolicy::DChoice { d: 2 },
        },
        Config {
            name: "4-choice",
            virtual_servers: 1,
            policy: PlacementPolicy::DChoice { d: 4 },
        },
    ];

    let spec = ExperimentSpec::new("dht", "E11: Chord DHT load balance by placement scheme")
        .paper_ref("§1.1")
        .trials(cli.trials)
        .seed(cli.seed)
        .param("nodes", Json::from_usize(n))
        .param("items", Json::from_u64(m))
        .param("virtual_servers", Json::from_usize(v))
        .param("lookup_samples", Json::from_usize(lookup_samples));
    let mut result = ExperimentResult::new(spec);

    let seeder = StreamSeeder::new(cli.seed).child("dht");
    for config in &configs {
        // Each trial: fresh ring + placement + sampled lookups.
        let rows: Vec<(f64, f64, f64, u32, f64)> = parallel_map(cli.trials, cli.threads, |trial| {
            let mut rng = seeder.child(config.name).stream(trial as u64);
            let ring = ChordRing::with_virtual_servers(n, config.virtual_servers, &mut rng);
            let report = evaluate(&ring, config.policy, m, lookup_samples, &mut rng);
            let lookup = report.lookup.expect("lookups sampled");
            (
                f64::from(report.load.max),
                report.load.stddev,
                lookup.mean_hops,
                lookup.max_hops,
                lookup.redirect_rate,
            )
        });
        let mut max_load = RunningStats::new();
        let mut sigma = RunningStats::new();
        let mut hops = RunningStats::new();
        let mut max_hops = 0u32;
        let mut redirect = RunningStats::new();
        for (ml, sd, mh, xh, rr) in rows {
            max_load.push(ml);
            sigma.push(sd);
            hops.push(mh);
            max_hops = max_hops.max(xh);
            redirect.push(rr);
        }
        // Finger-table state per physical node: 64 entries per virtual node.
        let state = config.virtual_servers * 64;
        result.push(
            Cell::new()
                .coord("scheme", Json::str(config.name))
                .metric("max_load_mean", Json::num(max_load.mean()))
                .metric("load_sigma", Json::num(sigma.mean()))
                .metric("mean_hops", Json::num(hops.mean()))
                .metric("max_hops", Json::num(max_hops))
                .metric("redirect_pct", Json::num(100.0 * redirect.mean()))
                .metric("fingers_per_node", Json::from_usize(state)),
        );
        eprintln!("--- {} done ---", config.name);
    }
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!(
        "n = {} physical nodes, m = {m} items, v = {v} virtual servers.",
        pow2_label(n)
    );
    println!("Expect: 2-choice max load ~= virtual-server max load with 1/{v} the");
    println!("routing state, at the cost of ~1 extra lookup hop (redirect).");
}
