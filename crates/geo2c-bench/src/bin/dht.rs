//! Experiment E11: the §1.1 Chord application.
//!
//! Compares, on a Chord-style DHT, the three ways to balance item load:
//! plain consistent hashing, `v = ⌈log₂ n⌉` virtual servers (Chord's own
//! mitigation), and `d`-choice placement with redirection pointers (the
//! paper's proposal). Reports max/mean/σ of the per-server load and the
//! lookup-hop cost of each configuration.
//!
//! The computation lives in [`geo2c_bench::experiments::dht`], which is
//! also a member of the gated `run_tables` suite (committed expectations
//! under `results/dht.json`); this binary is the ad-hoc CLI front end
//! for other sizes and seeds.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin dht [--trials T] [--max-exp K] [--json PATH]
//! ```

use geo2c_bench::{banner, experiments, pow2_label, Cli};
use geo2c_core::experiment::SweepConfig;
use geo2c_report::markdown::render_text;

fn main() {
    let cli = Cli::parse(20, (10, 10), 14);
    banner("E11: Chord DHT load balance (items = 16 x nodes)", &cli);
    let n = 1usize << cli.max_exp;
    let v = (n as f64).log2().ceil() as usize;
    let config = SweepConfig {
        trials: cli.trials,
        threads: cli.threads,
        seed: cli.seed,
    };
    let result = experiments::dht(n, &config);
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!(
        "n = {} physical nodes, m = {} items, v = {v} virtual servers.",
        pow2_label(n),
        16 * n
    );
    println!("Expect: 2-choice max load ~= virtual-server max load with 1/{v} the");
    println!("routing state, at the cost of ~1 extra lookup hop (redirect).");
}
