//! Regenerates the paper's **Table 3**: tie-breaking strategies for
//! random arcs with `d = 2`, `m = n`.
//!
//! Columns (paper order): *arc-larger*, *arc-random*, *arc-left*,
//! *arc-smaller*. Pass `--with-voecking` to append Vöcking's
//! split-interval always-go-left scheme (§2 remark 4), which the paper
//! says *arc-smaller* slightly beats.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin table3 [--full] [--with-voecking]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_core::experiment::sweep_kind;
use geo2c_core::space::SpaceKind;
use geo2c_core::strategy::{Strategy, TieBreak};
use geo2c_util::table::TextTable;

fn main() {
    let cli = Cli::parse(200, (8, 16), 24);
    banner(
        "Table 3: maximum load by tie-breaking strategy, random arcs, d = 2 (m = n)",
        &cli,
    );
    let config = cli.sweep_config();

    let mut strategies = vec![
        Strategy::with_tie_break(2, TieBreak::LargerRegion),
        Strategy::with_tie_break(2, TieBreak::Random),
        Strategy::with_tie_break(2, TieBreak::Leftmost),
        Strategy::with_tie_break(2, TieBreak::SmallerRegion),
    ];
    let mut headers = vec![
        "arc-larger".to_string(),
        "arc-random".to_string(),
        "arc-left".to_string(),
        "arc-smaller".to_string(),
    ];
    if cli.has_flag("--with-voecking") {
        strategies.push(Strategy::voecking(2));
        headers.push("voecking".to_string());
    }

    let mut table = TextTable::new(std::iter::once("n".to_string()).chain(headers));
    for n in cli.sweep_sizes() {
        let mut row = vec![pow2_label(n)];
        for strategy in &strategies {
            let cell = sweep_kind(SpaceKind::Ring, *strategy, n, n, &config);
            row.push(cell.distribution.paper_column().trim_end().to_string());
        }
        table.push_row(row);
        println!("--- n = {} done ---", pow2_label(n));
    }
    println!("{table}");
}
