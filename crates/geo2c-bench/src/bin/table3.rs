//! Regenerates the paper's **Table 3**: tie-breaking strategies for
//! random arcs with `d = 2`, `m = n`.
//!
//! Columns (paper order): *arc-larger*, *arc-random*, *arc-left*,
//! *arc-smaller*. Pass `--with-voecking` to append Vöcking's
//! split-interval always-go-left scheme (§2 remark 4), which the paper
//! says *arc-smaller* slightly beats, and `--json PATH` to persist the
//! run (committed expectations: `results/table3.json`, rendered in
//! `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin table3 [--full] [--with-voecking] [--json PATH]
//! ```

use geo2c_bench::{banner, experiments, Cli};
use geo2c_report::markdown::render_text_pivot;

fn main() {
    let cli = Cli::parse(200, (8, 16), 24);
    banner(
        "Table 3: maximum load by tie-breaking strategy, random arcs, d = 2 (m = n)",
        &cli,
    );

    let result = experiments::table3(
        &cli.sweep_sizes(),
        &cli.sweep_config(),
        cli.has_flag("--with-voecking"),
    );
    println!("{}", render_text_pivot(&result, "n", "tie_break"));
    cli.write_results(std::slice::from_ref(&result));
}
