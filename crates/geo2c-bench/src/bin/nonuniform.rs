//! Experiment E15: how much non-uniformity can two choices stand?
//!
//! The paper's conclusion poses exactly this question ("it is interesting
//! to ask how much non-uniformity among bins the two-choice paradigm can
//! stand"), and footnote 2 anticipates the probe-side variant (bank
//! customers are not uniform). Two stress axes, both on the ring:
//!
//! 1. **Clustered servers** — servers squeezed into a fraction `w` of the
//!    circle with probability `q`, probes uniform: the few servers outside
//!    the cluster own huge arcs.
//! 2. **Clustered probes** — servers uniform, probes drawn from a
//!    uniform+cluster mixture: the servers under the cluster are hit far
//!    more often than their arc lengths suggest. Region-size tie-breaking
//!    uses the *exact probe mass* of each arc.
//!
//! Each axis is one declared experiment; `--json PATH` persists both in
//! a single `ResultSet`.
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin nonuniform [--trials T] [--json PATH]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_core::experiment::{sweep_max_load, SweepConfig};
use geo2c_core::nonuniform::{ClusteredRingModel, MixRingSpace, RingMix};
use geo2c_core::space::RingSpace;
use geo2c_core::strategy::{Strategy, TieBreak};
use geo2c_report::markdown::render_text;
use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json};
use geo2c_ring::{Ownership, RingPartition};

const QS: [f64; 4] = [0.0, 0.5, 0.9, 0.99];

fn spec(id: &str, title: &str, n: usize, w: f64, config: &SweepConfig) -> ExperimentSpec {
    ExperimentSpec::new(id, title)
        .paper_ref("conclusion / footnote 2")
        .trials(config.trials)
        .seed(config.seed)
        .param("n", Json::from_usize(n))
        .param("m", Json::str("n"))
        .param("cluster_width", Json::num(w))
        .param("q", Json::Arr(QS.iter().map(|&q| Json::num(q)).collect()))
}

/// Runs one axis: `factory(q)` builds the per-`q` space factory.
fn run_axis<S, F, G>(
    result: &mut ExperimentResult,
    label_prefix: &str,
    n: usize,
    config: &SweepConfig,
    make_factory: G,
) where
    S: geo2c_core::space::Space,
    F: Fn(&mut geo2c_util::rng::Xoshiro256pp) -> S + Sync,
    G: Fn(f64) -> F,
{
    for &q in &QS {
        let factory = make_factory(q);
        let one = sweep_max_load(
            &factory,
            Strategy::one_choice(),
            n,
            n,
            &format!("{label_prefix}/q{q}/d1"),
            config,
        );
        let two = sweep_max_load(
            &factory,
            Strategy::two_choice(),
            n,
            n,
            &format!("{label_prefix}/q{q}/d2"),
            config,
        );
        let smaller = sweep_max_load(
            &factory,
            Strategy::with_tie_break(2, TieBreak::SmallerRegion),
            n,
            n,
            &format!("{label_prefix}/q{q}/d2s"),
            config,
        );
        result.push(
            Cell::new()
                .coord("q", Json::num(q))
                .metric("mean_d1", Json::num(one.stats.mean()))
                .metric("mean_d2", Json::num(two.stats.mean()))
                .metric("mean_d2_smaller", Json::num(smaller.stats.mean()))
                .dist(two.distribution),
        );
        eprintln!("--- {label_prefix}: q = {q} done ---");
    }
}

fn main() {
    let cli = Cli::parse(100, (12, 12), 16);
    banner(
        "E15: non-uniform servers / probes on the ring (m = n)",
        &cli,
    );
    let config = cli.sweep_config();
    let n = 1usize << cli.max_exp;
    let w = 0.1;

    // ---- Axis 1: clustered servers, uniform probes ----------------------
    let mut servers = ExperimentResult::new(spec(
        "nonuniform_servers",
        "E15a: clustered servers, uniform probes (ring)",
        n,
        w,
        &config,
    ));
    run_axis(&mut servers, "nonuniform/server", n, &config, |q| {
        move |rng: &mut geo2c_util::rng::Xoshiro256pp| {
            RingSpace::with_ownership(
                ClusteredRingModel::new(q, 0.0, w).build_partition(n, rng),
                Ownership::Successor,
            )
        }
    });

    // ---- Axis 2: uniform servers, clustered probes ----------------------
    let mut probes = ExperimentResult::new(spec(
        "nonuniform_probes",
        "E15b: uniform servers, clustered probes (ring)",
        n,
        w,
        &config,
    ));
    run_axis(&mut probes, "nonuniform/probe", n, &config, |q| {
        move |rng: &mut geo2c_util::rng::Xoshiro256pp| {
            MixRingSpace::new(RingPartition::random(n, rng), RingMix::new(q, 0.0, w))
        }
    });

    println!("{}", render_text(&servers));
    println!("{}", render_text(&probes));
    cli.write_results(&[servers, probes]);

    println!(
        "n = {}. q = 0 is Theorem 1's setting. Clustered servers leave 90% of",
        pow2_label(n)
    );
    println!("the circle to a vanishing server fraction, so even d = 2 grows —");
    println!("but it keeps a constant-factor edge over d = 1 throughout.");
    println!("Clustered probes concentrate ~q of the balls on ~w·n servers, so");
    println!("the max load floor is q/w × average: two choices track that floor");
    println!("while d = 1 overshoots it (footnote 2's claim).");
}
