//! Experiment E15: how much non-uniformity can two choices stand?
//!
//! The paper's conclusion poses exactly this question ("it is interesting
//! to ask how much non-uniformity among bins the two-choice paradigm can
//! stand"), and footnote 2 anticipates the probe-side variant (bank
//! customers are not uniform). Two stress axes, both on the ring:
//!
//! 1. **Clustered servers** — servers squeezed into a fraction `w` of the
//!    circle with probability `q`, probes uniform: the few servers outside
//!    the cluster own huge arcs.
//! 2. **Clustered probes** — servers uniform, probes drawn from a
//!    uniform+cluster mixture: the servers under the cluster are hit far
//!    more often than their arc lengths suggest. Region-size tie-breaking
//!    uses the *exact probe mass* of each arc.
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin nonuniform [--trials T]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_core::experiment::sweep_max_load;
use geo2c_core::nonuniform::{ClusteredRingModel, MixRingSpace, RingMix};
use geo2c_core::space::RingSpace;
use geo2c_core::strategy::{Strategy, TieBreak};
use geo2c_ring::{Ownership, RingPartition};
use geo2c_util::hist::Counter;
use geo2c_util::rng::Xoshiro256pp;
use geo2c_util::table::TextTable;

/// Wide distributions are summarized as a range to keep rows readable.
fn dist_text(dist: &Counter) -> String {
    if dist.iter().count() <= 8 {
        dist.paper_style()
    } else {
        format!(
            "{}..{} (mode {})",
            dist.min().unwrap_or(0),
            dist.max().unwrap_or(0),
            dist.mode().unwrap_or(0)
        )
    }
}

fn main() {
    let cli = Cli::parse(100, (12, 12), 16);
    banner(
        "E15: non-uniform servers / probes on the ring (m = n)",
        &cli,
    );
    let config = cli.sweep_config();
    let n = 1usize << cli.max_exp;
    let w = 0.1;

    // ---- Axis 1: clustered servers, uniform probes ----------------------
    println!("clustered SERVERS (cluster width {w}), uniform probes:");
    let mut t = TextTable::new([
        "cluster q",
        "d=1 mean",
        "d=2 mean",
        "d=2 smaller-arc mean",
        "d=2 distribution",
    ]);
    for &q in &[0.0, 0.5, 0.9, 0.99] {
        let factory = move |rng: &mut Xoshiro256pp| {
            RingSpace::with_ownership(
                ClusteredRingModel::new(q, 0.0, w).build_partition(n, rng),
                Ownership::Successor,
            )
        };
        let one = sweep_max_load(
            factory,
            Strategy::one_choice(),
            n,
            n,
            &format!("nonuniform/server/q{q}/d1"),
            &config,
        );
        let two = sweep_max_load(
            factory,
            Strategy::two_choice(),
            n,
            n,
            &format!("nonuniform/server/q{q}/d2"),
            &config,
        );
        let smaller = sweep_max_load(
            factory,
            Strategy::with_tie_break(2, TieBreak::SmallerRegion),
            n,
            n,
            &format!("nonuniform/server/q{q}/d2s"),
            &config,
        );
        t.push_row([
            format!("{q:.2}"),
            format!("{:.2}", one.stats.mean()),
            format!("{:.2}", two.stats.mean()),
            format!("{:.2}", smaller.stats.mean()),
            dist_text(&two.distribution),
        ]);
        println!("--- servers q = {q} done ---");
    }
    println!("{t}");

    // ---- Axis 2: uniform servers, clustered probes ----------------------
    println!("uniform servers, clustered PROBES (cluster width {w}):");
    let mut t = TextTable::new([
        "probe q",
        "d=1 mean",
        "d=2 mean",
        "d=2 smaller-mass mean",
        "d=2 distribution",
    ]);
    for &q in &[0.0, 0.5, 0.9, 0.99] {
        let factory = move |rng: &mut Xoshiro256pp| {
            MixRingSpace::new(RingPartition::random(n, rng), RingMix::new(q, 0.0, w))
        };
        let one = sweep_max_load(
            factory,
            Strategy::one_choice(),
            n,
            n,
            &format!("nonuniform/probe/q{q}/d1"),
            &config,
        );
        let two = sweep_max_load(
            factory,
            Strategy::two_choice(),
            n,
            n,
            &format!("nonuniform/probe/q{q}/d2"),
            &config,
        );
        let smaller = sweep_max_load(
            factory,
            Strategy::with_tie_break(2, TieBreak::SmallerRegion),
            n,
            n,
            &format!("nonuniform/probe/q{q}/d2s"),
            &config,
        );
        t.push_row([
            format!("{q:.2}"),
            format!("{:.2}", one.stats.mean()),
            format!("{:.2}", two.stats.mean()),
            format!("{:.2}", smaller.stats.mean()),
            dist_text(&two.distribution),
        ]);
        println!("--- probes q = {q} done ---");
    }
    println!("{t}");

    println!(
        "n = {}. q = 0 is Theorem 1's setting. Clustered servers leave 90% of",
        pow2_label(n)
    );
    println!("the circle to a vanishing server fraction, so even d = 2 grows —");
    println!("but it keeps a constant-factor edge over d = 1 throughout.");
    println!("Clustered probes concentrate ~q of the balls on ~w·n servers, so");
    println!("the max load floor is q/w × average: two choices track that floor");
    println!("while d = 1 overshoots it (footnote 2's claim).");
}
