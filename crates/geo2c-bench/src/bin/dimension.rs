//! Experiment E13: the higher-dimension generalization (§3, footnote 3).
//!
//! The paper proves Theorem 1 for the ring and the 2-D torus and remarks
//! that the argument (via the sector construction of Lemma 8) extends to
//! any constant dimension. This binary runs the allocation process on the
//! `K`-torus for `K = 1, 2, 3, 4` at fixed `n` and reports the max-load
//! distribution: the `d ≥ 2` columns should be essentially flat in `K`.
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin dimension [--trials T]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_core::experiment::{sweep_max_load, SweepConfig};
use geo2c_core::space::KdTorusSpace;
use geo2c_core::strategy::Strategy;
use geo2c_util::rng::Xoshiro256pp;
use geo2c_util::table::TextTable;

fn cell_text<const K: usize>(n: usize, d: usize, config: &SweepConfig) -> (String, f64) {
    let label = format!("dim{K}/n{n}/d{d}");
    let cell = sweep_max_load(
        move |rng: &mut Xoshiro256pp| KdTorusSpace::<K>::random(n, rng),
        Strategy::d_choice(d),
        n,
        n,
        &label,
        config,
    );
    (cell.distribution.paper_style(), cell.stats.mean())
}

fn main() {
    let cli = Cli::parse(50, (12, 12), 14);
    banner("E13: max load on the K-torus (m = n), by dimension", &cli);
    let config = cli.sweep_config();
    let n = 1usize << cli.max_exp;

    let mut t = TextTable::new(["K", "d=1 mean", "d=2 mean", "d=2 distribution"]);
    macro_rules! row {
        ($k:literal) => {{
            let (_, m1) = cell_text::<$k>(n, 1, &config);
            let (dist2, m2) = cell_text::<$k>(n, 2, &config);
            t.push_row([
                $k.to_string(),
                format!("{m1:.2}"),
                format!("{m2:.2}"),
                dist2,
            ]);
            println!("--- K = {} done ---", $k);
        }};
    }
    row!(1);
    row!(2);
    row!(3);
    row!(4);
    println!("{t}");
    println!(
        "n = {}. Expect the d=2 column flat across K: the two-choices bound",
        pow2_label(n)
    );
    println!("log log n / log d + O(1) is dimension-free (only the region-size");
    println!("tail constants change with K).");
}
