//! Experiment E13: the higher-dimension generalization (§3, footnote 3).
//!
//! The paper proves Theorem 1 for the ring and the 2-D torus and remarks
//! that the argument (via the sector construction of Lemma 8) extends to
//! any constant dimension. This binary sweeps the number of choices
//! `d ∈ {1} ∪ {2..8}` on the `K`-torus for `K ∈ {3, 4}` at fixed `n`
//! (the ROADMAP's "`d > 2` sweeps" item): the rows chart the diminishing
//! returns of extra choices, and each `d ≥ 2` row should be essentially
//! flat across `K` because the `log log n / log d` bound is
//! dimension-free. Pass `--json PATH` to persist the run (committed
//! expectations: `results/dimension.json`, rendered in `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin dimension [--trials T] [--json PATH]
//! ```

use geo2c_bench::experiments;
use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_report::markdown::render_text_pivot;

fn main() {
    let cli = Cli::parse(50, (12, 12), 14);
    banner(
        "E13: max load on the K-torus (m = n), d = 1..8, K = 3, 4",
        &cli,
    );
    let n = 1usize << cli.max_exp;

    let result = experiments::dimension(n, &cli.sweep_config());
    println!("{}", render_text_pivot(&result, "d", "K"));
    cli.write_results(std::slice::from_ref(&result));

    println!(
        "n = {}. Expect each d >= 2 row flat across K: the two-choices bound",
        pow2_label(n)
    );
    println!("log log n / log d + O(1) is dimension-free (only the region-size");
    println!("tail constants change with K), and successive d rows show the");
    println!("paper's diminishing returns.");
}
