//! Validates the paper's probabilistic lemmas empirically:
//!
//! * **Lemma 4 / 5 (E5)** — tail of the number of arcs of length ≥ `c/n`:
//!   observed violation rate of `N_c ≥ 2n e^{−c}` versus the analytic
//!   bounds `e^{−n e^{−c}/3}` (negative dependence) and `e^{−n e^{−2c}/8}`
//!   (martingale).
//! * **Lemma 6 (E6)** — sum of the `a` longest arcs versus
//!   `2(a/n) ln(n/a)`; plus the single longest arc versus `4 ln n / n`.
//! * **Lemma 8 (E4)** — every Voronoi cell of area ≥ `c/n` must have an
//!   empty sector (violation count must be exactly 0).
//! * **Lemma 9 (E7)** — tail of the number of Voronoi cells of area
//!   ≥ `c/n` versus the `12 n e^{−c/6}` threshold, and the sector count
//!   `Z` versus its expectation `6n(1 − c/6n)^{n−1}`.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin lemmas [--trials T] [--seed S]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_ring::tail;
use geo2c_torus::sector;
use geo2c_util::rng::StreamSeeder;
use geo2c_util::table::TextTable;

fn main() {
    let cli = Cli::parse(200, (14, 14), 16);
    banner(
        "Lemma validations (arcs: Lemmas 4-6; Voronoi: Lemmas 8-9)",
        &cli,
    );
    let seeder = StreamSeeder::new(cli.seed);

    // ---- Lemmas 4/5: long-arc count tails --------------------------------
    let n_ring = 1usize << cli.max_exp;
    let cs = [2.0, 3.0, 4.0, 6.0, 8.0, 10.0];
    println!(
        "Lemma 4/5: #arcs with length >= c/n, ring n = {} ({} trials)",
        pow2_label(n_ring),
        cli.trials
    );
    let rows = tail::long_arc_tail_experiment(
        n_ring,
        &cs,
        cli.trials,
        &seeder.child("lemma4"),
        cli.threads,
    );
    let mut t = TextTable::new([
        "c",
        "E[N_c]",
        "mean N_c",
        "max N_c",
        "threshold 2ne^-c",
        "P(viol) obs",
        "L4 bound",
        "L5 bound",
    ]);
    for r in &rows {
        t.push_row([
            format!("{:.0}", r.c),
            format!("{:.1}", r.expected),
            format!("{:.1}", r.mean_count),
            format!("{:.0}", r.max_count),
            format!("{:.1}", r.threshold),
            format!("{:.4}", r.violation_rate),
            format!("{:.2e}", r.lemma4_bound),
            format!("{:.2e}", r.lemma5_bound),
        ]);
    }
    println!("{t}");

    // ---- Lemma 6: sum of the a longest arcs ------------------------------
    let lnn = (n_ring as f64).ln();
    let a_floor = (lnn * lnn) as usize;
    let mut sizes = vec![
        1usize,
        a_floor.max(2),
        (2 * a_floor).max(4),
        n_ring / 256,
        n_ring / 64,
    ];
    sizes.sort_unstable();
    sizes.dedup();
    // The a = 1 row uses the 4 ln n / n single-arc bound; keep it first.
    let sizes = sizes;
    println!(
        "Lemma 6: sum of the a longest arcs vs 2(a/n)ln(n/a)  (a=1 row: longest arc vs 4 ln n/n)"
    );
    let rows = tail::longest_arcs_experiment(
        n_ring,
        &sizes,
        cli.trials,
        &seeder.child("lemma6"),
        cli.threads,
    );
    let mut t = TextTable::new([
        "a",
        "bound",
        "exact E[sum]",
        "mean sum",
        "max sum",
        "P(viol) obs",
    ]);
    for r in &rows {
        // Exact expectation from the Rényi spacings representation — shows
        // how much slack the paper's bound carries (≈ 2x).
        let exact = geo2c_ring::spacings::expected_top_a_sum(n_ring, r.a);
        t.push_row([
            r.a.to_string(),
            format!("{:.5}", r.bound),
            format!("{:.5}", exact),
            format!("{:.5}", r.mean_sum),
            format!("{:.5}", r.max_sum),
            format!("{:.4}", r.violation_rate),
        ]);
    }
    println!("{t}");

    // ---- Lemma 3: negative dependence of long-arc indicators -------------
    let n_nd = 1usize << cli.max_exp.min(10);
    let nd_trials = (cli.trials * 10).max(1000);
    println!(
        "Lemma 3: negative dependence E[Z_1..Z_k] <= E[Z]^k, ring n = {} ({} trials)",
        pow2_label(n_nd),
        nd_trials
    );
    let rows = geo2c_ring::negdep::negative_dependence_experiment(
        n_nd,
        &[1.0, 2.0, 3.0],
        &[2, 3],
        nd_trials,
        &seeder.child("lemma3"),
        cli.threads,
    );
    let mut t = TextTable::new(["c", "k", "E[Z]^k", "joint obs", "ratio (<=1)", "samples"]);
    for r in &rows {
        t.push_row([
            format!("{:.0}", r.c),
            r.k.to_string(),
            format!("{:.5}", r.product_of_marginals),
            format!("{:.5}", r.joint),
            format!("{:.3}", r.ratio),
            r.samples.to_string(),
        ]);
    }
    println!("{t}");

    // ---- Lemmas 8/9: Voronoi cell-area tails -----------------------------
    // The formal Lemma 9 range is 12 ≤ c ≤ ln n, but the empirical tail is
    // already deep in zeros there; include small c so the observed counts
    // are non-trivial, and the formal endpoints for the bound check.
    let n_torus = 1usize << cli.max_exp.min(12);
    let torus_trials = cli.trials.min(100);
    let cs9 = [2.0, 3.0, 4.0, 6.0, 12.0, (n_torus as f64).ln()];
    println!(
        "Lemma 8/9: #Voronoi cells with area >= c/n, torus n = {} ({} trials)",
        pow2_label(n_torus),
        torus_trials
    );
    let rows = sector::voronoi_tail_experiment(
        n_torus,
        &cs9,
        torus_trials,
        &seeder.child("lemma9"),
        cli.threads,
    );
    let mut t = TextTable::new([
        "c",
        "E[Z]",
        "mean Z",
        "mean #large",
        "threshold 12ne^-c/6",
        "P(viol) obs",
        "Lemma8 violations",
    ]);
    for r in &rows {
        t.push_row([
            format!("{:.1}", r.c),
            format!("{:.1}", r.expected_z),
            format!("{:.1}", r.mean_z),
            format!("{:.1}", r.mean_large_cells),
            format!("{:.1}", r.threshold),
            format!("{:.4}", r.violation_rate),
            r.lemma8_violations.to_string(),
        ]);
    }
    println!("{t}");
    let total_l8: u64 = rows.iter().map(|r| r.lemma8_violations).sum();
    println!(
        "Lemma 8 status: {}",
        if total_l8 == 0 {
            "HOLDS (0 violations)"
        } else {
            "VIOLATED — investigate"
        }
    );
}
