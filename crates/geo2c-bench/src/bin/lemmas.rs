//! Validates the paper's probabilistic lemmas empirically:
//!
//! * **Lemma 4 / 5 (E5)** — tail of the number of arcs of length ≥ `c/n`:
//!   observed violation rate of `N_c ≥ 2n e^{−c}` versus the analytic
//!   bounds `e^{−n e^{−c}/3}` (negative dependence) and `e^{−n e^{−2c}/8}`
//!   (martingale).
//! * **Lemma 6 (E6)** — sum of the `a` longest arcs versus
//!   `2(a/n) ln(n/a)`; plus the single longest arc versus `4 ln n / n`.
//! * **Lemma 3** — negative dependence of the long-arc indicators.
//! * **Lemma 8 (E4)** — every Voronoi cell of area ≥ `c/n` must have an
//!   empty sector (violation count must be exactly 0).
//! * **Lemma 9 (E7)** — tail of the number of Voronoi cells of area
//!   ≥ `c/n` versus the `12 n e^{−c/6}` threshold, and the sector count
//!   `Z` versus its expectation `6n(1 − c/6n)^{n−1}`.
//!
//! Each lemma is one declared experiment; `--json PATH` persists all of
//! them in a single `ResultSet`.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin lemmas [--trials T] [--seed S] [--json PATH]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_report::markdown::render_text;
use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json};
use geo2c_ring::tail;
use geo2c_torus::sector;
use geo2c_util::rng::StreamSeeder;

fn main() {
    let cli = Cli::parse(200, (14, 14), 16);
    banner(
        "Lemma validations (arcs: Lemmas 3-6; Voronoi: Lemmas 8-9)",
        &cli,
    );
    let seeder = StreamSeeder::new(cli.seed);
    let mut results: Vec<ExperimentResult> = Vec::new();

    // ---- Lemmas 4/5: long-arc count tails --------------------------------
    let n_ring = 1usize << cli.max_exp;
    let cs = [2.0, 3.0, 4.0, 6.0, 8.0, 10.0];
    let rows = tail::long_arc_tail_experiment(
        n_ring,
        &cs,
        cli.trials,
        &seeder.child("lemma4"),
        cli.threads,
    );
    let spec = ExperimentSpec::new("lemma4_5", "Lemmas 4/5: long-arc count tail on the ring")
        .paper_ref("Lemmas 4 and 5")
        .trials(cli.trials)
        .seed(cli.seed)
        .param("n", Json::from_usize(n_ring))
        .param("threshold", Json::str("N_c >= 2 n e^-c"));
    let mut result = ExperimentResult::new(spec);
    for r in &rows {
        result.push(
            Cell::new()
                .coord("c", Json::num(r.c))
                .metric("expected_count", Json::num(r.expected))
                .metric("mean_count", Json::num(r.mean_count))
                .metric("max_count", Json::num(r.max_count))
                .metric("threshold", Json::num(r.threshold))
                .metric("violation_rate", Json::num(r.violation_rate))
                .metric("lemma4_bound", Json::num(r.lemma4_bound))
                .metric("lemma5_bound", Json::num(r.lemma5_bound)),
        );
    }
    results.push(result);

    // ---- Lemma 6: sum of the a longest arcs ------------------------------
    let lnn = (n_ring as f64).ln();
    let a_floor = (lnn * lnn) as usize;
    let mut sizes = vec![
        1usize,
        a_floor.max(2),
        (2 * a_floor).max(4),
        n_ring / 256,
        n_ring / 64,
    ];
    sizes.sort_unstable();
    sizes.dedup();
    // The a = 1 row uses the 4 ln n / n single-arc bound; keep it first.
    let rows = tail::longest_arcs_experiment(
        n_ring,
        &sizes,
        cli.trials,
        &seeder.child("lemma6"),
        cli.threads,
    );
    let spec = ExperimentSpec::new("lemma6", "Lemma 6: sum of the a longest arcs")
        .paper_ref("Lemma 6")
        .trials(cli.trials)
        .seed(cli.seed)
        .param("n", Json::from_usize(n_ring))
        .param("bound", Json::str("2 (a/n) ln(n/a); a = 1 row: 4 ln n / n"));
    let mut result = ExperimentResult::new(spec);
    for r in &rows {
        // Exact expectation from the Rényi spacings representation — shows
        // how much slack the paper's bound carries (≈ 2x).
        let exact = geo2c_ring::spacings::expected_top_a_sum(n_ring, r.a);
        result.push(
            Cell::new()
                .coord("a", Json::from_usize(r.a))
                .metric("bound", Json::num(r.bound))
                .metric("exact_expected_sum", Json::num(exact))
                .metric("mean_sum", Json::num(r.mean_sum))
                .metric("max_sum", Json::num(r.max_sum))
                .metric("violation_rate", Json::num(r.violation_rate)),
        );
    }
    results.push(result);

    // ---- Lemma 3: negative dependence of long-arc indicators -------------
    let n_nd = 1usize << cli.max_exp.min(10);
    let nd_trials = (cli.trials * 10).max(1000);
    let rows = geo2c_ring::negdep::negative_dependence_experiment(
        n_nd,
        &[1.0, 2.0, 3.0],
        &[2, 3],
        nd_trials,
        &seeder.child("lemma3"),
        cli.threads,
    );
    let spec = ExperimentSpec::new(
        "lemma3",
        "Lemma 3: negative dependence of long-arc indicators",
    )
    .paper_ref("Lemma 3")
    .trials(nd_trials)
    .seed(cli.seed)
    .param("n", Json::from_usize(n_nd))
    .param("claim", Json::str("E[Z_1..Z_k] <= E[Z]^k"));
    let mut result = ExperimentResult::new(spec);
    for r in &rows {
        result.push(
            Cell::new()
                .coord("c", Json::num(r.c))
                .coord("k", Json::from_usize(r.k))
                .metric("marginal_product", Json::num(r.product_of_marginals))
                .metric("joint_observed", Json::num(r.joint))
                .metric("ratio", Json::num(r.ratio))
                .metric("samples", Json::from_u64(r.samples)),
        );
    }
    results.push(result);

    // ---- Lemmas 8/9: Voronoi cell-area tails -----------------------------
    // The formal Lemma 9 range is 12 ≤ c ≤ ln n, but the empirical tail is
    // already deep in zeros there; include small c so the observed counts
    // are non-trivial, and the formal endpoints for the bound check.
    let n_torus = 1usize << cli.max_exp.min(12);
    let torus_trials = cli.trials.min(100);
    let cs9 = [2.0, 3.0, 4.0, 6.0, 12.0, (n_torus as f64).ln()];
    let rows = sector::voronoi_tail_experiment(
        n_torus,
        &cs9,
        torus_trials,
        &seeder.child("lemma9"),
        cli.threads,
    );
    let spec = ExperimentSpec::new(
        "lemma8_9",
        "Lemmas 8/9: Voronoi cell-area tail on the torus",
    )
    .paper_ref("Lemmas 8 and 9")
    .trials(torus_trials)
    .seed(cli.seed)
    .param("n", Json::from_usize(n_torus))
    .param(
        "threshold",
        Json::str("#cells(area >= c/n) vs 12 n e^{-c/6}"),
    );
    let mut result = ExperimentResult::new(spec);
    for r in &rows {
        result.push(
            Cell::new()
                .coord("c", Json::num(r.c))
                .metric("expected_z", Json::num(r.expected_z))
                .metric("mean_z", Json::num(r.mean_z))
                .metric("mean_large_cells", Json::num(r.mean_large_cells))
                .metric("threshold", Json::num(r.threshold))
                .metric("violation_rate", Json::num(r.violation_rate))
                .metric("lemma8_violations", Json::from_u64(r.lemma8_violations)),
        );
    }
    let total_l8: u64 = rows.iter().map(|r| r.lemma8_violations).sum();
    results.push(result);

    for result in &results {
        let n = result
            .spec
            .params
            .iter()
            .find(|(k, _)| k == "n")
            .and_then(|(_, v)| v.as_usize())
            .unwrap_or(0);
        println!("{}(n = {})\n", render_text(result), pow2_label(n));
    }
    cli.write_results(&results);
    println!(
        "Lemma 8 status: {}",
        if total_l8 == 0 {
            "HOLDS (0 violations)"
        } else {
            "VIOLATED — investigate"
        }
    );
}
