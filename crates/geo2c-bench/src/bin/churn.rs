//! Experiment E16: churn — what failures do to each placement scheme.
//!
//! Fails a fraction of the physical nodes, re-places orphaned items under
//! the same policy, and reports (a) the fraction of items that moved
//! (consistent hashing's minimal-disruption guarantee) and (b) the
//! post-churn maximum load (where two-choice re-placement shines, because
//! plain consistent hashing dumps each departed node's items onto its
//! successor). This is the executable version of the paper's closing
//! remark about maintaining reliability.
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin churn [--trials T] [--max-exp K]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_dht::churn::churn_experiment;
use geo2c_dht::placement::PlacementPolicy;
use geo2c_util::parallel::parallel_map;
use geo2c_util::rng::StreamSeeder;
use geo2c_util::stats::RunningStats;
use geo2c_util::table::TextTable;

fn main() {
    let cli = Cli::parse(20, (10, 10), 12);
    banner(
        "E16: node failures and re-placement (items = 16 x nodes)",
        &cli,
    );
    let n = 1usize << cli.max_exp;
    let m = (16 * n) as u64;
    let seeder = StreamSeeder::new(cli.seed).child("churn");

    let mut t = TextTable::new([
        "scheme",
        "fail %",
        "max before",
        "max after",
        "moved items %",
    ]);
    for (name, policy, v) in [
        ("consistent", PlacementPolicy::Consistent, 1usize),
        (
            "virtual(log n)",
            PlacementPolicy::Consistent,
            (n as f64).log2().ceil() as usize,
        ),
        ("2-choice", PlacementPolicy::DChoice { d: 2 }, 1),
    ] {
        for &fail in &[0.1f64, 0.3, 0.5] {
            let rows: Vec<(f64, f64, f64)> = parallel_map(cli.trials, cli.threads, |trial| {
                let mut rng = seeder.child(&format!("{name}/{fail}")).stream(trial as u64);
                let report = churn_experiment(n, v, policy, m, fail, &mut rng);
                (
                    f64::from(report.max_before),
                    f64::from(report.max_after),
                    report.moved_items as f64 / m as f64,
                )
            });
            let mut before = RunningStats::new();
            let mut after = RunningStats::new();
            let mut moved = RunningStats::new();
            for (b, a, mv) in rows {
                before.push(b);
                after.push(a);
                moved.push(mv);
            }
            t.push_row([
                name.to_string(),
                format!("{:.0}", fail * 100.0),
                format!("{:.1}", before.mean()),
                format!("{:.1}", after.mean()),
                format!("{:.1}", 100.0 * moved.mean()),
            ]);
        }
        println!("--- {name} done ---");
    }
    println!("{t}");
    println!(
        "n = {} nodes, m = {m} items. Every scheme moves ~fail%% of the items",
        pow2_label(n)
    );
    println!("(minimal disruption); the schemes differ in post-churn balance.");
}
