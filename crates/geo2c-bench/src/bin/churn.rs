//! Experiment E16: churn — what failures do to each placement scheme.
//!
//! Fails a fraction of the physical nodes, re-places orphaned items under
//! the same policy, and reports (a) the fraction of items that moved
//! (consistent hashing's minimal-disruption guarantee) and (b) the
//! post-churn maximum load (where two-choice re-placement shines, because
//! plain consistent hashing dumps each departed node's items onto its
//! successor). This is the executable version of the paper's closing
//! remark about maintaining reliability.
//!
//! The computation lives in [`geo2c_bench::experiments::churn`], which is
//! also a member of the gated `run_tables` suite (committed expectations
//! under `results/churn.json`); this binary is the ad-hoc CLI front end
//! for other sizes and seeds.
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin churn [--trials T] [--max-exp K] [--json PATH]
//! ```

use geo2c_bench::{banner, experiments, pow2_label, Cli};
use geo2c_core::experiment::SweepConfig;
use geo2c_report::markdown::render_text;

fn main() {
    let cli = Cli::parse(20, (10, 10), 12);
    banner(
        "E16: node failures and re-placement (items = 16 x nodes)",
        &cli,
    );
    let n = 1usize << cli.max_exp;
    let config = SweepConfig {
        trials: cli.trials,
        threads: cli.threads,
        seed: cli.seed,
    };
    let result = experiments::churn(n, &config);
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!(
        "n = {} nodes, m = {} items. Every scheme moves ~fail% of the items",
        pow2_label(n),
        16 * n
    );
    println!("(minimal disruption); the schemes differ in post-churn balance.");
}
