//! Experiment E16: churn — what failures do to each placement scheme.
//!
//! Fails a fraction of the physical nodes, re-places orphaned items under
//! the same policy, and reports (a) the fraction of items that moved
//! (consistent hashing's minimal-disruption guarantee) and (b) the
//! post-churn maximum load (where two-choice re-placement shines, because
//! plain consistent hashing dumps each departed node's items onto its
//! successor). This is the executable version of the paper's closing
//! remark about maintaining reliability.
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin churn [--trials T] [--max-exp K] [--json PATH]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_dht::churn::churn_experiment;
use geo2c_dht::placement::PlacementPolicy;
use geo2c_report::markdown::render_text;
use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json};
use geo2c_util::parallel::parallel_map;
use geo2c_util::rng::StreamSeeder;
use geo2c_util::stats::RunningStats;

fn main() {
    let cli = Cli::parse(20, (10, 10), 12);
    banner(
        "E16: node failures and re-placement (items = 16 x nodes)",
        &cli,
    );
    let n = 1usize << cli.max_exp;
    let m = (16 * n) as u64;
    let seeder = StreamSeeder::new(cli.seed).child("churn");

    let spec = ExperimentSpec::new("churn", "E16: node failures and re-placement")
        .paper_ref("conclusion (reliability)")
        .trials(cli.trials)
        .seed(cli.seed)
        .param("nodes", Json::from_usize(n))
        .param("items", Json::from_u64(m));
    let mut result = ExperimentResult::new(spec);

    for (name, policy, v) in [
        ("consistent", PlacementPolicy::Consistent, 1usize),
        (
            "virtual(log n)",
            PlacementPolicy::Consistent,
            (n as f64).log2().ceil() as usize,
        ),
        ("2-choice", PlacementPolicy::DChoice { d: 2 }, 1),
    ] {
        for &fail in &[0.1f64, 0.3, 0.5] {
            let rows: Vec<(f64, f64, f64)> = parallel_map(cli.trials, cli.threads, |trial| {
                let mut rng = seeder.child(&format!("{name}/{fail}")).stream(trial as u64);
                let report = churn_experiment(n, v, policy, m, fail, &mut rng);
                (
                    f64::from(report.max_before),
                    f64::from(report.max_after),
                    report.moved_items as f64 / m as f64,
                )
            });
            let mut before = RunningStats::new();
            let mut after = RunningStats::new();
            let mut moved = RunningStats::new();
            for (b, a, mv) in rows {
                before.push(b);
                after.push(a);
                moved.push(mv);
            }
            result.push(
                Cell::new()
                    .coord("scheme", Json::str(name))
                    .coord("fail_pct", Json::num(fail * 100.0))
                    .metric("max_before", Json::num(before.mean()))
                    .metric("max_after", Json::num(after.mean()))
                    .metric("moved_pct", Json::num(100.0 * moved.mean())),
            );
        }
        eprintln!("--- {name} done ---");
    }
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!(
        "n = {} nodes, m = {m} items. Every scheme moves ~fail% of the items",
        pow2_label(n)
    );
    println!("(minimal disruption); the schemes differ in post-churn balance.");
}
