//! Experiment E8: streaming-scale load-state backings.
//!
//! Runs `m = n` random-tie insertions on uniform bins for every
//! [`geo2c_core::load::LoadState`] backing (flat `u32`, packed nibble,
//! packed byte, sharded byte) × d ∈ {1, 2} and reports the mean maximum
//! load, the end-state bytes/bin, and the wall-clock balls/sec. The
//! headline checks: every backing's max loads are *identical* to the
//! flat reference (asserted inside the experiment — the backings replay
//! the same RNG streams), and the packed backings stay at or under
//! 1.25 bytes/bin where the flat vector spends 4.
//!
//! The computation lives in [`geo2c_bench::experiments::scaling`], which
//! is also a member of the gated `run_tables` suite (committed
//! expectations under `results/scaling.json`); this binary is the ad-hoc
//! CLI front end for other sizes and seeds.
//!
//! ```text
//! cargo run --release -p geo2c-bench --bin scaling [--trials T] [--max-exp K] [--json PATH]
//! ```

use geo2c_bench::{banner, experiments, pow2_label, Cli};
use geo2c_core::experiment::SweepConfig;
use geo2c_report::markdown::render_text;

fn main() {
    let cli = Cli::parse(3, (20, 20), 26);
    banner("E8: load-state backings at streaming scale (m = n)", &cli);
    let n = 1usize << cli.max_exp;
    let config = SweepConfig {
        trials: cli.trials,
        threads: cli.threads,
        seed: cli.seed,
    };
    let result = experiments::scaling(n, &config);
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!(
        "n = {} bins, m = n balls per trial. Every backing places identically",
        pow2_label(n)
    );
    println!("(asserted); the backings differ only in bytes/bin and balls/sec.");
}
