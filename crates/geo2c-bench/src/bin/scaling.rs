//! Experiment E8: the Theorem 1 scaling claim.
//!
//! Sweeps `n` and reports the mean maximum load for `d = 1` (growing like
//! `ln n / ln ln n`) against `d = 2, 4` (pinned to
//! `log log n / log d + O(1)`), on all three spaces. The headline check:
//! the `d ≥ 2` columns are flat (doubly-logarithmic) and the geometric
//! spaces track the uniform baseline within an additive constant.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin scaling [--max-exp K]
//! ```

use geo2c_bench::{banner, pow2_label, Cli};
use geo2c_core::experiment::sweep_kind;
use geo2c_core::space::SpaceKind;
use geo2c_core::strategy::Strategy;
use geo2c_core::theory::{one_choice_typical, two_choice_band};
use geo2c_util::table::TextTable;

fn main() {
    let cli = Cli::parse(100, (8, 16), 20);
    banner("E8: max-load scaling vs theory", &cli);
    let config = cli.sweep_config();

    let mut t = TextTable::new([
        "n",
        "space",
        "d=1 mean",
        "d=2 mean",
        "d=4 mean",
        "ln n/lnln n",
        "lnln n/ln 2",
        "lnln n/ln 4",
    ]);
    for n in cli.sweep_sizes() {
        for kind in [SpaceKind::Uniform, SpaceKind::Ring, SpaceKind::Torus] {
            if kind == SpaceKind::Torus && n > (1 << 16) {
                continue; // keep default runtime sane; --full unaffected semantics
            }
            let m1 = sweep_kind(kind, Strategy::one_choice(), n, n, &config);
            let m2 = sweep_kind(kind, Strategy::two_choice(), n, n, &config);
            let m4 = sweep_kind(kind, Strategy::d_choice(4), n, n, &config);
            t.push_row([
                pow2_label(n),
                kind.name().to_string(),
                format!("{:.2}", m1.stats.mean()),
                format!("{:.2}", m2.stats.mean()),
                format!("{:.2}", m4.stats.mean()),
                format!("{:.2}", one_choice_typical(n)),
                format!("{:.2}", two_choice_band(n, 2)),
                format!("{:.2}", two_choice_band(n, 4)),
            ]);
        }
        println!("--- n = {} done ---", pow2_label(n));
    }
    println!("{t}");
    println!("Expect: d=1 grows with n; d>=2 nearly flat; ring/torus within");
    println!("an additive constant of uniform (Theorem 1 / Section 3).");
}
