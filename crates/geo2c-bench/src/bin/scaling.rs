//! Experiment E8: the Theorem 1 scaling claim.
//!
//! Sweeps `n` and reports the mean maximum load for `d = 1` (growing like
//! `ln n / ln ln n`) against `d = 2, 4` (pinned to
//! `log log n / log d + O(1)`), on all three spaces. The headline check:
//! the `d ≥ 2` columns are flat (doubly-logarithmic) and the geometric
//! spaces track the uniform baseline within an additive constant.
//!
//! ```text
//! cargo run -p geo2c-bench --release --bin scaling [--max-exp K] [--json PATH]
//! ```

use geo2c_bench::{banner, Cli};
use geo2c_core::experiment::sweep_kind;
use geo2c_core::space::SpaceKind;
use geo2c_core::strategy::Strategy;
use geo2c_core::theory::{one_choice_typical, two_choice_band};
use geo2c_report::markdown::render_text;
use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json};

fn main() {
    let cli = Cli::parse(100, (8, 16), 20);
    banner("E8: max-load scaling vs theory", &cli);
    let config = cli.sweep_config();

    let spec = ExperimentSpec::new("scaling", "E8: max-load scaling vs theory predictors")
        .paper_ref("Theorem 1")
        .trials(cli.trials)
        .seed(cli.seed)
        .param("m", Json::str("n"))
        .param(
            "n",
            Json::Arr(
                cli.sweep_sizes()
                    .iter()
                    .map(|&n| Json::from_usize(n))
                    .collect(),
            ),
        )
        .param(
            "d",
            Json::Arr(vec![Json::num(1), Json::num(2), Json::num(4)]),
        );
    let mut result = ExperimentResult::new(spec);

    for n in cli.sweep_sizes() {
        for kind in [SpaceKind::Uniform, SpaceKind::Ring, SpaceKind::Torus] {
            if kind == SpaceKind::Torus && n > (1 << 16) {
                continue; // keep default runtime sane; --full unaffected semantics
            }
            let m1 = sweep_kind(kind, Strategy::one_choice(), n, n, &config);
            let m2 = sweep_kind(kind, Strategy::two_choice(), n, n, &config);
            let m4 = sweep_kind(kind, Strategy::d_choice(4), n, n, &config);
            result.push(
                Cell::new()
                    .coord("n", Json::from_usize(n))
                    .coord("space", Json::str(kind.name()))
                    .metric("mean_d1", Json::num(m1.stats.mean()))
                    .metric("mean_d2", Json::num(m2.stats.mean()))
                    .metric("mean_d4", Json::num(m4.stats.mean()))
                    .metric("theory_d1", Json::num(one_choice_typical(n)))
                    .metric("theory_d2", Json::num(two_choice_band(n, 2)))
                    .metric("theory_d4", Json::num(two_choice_band(n, 4))),
            );
        }
        eprintln!("--- n = {n} done ---");
    }
    println!("{}", render_text(&result));
    cli.write_results(std::slice::from_ref(&result));
    println!("Expect: d=1 grows with n; d>=2 nearly flat; ring/torus within");
    println!("an additive constant of uniform (Theorem 1 / Section 3).");
}
