//! The benchmark and table-regeneration harness.
//!
//! Two kinds of targets live in this crate:
//!
//! * **Table binaries** (`src/bin/*.rs`, run with
//!   `cargo run -p geo2c-bench --release --bin <name>`): regenerate the
//!   paper's tables and lemma validations in the paper's own format.
//!   Every binary accepts `--trials`, `--seed`, `--threads`,
//!   `--min-exp`/`--max-exp` (the `n = 2^k` sweep range) and `--full`
//!   (paper-scale parameters: 1000 trials, `n` up to `2^24`/`2^20`).
//!
//!   | binary | paper artifact |
//!   |--------|----------------|
//!   | `table1` | Table 1 — max load, random arcs, `d = 1..4` |
//!   | `table2` | Table 2 — max load, torus Voronoi cells |
//!   | `table3` | Table 3 — tie-break strategies on arcs, `d = 2` |
//!   | `lemmas` | Lemmas 4–6 (arcs) and 8–9 (Voronoi) tail bounds |
//!   | `scaling` | Theorem 1 scaling vs. `log log n / log d` (E8) |
//!   | `heavy` | the `m ≠ n` remark (E9) |
//!   | `dht` | §1.1 Chord application (E11) |
//!
//! * **Criterion benches** (`benches/*.rs`, run with `cargo bench`):
//!   performance benchmarks for the substrate (per-insertion cost per
//!   space, grid vs brute-force NN, Voronoi cell construction, DHT
//!   lookups) and per-table micro-runs that time one trial of each
//!   configuration.
//!
//! Every binary declares an experiment spec and emits its numbers
//! through `geo2c-report` ([`experiments`] hosts the shared
//! constructors); pass `--json PATH` to any of them to persist the run
//! as a provenance-stamped `ResultSet`. The `run_tables` driver (see
//! `./tables.sh` at the repository root) runs the whole table suite,
//! maintains the committed expectations under `results/`, and renders
//! `EXPERIMENTS.md`.
//!
//! This library hosts the shared CLI parser, the experiment
//! constructors, and small formatting helpers.
//!
//! ```
//! use geo2c_bench::Cli;
//!
//! // The shared sweep CLI: n = 2^8..2^16 stepping exponents by 4, as in
//! // the paper's tables.
//! let cli = Cli {
//!     trials: 100,
//!     seed: 0,
//!     threads: 1,
//!     min_exp: 8,
//!     max_exp: 16,
//!     json: None,
//!     extra: vec![],
//! };
//! assert_eq!(cli.sweep_sizes(), vec![256, 4096, 65536]);
//! assert_eq!(geo2c_bench::pow2_label(65536), "2^16");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod perf;

use geo2c_core::experiment::SweepConfig;
use geo2c_report::{ExperimentResult, Provenance, ResultSet};

/// Shared command-line options for the table binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Trials per table cell.
    pub trials: usize,
    /// Root seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Smallest `n = 2^k` exponent in the sweep.
    pub min_exp: u32,
    /// Largest `n = 2^k` exponent in the sweep.
    pub max_exp: u32,
    /// Where to persist the run as a `geo2c-report` JSON `ResultSet`
    /// (`--json PATH`), if requested.
    pub json: Option<String>,
    /// Extra flags not consumed by the common parser.
    pub extra: Vec<String>,
}

impl Cli {
    /// Parses `std::env::args`, with per-binary defaults.
    ///
    /// `default_trials` and the exponent range are the laptop-scale
    /// defaults; `--full` switches to the paper-scale parameters
    /// (1000 trials and `full_max_exp`).
    ///
    /// # Panics
    /// Panics (with a usage message) on malformed arguments.
    #[must_use]
    pub fn parse(default_trials: usize, default_range: (u32, u32), full_max_exp: u32) -> Self {
        let mut cli = Self {
            trials: default_trials,
            seed: 0,
            threads: geo2c_util::parallel::num_threads(),
            min_exp: default_range.0,
            max_exp: default_range.1,
            json: None,
            extra: Vec::new(),
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        let take = |args: &[String], i: &mut usize, flag: &str| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("{flag} requires a value"))
                .clone()
        };
        while i < args.len() {
            match args[i].as_str() {
                "--trials" => cli.trials = take(&args, &mut i, "--trials").parse().expect("trials"),
                "--seed" => cli.seed = take(&args, &mut i, "--seed").parse().expect("seed"),
                "--threads" => {
                    cli.threads = take(&args, &mut i, "--threads").parse().expect("threads");
                }
                "--min-exp" => {
                    cli.min_exp = take(&args, &mut i, "--min-exp").parse().expect("min-exp");
                }
                "--max-exp" => {
                    cli.max_exp = take(&args, &mut i, "--max-exp").parse().expect("max-exp");
                }
                "--json" => cli.json = Some(take(&args, &mut i, "--json")),
                "--full" => {
                    cli.trials = 1000;
                    cli.max_exp = full_max_exp;
                }
                other => cli.extra.push(other.to_string()),
            }
            i += 1;
        }
        // A lone `--max-exp` below the default minimum should just shrink
        // the sweep to that single size.
        cli.min_exp = cli.min_exp.min(cli.max_exp);
        cli
    }

    /// The sweep sizes `2^min_exp, 2^(min_exp+4)…`? No — the paper steps
    /// exponents by 4 (2^8, 2^12, …); we mirror that, always including
    /// `max_exp`.
    #[must_use]
    pub fn sweep_sizes(&self) -> Vec<usize> {
        let mut exps: Vec<u32> = (self.min_exp..=self.max_exp).step_by(4).collect();
        if *exps.last().expect("nonempty range") != self.max_exp {
            exps.push(self.max_exp);
        }
        exps.into_iter().map(|e| 1usize << e).collect()
    }

    /// The sweep configuration for `geo2c-core` experiments.
    #[must_use]
    pub fn sweep_config(&self) -> SweepConfig {
        SweepConfig {
            trials: self.trials,
            threads: self.threads,
            seed: self.seed,
        }
    }

    /// True if `flag` was passed (consumes nothing).
    #[must_use]
    pub fn has_flag(&self, flag: &str) -> bool {
        self.extra.iter().any(|f| f == flag)
    }

    /// Persists `results` to the `--json` path (if one was given) as a
    /// provenance-stamped [`ResultSet`], and reports where they went.
    ///
    /// # Panics
    /// Panics if the file cannot be written (a bench binary has no
    /// recovery path — surface the error loudly).
    pub fn write_results(&self, results: &[ExperimentResult]) {
        let Some(path) = &self.json else {
            return;
        };
        let mut set = ResultSet::new(Provenance::capture(self.seed));
        for result in results {
            set.push(result.clone());
        }
        let path = std::path::Path::new(path);
        set.save(path)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("results written to {}", path.display());
    }
}

/// Formats `n` as `2^k` when `n` is a power of two (the paper's row
/// labels), else decimal.
#[must_use]
pub fn pow2_label(n: usize) -> String {
    if n.is_power_of_two() {
        format!("2^{}", n.trailing_zeros())
    } else {
        n.to_string()
    }
}

/// Prints a standard experiment banner with the run parameters.
pub fn banner(title: &str, cli: &Cli) {
    println!("== {title} ==");
    println!(
        "trials={} seed={} threads={} n=2^{}..2^{}",
        cli.trials, cli.seed, cli.threads, cli.min_exp, cli.max_exp
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_labels() {
        assert_eq!(pow2_label(256), "2^8");
        assert_eq!(pow2_label(1 << 20), "2^20");
        assert_eq!(pow2_label(100), "100");
    }

    #[test]
    fn sweep_sizes_step_by_four_and_include_max() {
        let cli = Cli {
            trials: 1,
            seed: 0,
            threads: 1,
            min_exp: 8,
            max_exp: 18,
            json: None,
            extra: vec![],
        };
        assert_eq!(cli.sweep_sizes(), vec![1 << 8, 1 << 12, 1 << 16, 1 << 18]);
        let cli2 = Cli { max_exp: 16, ..cli };
        assert_eq!(cli2.sweep_sizes(), vec![1 << 8, 1 << 12, 1 << 16]);
    }

    #[test]
    fn flags() {
        let cli = Cli {
            trials: 1,
            seed: 0,
            threads: 1,
            min_exp: 8,
            max_exp: 8,
            json: None,
            extra: vec!["--with-voecking".into()],
        };
        assert!(cli.has_flag("--with-voecking"));
        assert!(!cli.has_flag("--nope"));
    }
}
