//! Spec-declared experiment constructors shared by the table binaries
//! and the `run_tables` driver.
//!
//! Each function here runs one of the paper's headline experiments and
//! returns a [`geo2c_report::ExperimentResult`]: the spec (id, trials,
//! seed, parameters) plus one cell per sweep configuration. The table
//! binaries (`table1`, `table2`, `table3`, `dimension`) render these to
//! stdout; `run_tables` persists them under `results/` and renders
//! `EXPERIMENTS.md` from them. Keeping construction in one place is what
//! makes the committed expectations and the ad-hoc CLI runs provably the
//! same computation.
//!
//! [`Scale`] pins the three named parameter sets: `quick` (CI / smoke),
//! `reference` (the committed `EXPERIMENTS.md` numbers; sized so the
//! whole suite regenerates in about a minute and a half on one core) and
//! `full` (the paper's own 1000-trial sweep — hours of CPU; run it
//! deliberately).

use geo2c_core::experiment::{
    heavy_load_sweep, sweep_kind, sweep_max_load, MaxLoadCell, SweepConfig,
};
use geo2c_core::load::{LoadState as _, PackedLoads, ShardedLoads};
use geo2c_core::sim::{run_trial, run_trial_into, run_trial_with_lanes};
use geo2c_core::space::{KdTorusSpace, RingSpace, SpaceKind, UniformSpace};
use geo2c_core::strategy::{Strategy, TieBreak};
use geo2c_dht::chord::ChordRing;
use geo2c_dht::churn::churn_experiment;
use geo2c_dht::placement::{evaluate, PlacementPolicy};
use geo2c_dht::replication::{availability_after_failures, place_replicated};
use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json};
use geo2c_serve::{
    DepartureWheel, DurableEngine, FaultPlan, Recovery, Resumed, ServeConfig, ServeEngine,
    SessionLife,
};
use geo2c_util::frame::Header;
use geo2c_util::parallel::parallel_map;
use geo2c_util::rng::{BallLanes, StreamSeeder, TabulationHash, TabulationLanes, Xoshiro256pp};
use geo2c_util::stats::RunningStats;
use rand::Rng as _;
use rand::RngCore as _;

/// Spec ids of the experiments `run_tables` drives, in suite order —
/// also the basenames of the committed files under `results/`.
pub const SUITE_IDS: [&str; 14] = [
    "table1",
    "table2",
    "table3",
    "dimension",
    "ring_chart",
    "tabulation",
    "heavy",
    "serving",
    "resilience",
    "churn",
    "replication",
    "dht",
    "scaling",
    "durability",
];

/// A named parameter set for the table suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Name used in output paths (`results/` vs `results/quick/`).
    pub name: &'static str,
    /// Ring sweep sizes as `n = 2^k` exponents (Tables 1 and 3).
    pub ring_exps: &'static [u32],
    /// Torus sweep sizes as exponents (Table 2).
    pub torus_exps: &'static [u32],
    /// Trials per ring cell.
    pub ring_trials: usize,
    /// Trials per torus cell.
    pub torus_trials: usize,
    /// `n = 2^k` exponent for the dimension sweep.
    pub dim_exp: u32,
    /// Trials per dimension-sweep cell.
    pub dim_trials: usize,
    /// `n = 2^k` exponent for the ring diminishing-returns chart.
    pub chart_exp: u32,
    /// Trials per ring-chart cell.
    pub chart_trials: usize,
    /// `n = 2^k` exponent for the tabulation-hash comparison.
    pub tab_exp: u32,
    /// Trials per tabulation-comparison cell.
    pub tab_trials: usize,
    /// `n = 2^k` exponent for the heavily-loaded (`m ≠ n`) sweep.
    pub heavy_exp: u32,
    /// Trials per heavily-loaded cell.
    pub heavy_trials: usize,
    /// `n = 2^k` exponent for the online-serving steady state.
    pub serve_exp: u32,
    /// Trials per serving scenario.
    pub serve_trials: usize,
    /// `n = 2^k` exponent for the serving resilience experiment.
    pub resil_exp: u32,
    /// Trials per resilience cell.
    pub resil_trials: usize,
    /// `n = 2^k` exponent for the DHT churn experiment.
    pub churn_exp: u32,
    /// Trials per churn cell.
    pub churn_trials: usize,
    /// `n = 2^k` exponent for the replication trade-off experiment.
    pub repl_exp: u32,
    /// Trials per replication cell.
    pub repl_trials: usize,
    /// `n = 2^k` exponent (physical nodes) for the Chord DHT comparison.
    pub dht_exp: u32,
    /// Trials per DHT placement-scheme cell.
    pub dht_trials: usize,
    /// `n = 2^k` exponent for the streaming-scale backing comparison.
    pub scaling_exp: u32,
    /// Trials per scaling cell.
    pub scaling_trials: usize,
    /// `n = 2^k` exponent for the durability recovery-cost experiment.
    pub durability_exp: u32,
    /// Trials per durability checkpoint-interval cell.
    pub durability_trials: usize,
}

/// CI / smoke-test scale: regenerates in seconds, even unoptimized.
pub const QUICK: Scale = Scale {
    name: "quick",
    ring_exps: &[8, 10],
    torus_exps: &[8, 10],
    ring_trials: 40,
    torus_trials: 25,
    dim_exp: 9,
    dim_trials: 8,
    chart_exp: 12,
    chart_trials: 10,
    tab_exp: 9,
    tab_trials: 25,
    heavy_exp: 8,
    heavy_trials: 10,
    serve_exp: 8,
    serve_trials: 6,
    resil_exp: 8,
    resil_trials: 4,
    churn_exp: 8,
    churn_trials: 5,
    repl_exp: 8,
    repl_trials: 5,
    dht_exp: 8,
    dht_trials: 5,
    scaling_exp: 14,
    scaling_trials: 3,
    durability_exp: 8,
    durability_trials: 3,
};

/// The committed-expectation scale behind `EXPERIMENTS.md` (~1.5
/// minutes of single-core CPU for the whole suite).
pub const REFERENCE: Scale = Scale {
    name: "reference",
    ring_exps: &[8, 12, 16],
    torus_exps: &[8, 12, 14],
    ring_trials: 300,
    torus_trials: 150,
    // Paper-scale n for the K-torus: 2^13 is the size the K-d owner path
    // could previously reach only at --full scale (and appears as a
    // mid column of the paper's Table 1). The K ∈ {3, 4} × d ∈ {1..8}
    // sweep costs ~0.5 s per trial row on the reference core after the
    // K-d grid port, so 32 trials keeps the whole suite regenerating in
    // about a minute and a half single-core.
    dim_exp: 13,
    dim_trials: 32,
    // The largest n whose d ∈ {2..8} sweep stays inside the single-core
    // CI budget now that the ring owner path is O(1) (the ROADMAP's
    // 2^20+ chart is the --full scale below).
    chart_exp: 18,
    chart_trials: 40,
    // The Dahlgaard et al. weak-hashing comparison stays at quick scale
    // even in the committed expectations: the question is whether the
    // max-load distribution survives 3-independent hashing at all, and
    // 2^10 servers × 200 trials answers it for pennies of CPU.
    tab_exp: 10,
    tab_trials: 200,
    // The m/n ratio sweep runs 21.25n balls per trial pair of spaces;
    // 2^12 servers × 60 trials keeps the whole family around a second
    // while the slack column stabilizes to a few hundredths.
    heavy_exp: 12,
    heavy_trials: 60,
    // The serving steady state churns 16n sessions through n servers per
    // trial; 2^10 servers × 25 trials per scenario keeps it well under
    // the table sweeps' cost while the shed-rate columns stay stable to
    // a fraction of a percent.
    serve_exp: 10,
    serve_trials: 25,
    // The resilience cells rerun the serving workload under correlated
    // outages; the grid is wider (fail × d × retry budget) so fewer
    // trials per cell keep the family's cost near the serving table's.
    resil_exp: 10,
    resil_trials: 15,
    churn_exp: 10,
    churn_trials: 20,
    repl_exp: 10,
    repl_trials: 20,
    // The Chord comparison places 16n items per trial and samples 2000
    // lookups per configuration; 2^10 physical nodes × 20 trials keeps
    // the family at the churn/replication cost while the max-load and
    // hop-count means settle to a fraction of a unit.
    dht_exp: 10,
    dht_trials: 20,
    // The streaming-scale backing comparison runs at 2^24 bins — the
    // paper's own largest ring n, and far past L2 for every backing —
    // so bytes/bin and balls/sec are measured where they matter. The
    // uniform space keeps a trial to ~1 s single-core, so 3 trials fit
    // the suite budget.
    scaling_exp: 24,
    scaling_trials: 3,
    // Each durability trial runs the serving workload three times (the
    // uninterrupted reference, the journaled run up to the crash, and
    // the recovery replay), touching the filesystem for checkpoints and
    // journal frames; 2^10 servers × 10 trials per checkpoint interval
    // keeps the family around the serving table's cost.
    durability_exp: 10,
    durability_trials: 10,
};

/// The paper's own scale (1000 trials, `n` up to `2^24` / `2^20`).
/// Budget hours of CPU; nothing in CI runs this.
pub const FULL: Scale = Scale {
    name: "full",
    ring_exps: &[8, 12, 16, 20, 24],
    torus_exps: &[8, 12, 16, 20],
    ring_trials: 1000,
    torus_trials: 1000,
    dim_exp: 16,
    dim_trials: 200,
    chart_exp: 20,
    chart_trials: 200,
    tab_exp: 12,
    tab_trials: 1000,
    heavy_exp: 16,
    heavy_trials: 200,
    serve_exp: 13,
    serve_trials: 100,
    resil_exp: 13,
    resil_trials: 60,
    churn_exp: 12,
    churn_trials: 100,
    repl_exp: 12,
    repl_trials: 100,
    dht_exp: 14,
    dht_trials: 100,
    scaling_exp: 26,
    scaling_trials: 5,
    durability_exp: 12,
    durability_trials: 30,
};

impl Scale {
    /// Looks a scale up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<&'static Scale> {
        [&QUICK, &REFERENCE, &FULL]
            .into_iter()
            .find(|s| s.name == name)
    }

    /// Ring sweep sizes (`n` values).
    #[must_use]
    pub fn ring_sizes(&self) -> Vec<usize> {
        self.ring_exps.iter().map(|&e| 1usize << e).collect()
    }

    /// Torus sweep sizes (`n` values).
    #[must_use]
    pub fn torus_sizes(&self) -> Vec<usize> {
        self.torus_exps.iter().map(|&e| 1usize << e).collect()
    }
}

fn sizes_json(ns: &[usize]) -> Json {
    Json::Arr(ns.iter().map(|&n| Json::from_usize(n)).collect())
}

fn progress(msg: &str) {
    // Progress goes to stderr so stdout stays clean rendered output.
    eprintln!("--- {msg} ---");
}

/// Converts a sweep cell into a report cell with the given coordinates.
/// The distribution crosses the core→report boundary as the canonical
/// sorted `(value, count)` pairs ([`MaxLoadCell::distribution_pairs`]),
/// the same form the JSON files persist.
fn report_cell(coords: Vec<(String, Json)>, cell: &MaxLoadCell) -> Cell {
    let mut distribution = geo2c_util::hist::Counter::new();
    for (value, count) in cell.distribution_pairs() {
        distribution.add_n(value, count);
    }
    Cell {
        coords,
        distribution: Some(distribution),
        metrics: Vec::new(),
    }
}

/// The paper's **Table 1**: max-load distribution with random arcs on
/// the ring, `m = n`, `d ∈ {1, 2, 3, 4}`.
#[must_use]
pub fn table1(ns: &[usize], config: &SweepConfig) -> ExperimentResult {
    let ds = [1usize, 2, 3, 4];
    let spec = ExperimentSpec::new(
        "table1",
        "Table 1: maximum load with random arcs on the ring (m = n)",
    )
    .paper_ref("Table 1")
    .trials(config.trials)
    .seed(config.seed)
    .param("space", Json::str("ring"))
    .param("m", Json::str("n"))
    .param("tie_break", Json::str("random"))
    .param("n", sizes_json(ns))
    .param(
        "d",
        Json::Arr(ds.iter().map(|&d| Json::from_usize(d)).collect()),
    );
    let mut result = ExperimentResult::new(spec);
    for &n in ns {
        for &d in &ds {
            let cell = sweep_kind(SpaceKind::Ring, Strategy::d_choice(d), n, n, config);
            result.push(report_cell(
                vec![
                    ("n".into(), Json::from_usize(n)),
                    ("d".into(), Json::from_usize(d)),
                ],
                &cell,
            ));
        }
        progress(&format!("table1: n = {n} done"));
    }
    result
}

/// The paper's **Table 2**: max-load distribution with random Voronoi
/// cells on the 2-D torus, `m = n`, `d ∈ {1, 2, 3, 4}`.
#[must_use]
pub fn table2(ns: &[usize], config: &SweepConfig) -> ExperimentResult {
    let ds = [1usize, 2, 3, 4];
    let spec = ExperimentSpec::new(
        "table2",
        "Table 2: maximum load with random Voronoi cells on the torus (m = n)",
    )
    .paper_ref("Table 2")
    .trials(config.trials)
    .seed(config.seed)
    .param("space", Json::str("torus"))
    .param("m", Json::str("n"))
    .param("tie_break", Json::str("random"))
    .param("n", sizes_json(ns))
    .param(
        "d",
        Json::Arr(ds.iter().map(|&d| Json::from_usize(d)).collect()),
    );
    let mut result = ExperimentResult::new(spec);
    for &n in ns {
        for &d in &ds {
            let cell = sweep_kind(SpaceKind::Torus, Strategy::d_choice(d), n, n, config);
            result.push(report_cell(
                vec![
                    ("n".into(), Json::from_usize(n)),
                    ("d".into(), Json::from_usize(d)),
                ],
                &cell,
            ));
        }
        progress(&format!("table2: n = {n} done"));
    }
    result
}

/// The tie-break strategies of **Table 3**, in paper column order, plus
/// (optionally) Vöcking's split always-go-left scheme.
#[must_use]
pub fn table3_strategies(with_voecking: bool) -> Vec<(&'static str, Strategy)> {
    let mut out = vec![
        (
            "arc-larger",
            Strategy::with_tie_break(2, TieBreak::LargerRegion),
        ),
        ("arc-random", Strategy::with_tie_break(2, TieBreak::Random)),
        ("arc-left", Strategy::with_tie_break(2, TieBreak::Leftmost)),
        (
            "arc-smaller",
            Strategy::with_tie_break(2, TieBreak::SmallerRegion),
        ),
    ];
    if with_voecking {
        out.push(("voecking", Strategy::voecking(2)));
    }
    out
}

/// The paper's **Table 3**: max load by tie-breaking strategy with
/// random arcs, `d = 2`, `m = n`.
#[must_use]
pub fn table3(ns: &[usize], config: &SweepConfig, with_voecking: bool) -> ExperimentResult {
    let strategies = table3_strategies(with_voecking);
    let spec = ExperimentSpec::new(
        "table3",
        "Table 3: maximum load by tie-breaking strategy on random arcs (d = 2, m = n)",
    )
    .paper_ref("Table 3")
    .trials(config.trials)
    .seed(config.seed)
    .param("space", Json::str("ring"))
    .param("m", Json::str("n"))
    .param("d", Json::from_usize(2))
    .param("n", sizes_json(ns))
    .param(
        "tie_break",
        Json::Arr(
            strategies
                .iter()
                .map(|(name, _)| Json::str(*name))
                .collect(),
        ),
    );
    let mut result = ExperimentResult::new(spec);
    for &n in ns {
        for (name, strategy) in &strategies {
            let cell = sweep_kind(SpaceKind::Ring, *strategy, n, n, config);
            result.push(report_cell(
                vec![
                    ("n".into(), Json::from_usize(n)),
                    ("tie_break".into(), Json::str(*name)),
                ],
                &cell,
            ));
        }
        progress(&format!("table3: n = {n} done"));
    }
    result
}

/// Dimension-sweep cells for one `K` (const generic: the space type is
/// monomorphized per dimension).
fn dimension_cells<const K: usize>(
    n: usize,
    ds: &[usize],
    config: &SweepConfig,
    result: &mut ExperimentResult,
) {
    for &d in ds {
        let label = format!("dim{K}/n{n}/d{d}");
        let cell = sweep_max_load(
            move |rng: &mut Xoshiro256pp| KdTorusSpace::<K>::random(n, rng),
            Strategy::d_choice(d),
            n,
            n,
            &label,
            config,
        );
        result.push(report_cell(
            vec![
                ("K".into(), Json::from_usize(K)),
                ("d".into(), Json::from_usize(d)),
            ],
            &cell,
        ));
    }
    progress(&format!("dimension: K = {K} done"));
}

/// The higher-dimension sweep (§3, footnote 3, seeding the ROADMAP
/// "`d > 2` sweeps" item): max load on the `K`-torus for `K ∈ {3, 4}`
/// across `d ∈ {1} ∪ {2..8}`, `m = n`. The `d ≥ 2` distributions should
/// be essentially flat in `K` (the bound is dimension-free) and show the
/// diminishing returns of larger `d` that the paper predicts.
#[must_use]
pub fn dimension(n: usize, config: &SweepConfig) -> ExperimentResult {
    let ds: Vec<usize> = (1..=8).collect();
    let ks = [3usize, 4];
    let spec = ExperimentSpec::new(
        "dimension",
        "Higher dimensions: maximum load on the K-torus as d grows (m = n)",
    )
    .paper_ref("§3 footnote 3")
    .trials(config.trials)
    .seed(config.seed)
    .param("space", Json::str("K-torus"))
    .param("m", Json::str("n"))
    .param("n", Json::from_usize(n))
    .param(
        "K",
        Json::Arr(ks.iter().map(|&k| Json::from_usize(k)).collect()),
    )
    .param(
        "d",
        Json::Arr(ds.iter().map(|&d| Json::from_usize(d)).collect()),
    );
    let mut result = ExperimentResult::new(spec);
    dimension_cells::<3>(n, &ds, config, &mut result);
    dimension_cells::<4>(n, &ds, config, &mut result);
    result
}

/// The ring diminishing-returns chart (the ROADMAP's "`d > 2` sweeps on
/// the *ring*" item): max-load distribution on random arcs for
/// `d ∈ {2..8}`, `m = n`, at one large `n`. The `log log n / log d`
/// bound predicts sharply diminishing returns past `d = 2`; this is the
/// data behind that curve. Feasible at large `n` only because of the
/// `O(1)` bucket-accelerated owner lookup.
#[must_use]
pub fn ring_chart(n: usize, config: &SweepConfig) -> ExperimentResult {
    let ds: Vec<usize> = (2..=8).collect();
    let spec = ExperimentSpec::new(
        "ring_chart",
        "Diminishing returns: maximum load on the ring as d grows (m = n)",
    )
    .paper_ref("§2 Theorem 1 (d ≥ 2)")
    .trials(config.trials)
    .seed(config.seed)
    .param("space", Json::str("ring"))
    .param("m", Json::str("n"))
    .param("tie_break", Json::str("random"))
    .param("n", Json::from_usize(n))
    .param(
        "d",
        Json::Arr(ds.iter().map(|&d| Json::from_usize(d)).collect()),
    );
    let mut result = ExperimentResult::new(spec);
    for &d in &ds {
        let cell = sweep_kind(SpaceKind::Ring, Strategy::d_choice(d), n, n, config);
        result.push(report_cell(
            vec![
                ("n".into(), Json::from_usize(n)),
                ("d".into(), Json::from_usize(d)),
            ],
            &cell,
        ));
        progress(&format!("ring_chart: d = {d} done"));
    }
    result
}

/// The two probe sources the `tabulation` experiment compares, in cell
/// order: the engine-default SplitMix64 lanes and the simple-tabulation
/// lanes (Dahlgaard et al., SODA 2016).
pub const TABULATION_SAMPLERS: [&str; 2] = ["splitmix-lane", "tabulation-lane"];

/// The simple-tabulation comparison (ROADMAP "weak hashing" item): the
/// max-load distribution on random ring arcs, `m = n`, `d ∈ {1, 2}`,
/// with per-ball lanes driven either by SplitMix64 (contract v2 default)
/// or by a per-trial simple tabulation hash in counter mode. Dahlgaard,
/// Knudsen, Rotenberg & Thorup prove two-choices max load survives
/// simple tabulation's mere 3-independence; the two columns should be
/// statistically indistinguishable, while both `d = 1` columns show the
/// usual `Θ(log n / log log n)` spread.
#[must_use]
pub fn tabulation(n: usize, config: &SweepConfig) -> ExperimentResult {
    let ds = [1usize, 2];
    let spec = ExperimentSpec::new(
        "tabulation",
        "Weak hashing: max load with simple-tabulation vs SplitMix64 probe lanes (ring, m = n)",
    )
    .paper_ref("Dahlgaard et al. SODA 2016 (PAPERS.md)")
    .trials(config.trials)
    .seed(config.seed)
    .param("space", Json::str("ring"))
    .param("m", Json::str("n"))
    .param("tie_break", Json::str("random"))
    .param("n", Json::from_usize(n))
    .param(
        "sampler",
        Json::Arr(TABULATION_SAMPLERS.iter().map(|&s| Json::str(s)).collect()),
    )
    .param(
        "d",
        Json::Arr(ds.iter().map(|&d| Json::from_usize(d)).collect()),
    );
    let mut result = ExperimentResult::new(spec);
    for sampler in TABULATION_SAMPLERS {
        let tabulate = sampler == "tabulation-lane";
        for &d in &ds {
            let strategy = Strategy::d_choice(d);
            let label = format!("tabulation/{sampler}/n{n}/d{d}");
            let seeder = StreamSeeder::new(config.seed).child(&label);
            let max_loads: Vec<u32> = parallel_map(config.trials, config.threads, |t| {
                let mut rng = seeder.stream(t as u64);
                let space = RingSpace::random(n, &mut rng);
                if tabulate {
                    // Fresh tables per trial (the theorems quantify over
                    // the hash draw too), then the same laned engine.
                    let hash = TabulationHash::from_seed(rng.gen());
                    let lanes = TabulationLanes::new(&hash, rng.gen());
                    run_trial_with_lanes(&space, &strategy, n, &lanes).max_load
                } else {
                    run_trial(&space, &strategy, n, &mut rng).max_load
                }
            });
            let mut distribution = geo2c_util::hist::Counter::new();
            for &ml in &max_loads {
                distribution.add(u64::from(ml));
            }
            result.push(Cell {
                coords: vec![
                    ("sampler".into(), Json::str(sampler)),
                    ("d".into(), Json::from_usize(d)),
                ],
                distribution: Some(distribution),
                metrics: Vec::new(),
            });
        }
        progress(&format!("tabulation: {sampler} done"));
    }
    result
}

/// The two substrates the `heavy` experiment sweeps, in cell order: the
/// classical uniform baseline and the paper's ring.
pub const HEAVY_SPACES: [SpaceKind; 2] = [SpaceKind::Uniform, SpaceKind::Ring];

/// The heavily-loaded case (§2 remark 3): with `m` balls and `n` bins
/// the two-choice maximum is `m/n + O(log log n / log d)` w.h.p., so the
/// *slack* above the `m/n` floor should stay `O(log log n)` as the ratio
/// `m/n ∈ {1/4, 1, 4, 16}` grows — it may even shrink, since absolute
/// loads smooth out. Each cell reports the mean max load, the exact
/// `m/n` floor, the measured slack, and the max-load distribution, on
/// both the ring and the uniform baseline.
#[must_use]
pub fn heavy(n: usize, config: &SweepConfig) -> ExperimentResult {
    let ms = [n / 4, n, 4 * n, 16 * n];
    let spec = ExperimentSpec::new(
        "heavy",
        "Heavily loaded: two-choice max load as m/n grows (d = 2)",
    )
    .paper_ref("§2 remark 3")
    .trials(config.trials)
    .seed(config.seed)
    .param("n", Json::from_usize(n))
    .param("d", Json::from_usize(2))
    .param(
        "m",
        Json::Arr(ms.iter().map(|&m| Json::from_usize(m)).collect()),
    );
    let mut result = ExperimentResult::new(spec);
    for kind in HEAVY_SPACES {
        let rows = heavy_load_sweep(kind, Strategy::two_choice(), n, &ms, config);
        for row in rows {
            result.push(
                Cell::new()
                    .coord("space", Json::str(kind.name()))
                    .coord("m", Json::from_usize(row.m))
                    .metric("m_over_n", Json::num(row.average_load))
                    .metric("mean_max", Json::num(row.mean_max))
                    .metric("slack", Json::num(row.mean_max - row.average_load))
                    .dist(row.distribution),
            );
        }
        progress(&format!("heavy: {} done", kind.name()));
    }
    result
}

/// The online-serving scenarios, in cell order: a probe-count sweep at
/// unbounded capacity (the serving analogue of Table 1's `d` columns),
/// then an admission-control sweep at `d = 2` as the per-server capacity
/// tightens toward the steady-state mean load of 4.
pub const SERVING_SCENARIOS: [(usize, Option<u32>); 7] = [
    (1, None),
    (2, None),
    (3, None),
    (4, None),
    (2, Some(5)),
    (2, Some(6)),
    (2, Some(8)),
];

/// The online-serving steady state (`geo2c-serve`): sessions arrive on
/// random ring arcs, route to the least-loaded of `d` probed owners,
/// live an exponential number of arrivals (mean `4n`, so the stationary
/// mean load is 4 sessions per server), and depart. Capacity-bounded
/// scenarios shed arrivals whose destination is full. Each cell reports
/// the end-state load profile after `16n` events — four mean lifetimes,
/// comfortably past mixing — as exact scalar metrics (mean of max, p99,
/// mean load, shed percentage over the trials) plus the aggregated
/// per-server load distribution across all trials.
#[must_use]
pub fn serving(n: usize, config: &SweepConfig) -> ExperimentResult {
    let mean_life = 4.0 * n as f64;
    let horizon = 16 * n as u64;
    let spec = ExperimentSpec::new(
        "serving",
        "Online serving: steady-state load and shed rate under arrivals and departures",
    )
    .paper_ref("§1.1 (online placement)")
    .trials(config.trials)
    .seed(config.seed)
    .param("space", Json::str("ring"))
    .param("servers", Json::from_usize(n))
    .param("events", Json::from_u64(horizon))
    .param("mean_life", Json::num(mean_life))
    .param("tie_break", Json::str("random"));
    let mut result = ExperimentResult::new(spec);
    for (d, capacity) in SERVING_SCENARIOS {
        let cap_label = match capacity {
            Some(cap) => cap.to_string(),
            None => "unbounded".to_string(),
        };
        let seeder = StreamSeeder::new(config.seed).child(&format!("serving/d{d}/cap{cap_label}"));
        let rows: Vec<(f64, f64, f64, f64, Vec<u32>)> =
            parallel_map(config.trials, config.threads, |trial| {
                let mut rng = seeder.stream(trial as u64);
                let space = RingSpace::random(n, &mut rng);
                let cfg = ServeConfig {
                    strategy: Strategy::d_choice(d),
                    capacity,
                    life: SessionLife::Exponential { mean: mean_life },
                    retries: 0,
                };
                let mut engine = ServeEngine::new(space, cfg, rng.gen::<u64>());
                engine.run(horizon);
                let stats = engine.load_stats();
                (
                    f64::from(stats.max),
                    f64::from(stats.p99),
                    stats.mean,
                    100.0 * engine.shed_rate(),
                    engine.live_loads().collect(),
                )
            });
        let mut max = RunningStats::new();
        let mut p99 = RunningStats::new();
        let mut mean = RunningStats::new();
        let mut shed = RunningStats::new();
        let mut distribution = geo2c_util::hist::Counter::new();
        for (m, p, avg, s, loads) in rows {
            max.push(m);
            p99.push(p);
            mean.push(avg);
            shed.push(s);
            for load in loads {
                distribution.add(u64::from(load));
            }
        }
        result.push(
            Cell::new()
                .coord("d", Json::from_usize(d))
                .coord("capacity", Json::str(&cap_label))
                .metric("max_load", Json::num(max.mean()))
                .metric("p99_load", Json::num(p99.mean()))
                .metric("mean_load", Json::num(mean.mean()))
                .metric("shed_pct", Json::num(shed.mean()))
                .dist(distribution),
        );
        progress(&format!("serving: d = {d}, capacity = {cap_label} done"));
    }
    result
}

/// Retry budgets the resilience grid sweeps: `r = 0` is the plain PR-6
/// engine (the byte-identity control), `r ∈ {1, 2}` redraw that many
/// fresh probe sets from the `RETRY_TAG` lane before shedding.
pub const RESILIENCE_RETRIES: [u32; 3] = [0, 1, 2];

/// The serving resilience family (`geo2c-serve` + [`FaultPlan`]):
/// the serving workload under deterministic correlated outages.
///
/// Two kinds of cells, distinguished by the `phase` coordinate:
///
/// * **`steady`** — a contiguous region of the ring (10% or 30% of the
///   servers — a geometrically correlated outage, since `RingSpace`
///   sorts servers by position) is down for the whole run. The grid is
///   failure fraction × d ∈ {2, 3} × retry budget
///   ([`RESILIENCE_RETRIES`]), and the cell reports whole-run
///   availability, the shed split (capacity vs unavailable), the
///   fraction of arrivals rescued by retries, and the end-state live
///   load profile.
/// * **`pre-outage` / `outage` / `recovered`** — one transient
///   scenario per retry budget at d = 2: the region crashes at `4n`,
///   recovers at `8n`, and the run continues to `16n`
///   ([`ServeEngine::run_with_faults`] applies the plan in chunks).
///   Each phase cell reports the *per-phase* rates (counter deltas
///   across the phase boundary) — the outage-and-recovery curve: shed
///   spikes while the region is dark, then returns to the pre-outage
///   baseline after recovery.
///
/// All randomness is laned: the fault schedule is part of the
/// experiment spec (a [`FaultPlan`], not a random draw), the retry
/// redraws come from each event's `RETRY_TAG` lane, and `r = 0` never
/// touches that lane — so the `r = 0` column is byte-identical to the
/// engine the committed `serving` table runs.
#[must_use]
pub fn resilience(n: usize, config: &SweepConfig) -> ExperimentResult {
    let mean_life = 4.0 * n as f64;
    let horizon = 16 * n as u64;
    let capacity = 6u32;
    let spec = ExperimentSpec::new(
        "resilience",
        "Resilience: availability under correlated outages, recovery, and probe retries",
    )
    .paper_ref("§1.1 (online placement); conclusion (reliability)")
    .trials(config.trials)
    .seed(config.seed)
    .param("space", Json::str("ring"))
    .param("servers", Json::from_usize(n))
    .param("events", Json::from_u64(horizon))
    .param("mean_life", Json::num(mean_life))
    .param("capacity", Json::from_u64(u64::from(capacity)))
    .param("tie_break", Json::str("random"))
    .param(
        "retries",
        Json::Arr(
            RESILIENCE_RETRIES
                .iter()
                .map(|&r| Json::from_u64(u64::from(r)))
                .collect(),
        ),
    );
    let mut result = ExperimentResult::new(spec);
    let fractions = [0.1f64, 0.3];
    // One aggregate row: (shed_pct, unavail_pct, retry_admit_pct,
    // availability_pct, max_load, p99_load).
    type Row = (f64, f64, f64, f64, f64, f64);
    let push_cell =
        |result: &mut ExperimentResult, phase: &str, fail: f64, d: usize, r: u32, rows: &[Row]| {
            let mut stats = [(); 6].map(|()| RunningStats::new());
            for &(s, u, a, av, m, p) in rows {
                for (slot, v) in stats.iter_mut().zip([s, u, a, av, m, p]) {
                    slot.push(v);
                }
            }
            result.push(
                Cell::new()
                    .coord("phase", Json::str(phase))
                    .coord("fail_pct", Json::num(fail * 100.0))
                    .coord("d", Json::from_usize(d))
                    .coord("r", Json::from_u64(u64::from(r)))
                    .metric("availability_pct", Json::num(stats[3].mean()))
                    .metric("shed_pct", Json::num(stats[0].mean()))
                    .metric("unavail_pct", Json::num(stats[1].mean()))
                    .metric("retry_admit_pct", Json::num(stats[2].mean()))
                    .metric("max_load", Json::num(stats[4].mean()))
                    .metric("p99_load", Json::num(stats[5].mean())),
            );
        };
    // Rates over a window of `events` arrivals, from counter deltas.
    let window_row =
        |engine: &ServeEngine<RingSpace, Vec<u32>>, base: (u64, u64, u64, u64)| -> Row {
            let (arrivals0, cap0, unavail0, rescued0) = base;
            let events = engine.arrivals() - arrivals0;
            let pct = |x: u64| 100.0 * x as f64 / events as f64;
            let shed_cap = engine.shed_capacity() - cap0;
            let shed_unavail = engine.shed_unavailable() - unavail0;
            let stats = engine.load_stats();
            (
                pct(shed_cap + shed_unavail),
                pct(shed_unavail),
                pct(engine.admitted_on_retry() - rescued0),
                100.0 - pct(shed_cap + shed_unavail),
                f64::from(stats.max),
                f64::from(stats.p99),
            )
        };
    let snap = |engine: &ServeEngine<RingSpace, Vec<u32>>| {
        (
            engine.arrivals(),
            engine.shed_capacity(),
            engine.shed_unavailable(),
            engine.admitted_on_retry(),
        )
    };
    let engine_config = |d: usize, r: u32| ServeConfig {
        strategy: Strategy::d_choice(d),
        capacity: Some(capacity),
        life: SessionLife::Exponential { mean: mean_life },
        retries: r,
    };

    // Steady cells: the region is dark for the entire run.
    for &fail in &fractions {
        let down = ((fail * n as f64).round() as usize).max(1);
        for d in [2usize, 3] {
            for r in RESILIENCE_RETRIES {
                let label = format!("resilience/steady/fail{}/d{d}/r{r}", fail * 100.0);
                let seeder = StreamSeeder::new(config.seed).child(&label);
                let plan = FaultPlan::region_outage(n, 0, down, 0, None);
                let rows: Vec<Row> = parallel_map(config.trials, config.threads, |trial| {
                    let mut rng = seeder.stream(trial as u64);
                    let space = RingSpace::random(n, &mut rng);
                    let mut engine = ServeEngine::new(space, engine_config(d, r), rng.gen::<u64>());
                    let base = snap(&engine);
                    engine.run_with_faults(horizon, &plan);
                    window_row(&engine, base)
                });
                push_cell(&mut result, "steady", fail, d, r, &rows);
            }
        }
        progress(&format!(
            "resilience: steady, fail = {}% done",
            fail * 100.0
        ));
    }

    // Transient cells: crash at 4n, recover at 8n, run to 16n; one cell
    // per (phase, r) at d = 2 and the larger outage.
    let fail = fractions[1];
    let down = ((fail * n as f64).round() as usize).max(1);
    let chunks = [4 * n as u64, 4 * n as u64, 8 * n as u64];
    for r in RESILIENCE_RETRIES {
        let label = format!("resilience/transient/fail{}/d2/r{r}", fail * 100.0);
        let seeder = StreamSeeder::new(config.seed).child(&label);
        let plan = FaultPlan::region_outage(n, 0, down, 4 * n as u64, Some(8 * n as u64));
        let rows: Vec<[Row; 3]> = parallel_map(config.trials, config.threads, |trial| {
            let mut rng = seeder.stream(trial as u64);
            let space = RingSpace::random(n, &mut rng);
            let mut engine = ServeEngine::new(space, engine_config(2, r), rng.gen::<u64>());
            chunks.map(|events| {
                let base = snap(&engine);
                engine.run_with_faults(events, &plan);
                window_row(&engine, base)
            })
        });
        for (i, phase) in ["pre-outage", "outage", "recovered"].iter().enumerate() {
            let phase_rows: Vec<Row> = rows.iter().map(|r| r[i]).collect();
            push_cell(&mut result, phase, fail, 2, r, &phase_rows);
        }
        progress(&format!("resilience: transient, r = {r} done"));
    }
    result
}

/// The DHT churn experiment (previously the stdout-only `churn` binary,
/// folded into the gated suite): place `16n` items on an `n`-node Chord
/// ring under each scheme, fail a fraction of the nodes, re-place the
/// orphans under the same scheme, and report the before/after maximum
/// load plus the fraction of items that moved. Metric-only cells,
/// compared exactly by `--check`.
#[must_use]
pub fn churn(n: usize, config: &SweepConfig) -> ExperimentResult {
    let m = (16 * n) as u64;
    let seeder = StreamSeeder::new(config.seed).child("churn");
    let spec = ExperimentSpec::new(
        "churn",
        "Churn: node failures and re-placement (items = 16n)",
    )
    .paper_ref("conclusion (reliability)")
    .trials(config.trials)
    .seed(config.seed)
    .param("nodes", Json::from_usize(n))
    .param("items", Json::from_u64(m));
    let mut result = ExperimentResult::new(spec);
    for (name, policy, v) in [
        ("consistent", PlacementPolicy::Consistent, 1usize),
        (
            "virtual(log n)",
            PlacementPolicy::Consistent,
            (n as f64).log2().ceil() as usize,
        ),
        ("2-choice", PlacementPolicy::DChoice { d: 2 }, 1),
    ] {
        for &fail in &[0.1f64, 0.3, 0.5] {
            let rows: Vec<(f64, f64, f64)> = parallel_map(config.trials, config.threads, |trial| {
                let mut rng = seeder.child(&format!("{name}/{fail}")).stream(trial as u64);
                let report = churn_experiment(n, v, policy, m, fail, &mut rng);
                (
                    f64::from(report.max_before),
                    f64::from(report.max_after),
                    report.moved_items as f64 / m as f64,
                )
            });
            let mut before = RunningStats::new();
            let mut after = RunningStats::new();
            let mut moved = RunningStats::new();
            for (b, a, mv) in rows {
                before.push(b);
                after.push(a);
                moved.push(mv);
            }
            result.push(
                Cell::new()
                    .coord("scheme", Json::str(name))
                    .coord("fail_pct", Json::num(fail * 100.0))
                    .metric("max_before", Json::num(before.mean()))
                    .metric("max_after", Json::num(after.mean()))
                    .metric("moved_pct", Json::num(100.0 * moved.mean())),
            );
        }
        progress(&format!("churn: {name} done"));
    }
    result
}

/// The replication × placement trade-off (previously the stdout-only
/// `replication` binary, folded into the gated suite): place `16n` items
/// on an `n`-node Chord ring with `r` successor-list replicas under each
/// placement policy, fail 30% of the nodes, and report the three-way
/// trade-off — storage load (`max_load_mean`), the storage price
/// (`mean_load = r·m/n`), and post-failure availability (≈ 1 − fail^r).
/// Availability is set by `r` and balance by the placement policy; the
/// two mechanisms compose, which is the practical claim behind §1.1.
/// Metric-only cells, compared exactly by `--check`. The seeder paths
/// are those of the former binary, so its historical numbers reproduce
/// under the same seed and trial count.
#[must_use]
pub fn replication(n: usize, config: &SweepConfig) -> ExperimentResult {
    let m = (16 * n) as u64;
    let fail = 0.3;
    let seeder = StreamSeeder::new(config.seed).child("replication");
    let spec = ExperimentSpec::new(
        "replication",
        "Replication: successor-list replicas x placement policy (items = 16n, 30% failures)",
    )
    .paper_ref("conclusion (reliability)")
    .trials(config.trials)
    .seed(config.seed)
    .param("nodes", Json::from_usize(n))
    .param("items", Json::from_u64(m))
    .param("fail_fraction", Json::num(fail));
    let mut result = ExperimentResult::new(spec);
    for (name, policy) in [
        ("consistent", PlacementPolicy::Consistent),
        ("2-choice", PlacementPolicy::DChoice { d: 2 }),
    ] {
        for r in [1usize, 2, 3] {
            let rows: Vec<(f64, f64)> = parallel_map(config.trials, config.threads, |trial| {
                let mut rng = seeder.child(&format!("{name}/r{r}")).stream(trial as u64);
                let ring = ChordRing::new(n, &mut rng);
                let placement = place_replicated(&ring, policy, m, r);
                let avail = availability_after_failures(&placement, n, fail, &mut rng);
                (f64::from(placement.max_load()), avail.available)
            });
            let mut max_load = RunningStats::new();
            let mut avail = RunningStats::new();
            for (ml, av) in rows {
                max_load.push(ml);
                avail.push(av);
            }
            result.push(
                Cell::new()
                    .coord("scheme", Json::str(name))
                    .coord("replicas", Json::from_usize(r))
                    .metric("max_load_mean", Json::num(max_load.mean()))
                    .metric("mean_load", Json::num(r as f64 * m as f64 / n as f64))
                    .metric("availability_pct", Json::num(100.0 * avail.mean())),
            );
        }
        progress(&format!("replication: {name} done"));
    }
    result
}

/// The §1.1 Chord application (previously the stdout-only `dht` binary,
/// folded into the gated suite): place `16n` items on an `n`-node
/// Chord-style DHT under the three ways to balance item load — plain
/// consistent hashing, `v = ⌈log₂ n⌉` virtual servers (Chord's own
/// mitigation), and `d`-choice placement with redirection pointers (the
/// paper's proposal) — and report max/mean/σ of the per-server load plus
/// the lookup-hop cost of each configuration. Metric-only cells,
/// compared exactly by `--check`. The seeder paths are those of the
/// former binary, so its historical numbers reproduce under the same
/// seed and trial count.
#[must_use]
pub fn dht(n: usize, config: &SweepConfig) -> ExperimentResult {
    let m = (16 * n) as u64;
    let v = (n as f64).log2().ceil() as usize;
    let lookup_samples = 2000;
    let seeder = StreamSeeder::new(config.seed).child("dht");
    let spec = ExperimentSpec::new("dht", "E11: Chord DHT load balance by placement scheme")
        .paper_ref("§1.1")
        .trials(config.trials)
        .seed(config.seed)
        .param("nodes", Json::from_usize(n))
        .param("items", Json::from_u64(m))
        .param("virtual_servers", Json::from_usize(v))
        .param("lookup_samples", Json::from_usize(lookup_samples));
    let mut result = ExperimentResult::new(spec);
    for (name, virtual_servers, policy) in [
        ("consistent", 1usize, PlacementPolicy::Consistent),
        ("virtual(log n)", v, PlacementPolicy::Consistent),
        ("2-choice", 1, PlacementPolicy::DChoice { d: 2 }),
        ("4-choice", 1, PlacementPolicy::DChoice { d: 4 }),
    ] {
        // Each trial: fresh ring + placement + sampled lookups.
        let rows: Vec<(f64, f64, f64, u32, f64)> =
            parallel_map(config.trials, config.threads, |trial| {
                let mut rng = seeder.child(name).stream(trial as u64);
                let ring = ChordRing::with_virtual_servers(n, virtual_servers, &mut rng);
                let report = evaluate(&ring, policy, m, lookup_samples, &mut rng);
                let lookup = report.lookup.expect("lookups sampled");
                (
                    f64::from(report.load.max),
                    report.load.stddev,
                    lookup.mean_hops,
                    lookup.max_hops,
                    lookup.redirect_rate,
                )
            });
        let mut max_load = RunningStats::new();
        let mut sigma = RunningStats::new();
        let mut hops = RunningStats::new();
        let mut max_hops = 0u32;
        let mut redirect = RunningStats::new();
        for (ml, sd, mh, xh, rr) in rows {
            max_load.push(ml);
            sigma.push(sd);
            hops.push(mh);
            max_hops = max_hops.max(xh);
            redirect.push(rr);
        }
        // Finger-table state per physical node: 64 entries per virtual node.
        let state = virtual_servers * 64;
        result.push(
            Cell::new()
                .coord("scheme", Json::str(name))
                .metric("max_load_mean", Json::num(max_load.mean()))
                .metric("load_sigma", Json::num(sigma.mean()))
                .metric("mean_hops", Json::num(hops.mean()))
                .metric("max_hops", Json::num(max_hops))
                .metric("redirect_pct", Json::num(100.0 * redirect.mean()))
                .metric("fingers_per_node", Json::from_usize(state)),
        );
        progress(&format!("dht: {name} done"));
    }
    result
}

/// The load-state backings the `scaling` experiment compares, in cell
/// order: the flat `Vec<u32>` reference, the two packed widths, and the
/// sharded default (independently allocated 64 KB byte shards).
pub const SCALING_BACKINGS: [&str; 4] =
    ["flat-u32", "packed-nibble", "packed-byte", "sharded-byte"];

/// The streaming-scale backing comparison (the former stdout-only
/// `scaling` binary, promoted into the gated suite): `m = n` random-tie
/// insertions on uniform bins for every [`geo2c_core::load::LoadState`]
/// backing × d ∈ {1, 2}, at the largest `n` the suite touches. Uniform
/// bins isolate the load-state data path — the geometry substrates have
/// their own `trial/*` benches.
///
/// Cells are metric-only. `max_load` (mean over trials) is deterministic
/// in the seed and **asserted equal across backings** per `d`: every
/// backing replays the flat trial's exact lane streams, so a packed
/// backing that moved a single placement would panic here before
/// `--check` ever saw it. `bytes_per_bin` is the end-state
/// `heap_bytes / n` of trial 0 — exactly 4 for the flat vector, ~0.5 /
/// ~1 for the nibble / byte packings (plus spill, which `m = n` trials
/// never reach at these sizes). `~balls_per_s` is wall-clock placement
/// throughput; the `~` prefix marks it informational, so `--check`
/// renders it but excludes it from the exact metric compare.
#[must_use]
pub fn scaling(n: usize, config: &SweepConfig) -> ExperimentResult {
    let ds = [1usize, 2];
    let spec = ExperimentSpec::new(
        "scaling",
        "Streaming scale: load-state backings at large n (m = n)",
    )
    .paper_ref("§1 (scaling to large n)")
    .trials(config.trials)
    .seed(config.seed)
    .param("space", Json::str("uniform"))
    .param("m", Json::str("n"))
    .param("tie_break", Json::str("random"))
    .param("n", Json::from_usize(n))
    .param(
        "backing",
        Json::Arr(SCALING_BACKINGS.iter().map(|&b| Json::str(b)).collect()),
    )
    .param(
        "d",
        Json::Arr(ds.iter().map(|&d| Json::from_usize(d)).collect()),
    );
    let mut result = ExperimentResult::new(spec);
    for &d in &ds {
        let strategy = Strategy::d_choice(d);
        // One seeder child per d, shared by every backing: each packed
        // trial replays the flat trial's lane streams bit for bit.
        let seeder = StreamSeeder::new(config.seed).child(&format!("scaling/n{n}/d{d}"));
        let mut flat_maxes: Vec<u32> = Vec::new();
        for backing in SCALING_BACKINGS {
            let started = std::time::Instant::now();
            let rows: Vec<(u32, usize)> = parallel_map(config.trials, config.threads, |trial| {
                let mut rng = seeder.stream(trial as u64);
                let space = UniformSpace::new(n);
                match backing {
                    "flat-u32" => {
                        let r = run_trial(&space, &strategy, n, &mut rng);
                        (r.max_load, r.loads.heap_bytes())
                    }
                    "packed-nibble" => {
                        let lanes = BallLanes::new(rng.next_u64());
                        let mut loads = PackedLoads::nibble(n);
                        let max = run_trial_into(&space, &strategy, n, &lanes, &mut loads);
                        (max, loads.heap_bytes())
                    }
                    "packed-byte" => {
                        let lanes = BallLanes::new(rng.next_u64());
                        let mut loads = PackedLoads::byte(n);
                        let max = run_trial_into(&space, &strategy, n, &lanes, &mut loads);
                        (max, loads.heap_bytes())
                    }
                    _ => {
                        let lanes = BallLanes::new(rng.next_u64());
                        let mut loads = ShardedLoads::byte(n);
                        let max = run_trial_into(&space, &strategy, n, &lanes, &mut loads);
                        (max, loads.heap_bytes())
                    }
                }
            });
            let elapsed = started.elapsed().as_secs_f64();
            let maxes: Vec<u32> = rows.iter().map(|&(m, _)| m).collect();
            if backing == "flat-u32" {
                flat_maxes.clone_from(&maxes);
            } else {
                assert_eq!(
                    maxes, flat_maxes,
                    "{backing} diverged from flat-u32 at d = {d}"
                );
            }
            let mut max_stats = RunningStats::new();
            for &ml in &maxes {
                max_stats.push(f64::from(ml));
            }
            let bytes_per_bin = rows.first().map_or(0.0, |&(_, b)| b as f64 / n as f64);
            let balls_per_s = if elapsed > 0.0 {
                ((config.trials * n) as f64 / elapsed).round()
            } else {
                0.0
            };
            result.push(
                Cell::new()
                    .coord("backing", Json::str(backing))
                    .coord("d", Json::from_usize(d))
                    .metric("max_load", Json::num(max_stats.mean()))
                    .metric("bytes_per_bin", Json::num(bytes_per_bin))
                    .metric("~balls_per_s", Json::num(balls_per_s)),
            );
            progress(&format!("scaling: {backing}, d = {d} done"));
        }
    }
    result
}

/// The checkpoint intervals (events between durable checkpoints) the
/// `durability` experiment sweeps, in cell order.
pub const DURABILITY_INTERVALS: [u64; 3] = [64, 256, 1024];

/// The durability recovery-cost experiment: run the serving workload
/// under the journal discipline (`geo2c_serve::DurableEngine`), crash it
/// at a deterministically drawn event with a deterministically drawn
/// torn journal tail, resume through `geo2c_serve::Recovery`, and
/// measure what recovery cost — events replayed from the last durable
/// checkpoint and journal bytes per event — as a function of the
/// checkpoint interval.
///
/// Every trial **asserts** that the crashed-and-recovered engine,
/// run forward to the horizon, is byte-identical to an uninterrupted
/// reference run (the same `recovered ≡ uninterrupted` pin as the
/// `crash_recovery` proptest suite, here exercised at suite scale on
/// every regeneration). Cells are metric-only and fully deterministic in
/// the seed — the journal writes to a scratch directory but every
/// reported number is a pure function of the streams — so `--check`
/// compares them exactly.
#[must_use]
pub fn durability(n: usize, config: &SweepConfig) -> ExperimentResult {
    use std::sync::atomic::{AtomicU64, Ordering};
    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    let events = (16 * n) as u64;
    let serve_config = ServeConfig {
        strategy: Strategy::two_choice(),
        capacity: Some(8),
        life: SessionLife::Exponential { mean: n as f64 },
        retries: 1,
    };
    let seeder = StreamSeeder::new(config.seed).child("durability");
    let spec = ExperimentSpec::new(
        "durability",
        "Durability: crash-point recovery cost vs checkpoint interval",
    )
    .paper_ref("§1.1 (online serving, made durable)")
    .trials(config.trials)
    .seed(config.seed)
    .param("servers", Json::from_usize(n))
    .param("events", Json::from_u64(events))
    .param(
        "interval",
        Json::Arr(
            DURABILITY_INTERVALS
                .iter()
                .map(|&c| Json::from_u64(c))
                .collect(),
        ),
    );
    let mut result = ExperimentResult::new(spec);
    for &every in &DURABILITY_INTERVALS {
        // The app-side chunking between checkpoints: eight progress
        // frames per interval, so a crash usually tears a journal with
        // durable frames to resume past.
        let chunk = (every / 8).max(1);
        let rows: Vec<(u64, u64, u64, u64)> =
            parallel_map(config.trials, config.threads, |trial| {
                let mut rng = seeder.child(&format!("c{every}")).stream(trial as u64);
                let root = rng.gen::<u64>();
                let plan = FaultPlan::random_churn(rng.gen::<u64>(), n, events, 4, events / 8);
                let crash_at = rng.gen_range(1..=events);
                let cut: f64 = rng.gen_range(0.0..1.0);
                let space = UniformSpace::new(n);

                // The uninterrupted reference: same pure function.
                let mut reference = ServeEngine::new(space.clone(), serve_config, root);
                reference.run_with_faults(events, &plan);

                let dir = std::env::temp_dir().join(format!(
                    "geo2c-durability-{}-{}",
                    std::process::id(),
                    UNIQUE.fetch_add(1, Ordering::Relaxed)
                ));
                let mut durable =
                    DurableEngine::create(&dir, space.clone(), serve_config, root, every)
                        .expect("create journal dir");
                while durable.engine().arrivals() < crash_at {
                    let step = chunk.min(crash_at - durable.engine().arrivals());
                    durable.run_journaled(step, &plan).expect("journaled run");
                }
                let journal_bytes = durable.journal_bytes();
                let checkpoints = durable.checkpoints();
                drop(durable);

                // Crash: tear the journal at a random byte of its body.
                let journal_path = dir.join(geo2c_serve::journal::JOURNAL_FILE);
                let bytes = std::fs::read(&journal_path).expect("read journal");
                let body = bytes.len() - Header::LEN;
                let keep = Header::LEN + (body as f64 * cut) as usize;
                std::fs::write(&journal_path, &bytes[..keep]).expect("tear journal");

                let resumed: Resumed<_, Vec<u32>, DepartureWheel> =
                    Recovery::resume(&dir, space, serve_config, root, &plan, vec![0u32; n])
                        .expect("recovery");
                let replayed = resumed.replayed;
                let mut engine = resumed.engine;
                engine.run_with_faults(events - engine.arrivals(), &plan);
                assert_eq!(
                    engine.state(),
                    reference.state(),
                    "recovered run diverged from the uninterrupted run \
                     (interval {every}, crash at {crash_at})"
                );
                let _ = std::fs::remove_dir_all(&dir);
                (replayed, journal_bytes, checkpoints, crash_at)
            });
        let mut replay = RunningStats::new();
        let mut replay_max = 0u64;
        let mut bytes_per_event = RunningStats::new();
        let mut checkpoints = RunningStats::new();
        for &(replayed, journal_bytes, ckpts, crash_at) in &rows {
            replay.push(replayed as f64);
            replay_max = replay_max.max(replayed);
            bytes_per_event.push(journal_bytes as f64 / crash_at as f64);
            checkpoints.push(ckpts as f64);
        }
        result.push(
            Cell::new()
                .coord("interval", Json::from_u64(every))
                .metric("replay_mean", Json::num(replay.mean()))
                .metric("replay_max", Json::from_u64(replay_max))
                .metric("journal_bytes_per_event", Json::num(bytes_per_event.mean()))
                .metric("checkpoints_mean", Json::num(checkpoints.mean())),
        );
        progress(&format!("durability: interval {every} done"));
    }
    result
}

/// Renders `EXPERIMENTS.md` from the reference result set.
///
/// The output is a pure function of the results (no timestamps, no git
/// revisions), so `./tables.sh` regenerates it byte-identically from the
/// committed seeds as long as the algorithms are unchanged.
#[must_use]
pub fn experiments_markdown(set: &geo2c_report::ResultSet) -> String {
    use geo2c_report::markdown::{render_markdown, render_markdown_pivot};
    use std::fmt::Write as _;

    let mut out = String::new();
    out.push_str("# EXPERIMENTS — committed expectations for the table suite\n\n");
    out.push_str("<!-- Generated by `./tables.sh`. Do not edit by hand: rerun the script. -->\n\n");
    let _ = writeln!(
        out,
        "Every number below is a deterministic function of the committed root \
seed (`{}`): all randomness flows through `geo2c_util::rng::StreamSeeder`, \
which derives an independent stream per `(experiment, cell, trial)`, so any \
cell reproduces bit-for-bit on any platform and thread count.",
        set.provenance.seed
    );
    out.push('\n');
    out.push_str(
        "* **Regenerate:** `./tables.sh` (≈1.5 minutes single-core) rewrites this file \
byte-identically, and the `ResultSet` JSON under [`results/`](results/) identically \
except for the provenance `git_rev` stamp (which records the producing checkout) — \
with one carve-out: the `~`-prefixed wall-clock columns (the scaling table's \
`~balls_per_s`) record the producing machine's throughput and change with every \
rewrite, which is why `--check` excludes them.\n\
* **Check:** `./tables.sh --check` reruns the suite and diffs it against the committed \
expectations with the two-sample statistics in `geo2c_util::stats` \
(`two_proportion_z` per distribution bucket, Welch's z for means; a difference fails at \
z > 4 *and* more than a 2-percentage-point / 0.05-mean absolute shift), and verifies \
this file is the exact rendering of `results/*.json`. `ci.sh` gates every build on \
both `./tables.sh --quick --check` (seconds, against \
[`results/quick/`](results/quick/)) and the reference-scale `./tables.sh --check` \
(≈1.5 minutes).\n\
* **Paper scale:** `./tables.sh --full` runs the paper's own parameters \
(1000 trials, ring `n` up to 2^24, torus up to 2^20, K-torus up to 2^16 — hours \
of CPU) and writes `results/full/`.\n\n",
    );
    out.push_str(
        "Each cell shows the distribution of the **maximum load** over the trials, \
in the paper's `value: percent` format, with the distribution mean beneath. \
The heavily-loaded, serving, resilience, churn, replication, Chord DHT, \
streaming-scale, and durability \
tables at the end instead report scalar metric columns (means over the trials, compared \
*exactly* by `--check` — they are deterministic in the seed); the serving \
distribution column aggregates the end-state per-server loads across all \
trials. Metric columns \
whose name starts with `~` (the scaling table's `~balls_per_s`) are \
*informational* — wall-clock measurements that vary by machine — and are \
excluded from `--check`'s exact compare.\n\n",
    );

    let pivots: [(&str, &str, &str); 6] = [
        ("table1", "n", "d"),
        ("table2", "n", "d"),
        ("table3", "n", "tie_break"),
        ("dimension", "d", "K"),
        ("ring_chart", "d", "n"),
        ("tabulation", "d", "sampler"),
    ];
    for (id, row_key, col_key) in pivots {
        if let Some(result) = set.experiment(id) {
            out.push_str(&render_markdown_pivot(result, row_key, col_key));
            out.push('\n');
        }
    }
    // The metric-bearing experiments render flat (one row per cell,
    // scalar columns + the aggregated load distribution where present).
    for id in [
        "heavy",
        "serving",
        "resilience",
        "churn",
        "replication",
        "dht",
        "scaling",
        "durability",
    ] {
        if let Some(result) = set.experiment(id) {
            out.push_str(&render_markdown(result));
            out.push('\n');
        }
    }

    out.push_str(
        "## RNG stream contract v2 (per-ball lanes)\n\n\
Every trial's randomness is *laned*: the trial draws a single `u64` root \
from its `StreamSeeder` stream, and ball `b` then draws its `d` probe \
coordinates from the counter-keyed generator \
`SplitMix64::mixed(root, b, PROBE_TAG)` and resolves load ties on \
`SplitMix64::mixed(root, b, TIE_TAG)` (`geo2c_util::rng::BallLanes`; \
reference vectors pin the keying). Because no two balls — and no ball's \
probe and tie draws — share a stream, the insertion engine batches probe \
blocks of 64 balls per `Space::sample_owners_lanes` call for **every** \
independent-probe strategy, the paper-default random tie-break included \
(under contract v1 a shared stream forced random-tie runs onto a \
ball-at-a-time path). The batched engine is *exactly* equal to the \
un-batched lane-sequential process — `geo2c-core/tests/lane_equivalence.rs` \
proves byte equality across all spaces × d × tie policies — so only the \
contract migration itself could move the numbers.\n\n\
That migration happened **once**, in the PR introducing this section: the \
v1-stream expectations are archived under [`results/v1/`](results/v1/), \
and `./tables.sh --check --against results/v1` diffs the current numbers \
against them with the two-sample statistics below — the committed \
evidence that the distribution *law* is unchanged and only the stream \
changed. (Dahlgaard et al., SODA 2016, give the theory backdrop: \
two-choices max load is robust to far weaker randomness than either \
stream, which the `tabulation` table above tests directly.)\n\n\
The serving engine adds two lane families to the same contract. An \
arrival whose primary placement would shed redraws up to `r` fresh probe \
sets (probes *and* tie-breaks) from the event's \
`SplitMix64::mixed(root, event, RETRY_TAG)` lane — consumed only on the \
would-shed path, so the `r = 0` engine never touches it and the serving \
table above is byte-identical whether or not retries exist in the build. \
Fault schedules are deterministic data, not hidden randomness: a \
`geo2c_serve::FaultPlan` pins every crash/recovery to an arrival-event \
timestamp (the resilience table's region outages are plan literals), and \
randomized schedules draw fault `i`'s crash time, victim, and downtime \
from `SplitMix64::mixed(root, i, FAULT_TAG)` — one more replayable lane, \
decorrelated from every probe/tie/life/retry stream. The chaos suite \
(`geo2c-serve/tests/fault_recovery.rs`) pins the consequences: chunked, \
resumed, and checkpoint/restored runs under a plan are byte-identical to \
the one-shot run, and arrivals are conserved across arbitrary \
fail/recover churn.\n\n\
## Performance methodology\n\n\
The numbers above are *distributions*; the speed that makes them cheap to \
regenerate is tracked separately under [`results/bench/`](results/bench/):\n\n\
* **Run:** `cargo run --release -p geo2c-bench --bin run_benches` times the \
hot-path suite (owner lookups on the ring, the torus, and the K-torus for \
K ∈ {3, 4}, the least-of-`d` load-read micro-benches \
`substrate/min_load_{flat,packed}`, end-to-end random-tie-break \
`run_trial` insertions on each geometry — `trial/*_random` — the \
arc-left ablation `trial/kd3_d2_left`, and the serving-engine steady \
state and faulted-run trials `trial/serving_*`) with the criterion \
shim's technique — adaptive \
~20 ms windows, best of N (`--repeats N`, default 3), ns/iter — and \
writes `results/bench/baseline.json` (`--quick` for the CI scale, \
`results/bench/quick.json`). Each file is a normal \
`geo2c_report::ResultSet` with seed + git-revision provenance.\n\
* **Gate:** `run_benches --check [--tolerance PCT]` reruns the suite and \
fails if any benchmark is more than `PCT`% slower than its committed \
baseline (default 50%; `ci.sh` gates at 200% because baselines store one \
reference machine's absolute timings, making the cross-machine gate a \
catastrophe catch rather than a micro-regression gate). Improvements \
never fail; a bench appearing or disappearing always does.\n\
* **Prove:** `run_benches --diff AFTER.json BEFORE.json` prints per-bench \
speedups, and `--min-speedup R --only SUBSTR,SUBSTR` turns the diff into \
a gate. Pre-optimization measurements are archived per PR by \
`run_benches --archive [LABEL]` as `results/bench/before_<LABEL>.json` \
(auto-numbered `before_prN.json` without a label): `before_pr9.json` \
holds the captures just before the timing-wheel departure scheduler and \
the batched serving loop (1.5×+/8× on the serving steady-state/faulted \
trials — see below), `before_pr7.json` \
holds the captures just before the packed/sharded load-state layer \
(its gate is *no slower*, not faster — see below), `before_pr5.json` \
the captures just before the contract-v2 lane engine \
(1.9×/1.8×/1.9× end-to-end random-tie trials on ring 2^20 / torus 2^16 / \
3-torus 2^13 against the committed `baseline.json`, both sides measured \
back-to-back on the reference core), `before_pr4.json` those before the \
K-d owner port, and `before_pr3.json` those before PR 3's ring/torus \
overhaul — the committed tree carries its own before/after trajectory.\n\
* **Ablations:** `cargo bench -p geo2c-bench --bench substrate` compares \
the shipped owner paths against their oracles (CSR grid vs brute force, \
bucket-accelerated successor vs binary search, K-d orthant fast path vs \
brute force) without persisting anything.\n\n\
Hot-path refactors must not move the tables: under stream contract v2 \
the batched engine is byte-equal to the lane-sequential reference (the \
`lane_equivalence` suite), so `./tables.sh --check` passing with \
*unchanged* committed JSON remains part of any perf PR's evidence — the \
one exception was the v1→v2 contract migration itself, documented in the \
section above.\n\n\
### Memory: packed and sharded load states\n\n\
The streaming-scale table above tracks **bytes/bin** alongside \
throughput: the insertion engine is generic over its \
`geo2c_core::load::LoadState` backing, and the packed backings store a \
bin's load in 4 or 8 bits in-line (loads above the in-line cap — 14 for \
nibbles, 254 for bytes — spill to a sparse side table behind a sentinel, \
so arbitrary loads still read exactly). That takes the live working set \
for 10^8 bins from 400 MB (flat `u32`) to ~50 MB (nibble), which is the \
difference between streaming from DRAM and fitting hot shards in cache. \
The sharded variant splits the packed array into independently allocated \
64 KB blocks whose bumps never touch another shard's cache lines — on \
this single-core reference box it is *asserted byte-identical* to the \
flat engine (the `loadvec_equivalence` and `packed_equivalence` proptest \
suites, plus the in-experiment max-load equality assert), and the \
shard-independence is what a multi-core build would exploit; only the \
determinism, not the concurrency win, is claimable here. Every backing \
replays the same RNG streams as the flat vector, so the committed tables \
are unchanged by construction; the `trial/scaling_*` benches and the \
`before_pr7.json` diff pin the *no slower* half of the claim.\n\n\
### Scheduling: the departure timing wheel\n\n\
The serving engine's departure deadlines live in a two-level hierarchical \
timing wheel (`geo2c_serve::wheel::DepartureWheel`, 2 × 1024 slots plus \
an overflow list): O(1) schedule, O(due) drain, and — when a server \
crashes — an O(1) *lazy purge* that bumps the server's epoch so its \
stale entries are dropped as the drain reaches them, instead of \
rebuilding the queue. The event loop batches arrivals in 64-event \
blocks, pre-drawing each block's probe owners before resolving it \
(`geo2c_core::sim::EventOwnerBlocks`). Both changes are invisible to the \
numbers above: under stream contract v2 same-deadline departures \
commute, so the wheel-backed engine is byte-equal to the binary-heap \
engine it replaced — the heap stays on as `wheel::HeapQueue`, the oracle \
of the `wheel_oracle` proptest suite (queue-level lockstep scripts plus \
whole-engine checkpoint equality under faults), and `ci.sh` pins the \
speedup itself as committed evidence: `baseline.json` must show ≥ 1.5× \
over `before_pr9.json` on `trial/serving_d2_random` and \
`trial/serving_faults_d2` (the faulted trial gains the most — the old \
heap held every purged server's dead entries until their deadlines).\n\n\
### Durability: checkpoints and the write-ahead journal\n\n\
The durability table above measures the serving engine's crash-recovery \
subsystem (`geo2c_serve::journal`). Because stream contract v2 makes the \
engine state a pure function of `(space, config, root, plan, events)`, \
the on-disk format persists **no event payloads**: a journal directory \
holds one `checkpoint.bin` (a versioned binary `EngineState` image in a \
single CRC-guarded frame, always staged as `checkpoint.tmp` and \
atomically renamed into place) and one append-only `journal.bin` of \
17-byte progress frames, each saying \"events below `t` are durable\". \
Both files open with a magic/version header that binds the lane root and \
a fingerprint of `(servers, config)`, so a checkpoint can never be \
restored into an engine it was not taken from. Every `C` events the \
state is checkpointed and the journal truncated back to its header — \
the checkpoint subsumes it — so steady-state disk cost is one state \
image plus ~17·8/C bytes per event at the suite's eight-chunks-per-\
interval cadence (the `journal_bytes_per_event` column).\n\n\
Recovery (`geo2c_serve::Recovery::resume`) distinguishes *crash \
artifacts* from *corruption*: a frame whose damage reaches end-of-file \
is a torn tail (the residue of dying mid-append) and is truncated away, \
while a bad CRC with durable frames after it fails loudly — recovery \
never silently invents or drops durable history. The restored engine \
then replays deterministically from the checkpoint to the last durable \
marker, and the replayed state is **byte-equal** to the uninterrupted \
run — not approximately recovered, provably identical. That replay-\
equality guarantee is pinned three ways: the `crash_recovery` proptest \
suite drives arbitrary byte truncations, tail bit flips, and mid-rename \
crashes across load backings and both schedulers; every durability-\
table trial asserts `recovered ≡ uninterrupted` before reporting its \
cell; and the `trial/serving_d2_journaled` bench (gated in `ci.sh` at \
≤ 1.25× `trial/serving_d2_random`) pins the journal discipline's \
steady-state overhead. The `replay_mean` column is the recovery-time \
half of the trade-off the checkpoint interval buys: larger `C` writes \
fewer state images but replays more events after a crash.\n\n",
    );
    out.push_str(
        "## Reading the JSON\n\n\
Each `results/*.json` file is a `geo2c_report::ResultSet`: a `provenance` \
block (tool, version, git revision of the producing checkout, root seed) \
plus one experiment with its `spec` (id, trials, seed, sweep parameters — \
compared verbatim by `--check`, so stale expectations are flagged as *spec \
drift* rather than silently diffed) and its `cells`. A cell's \
`distribution` is a sorted `[max_load, trial_count]` array; `coords` \
locates the cell in the sweep.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig::new(5).with_seed(3).with_threads(2)
    }

    #[test]
    fn scales_are_consistent_and_named() {
        for scale in [&QUICK, &REFERENCE, &FULL] {
            assert_eq!(Scale::by_name(scale.name), Some(scale));
            assert!(!scale.ring_sizes().is_empty());
            assert!(!scale.torus_sizes().is_empty());
            assert!(scale.ring_trials > 0 && scale.torus_trials > 0);
        }
        assert_eq!(Scale::by_name("nope"), None);
        // quick < reference < full in every cost dimension.
        let ladder = ["quick", "reference", "full"].map(|name| Scale::by_name(name).unwrap());
        for pair in ladder.windows(2) {
            assert!(pair[0].ring_trials <= pair[1].ring_trials);
            assert!(pair[0].ring_exps.last() <= pair[1].ring_exps.last());
            assert!(pair[0].torus_exps.last() <= pair[1].torus_exps.last());
            assert!(pair[0].dim_exp <= pair[1].dim_exp);
            assert!(pair[0].serve_exp <= pair[1].serve_exp);
            assert!(pair[0].serve_trials <= pair[1].serve_trials);
            assert!(pair[0].resil_exp <= pair[1].resil_exp);
            assert!(pair[0].resil_trials <= pair[1].resil_trials);
            assert!(pair[0].churn_exp <= pair[1].churn_exp);
            assert!(pair[0].churn_trials <= pair[1].churn_trials);
            assert!(pair[0].repl_exp <= pair[1].repl_exp);
            assert!(pair[0].repl_trials <= pair[1].repl_trials);
            assert!(pair[0].dht_exp <= pair[1].dht_exp);
            assert!(pair[0].dht_trials <= pair[1].dht_trials);
            assert!(pair[0].scaling_exp <= pair[1].scaling_exp);
            assert!(pair[0].scaling_trials <= pair[1].scaling_trials);
            assert!(pair[0].durability_exp <= pair[1].durability_exp);
            assert!(pair[0].durability_trials <= pair[1].durability_trials);
        }
        // The K-torus sweep runs at paper-scale n from the reference
        // scale up (the K-d owner port made this a ~0.5 s/trial sweep).
        let reference = Scale::by_name("reference").unwrap();
        assert!(reference.dim_exp >= 13);
        // The streaming-scale comparison runs at the paper's largest
        // ring n (2^24) in the committed expectations.
        assert!(reference.scaling_exp >= 24);
    }

    #[test]
    fn table1_produces_a_cell_per_configuration() {
        let result = table1(&[32, 64], &tiny_config());
        assert_eq!(result.spec.id, "table1");
        assert_eq!(result.cells.len(), 8); // 2 sizes x 4 d values
        for cell in &result.cells {
            let dist = cell.distribution.as_ref().expect("distribution");
            assert_eq!(dist.total(), 5);
        }
        assert_eq!(result.cells[0].label(), "n=32, d=1");
    }

    #[test]
    fn table3_orders_strategies_like_the_paper() {
        let names: Vec<&str> = table3_strategies(true)
            .iter()
            .map(|(name, _)| *name)
            .collect();
        assert_eq!(
            names,
            [
                "arc-larger",
                "arc-random",
                "arc-left",
                "arc-smaller",
                "voecking"
            ]
        );
        let result = table3(&[32], &tiny_config(), false);
        assert_eq!(result.cells.len(), 4);
    }

    #[test]
    fn dimension_covers_d_2_through_8_for_k_3_and_4() {
        let result = dimension(32, &tiny_config());
        // d ∈ {1..8} for K ∈ {3, 4}.
        assert_eq!(result.cells.len(), 16);
        for k in [3u64, 4] {
            for d in 2u64..=8 {
                assert!(
                    result.cells.iter().any(|c| {
                        c.coords
                            .iter()
                            .any(|(key, v)| key == "K" && v.as_u64() == Some(k))
                            && c.coords
                                .iter()
                                .any(|(key, v)| key == "d" && v.as_u64() == Some(d))
                    }),
                    "missing cell K={k} d={d}"
                );
            }
        }
    }

    #[test]
    fn ring_chart_sweeps_d_2_through_8() {
        let result = ring_chart(64, &tiny_config());
        assert_eq!(result.spec.id, "ring_chart");
        assert_eq!(result.cells.len(), 7);
        for (cell, d) in result.cells.iter().zip(2u64..=8) {
            assert!(cell
                .coords
                .iter()
                .any(|(k, v)| k == "d" && v.as_u64() == Some(d)));
            assert_eq!(cell.distribution.as_ref().expect("dist").total(), 5);
        }
    }

    #[test]
    fn tabulation_compares_both_samplers_cell_per_d() {
        let result = tabulation(64, &tiny_config());
        assert_eq!(result.spec.id, "tabulation");
        // 2 samplers × d ∈ {1, 2}.
        assert_eq!(result.cells.len(), 4);
        for sampler in TABULATION_SAMPLERS {
            for d in [1u64, 2] {
                let cell = result
                    .cells
                    .iter()
                    .find(|c| {
                        c.coords
                            .iter()
                            .any(|(k, v)| k == "sampler" && v.as_str() == Some(sampler))
                            && c.coords
                                .iter()
                                .any(|(k, v)| k == "d" && v.as_u64() == Some(d))
                    })
                    .unwrap_or_else(|| panic!("missing cell {sampler} d={d}"));
                assert_eq!(cell.distribution.as_ref().expect("distribution").total(), 5);
            }
        }
        // The two samplers are genuinely different processes (almost
        // surely different empirical distributions at some cell).
        let dist = |sampler: &str, d: u64| {
            result
                .cells
                .iter()
                .find(|c| {
                    c.coords
                        .iter()
                        .any(|(k, v)| k == "sampler" && v.as_str() == Some(sampler))
                        && c.coords
                            .iter()
                            .any(|(k, v)| k == "d" && v.as_u64() == Some(d))
                })
                .and_then(|c| c.distribution.clone())
        };
        assert!(
            (1..=2).any(|d| dist("splitmix-lane", d) != dist("tabulation-lane", d)),
            "samplers produced identical empirical distributions — stream reuse?"
        );
    }

    #[test]
    fn serving_covers_every_scenario_with_conserving_cells() {
        let n = 32;
        let config = tiny_config();
        let result = serving(n, &config);
        assert_eq!(result.spec.id, "serving");
        assert_eq!(result.cells.len(), SERVING_SCENARIOS.len());
        for (cell, (d, capacity)) in result.cells.iter().zip(SERVING_SCENARIOS) {
            assert!(cell
                .coords
                .iter()
                .any(|(k, v)| k == "d" && v.as_u64() == Some(d as u64)));
            // The distribution aggregates every server of every trial.
            let dist = cell.distribution.as_ref().expect("load distribution");
            assert_eq!(dist.total(), (config.trials * n) as u64);
            let metric = |key: &str| {
                cell.metrics
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_f64())
                    .unwrap_or_else(|| panic!("missing metric {key}"))
            };
            assert!(metric("max_load") >= metric("p99_load"));
            assert!(metric("p99_load") >= metric("mean_load"));
            match capacity {
                Some(cap) => {
                    assert!(metric("max_load") <= f64::from(cap));
                    assert!(metric("shed_pct") >= 0.0);
                }
                None => assert_eq!(metric("shed_pct"), 0.0),
            }
        }
        // Deterministic in the seed: the metrics are compared exactly.
        assert_eq!(serving(n, &config), result);
    }

    #[test]
    fn resilience_covers_the_steady_grid_and_the_transient_curve() {
        let n = 64;
        let config = tiny_config();
        let result = resilience(n, &config);
        assert_eq!(result.spec.id, "resilience");
        // Steady: 2 fractions × d ∈ {2, 3} × 3 retry budgets; transient:
        // 3 phases × 3 retry budgets. All metric-only.
        assert_eq!(result.cells.len(), 12 + 9);
        let metric = |cell: &Cell, key: &str| {
            cell.metrics
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_f64())
                .unwrap_or_else(|| panic!("missing metric {key}"))
        };
        let coord = |cell: &Cell, key: &str| {
            cell.coords
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing coord {key}"))
        };
        for cell in &result.cells {
            assert!(cell.distribution.is_none());
            // The books must balance within every cell: admitted +
            // shed = 100% of arrivals, and the unavailable sheds are a
            // subset of all sheds.
            let shed = metric(cell, "shed_pct");
            assert!((metric(cell, "availability_pct") + shed - 100.0).abs() < 1e-9);
            assert!(metric(cell, "unavail_pct") <= shed + 1e-9);
            assert!(metric(cell, "max_load") >= metric(cell, "p99_load"));
            // r = 0 never draws the retry lane, so it can rescue nothing.
            if coord(cell, "r").as_u64() == Some(0) {
                assert_eq!(metric(cell, "retry_admit_pct"), 0.0);
            }
        }
        // A 30% outage at d = 2 sheds unavailable arrivals; retries
        // strictly help at the same fault plan and stream.
        let steady = |r: u64| {
            result
                .cells
                .iter()
                .find(|c| {
                    coord(c, "phase").as_str() == Some("steady")
                        && coord(c, "fail_pct").as_f64() == Some(30.0)
                        && coord(c, "d").as_u64() == Some(2)
                        && coord(c, "r").as_u64() == Some(r)
                })
                .expect("steady cell")
        };
        assert!(metric(steady(0), "unavail_pct") > 0.0);
        assert!(metric(steady(2), "shed_pct") < metric(steady(0), "shed_pct"));
        assert!(metric(steady(2), "retry_admit_pct") > 0.0);
        // The transient curve: shedding spikes during the outage and
        // falls back after recovery, at every retry budget.
        let transient = |phase: &str, r: u64| {
            result
                .cells
                .iter()
                .find(|c| {
                    coord(c, "phase").as_str() == Some(phase) && coord(c, "r").as_u64() == Some(r)
                })
                .expect("transient cell")
        };
        for r in [0u64, 1, 2] {
            let outage = metric(transient("outage", r), "shed_pct");
            assert!(outage > metric(transient("pre-outage", r), "shed_pct"));
            assert!(outage > metric(transient("recovered", r), "shed_pct"));
        }
        // Deterministic in the seed: exact metric replay.
        assert_eq!(resilience(n, &config), result);
    }

    #[test]
    fn replication_matches_the_former_binary_cell_grid() {
        let config = tiny_config();
        let result = replication(32, &config);
        assert_eq!(result.spec.id, "replication");
        // 2 schemes × r ∈ {1, 2, 3}, metric-only cells.
        assert_eq!(result.cells.len(), 6);
        let metric = |cell: &Cell, key: &str| {
            cell.metrics
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_f64())
                .unwrap_or_else(|| panic!("missing metric {key}"))
        };
        for cell in &result.cells {
            assert!(cell.distribution.is_none());
            assert!(metric(cell, "availability_pct") > 0.0);
            assert!(metric(cell, "max_load_mean") >= metric(cell, "mean_load") / 2.0);
        }
        assert_eq!(result.cells[0].label(), "scheme=\"consistent\", replicas=1");
        // More replicas buy availability (≈ 1 − 0.3^r) under either
        // placement policy: r = 3 beats r = 1 by a wide margin.
        for scheme_cells in result.cells.chunks(3) {
            assert!(
                metric(&scheme_cells[2], "availability_pct")
                    > metric(&scheme_cells[0], "availability_pct")
            );
        }
        assert_eq!(replication(32, &config), result);
    }

    #[test]
    fn churn_matches_the_former_binary_cell_grid() {
        let config = tiny_config();
        let result = churn(16, &config);
        assert_eq!(result.spec.id, "churn");
        // 3 schemes × 3 failure fractions, metric-only cells.
        assert_eq!(result.cells.len(), 9);
        for cell in &result.cells {
            assert!(cell.distribution.is_none());
            for key in ["max_before", "max_after", "moved_pct"] {
                assert!(
                    cell.metrics.iter().any(|(k, _)| k == key),
                    "missing metric {key}"
                );
            }
        }
        assert_eq!(
            result.cells[0].label(),
            "scheme=\"consistent\", fail_pct=10"
        );
        assert_eq!(churn(16, &config), result);
    }

    #[test]
    fn dht_matches_the_former_binary_cell_grid() {
        let config = tiny_config();
        let result = dht(32, &config);
        assert_eq!(result.spec.id, "dht");
        // 4 placement schemes, metric-only cells.
        assert_eq!(result.cells.len(), 4);
        let metric = |cell: &Cell, key: &str| {
            cell.metrics
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_f64())
                .unwrap_or_else(|| panic!("missing metric {key}"))
        };
        for cell in &result.cells {
            assert!(cell.distribution.is_none());
            for key in [
                "max_load_mean",
                "load_sigma",
                "mean_hops",
                "max_hops",
                "redirect_pct",
                "fingers_per_node",
            ] {
                assert!(
                    cell.metrics.iter().any(|(k, _)| k == key),
                    "missing metric {key}"
                );
            }
            // Every scheme stores at least the mean load somewhere.
            assert!(metric(cell, "max_load_mean") >= 16.0);
        }
        assert_eq!(result.cells[0].label(), "scheme=\"consistent\"");
        // Only the redirecting d-choice schemes pay redirect hops, and
        // only the virtual-server scheme multiplies the routing state.
        assert_eq!(metric(&result.cells[0], "redirect_pct"), 0.0);
        assert_eq!(metric(&result.cells[1], "redirect_pct"), 0.0);
        assert!(metric(&result.cells[2], "redirect_pct") > 0.0);
        assert_eq!(metric(&result.cells[0], "fingers_per_node"), 64.0);
        assert_eq!(metric(&result.cells[1], "fingers_per_node"), 5.0 * 64.0);
        // Both mitigations beat plain consistent hashing on max load.
        let consistent = metric(&result.cells[0], "max_load_mean");
        assert!(metric(&result.cells[1], "max_load_mean") < consistent);
        assert!(metric(&result.cells[2], "max_load_mean") < consistent);
        assert_eq!(dht(32, &config), result);
    }

    #[test]
    fn durability_recovers_exactly_at_every_interval() {
        let config = tiny_config();
        let result = durability(32, &config);
        assert_eq!(result.spec.id, "durability");
        // One metric-only cell per checkpoint interval. (The constructor
        // itself asserts recovered ≡ uninterrupted in every trial.)
        assert_eq!(result.cells.len(), DURABILITY_INTERVALS.len());
        let metric = |cell: &Cell, key: &str| {
            cell.metrics
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_f64())
                .unwrap_or_else(|| panic!("missing metric {key}"))
        };
        for (cell, every) in result.cells.iter().zip(DURABILITY_INTERVALS) {
            assert!(cell.distribution.is_none());
            assert!(cell
                .coords
                .iter()
                .any(|(k, v)| k == "interval" && v.as_u64() == Some(every)));
            // Replay never exceeds the events since the last checkpoint.
            assert!(metric(cell, "replay_max") < every as f64);
            assert!(metric(cell, "replay_mean") <= metric(cell, "replay_max"));
            // 17-byte frames, eight chunks per interval: ~136/C bytes
            // per event, and never more than one frame per event.
            let bytes = metric(cell, "journal_bytes_per_event");
            assert!(bytes > 0.0 && bytes <= 17.0, "{bytes} bytes/event");
            assert!(metric(cell, "checkpoints_mean") >= 0.0);
        }
        // Larger intervals shift cost from checkpoint writes to replay.
        let first = &result.cells[0];
        let last = &result.cells[result.cells.len() - 1];
        assert!(metric(last, "replay_mean") > metric(first, "replay_mean"));
        assert!(metric(last, "checkpoints_mean") < metric(first, "checkpoints_mean"));
        assert!(metric(last, "journal_bytes_per_event") < metric(first, "journal_bytes_per_event"));
        // Deterministic in the seed: exact metric replay (the scratch
        // directory never leaks into the numbers).
        assert_eq!(durability(32, &config), result);
    }

    /// Strips the `~`-prefixed informational metrics (wall-clock
    /// throughput) so the rest of the result can be compared exactly.
    fn strip_informational(mut result: ExperimentResult) -> ExperimentResult {
        for cell in &mut result.cells {
            cell.metrics.retain(|(k, _)| !k.starts_with('~'));
        }
        result
    }

    #[test]
    fn scaling_pins_every_backing_to_the_flat_reference() {
        let n = 256;
        let config = tiny_config();
        let result = scaling(n, &config);
        assert_eq!(result.spec.id, "scaling");
        // 4 backings × d ∈ {1, 2}, metric-only cells. (The constructor
        // itself asserts max-load equality with flat-u32 per d.)
        assert_eq!(result.cells.len(), SCALING_BACKINGS.len() * 2);
        let metric = |cell: &Cell, key: &str| {
            cell.metrics
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_f64())
                .unwrap_or_else(|| panic!("missing metric {key}"))
        };
        for cell in &result.cells {
            assert!(cell.distribution.is_none());
            assert!(metric(cell, "max_load") >= 1.0);
            assert!(metric(cell, "~balls_per_s") > 0.0);
            let backing = cell
                .coords
                .iter()
                .find(|(k, _)| k == "backing")
                .and_then(|(_, v)| v.as_str())
                .expect("backing coord");
            let bytes = metric(cell, "bytes_per_bin");
            if backing == "flat-u32" {
                assert_eq!(bytes, 4.0);
            } else {
                // The headline memory claim: every compact backing stays
                // at or under 1.25 bytes/bin (nibble 0.5, byte 1.0, plus
                // any spill — absent at m = n scales).
                assert!(bytes <= 1.25, "{backing}: {bytes} bytes/bin");
            }
        }
        assert_eq!(result.cells[0].label(), "backing=\"flat-u32\", d=1");
        // Deterministic in the seed once the wall-clock column is
        // stripped — the contract `--check` relies on.
        assert_eq!(
            strip_informational(scaling(n, &config)),
            strip_informational(result)
        );
    }

    #[test]
    fn experiments_markdown_has_all_sections() {
        use geo2c_report::{Provenance, ResultSet};
        let config = tiny_config();
        let mut set = ResultSet::new(Provenance {
            tool: "t".into(),
            version: "v".into(),
            git_rev: "deadbeefcafe0123".into(),
            seed: config.seed,
        });
        set.push(table1(&[32], &config));
        set.push(table2(&[32], &config));
        set.push(table3(&[32], &config, true));
        set.push(dimension(32, &config));
        set.push(ring_chart(32, &config));
        set.push(tabulation(32, &config));
        set.push(heavy(32, &config));
        set.push(serving(32, &config));
        set.push(resilience(64, &config));
        set.push(churn(16, &config));
        set.push(replication(16, &config));
        set.push(dht(16, &config));
        set.push(scaling(64, &config));
        set.push(durability(16, &config));
        let md = experiments_markdown(&set);
        assert!(md.starts_with("# EXPERIMENTS"));
        for heading in [
            "## Table 1",
            "## Table 2",
            "## Table 3",
            "## Higher dimensions",
            "## Diminishing returns",
            "## Weak hashing",
            "## Heavily loaded",
            "## Online serving",
            "## Resilience",
            "## Churn",
            "## Replication",
            "## E11: Chord DHT",
            "## Streaming scale",
            "## Durability",
            "## RNG stream contract v2",
            "## Performance methodology",
            "### Memory: packed and sharded load states",
            "### Scheduling: the departure timing wheel",
            "### Durability: checkpoints and the write-ahead journal",
        ] {
            assert!(md.contains(heading), "missing {heading}");
        }
        // The resilience section must land between serving and churn
        // (suite order), and the methodology note must name both tags.
        let pos = |needle: &str| {
            md.find(needle)
                .unwrap_or_else(|| panic!("missing {needle}"))
        };
        assert!(pos("## Heavily loaded") < pos("## Online serving"));
        assert!(pos("## Online serving") < pos("## Resilience"));
        assert!(pos("## Resilience") < pos("## Churn"));
        assert!(pos("## Churn") < pos("## Replication"));
        assert!(pos("## Replication") < pos("## E11: Chord DHT"));
        assert!(pos("## E11: Chord DHT") < pos("## Streaming scale"));
        assert!(pos("## Streaming scale") < pos("## Durability"));
        assert!(md.contains("RETRY_TAG") && md.contains("FAULT_TAG"));
        assert!(md.contains("`./tables.sh --check`"));
        assert!(md.contains("seed (`3`)"));
        // Byte-identical regeneration: the git revision must not leak in
        // (it changes every commit; the numbers do not).
        assert!(!md.contains("deadbeefcafe0123"));
        // Rendering is a pure function of the set.
        assert_eq!(md, experiments_markdown(&set));
    }

    #[test]
    fn results_are_deterministic_in_the_seed() {
        let a = table1(&[32], &tiny_config());
        let b = table1(&[32], &tiny_config());
        assert_eq!(a, b);
        let c = table1(&[32], &SweepConfig::new(5).with_seed(4).with_threads(2));
        assert_ne!(a.spec.seed, c.spec.seed);
    }
}
