//! Crash-point injection suite for the durability layer: a process that
//! dies at *any* byte of its checkpoint/journal lifecycle must recover
//! to a state byte-equal to the run that never crashed.
//!
//! The harness simulates crashes the way they actually land on disk —
//! truncating the journal at an arbitrary byte offset, flipping bits in
//! the tail frame, forging the residue of a crash between the
//! checkpoint temp-file write and its rename (and between the rename
//! and the journal compaction) — then drives
//! [`Recovery::resume`] and replays to the reference horizon. Pinned
//! across the flat/packed/sharded load backings and both schedulers
//! (timing wheel and heap oracle):
//!
//! 1. **Truncation crashes.** Cutting the journal anywhere past its
//!    header loses at most the torn tail: resume lands on an earlier
//!    durable marker and replays to byte equality.
//! 2. **Tail bit flips.** Garbling the final frame (its CRC or payload)
//!    is indistinguishable from a torn append and recovers the same way.
//! 3. **Mid-rename / mid-compaction crashes.** A stale `checkpoint.tmp`
//!    is ignored and removed; journal frames the checkpoint already
//!    covers are skipped, not replayed twice.
//! 4. **Real corruption is loud.** A bad frame *followed by durable
//!    frames* — or any damage to the atomically-renamed checkpoint —
//!    returns [`JournalError::Corrupt`] instead of silently truncating.

use geo2c_core::load::{PackedLoads, PackedWidth, ShardedLoads};
use geo2c_core::space::{RingSpace, Space as _};
use geo2c_core::strategy::Strategy;
use geo2c_serve::engine::{ServeConfig, ServeEngine, SessionLife};
use geo2c_serve::fault::{FaultAction, FaultPlan};
use geo2c_serve::journal::{
    DurableEngine, JournalError, Recovery, Resumed, CHECKPOINT_FILE, CHECKPOINT_TMP, JOURNAL_FILE,
};
use geo2c_serve::wheel::{DepartureWheel, HeapQueue};
use geo2c_util::frame::Header;
use geo2c_util::rng::Xoshiro256pp;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use rand::RngCore;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique per-test scratch directory under the system temp dir (the
/// offline vendor set has no `tempfile` crate).
fn temp_dir(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let id = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("geo2c-crash-{}-{tag}-{id}", std::process::id()))
}

/// `(kind, ttl, mean)` → a [`SessionLife`] (no `prop_oneof!` in the
/// shim proptest; variant selection is an explicit generated flag).
fn lives() -> impl proptest::strategy::Strategy<Value = SessionLife> {
    (0u8..2, 1u64..120, 0.5f64..120.0).prop_map(|(kind, ttl, mean)| {
        if kind == 0 {
            SessionLife::Fixed(ttl)
        } else {
            SessionLife::Exponential { mean }
        }
    })
}

/// `0..=10`, with the top value standing in for "unbounded".
fn capacities() -> impl proptest::strategy::Strategy<Value = Option<u32>> {
    (0u32..11).prop_map(|cap| if cap == 10 { None } else { Some(cap) })
}

/// Raw `(event, server, kind)` triples → a [`FaultPlan`] over `n`
/// servers (out-of-range victims dropped, `kind == 1` recovers).
fn plan_from(raw: &[(u64, usize, u8)], n: usize) -> FaultPlan {
    FaultPlan::new(
        raw.iter()
            .filter(|&&(_, s, _)| s < n)
            .map(|&(at, s, kind)| {
                let action = if kind == 1 {
                    FaultAction::Recover(s)
                } else {
                    FaultAction::Crash(s)
                };
                (at, action)
            })
            .collect(),
    )
}

/// Runs the journaled engine to `p` events in `chunk`-sized calls (each
/// call appends at least one progress frame), as a long-running service
/// would.
#[allow(clippy::too_many_arguments)]
fn journaled_to(
    dir: &PathBuf,
    space: &RingSpace,
    config: ServeConfig,
    root: u64,
    every: u64,
    plan: &FaultPlan,
    p: u64,
    chunk: u64,
) -> DurableEngine<RingSpace> {
    let mut durable = DurableEngine::create(dir, space.clone(), config, root, every).unwrap();
    let mut left = p;
    while left > 0 {
        let step = chunk.min(left);
        durable.run_journaled(step, plan).unwrap();
        left -= step;
    }
    durable
}

/// Resumes from `dir` on every backing × scheduler combination, replays
/// each to `horizon`, and asserts byte equality with `reference`.
fn assert_recovers_everywhere(
    dir: &PathBuf,
    space: &RingSpace,
    config: ServeConfig,
    root: u64,
    plan: &FaultPlan,
    horizon: u64,
    reference: &geo2c_serve::engine::EngineState,
) {
    let n = space.num_servers();
    let packed: Resumed<_, PackedLoads, DepartureWheel> =
        Recovery::resume(dir, space.clone(), config, root, plan, PackedLoads::byte(n)).unwrap();
    assert!(
        packed.engine.arrivals() <= horizon,
        "resumed past the crash"
    );
    assert_eq!(
        packed.engine.arrivals(),
        packed.checkpoint_event + packed.replayed
    );
    let mut engine = packed.engine;
    engine.run_with_faults(horizon - engine.arrivals(), plan);
    assert_eq!(engine.state(), *reference, "packed+wheel recovery diverged");

    let flat: Resumed<_, Vec<u32>, HeapQueue> =
        Recovery::resume(dir, space.clone(), config, root, plan, vec![0; n]).unwrap();
    let mut engine = flat.engine;
    engine.run_with_faults(horizon - engine.arrivals(), plan);
    assert_eq!(engine.state(), *reference, "flat+heap recovery diverged");
}

proptest! {
    /// Property 1: truncate the journal at an arbitrary byte offset past
    /// its header — every cut point recovers to byte equality, on the
    /// packed/wheel and flat/heap engines alike.
    #[test]
    fn truncation_crash_recovers_byte_identically(
        seed in 0u64..1 << 48,
        n in 1usize..32,
        p in 1u64..240,
        q in 0u64..120,
        every in 1u64..80,
        chunk in 1u64..50,
        cut_frac in 0.0f64..1.0,
        d in 1usize..4,
        capacity in capacities(),
        life in lives(),
        retries in 0u32..3,
        raw_plan in proptest::collection::vec((0u64..360, 0usize..32, 0u8..2), 0..8),
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0x000C_4A54);
        let space = RingSpace::random(n, &mut rng);
        let root = rng.next_u64();
        let plan = plan_from(&raw_plan, n);
        let config = ServeConfig { strategy: Strategy::d_choice(d), capacity, life, retries };

        let mut reference = ServeEngine::new(space.clone(), config, root);
        reference.run_with_faults(p + q, &plan);
        let reference = reference.state();

        let dir = temp_dir("truncate");
        journaled_to(&dir, &space, config, root, every, &plan, p, chunk);

        // Crash: the journal survives only up to an arbitrary byte.
        let path = dir.join(JOURNAL_FILE);
        let len = fs::metadata(&path).unwrap().len();
        let body = len - Header::LEN as u64;
        let cut = Header::LEN as u64 + (body as f64 * cut_frac) as u64;
        fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(cut).unwrap();

        assert_recovers_everywhere(&dir, &space, config, root, &plan, p + q, &reference);
        fs::remove_dir_all(&dir).ok();
    }

    /// Property 2: flip any bit of the tail frame's CRC or payload — a
    /// crash-garbled append — and recovery truncates it and replays to
    /// byte equality. (A flipped *length* field can make the damage look
    /// like mid-file corruption, which is rejected loudly instead — see
    /// `corrupt_non_tail_frames_and_checkpoints_fail_loudly`.)
    #[test]
    fn tail_bit_flip_recovers_byte_identically(
        seed in 0u64..1 << 48,
        n in 1usize..24,
        p in 1u64..200,
        q in 0u64..100,
        every in 4u64..60,
        chunk in 1u64..40,
        flip_byte in 0usize..13,
        flip_bit in 0u32..8,
        d in 1usize..4,
        capacity in capacities(),
        life in lives(),
        retries in 0u32..3,
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0xF11B);
        let space = RingSpace::random(n, &mut rng);
        let root = rng.next_u64();
        let plan = FaultPlan::random_churn(root ^ 0xD0, n, (p + q).max(1), 3, 40);
        let config = ServeConfig { strategy: Strategy::d_choice(d), capacity, life, retries };

        let mut reference = ServeEngine::new(space.clone(), config, root);
        reference.run_with_faults(p + q, &plan);
        let reference = reference.state();

        let dir = temp_dir("bitflip");
        journaled_to(&dir, &space, config, root, every, &plan, p, chunk);

        let path = dir.join(JOURNAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        if bytes.len() > Header::LEN {
            // Each progress frame is 17 bytes: 4 length + 4 CRC +
            // 9 payload. Flip a bit in the final frame's CRC/payload
            // region (the 13 bytes after its length field).
            let at = bytes.len() - 13 + flip_byte;
            bytes[at] ^= 1 << flip_bit;
            fs::write(&path, &bytes).unwrap();
        }

        assert_recovers_everywhere(&dir, &space, config, root, &plan, p + q, &reference);
        fs::remove_dir_all(&dir).ok();
    }
}

/// Edge case: a directory that has only ever checkpointed — the empty
/// journal right after `create`, and the checkpoint-only journal right
/// after a compaction — resumes with zero replay.
#[test]
fn empty_and_checkpoint_only_journals_resume_with_zero_replay() {
    let mut rng = Xoshiro256pp::from_u64(71);
    let space = RingSpace::random(16, &mut rng);
    let config = ServeConfig {
        strategy: Strategy::two_choice(),
        capacity: Some(5),
        life: SessionLife::Exponential { mean: 30.0 },
        retries: 1,
    };
    let root = rng.next_u64();
    let plan = FaultPlan::empty();
    let dir = temp_dir("empty");

    let mut durable = DurableEngine::create(&dir, space.clone(), config, root, 128).unwrap();
    let fresh: Resumed<_, Vec<u32>, DepartureWheel> =
        Recovery::resume(&dir, space.clone(), config, root, &plan, vec![0; 16]).unwrap();
    assert_eq!(fresh.engine.arrivals(), 0, "nothing ran yet");
    assert_eq!((fresh.replayed, fresh.torn_bytes), (0, 0));

    // Run exactly to a checkpoint boundary: the journal compacts back to
    // its bare header, and the checkpoint alone carries the state.
    durable.run_journaled(256, &plan).unwrap();
    assert_eq!(durable.checkpoint_event(), 256);
    assert_eq!(
        fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(),
        Header::LEN as u64,
        "compaction must leave a header-only journal"
    );
    let resumed: Resumed<_, ShardedLoads, HeapQueue> = Recovery::resume(
        &dir,
        space.clone(),
        config,
        root,
        &plan,
        ShardedLoads::new(16, PackedWidth::Byte, 2),
    )
    .unwrap();
    assert_eq!(resumed.checkpoint_event, 256);
    assert_eq!(resumed.replayed, 0);
    let mut plain = ServeEngine::new(space, config, root);
    plain.run(256);
    assert_eq!(resumed.engine.state(), plain.state(), "sharded+heap resume");
    fs::remove_dir_all(&dir).ok();
}

/// Edge case: crash exactly between the checkpoint temp-file write and
/// its rename. The stale `checkpoint.tmp` must be ignored (and cleaned
/// up); recovery restores the *old* checkpoint and replays the journal.
#[test]
fn crash_between_checkpoint_write_and_rename_resumes_from_the_old_checkpoint() {
    let mut rng = Xoshiro256pp::from_u64(73);
    let n = 24;
    let space = RingSpace::random(n, &mut rng);
    let config = ServeConfig {
        strategy: Strategy::two_choice(),
        capacity: None,
        life: SessionLife::Exponential { mean: 50.0 },
        retries: 0,
    };
    let root = rng.next_u64();
    let plan = FaultPlan::random_churn(root ^ 0xD0, n, 500, 2, 60);
    let dir = temp_dir("midrename");

    // Interval beyond the horizon: checkpoint.bin stays the event-0 seed
    // image while the journal accumulates frames.
    let mut durable = DurableEngine::create(&dir, space.clone(), config, root, 10_000).unwrap();
    for _ in 0..5 {
        durable.run_journaled(100, &plan).unwrap();
    }
    let old_checkpoint = fs::read(dir.join(CHECKPOINT_FILE)).unwrap();
    let journal_bytes = fs::read(dir.join(JOURNAL_FILE)).unwrap();

    // Forge the residue of `checkpoint_now` dying before its rename: the
    // new image sits only in the temp file, the real checkpoint and the
    // journal are exactly as they were.
    durable.checkpoint_now().unwrap();
    let new_checkpoint = fs::read(dir.join(CHECKPOINT_FILE)).unwrap();
    fs::write(dir.join(CHECKPOINT_TMP), &new_checkpoint).unwrap();
    fs::write(dir.join(CHECKPOINT_FILE), &old_checkpoint).unwrap();
    fs::write(dir.join(JOURNAL_FILE), &journal_bytes).unwrap();

    let resumed: Resumed<_, Vec<u32>, DepartureWheel> =
        Recovery::resume(&dir, space.clone(), config, root, &plan, vec![0; n]).unwrap();
    assert_eq!(resumed.checkpoint_event, 0, "old checkpoint wins");
    assert_eq!(resumed.replayed, 500, "the journal carries all progress");
    assert!(
        !dir.join(CHECKPOINT_TMP).exists(),
        "stale temp file must be cleaned up"
    );
    let mut plain = ServeEngine::new(space, config, root);
    plain.run_with_faults(500, &plan);
    assert_eq!(resumed.engine.state(), plain.state());
    fs::remove_dir_all(&dir).ok();
}

/// Edge case: crash between the checkpoint rename and the journal
/// compaction. The journal still holds frames the new checkpoint already
/// covers; recovery must skip them (zero replay), not re-run them.
#[test]
fn crash_between_rename_and_compaction_skips_stale_frames() {
    let mut rng = Xoshiro256pp::from_u64(79);
    let n = 20;
    let space = RingSpace::random(n, &mut rng);
    let config = ServeConfig {
        strategy: Strategy::two_choice(),
        capacity: Some(8),
        life: SessionLife::Fixed(40),
        retries: 2,
    };
    let root = rng.next_u64();
    let plan = FaultPlan::empty();
    let dir = temp_dir("midcompact");

    let mut durable = DurableEngine::create(&dir, space.clone(), config, root, 10_000).unwrap();
    for _ in 0..4 {
        durable.run_journaled(75, &plan).unwrap();
    }
    let pre_compaction = fs::read(dir.join(JOURNAL_FILE)).unwrap();
    durable.checkpoint_now().unwrap(); // renames, then compacts
                                       // Resurrect the pre-compaction journal: exactly the on-disk state if
                                       // the crash hit between those two steps.
    fs::write(dir.join(JOURNAL_FILE), &pre_compaction).unwrap();

    let resumed: Resumed<_, Vec<u32>, DepartureWheel> =
        Recovery::resume(&dir, space.clone(), config, root, &plan, vec![0; n]).unwrap();
    assert_eq!(resumed.checkpoint_event, 300);
    assert_eq!(resumed.replayed, 0, "stale frames must not replay");
    let mut plain = ServeEngine::new(space, config, root);
    plain.run(300);
    assert_eq!(resumed.engine.state(), plain.state());
    fs::remove_dir_all(&dir).ok();
}

/// Edge case: damage that cannot be a crash artifact fails loudly. A
/// corrupt frame with durable frames after it, and any damage to the
/// atomically-renamed checkpoint, must both surface as
/// [`JournalError::Corrupt`] — never a silent truncation.
#[test]
fn corrupt_non_tail_frames_and_checkpoints_fail_loudly() {
    let mut rng = Xoshiro256pp::from_u64(83);
    let n = 12;
    let space = RingSpace::random(n, &mut rng);
    let config = ServeConfig {
        strategy: Strategy::two_choice(),
        capacity: None,
        life: SessionLife::Fixed(25),
        retries: 0,
    };
    let root = rng.next_u64();
    let plan = FaultPlan::empty();
    let dir = temp_dir("loud");

    let mut durable = DurableEngine::create(&dir, space.clone(), config, root, 10_000).unwrap();
    for _ in 0..4 {
        durable.run_journaled(50, &plan).unwrap();
    }

    // Flip a payload bit of the *first* frame: three intact frames
    // follow, so this is real corruption.
    let journal_path = dir.join(JOURNAL_FILE);
    let pristine = fs::read(&journal_path).unwrap();
    let mut bytes = pristine.clone();
    bytes[Header::LEN + 8] ^= 0x04;
    fs::write(&journal_path, &bytes).unwrap();
    let before = fs::metadata(&journal_path).unwrap().len();
    let result: Result<Resumed<_, Vec<u32>, DepartureWheel>, _> =
        Recovery::resume(&dir, space.clone(), config, root, &plan, vec![0; n]);
    match result {
        Err(JournalError::Corrupt { at, .. }) => assert_eq!(at, Header::LEN),
        other => panic!("corrupt non-tail frame must fail loudly, got {other:?}"),
    }
    assert_eq!(
        fs::metadata(&journal_path).unwrap().len(),
        before,
        "loud corruption must not truncate the file"
    );
    fs::write(&journal_path, &pristine).unwrap();

    // Any damage to the checkpoint: it was renamed atomically, so even a
    // torn-looking tail is corruption there.
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    let good = fs::read(&ckpt_path).unwrap();
    let mut bad = good.clone();
    let mid = Header::LEN + (bad.len() - Header::LEN) / 2;
    bad[mid] ^= 0x20;
    fs::write(&ckpt_path, &bad).unwrap();
    let result: Result<Resumed<_, Vec<u32>, DepartureWheel>, _> =
        Recovery::resume(&dir, space.clone(), config, root, &plan, vec![0; n]);
    assert!(
        matches!(result, Err(JournalError::Corrupt { .. })),
        "a damaged checkpoint must fail loudly"
    );
    fs::write(&ckpt_path, &good[..good.len() - 3]).unwrap();
    let result: Result<Resumed<_, Vec<u32>, DepartureWheel>, _> =
        Recovery::resume(&dir, space, config, root, &plan, vec![0; n]);
    assert!(
        matches!(result, Err(JournalError::Corrupt { .. })),
        "a short checkpoint must fail loudly too"
    );
    fs::remove_dir_all(&dir).ok();
}

/// A resumed engine can re-enter the durability discipline: continuing
/// journaled after a crash reaches the same bytes as a run that was
/// journaled end to end without crashing.
#[test]
fn resumed_engines_continue_journaled_and_stay_byte_identical() {
    let mut rng = Xoshiro256pp::from_u64(89);
    let n = 28;
    let space = RingSpace::random(n, &mut rng);
    let config = ServeConfig {
        strategy: Strategy::two_choice(),
        capacity: Some(6),
        life: SessionLife::Exponential { mean: 45.0 },
        retries: 1,
    };
    let root = rng.next_u64();
    let plan = FaultPlan::random_churn(root ^ 0xD0, n, 800, 3, 50);
    let dir = temp_dir("reenter");

    let durable = journaled_to(&dir, &space, config, root, 64, &plan, 500, 37);
    drop(durable);
    // Crash: lose the last half of the journal body.
    let path = dir.join(JOURNAL_FILE);
    let len = fs::metadata(&path).unwrap().len();
    let cut = Header::LEN as u64 + (len - Header::LEN as u64) / 2;
    fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(cut)
        .unwrap();

    let resumed: Resumed<_, Vec<u32>, DepartureWheel> =
        Recovery::resume(&dir, space.clone(), config, root, &plan, vec![0; n]).unwrap();
    let recovered_to = resumed.engine.arrivals();
    let mut durable = resumed.into_durable(&dir, root, 64);
    durable.run_journaled(800 - recovered_to, &plan).unwrap();

    let mut reference = ServeEngine::new(space.clone(), config, root);
    reference.run_with_faults(800, &plan);
    assert_eq!(durable.engine().state(), reference.state());

    // And the continued directory is itself recoverable.
    let again: Resumed<_, PackedLoads, DepartureWheel> =
        Recovery::resume(&dir, space, config, root, &plan, PackedLoads::byte(n)).unwrap();
    assert_eq!(again.engine.state(), reference.state());
    fs::remove_dir_all(&dir).ok();
}
