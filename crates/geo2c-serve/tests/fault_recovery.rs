//! Chaos property suite for the resilience layer: arbitrary fault
//! schedules (crashes, recoveries, region outages) interleaved with the
//! event stream must preserve the engine's exact contracts.
//!
//! Four pinned properties:
//!
//! 1. **Fault-schedule prefix replay.** The state after `p` events under
//!    a [`FaultPlan`] is a pure function of `(space, config, root,
//!    plan)`: one-shot, chunked, and from-scratch runs agree
//!    byte-identically.
//! 2. **Conservation under fail/recover churn.** live = arrivals −
//!    departed − shed − evicted after any schedule, the departure heap
//!    holds exactly one entry per in-service session (the session-map
//!    leak guard), and every entry references a live server.
//! 3. **Recovery restores availability.** Once a region outage heals,
//!    unavailability sheds stop: the post-recovery shed rate returns to
//!    the no-fault baseline.
//! 4. **Checkpoint/restore ≡ uninterrupted.** An engine restored from
//!    [`ServeEngine::state`] — onto the flat or a packed backing —
//!    continues byte-identically to one that never stopped.

use geo2c_core::load::{PackedLoads, PackedWidth, ShardedLoads};
use geo2c_core::space::{RingSpace, UniformSpace};
use geo2c_core::strategy::Strategy;
use geo2c_serve::engine::{Placement, ServeConfig, ServeEngine, SessionLife};
use geo2c_serve::fault::{FaultAction, FaultPlan};
use geo2c_serve::wheel::HeapQueue;
use geo2c_util::rng::Xoshiro256pp;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use rand::RngCore;

/// `(kind, ttl, mean)` → a [`SessionLife`] (the shim proptest has no
/// `prop_oneof!`, so variant selection is an explicit generated flag).
fn lives() -> impl proptest::strategy::Strategy<Value = SessionLife> {
    (0u8..2, 1u64..120, 0.5f64..120.0).prop_map(|(kind, ttl, mean)| {
        if kind == 0 {
            SessionLife::Fixed(ttl)
        } else {
            SessionLife::Exponential { mean }
        }
    })
}

/// `0..=10`, with the top value standing in for "unbounded".
fn capacities() -> impl proptest::strategy::Strategy<Value = Option<u32>> {
    (0u32..11).prop_map(|cap| if cap == 10 { None } else { Some(cap) })
}

/// Raw `(event, server, kind)` triples → a [`FaultPlan`] over `n`
/// servers (out-of-range victims dropped, `kind == 1` recovers).
fn plan_from(raw: &[(u64, usize, u8)], n: usize) -> FaultPlan {
    FaultPlan::new(
        raw.iter()
            .filter(|&&(_, s, _)| s < n)
            .map(|&(at, s, kind)| {
                let action = if kind == 1 {
                    FaultAction::Recover(s)
                } else {
                    FaultAction::Crash(s)
                };
                (at, action)
            })
            .collect(),
    )
}

fn check_books<S: geo2c_core::space::Space, L: geo2c_core::load::LoadState>(
    engine: &ServeEngine<S, L>,
    capacity: Option<u32>,
) {
    let live_total: u64 = engine.live_loads().map(u64::from).sum();
    assert_eq!(
        live_total,
        engine.arrivals() - engine.departed() - engine.shed() - engine.evicted(),
        "conservation under churn"
    );
    assert_eq!(
        engine.shed(),
        engine.shed_capacity() + engine.shed_unavailable()
    );
    if let Some(cap) = capacity {
        assert!(engine.live_loads().all(|l| l <= cap));
    }
    let state = engine.state();
    // The leak guard: exactly one heap entry per in-service session,
    // every one of them on a live server.
    assert_eq!(state.departures.len() as u64, engine.in_service());
    for &(_, server) in &state.departures {
        assert!(!engine.is_failed(server as usize), "entry on failed server");
    }
}

proptest! {
    /// Property 1: prefix replay under arbitrary fault schedules.
    #[test]
    fn fault_schedule_prefix_replay_is_byte_identical(
        seed in 0u64..1 << 48,
        n in 1usize..40,
        p in 0u64..200,
        q in 0u64..200,
        d in 1usize..4,
        capacity in capacities(),
        life in lives(),
        retries in 0u32..3,
        raw_plan in proptest::collection::vec((0u64..400, 0usize..40, 0u8..2), 0..10),
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0xFA17);
        let space = RingSpace::random(n, &mut rng);
        let root = rng.next_u64();
        let plan = plan_from(&raw_plan, n);
        let config = ServeConfig { strategy: Strategy::d_choice(d), capacity, life, retries };

        let mut oneshot = ServeEngine::new(space.clone(), config, root);
        oneshot.run_with_faults(p + q, &plan);

        let mut chunked = ServeEngine::new(space.clone(), config, root);
        chunked.run_with_faults(p, &plan);
        let at_p = chunked.state();

        let mut replay = ServeEngine::new(space, config, root);
        replay.run_with_faults(p, &plan);
        prop_assert_eq!(replay.state(), at_p, "prefix replay diverged");

        chunked.run_with_faults(q, &plan);
        prop_assert_eq!(chunked.state(), oneshot.state(), "resume diverged");
    }

    /// Property 2: conservation + the session-map leak guard after any
    /// crash/recover schedule, randomized plans included.
    #[test]
    fn arrivals_are_conserved_under_fail_recover_churn(
        seed in 0u64..1 << 48,
        n in 1usize..48,
        events in 0u64..400,
        d in 1usize..4,
        capacity in capacities(),
        life in lives(),
        retries in 0u32..3,
        faults in 0usize..8,
        mean_downtime in 1u64..80,
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0xC4A5);
        let space = RingSpace::random(n, &mut rng);
        let root = rng.next_u64();
        let plan = FaultPlan::random_churn(root ^ 0xD0, n, events.max(1), faults, mean_downtime);
        let config = ServeConfig { strategy: Strategy::d_choice(d), capacity, life, retries };
        let mut engine = ServeEngine::new(space, config, root);
        engine.run_with_faults(events, &plan);
        check_books(&engine, capacity);
    }

    /// Property 4: checkpoint at an arbitrary cut under an arbitrary
    /// fault schedule, restore onto flat and packed backings, continue —
    /// all three agree with the engine that never stopped.
    #[test]
    fn checkpoint_restore_equals_uninterrupted_run(
        seed in 0u64..1 << 48,
        n in 1usize..32,
        p in 0u64..200,
        q in 0u64..200,
        d in 1usize..4,
        capacity in capacities(),
        life in lives(),
        retries in 0u32..3,
        raw_plan in proptest::collection::vec((0u64..400, 0usize..32, 0u8..2), 0..8),
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0xC8EC);
        let space = RingSpace::random(n, &mut rng);
        let root = rng.next_u64();
        let plan = plan_from(&raw_plan, n);
        let config = ServeConfig { strategy: Strategy::d_choice(d), capacity, life, retries };

        let mut uninterrupted = ServeEngine::new(space.clone(), config, root);
        uninterrupted.run_with_faults(p + q, &plan);

        let mut first = ServeEngine::new(space.clone(), config, root);
        first.run_with_faults(p, &plan);
        let checkpoint = first.state();

        let mut flat = ServeEngine::restore(space.clone(), config, root, &checkpoint);
        prop_assert_eq!(flat.state(), checkpoint.clone(), "restore must be lossless");
        flat.run_with_faults(q, &plan);
        prop_assert_eq!(flat.state(), uninterrupted.state(), "flat resume diverged");

        let mut packed = ServeEngine::restore_with_load_state(
            space.clone(), config, root, &checkpoint.clone(), PackedLoads::byte(n));
        prop_assert_eq!(packed.state(), checkpoint.clone(), "packed restore must be lossless");
        packed.run_with_faults(q, &plan);
        prop_assert_eq!(packed.state(), uninterrupted.state(), "packed resume diverged");

        // The wheel path is not special: restoring onto the heap-backed
        // scheduler resumes the same bytes (same check the wheel_oracle
        // suite makes from the queue side).
        let mut on_heap = ServeEngine::<_, Vec<u32>, HeapQueue>::restore_with_scheduler(
            space, config, root, &checkpoint, vec![0; n]);
        prop_assert_eq!(on_heap.state(), checkpoint, "heap restore must be lossless");
        on_heap.run_with_faults(q, &plan);
        prop_assert_eq!(on_heap.state(), uninterrupted.state(), "heap resume diverged");
    }
}

/// Property 3, deterministically: a region outage sheds while it lasts,
/// and healing it returns the shed rate to the no-fault baseline (zero,
/// with unbounded capacity) — new sheds stop the moment the region is
/// back.
#[test]
fn recovery_restores_availability_after_a_region_outage() {
    let mut rng = Xoshiro256pp::from_u64(31);
    let n = 64;
    let space = RingSpace::random(n, &mut rng);
    let config = ServeConfig {
        strategy: Strategy::two_choice(),
        capacity: None,
        life: SessionLife::Exponential { mean: 128.0 },
        retries: 0,
    };
    // Crash half the ring (a contiguous arc: positions are sorted at
    // construction) at event 512, recover it at 1024.
    let plan = FaultPlan::region_outage(n, n / 4, n / 2, 512, Some(1024));
    let mut engine = ServeEngine::new(space, config, rng.next_u64());

    engine.run_with_faults(512, &plan);
    assert_eq!(engine.shed(), 0, "healthy phase never sheds (no capacity)");

    engine.run_with_faults(512, &plan);
    let outage_sheds = engine.shed();
    assert!(
        outage_sheds > 0,
        "half the ring down must shed d=2 arrivals"
    );
    assert_eq!(
        engine.shed_unavailable(),
        outage_sheds,
        "all unavailability"
    );

    engine.run_with_faults(1024, &plan);
    assert_eq!(
        engine.shed(),
        outage_sheds,
        "post-recovery shedding returns to the zero baseline"
    );
    assert_eq!(engine.load_stats().live_servers, n);
}

/// A retry budget beats none during the outage: same stream, same
/// faults, r = 2 shed strictly fewer arrivals than r = 0 and rescues
/// them on recorded retry attempts.
#[test]
fn retry_budget_reduces_outage_sheds_on_the_same_stream() {
    let mut rng = Xoshiro256pp::from_u64(47);
    let n = 64;
    let space = RingSpace::random(n, &mut rng);
    let root = rng.next_u64();
    let plan = FaultPlan::region_outage(n, 0, n / 2, 0, None);
    let shed_with = |retries: u32| {
        let config = ServeConfig {
            strategy: Strategy::two_choice(),
            capacity: None,
            life: SessionLife::Exponential { mean: 64.0 },
            retries,
        };
        let mut engine = ServeEngine::new(space.clone(), config, root);
        engine.run_with_faults(2048, &plan);
        (engine.shed(), engine.admitted_on_retry())
    };
    let (shed_r0, rescued_r0) = shed_with(0);
    let (shed_r2, rescued_r2) = shed_with(2);
    assert_eq!(rescued_r0, 0);
    assert!(rescued_r2 > 0, "retries must rescue during the outage");
    assert!(
        shed_r2 < shed_r0,
        "r=2 ({shed_r2}) must shed fewer than r=0 ({shed_r0})"
    );
}

/// Satellite guard: repeated fail/recover churn on the same servers must
/// not accumulate heap entries — the heap size equals the in-service
/// session count at every checkpoint, bounded by capacity × n forever.
#[test]
fn departure_heap_stays_bounded_under_repeated_fail_recover_churn() {
    let n = 16;
    let cap = 4;
    let space = UniformSpace::new(n);
    let config = ServeConfig {
        strategy: Strategy::two_choice(),
        capacity: Some(cap),
        life: SessionLife::Fixed(10_000), // sessions outlive every cycle
        retries: 1,
    };
    let mut engine = ServeEngine::new(space, config, 13);
    for cycle in 0..200 {
        let victim = cycle % n;
        engine.run(32);
        engine.fail_server(victim);
        engine.recover_server(victim);
        let state = engine.state();
        assert_eq!(
            state.departures.len() as u64,
            engine.in_service(),
            "cycle {cycle}: heap must hold exactly the in-service sessions"
        );
        assert!(
            state.departures.len() as u64 <= u64::from(cap) * n as u64,
            "cycle {cycle}: heap exceeded the capacity bound"
        );
    }
    assert!(engine.evicted() > 0, "cycles must evict in-flight sessions");
}

/// Restoring onto a sharded backing and mid-heap timestamps: a session
/// admitted before the checkpoint departs on schedule after restore.
#[test]
fn restored_sessions_depart_on_their_original_schedule() {
    let space = UniformSpace::new(4);
    let config = ServeConfig {
        strategy: Strategy::two_choice(),
        capacity: None,
        life: SessionLife::Fixed(7),
        retries: 0,
    };
    let mut engine = ServeEngine::new(space, config, 3);
    engine.run(5);
    let checkpoint = engine.state();
    assert_eq!(checkpoint.departures.len(), 5);
    let mut resumed = ServeEngine::restore_with_load_state(
        UniformSpace::new(4),
        config,
        3,
        &checkpoint,
        ShardedLoads::new(4, PackedWidth::Nibble, 2),
    );
    // Events 5..12: the five held sessions depart at events 7..11.
    for _ in 0..7 {
        assert!(matches!(resumed.step(), Placement::Admitted(_)));
    }
    assert_eq!(resumed.departed(), 5);
    engine.run(7);
    assert_eq!(resumed.state(), engine.state());
}
