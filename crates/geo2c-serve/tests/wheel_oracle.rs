//! The wheel-vs-heap oracle suite: [`DepartureWheel`] must be
//! observationally equal to the [`HeapQueue`] it replaced, under
//! arbitrary interleavings of every operation the engine performs.
//!
//! Two layers:
//!
//! 1. **Queue-level.** A generated op script (schedule at arbitrary
//!    deltas spanning every wheel level and the overflow, range drains,
//!    lazy purges, checkpoint/reincarnate round-trips) drives both
//!    implementations in lockstep; after every op they must agree on
//!    `len` and the sorted [`DepartureQueue::entries`] image, and every
//!    drain must deliver the same server multiset. (Within one deadline
//!    the order may differ — LIFO slot lists vs heap order — which is
//!    exactly the commuting-departures contract the engine relies on.)
//! 2. **Engine-level.** A [`ServeEngine`] running on the wheel and one
//!    running on the heap, fed the same root and fault plan, must
//!    produce byte-identical [`ServeEngine::state`] checkpoints at
//!    arbitrary cuts — the whole-system restatement of (1), covering
//!    the drain/schedule/purge call sites the engine actually uses.

use geo2c_core::space::RingSpace;
use geo2c_core::strategy::Strategy;
use geo2c_serve::engine::{ServeConfig, ServeEngine, SessionLife};
use geo2c_serve::fault::{FaultAction, FaultPlan};
use geo2c_serve::wheel::{DepartureQueue, DepartureWheel, HeapQueue};
use geo2c_util::rng::Xoshiro256pp;
use proptest::prelude::*;
use rand::RngCore;

/// Drains `(..=t]` from both queues and checks the multisets match;
/// returns how many entries were delivered.
fn drain_both(wheel: &mut DepartureWheel, heap: &mut HeapQueue, t: u64) -> usize {
    let mut from_wheel = Vec::new();
    let mut from_heap = Vec::new();
    wheel.drain_due(t, |s| from_wheel.push(s));
    heap.drain_due(t, |s| from_heap.push(s));
    from_wheel.sort_unstable();
    from_heap.sort_unstable();
    assert_eq!(from_wheel, from_heap, "drain multiset diverged at t={t}");
    from_wheel.len()
}

proptest! {
    /// Queue-level lockstep: schedules (short, mid, cross-level, and
    /// overflow deltas), drains, lazy purges, and checkpoint
    /// reincarnations, in any order, leave wheel and heap agreeing on
    /// every observable.
    #[test]
    fn wheel_matches_heap_on_arbitrary_op_scripts(
        n in 1usize..12,
        origin in 0u64..2_000_000,
        ops in proptest::collection::vec(
            (0u8..8, 0u64..2_200_000, 0usize..12),
            1..40,
        ),
    ) {
        let mut wheel = DepartureWheel::with_origin(n, origin);
        let mut heap = HeapQueue::with_origin(n, origin);
        let mut now = origin;
        for &(kind, a, b) in &ops {
            let server = (b % n) as u32;
            match kind {
                // Schedules biased toward level 0/1 deltas; kind == 2
                // keeps the raw delta so overflow (≥ 2^20) is reachable.
                0..=2 => {
                    let delta = match kind {
                        0 => a % 64,
                        1 => a % 4096,
                        _ => a,
                    };
                    wheel.schedule(now + delta, server);
                    heap.schedule(now + delta, server);
                }
                // Range drain: both deliver the same multiset.
                3 | 4 => {
                    let t = now + a % 4096;
                    drain_both(&mut wheel, &mut heap, t);
                    now = t + 1;
                }
                // Lazy purge vs eager rebuild: same count.
                5 | 6 => {
                    prop_assert_eq!(
                        wheel.purge_server(server),
                        heap.purge_server(server),
                        "purge count diverged"
                    );
                }
                // Checkpoint/reincarnate: rebuild both from the wheel's
                // entry image, clocks re-keyed to `now` — the restore
                // path of `ServeEngine::restore`.
                _ => {
                    let image = wheel.entries();
                    prop_assert_eq!(&image, &heap.entries());
                    wheel = DepartureWheel::with_origin(n, now);
                    heap = HeapQueue::with_origin(n, now);
                    for &(when, s) in &image {
                        wheel.schedule(when, s);
                        heap.schedule(when, s);
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len(), "len diverged");
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
            prop_assert_eq!(wheel.entries(), heap.entries(), "entry image diverged");
        }
        // Drain everything left: the final multisets must also agree.
        let remaining = wheel.len();
        let horizon = wheel
            .entries()
            .last()
            .map_or(now, |&(when, _)| when);
        prop_assert_eq!(
            drain_both(&mut wheel, &mut heap, horizon),
            remaining,
            "full drain must deliver every live entry"
        );
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }

    /// Engine-level lockstep: the wheel-backed and heap-backed engines
    /// are byte-identical at every cut of a faulted run — including the
    /// same-deadline batches where their internal drain orders differ.
    #[test]
    fn engine_on_wheel_equals_engine_on_heap(
        seed in 0u64..1 << 48,
        n in 1usize..32,
        p in 0u64..200,
        q in 0u64..200,
        d in 1usize..4,
        life in (0u8..2, 1u64..120, 0.5f64..120.0),
        retries in 0u32..3,
        raw_plan in proptest::collection::vec((0u64..400, 0usize..32, 0u8..2), 0..8),
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0x0B5E);
        let space = RingSpace::random(n, &mut rng);
        let root = rng.next_u64();
        let life = match life {
            (0, ttl, _) => SessionLife::Fixed(ttl),
            (_, _, mean) => SessionLife::Exponential { mean },
        };
        let plan = FaultPlan::new(
            raw_plan
                .iter()
                .filter(|&&(_, s, _)| s < n)
                .map(|&(at, s, kind)| {
                    (at, if kind == 1 { FaultAction::Recover(s) } else { FaultAction::Crash(s) })
                })
                .collect(),
        );
        let config = ServeConfig {
            strategy: Strategy::d_choice(d),
            capacity: None,
            life,
            retries,
        };

        let mut on_wheel = ServeEngine::new(space.clone(), config, root);
        let mut on_heap =
            ServeEngine::<_, Vec<u32>, HeapQueue>::with_scheduler(space, config, root, vec![0; n]);
        on_wheel.run_with_faults(p, &plan);
        on_heap.run_with_faults(p, &plan);
        prop_assert_eq!(on_wheel.state(), on_heap.state(), "diverged at the cut");
        on_wheel.run_with_faults(q, &plan);
        on_heap.run_with_faults(q, &plan);
        prop_assert_eq!(on_wheel.state(), on_heap.state(), "diverged at the end");
    }
}
