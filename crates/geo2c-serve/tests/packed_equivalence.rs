//! Property tests pinning [`ServeEngine`] on a packed [`LoadState`]
//! backing to the flat `Vec<u32>` engine — byte-identical on the same
//! event stream, mirroring `tests/steady_state.rs` for the backing axis.
//!
//! Three guarantees per generated scenario:
//!
//! 1. **Step-for-step equality.** The packed and flat engines return the
//!    same [`Placement`] for every event and the same [`EngineState`]
//!    (via `to_vec`) at every checkpoint — prefix replay included, since
//!    state equality at event `t` *is* the replay contract.
//! 2. **Conservation on the packed path.** live = arrivals − departed −
//!    shed − evicted, with every live load under the admission capacity.
//! 3. **`FAILED_LOAD` exclusion.** Failed servers carry the `u32::MAX`
//!    sentinel (spilled, in a packed backing) yet never appear in
//!    `live_loads()` and always lose the least-loaded comparison to any
//!    live probe.

use geo2c_core::load::{LoadState, PackedLoads, PackedWidth, ShardedLoads};
use geo2c_core::space::{RingSpace, Space, UniformSpace};
use geo2c_core::strategy::Strategy;
use geo2c_serve::engine::{Placement, ServeConfig, ServeEngine, SessionLife};
use geo2c_util::rng::Xoshiro256pp;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use rand::RngCore;

/// `(event, server, recover)`: fail — or, when `recover` is set,
/// recover — `server` just before `event` is processed. Recover entries
/// on live servers are no-ops, which the generator exploits freely.
type FailSchedule = Vec<(u64, usize, bool)>;

/// `(kind, ttl, mean)` → a [`SessionLife`] (the shim proptest has no
/// `prop_oneof!`, so variant selection is an explicit generated flag).
fn lives() -> impl proptest::strategy::Strategy<Value = SessionLife> {
    (0u8..2, 1u64..60, 0.5f64..80.0).prop_map(|(kind, ttl, mean)| {
        if kind == 0 {
            SessionLife::Fixed(ttl)
        } else {
            SessionLife::Exponential { mean }
        }
    })
}

/// `0..=8`, with the top value standing in for "unbounded". Small caps
/// keep loads near the nibble cap's neighbourhood under long lifetimes.
fn capacities() -> impl proptest::strategy::Strategy<Value = Option<u32>> {
    (0u32..9).prop_map(|cap| if cap == 8 { None } else { Some(cap) })
}

fn check_conservation<S: Space, L: LoadState>(engine: &ServeEngine<S, L>, capacity: Option<u32>) {
    let live_total: u64 = engine.live_loads().map(u64::from).sum();
    assert_eq!(
        live_total,
        engine.arrivals() - engine.departed() - engine.shed() - engine.evicted(),
        "conservation on the packed path"
    );
    assert_eq!(engine.in_service(), live_total);
    if let Some(cap) = capacity {
        assert!(engine.live_loads().all(|l| l <= cap));
    }
}

/// Locksteps a packed-backing engine against the flat reference engine
/// over one generated scenario: same placements, same states, same
/// failure handling.
fn check_backing<S: Space + Clone, L: LoadState>(
    space: &S,
    config: ServeConfig,
    root: u64,
    events: u64,
    schedule: &FailSchedule,
    loads: L,
    name: &str,
) {
    let mut flat = ServeEngine::new(space.clone(), config, root);
    let mut packed = ServeEngine::with_load_state(space.clone(), config, root, loads);
    for t in 0..events {
        for &(when, server, recover) in schedule {
            if when == t {
                if recover {
                    flat.recover_server(server);
                    packed.recover_server(server);
                } else {
                    flat.fail_server(server);
                    packed.fail_server(server);
                }
            }
        }
        let a = flat.step();
        let b = packed.step();
        assert_eq!(a, b, "{name}: placement diverged at event {t}");
        // A failed destination must never admit, however it is stored.
        if let Placement::Admitted(dest) = b {
            assert!(!packed.is_failed(dest), "{name}: admitted to failed");
        }
        if t % 63 == 0 || t + 1 == events {
            assert_eq!(
                packed.state(),
                flat.state(),
                "{name}: state diverged at event {t}"
            );
        }
    }
    assert_eq!(packed.state(), flat.state(), "{name}: final state");
    check_conservation(&packed, config.capacity);
    // Sentinel exclusion: failed servers are spilled at u32::MAX in the
    // packed backing but never surface as live loads.
    let n = space.num_servers();
    let image = packed.state().loads;
    for (s, &load) in image.iter().enumerate() {
        if packed.is_failed(s) {
            assert_eq!(load, u32::MAX, "{name}: failed sentinel");
        }
    }
    assert_eq!(
        packed.live_loads().count(),
        (0..n).filter(|&s| !packed.is_failed(s)).count(),
        "{name}: live_loads must exclude exactly the failed servers"
    );
    assert!(packed.live_loads().all(|l| l < u32::MAX));
}

proptest! {
    #[test]
    fn packed_engines_replay_the_flat_engine(
        seed in 0u64..1 << 48,
        n in 1usize..40,
        events in 0u64..300,
        d in 1usize..4,
        capacity in capacities(),
        life in lives(),
        retries in 0u32..3,
        schedule in proptest::collection::vec((0u64..300, 0usize..40, 0u8..2), 0..6),
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0x9ACC);
        let space = RingSpace::random(n, &mut rng);
        let root = rng.next_u64();
        let schedule: FailSchedule = schedule
            .into_iter()
            .filter(|&(_, s, _)| s < n)
            .map(|(when, s, kind)| (when, s, kind == 1))
            .collect();
        let config = ServeConfig { strategy: Strategy::d_choice(d), capacity, life, retries };
        check_backing(&space, config, root, events, &schedule,
            PackedLoads::nibble(n), "packed-nibble");
        check_backing(&space, config, root, events, &schedule,
            PackedLoads::byte(n), "packed-byte");
        check_backing(&space, config, root, events, &schedule,
            ShardedLoads::new(n, PackedWidth::Byte, 3), "sharded-byte");
    }

    /// Unbounded capacity + long lifetimes on a tiny space: live loads
    /// climb past the nibble cap, so departures decrement *spilled*
    /// bins (the un-spill path) while the stream stays byte-identical.
    #[test]
    fn saturated_live_loads_still_replay(
        seed in 0u64..1 << 48,
        n in 1usize..4,
        events in 100u64..400,
        life in lives(),
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0x5A7F);
        let space = UniformSpace::new(n);
        let root = rng.next_u64();
        let config = ServeConfig {
            strategy: Strategy::two_choice(),
            capacity: None,
            life,
            retries: 0,
        };
        check_backing(&space, config, root, events, &Vec::new(),
            PackedLoads::nibble(n), "packed-nibble");
        check_backing(&space, config, root, events, &Vec::new(),
            ShardedLoads::new(n, PackedWidth::Nibble, 2), "sharded-nibble");
    }
}
