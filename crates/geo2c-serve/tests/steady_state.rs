//! Property tests pinning the serving engine's steady-state invariants
//! and its replay contract — **exactly**, not statistically, mirroring
//! `geo2c-core/tests/lane_equivalence.rs` for the online setting.
//!
//! Three layers:
//!
//! 1. **Conservation.** After any arrival/departure/failure sequence,
//!    every arrival is accounted for exactly once: live in a server,
//!    departed, shed, or evicted — and no live load exceeds the
//!    admission capacity.
//! 2. **Replay-prefix byte-identity.** The engine state after `p` events
//!    is a pure function of `(space, config, root, failure schedule)`:
//!    chunking the run, pausing and resuming, or re-running the prefix
//!    from scratch all yield the same [`EngineState`].
//! 3. **Batched ≡ event-sequential.** The engine pre-draws probe owners
//!    in aligned blocks (`EventOwnerBlocks`); a from-scratch reference
//!    that draws each event's owners singly from its probe lane,
//!    resolves ties by its own reservoir on the tie lane, samples
//!    lifetimes on the life lane, redraws shed-bound arrivals singly
//!    from the retry lane, and keeps departures in a sorted list (no
//!    heap) must produce the identical state trajectory.

use geo2c_core::space::{RingSpace, Space, UniformSpace};
use geo2c_core::strategy::Strategy;
use geo2c_serve::engine::{
    Counters, EngineState, Placement, RetryStats, ServeConfig, ServeEngine, SessionLife,
};
use geo2c_util::rng::{EventLanes, LaneSource, SplitMix64, Xoshiro256pp};
use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use rand::{Rng, RngCore};

/// A deterministic churn schedule: server `fail_at[i].1` fails just
/// before event `fail_at[i].0` is processed.
type FailSchedule = Vec<(u64, usize)>;

/// `(kind, ttl, mean)` → a [`SessionLife`] (the shim proptest has no
/// `prop_oneof!`, so variant selection is an explicit generated flag).
fn lives() -> impl proptest::strategy::Strategy<Value = SessionLife> {
    (0u8..2, 1u64..200, 0.5f64..200.0).prop_map(|(kind, ttl, mean)| {
        if kind == 0 {
            SessionLife::Fixed(ttl)
        } else {
            SessionLife::Exponential { mean }
        }
    })
}

/// `0..=12`, with the top value standing in for "unbounded".
fn capacities() -> impl proptest::strategy::Strategy<Value = Option<u32>> {
    (0u32..13).prop_map(|cap| if cap == 12 { None } else { Some(cap) })
}

fn schedules(events: u64, n: usize) -> impl proptest::strategy::Strategy<Value = FailSchedule> {
    proptest::collection::vec((0..events.max(1), 0..n), 0..4)
}

/// Runs `engine` for `events` steps, failing servers per `schedule`.
fn run_with_failures<S: Space>(engine: &mut ServeEngine<S>, events: u64, schedule: &FailSchedule) {
    let offset = engine.arrivals();
    for t in 0..events {
        for &(when, server) in schedule {
            if when == t + offset {
                engine.fail_server(server);
            }
        }
        engine.step();
    }
}

/// The event-sequential reference: no owner blocks, no heap, its own
/// reservoir tie-break. Only the `(root, t)` lane keying is shared with
/// the engine — that keying *is* the contract under test.
struct Reference {
    lanes: EventLanes,
    d: usize,
    capacity: Option<u32>,
    life: SessionLife,
    retries: u32,
    loads: Vec<u32>,
    failed: Vec<bool>,
    /// Outstanding departures, kept sorted ascending by (event, server).
    pending: Vec<(u64, u32)>,
    clock: u64,
    departed: u64,
    shed_capacity: u64,
    shed_unavailable: u64,
    evicted: u64,
    admitted_on_retry: u64,
    by_attempt: Vec<u64>,
    peak: u32,
}

impl Reference {
    fn new(n: usize, config: ServeConfig, root: u64) -> Self {
        Self {
            lanes: EventLanes::new(root),
            d: config.strategy.d(),
            capacity: config.capacity,
            life: config.life,
            retries: config.retries,
            loads: vec![0; n],
            failed: vec![false; n],
            pending: Vec::new(),
            clock: 0,
            departed: 0,
            shed_capacity: 0,
            shed_unavailable: 0,
            evicted: 0,
            admitted_on_retry: 0,
            by_attempt: vec![0; config.retries as usize],
            peak: 0,
        }
    }

    fn fail_server(&mut self, server: usize) {
        if !self.failed[server] {
            self.evicted += u64::from(self.loads[server]);
            self.loads[server] = u32::MAX;
            self.failed[server] = true;
            // Eager purge, mirroring the engine's heap discipline.
            self.pending.retain(|&(_, s)| s as usize != server);
        }
    }

    /// From-scratch reservoir over the min-load owners, in scan order,
    /// consuming one `gen_range` per tied candidate past the first.
    fn choose(&self, owners: &[usize], rng: &mut SplitMix64) -> usize {
        let min_load = owners.iter().map(|&s| self.loads[s]).min().expect("d >= 1");
        let tied: Vec<usize> = owners
            .iter()
            .copied()
            .filter(|&s| self.loads[s] == min_load)
            .collect();
        let mut dest = tied[0];
        for (extra, &s) in tied[1..].iter().enumerate() {
            if rng.gen_range(0..extra + 2) == 0 {
                dest = s;
            }
        }
        dest
    }

    /// Whether `dest` sheds, and if so whether as unavailable (`true`).
    fn sheds(&self, dest: usize) -> Option<bool> {
        if self.failed[dest] {
            return Some(true);
        }
        if let Some(cap) = self.capacity {
            if self.loads[dest] >= cap {
                return Some(false);
            }
        }
        None
    }

    fn step<S: Space>(&mut self, space: &S) {
        let t = self.clock;
        self.clock += 1;
        while let Some(&(when, server)) = self.pending.first() {
            if when > t {
                break;
            }
            self.pending.remove(0);
            self.loads[server as usize] -= 1;
            self.departed += 1;
        }
        let mut probe = self.lanes.probe(t);
        let owners: Vec<usize> = (0..self.d)
            .map(|_| space.sample_owner(&mut probe))
            .collect();
        let mut tie_rng = self.lanes.tie(t);
        let dest = self.choose(&owners, &mut tie_rng);
        let mut verdict = self.sheds(dest);
        let mut admitted = dest;
        let mut rescue_attempt = None;
        if verdict.is_some() && self.retries > 0 {
            // Retry: attempt j draws d fresh owners and its tie draws
            // sequentially from the event's single retry lane.
            let mut retry = self.lanes.retry(t);
            for attempt in 1..=self.retries {
                let owners: Vec<usize> = (0..self.d)
                    .map(|_| space.sample_owner(&mut retry))
                    .collect();
                let dest = self.choose(&owners, &mut retry);
                verdict = self.sheds(dest);
                if verdict.is_none() {
                    admitted = dest;
                    rescue_attempt = Some(attempt);
                    break;
                }
            }
        }
        match verdict {
            Some(true) => {
                self.shed_unavailable += 1;
                return;
            }
            Some(false) => {
                self.shed_capacity += 1;
                return;
            }
            None => {}
        }
        let dest = admitted;
        if let Some(attempt) = rescue_attempt {
            self.admitted_on_retry += 1;
            self.by_attempt[(attempt - 1) as usize] += 1;
        }
        self.loads[dest] += 1;
        self.peak = self.peak.max(self.loads[dest]);
        let life = match self.life {
            SessionLife::Fixed(ttl) => ttl,
            SessionLife::Exponential { mean } => {
                let raw = self.lanes.life(t).next_u64();
                let u = ((raw >> 11) + 1) as f64 / (1u64 << 53) as f64;
                let life = (-mean * u.ln()).ceil();
                if life < 1.0 {
                    1
                } else {
                    life as u64
                }
            }
        };
        let entry = (t + life, dest as u32);
        let at = self.pending.partition_point(|&p| p <= entry);
        self.pending.insert(at, entry);
    }

    fn state(&self) -> EngineState {
        EngineState {
            loads: self.loads.clone(),
            failed: self.failed.clone(),
            departures: self.pending.clone(),
            counters: Counters {
                arrivals: self.clock,
                departed: self.departed,
                shed: self.shed_capacity + self.shed_unavailable,
                evicted: self.evicted,
            },
            retry: RetryStats {
                shed_capacity: self.shed_capacity,
                shed_unavailable: self.shed_unavailable,
                admitted_on_retry: self.admitted_on_retry,
                by_attempt: self.by_attempt.clone(),
            },
            peak_load: self.peak,
        }
    }
}

fn check_conservation<S: Space>(engine: &ServeEngine<S>, capacity: Option<u32>) {
    let live_total: u64 = engine.live_loads().map(u64::from).sum();
    assert_eq!(
        live_total,
        engine.arrivals() - engine.departed() - engine.shed() - engine.evicted(),
        "conservation: live = arrivals - departed - shed - evicted"
    );
    assert_eq!(engine.in_service(), live_total);
    if let Some(cap) = capacity {
        assert!(
            engine.live_loads().all(|l| l <= cap),
            "a live load exceeds the admission capacity"
        );
    }
    assert!(engine.live_loads().all(|l| l <= engine.peak_load()));
}

proptest! {
    /// Layer 1: conservation + capacity bound after arbitrary runs.
    #[test]
    fn arrivals_are_conserved_under_churn(
        seed in 0u64..1 << 48,
        n in 1usize..48,
        events in 0u64..400,
        d in 1usize..4,
        capacity in capacities(),
        life in lives(),
        retries in 0u32..3,
        schedule in schedules(400, 48),
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0xC0DE);
        let space = RingSpace::random(n, &mut rng);
        let schedule: FailSchedule =
            schedule.into_iter().filter(|&(_, s)| s < n).collect();
        let config = ServeConfig { strategy: Strategy::d_choice(d), capacity, life, retries };
        let mut engine = ServeEngine::new(space, config, rng.next_u64());
        run_with_failures(&mut engine, events, &schedule);
        check_conservation(&engine, capacity);
    }

    /// Layer 2: the state after `p` events is a pure function of the
    /// construction inputs — chunked, resumed, and from-scratch runs of
    /// the same prefix are byte-identical, and the continuation beyond
    /// the prefix is too.
    #[test]
    fn replaying_any_event_prefix_is_byte_identical(
        seed in 0u64..1 << 48,
        n in 1usize..40,
        p in 0u64..200,
        q in 0u64..200,
        d in 1usize..4,
        capacity in capacities(),
        life in lives(),
        retries in 0u32..3,
        schedule in schedules(400, 40),
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0xBEEF);
        let space = RingSpace::random(n, &mut rng);
        let root = rng.next_u64();
        let schedule: FailSchedule =
            schedule.into_iter().filter(|&(_, s)| s < n).collect();
        let config = ServeConfig { strategy: Strategy::d_choice(d), capacity, life, retries };

        // One-shot run of the full p + q stream.
        let mut oneshot = ServeEngine::new(space.clone(), config, root);
        run_with_failures(&mut oneshot, p + q, &schedule);

        // Chunked run: pause at p (snapshot), then resume through q.
        let mut chunked = ServeEngine::new(space.clone(), config, root);
        run_with_failures(&mut chunked, p, &schedule);
        let at_p = chunked.state();

        // From-scratch replay of just the prefix.
        let mut replay = ServeEngine::new(space, config, root);
        run_with_failures(&mut replay, p, &schedule);
        prop_assert_eq!(replay.state(), at_p, "prefix replay diverged");

        run_with_failures(&mut chunked, q, &schedule);
        prop_assert_eq!(chunked.state(), oneshot.state(), "resume diverged");
    }

    /// Layer 3: the block-batched engine is byte-identical to the
    /// event-sequential reference at every checkpoint of the run.
    #[test]
    fn engine_matches_event_sequential_reference(
        seed in 0u64..1 << 48,
        n in 1usize..40,
        events in 0u64..300,
        d in 1usize..4,
        capacity in capacities(),
        life in lives(),
        retries in 0u32..3,
        schedule in schedules(300, 40),
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0xFACE);
        let space = RingSpace::random(n, &mut rng);
        let root = rng.next_u64();
        let schedule: FailSchedule =
            schedule.into_iter().filter(|&(_, s)| s < n).collect();
        let config = ServeConfig { strategy: Strategy::d_choice(d), capacity, life, retries };
        let mut engine = ServeEngine::new(space.clone(), config, root);
        let mut reference = Reference::new(n, config, root);
        for t in 0..events {
            for &(when, server) in &schedule {
                if when == t {
                    engine.fail_server(server);
                    reference.fail_server(server);
                }
            }
            engine.step();
            reference.step(&space);
            // Checkpoints straddling block boundaries, plus the end.
            if t % 63 == 0 || t + 1 == events {
                prop_assert_eq!(engine.state(), reference.state(), "event {}", t);
            }
        }
        check_conservation(&engine, capacity);
    }
}

#[test]
fn shed_arrivals_leave_no_trace_in_the_load_state() {
    // A capacity-shed arrival must not change loads or schedule a
    // departure — only the shed counter moves.
    let space = UniformSpace::new(2);
    let config = ServeConfig {
        strategy: Strategy::two_choice(),
        capacity: Some(1),
        life: SessionLife::Fixed(1_000),
        retries: 0,
    };
    let mut engine = ServeEngine::new(space, config, 9);
    let mut sheds = 0u64;
    for _ in 0..64 {
        let before = engine.state();
        if let Placement::ShedCapacity(_) = engine.step() {
            sheds += 1;
            let after = engine.state();
            assert_eq!(after.loads, before.loads);
            assert_eq!(after.departures, before.departures);
        }
    }
    assert_eq!(engine.shed(), sheds);
    assert!(sheds > 0, "2 servers x cap 1 must shed within 64 arrivals");
}
