//! The online serving engine: the paper's process, run forever.
//!
//! The paper inserts `n` balls once and stops, but its own motivation
//! (§1.1) is *online server selection*: a stream of users arrives on a
//! geometric substrate and each is routed to the least loaded of `d`
//! nearby servers. This crate closes that loop. A [`engine::ServeEngine`]
//! consumes a deterministic event stream in which every step is one
//! arrival, interleaved with the departures of previously admitted
//! sessions (fixed-TTL or memoryless lifetimes), optional server
//! failures, and capacity-bounded admission control that sheds an
//! arrival when even its least-loaded probed server is full — the
//! production `p2c` + load-shed idiom.
//!
//! **RNG stream contract v2 for event streams.** The engine is keyed by
//! one `u64` root. Event `t` draws its `d` probe locations from its
//! private probe lane, resolves load ties on its private tie lane,
//! samples its session lifetime on its private *life* lane, and — only
//! when every primary probe is failed or at capacity — redraws up to
//! [`engine::ServeConfig::retries`] fresh probe sets from its private
//! *retry* lane ([`geo2c_util::rng::EventLanes`]). Because every lane is
//! a pure function of `(root, t)`, the engine state after any prefix of
//! the stream is byte-identical no matter how the run is chunked,
//! paused, or resumed — and the engine can pre-draw probe owners for a
//! whole block of future arrivals
//! ([`geo2c_core::sim::EventOwnerBlocks`]) while departures interleave
//! between the per-arrival resolutions, exactly equivalent to the
//! one-event-at-a-time process. The `tests/steady_state.rs` property
//! suite pins both equivalences.
//!
//! **Scheduling.** Departure deadlines live in a hierarchical timing
//! wheel ([`wheel::DepartureWheel`]): O(1) schedule, O(due) drain, and
//! O(1) epoch-based lazy purge when a server fails. The engine is
//! generic over the [`wheel::DepartureQueue`] trait, and the binary
//! heap the wheel replaced stays on as [`wheel::HeapQueue`], the oracle
//! the `tests/wheel_oracle.rs` property suite proves the wheel against.
//!
//! **Faults and recovery.** Servers crash ([`engine::ServeEngine::fail_server`])
//! and come back ([`engine::ServeEngine::recover_server`]); the
//! [`fault`] module schedules such events deterministically on the
//! `FAULT_TAG` lane so a whole outage scenario replays byte-identically,
//! and [`engine::ServeEngine::restore`] resumes a checkpointed engine as
//! if it had never stopped. The `tests/fault_recovery.rs` chaos suite
//! pins prefix replay, conservation, recovery, and checkpoint/restore
//! under arbitrary fault schedules.
//!
//! **Durability.** The [`journal`] module puts checkpoints on disk: a
//! [`journal::DurableEngine`] periodically writes the versioned
//! [`engine::EngineState`] codec behind an atomic temp-file + rename,
//! appends CRC-guarded progress frames to a write-ahead journal between
//! checkpoints, and [`journal::Recovery::resume`] rebuilds an engine
//! after a crash — torn tails truncated, real corruption rejected
//! loudly, and the replayed state *byte-equal* to the uninterrupted run
//! (the `tests/crash_recovery.rs` suite injects arbitrary crash points
//! to pin exactly that).
//!
//! ```
//! use geo2c_core::{space::RingSpace, strategy::Strategy};
//! use geo2c_serve::engine::{ServeConfig, ServeEngine, SessionLife};
//! use geo2c_util::rng::Xoshiro256pp;
//!
//! let mut rng = Xoshiro256pp::from_u64(5);
//! let space = RingSpace::random(64, &mut rng);
//! let config = ServeConfig {
//!     strategy: Strategy::two_choice(),
//!     capacity: Some(8),
//!     life: SessionLife::Exponential { mean: 256.0 },
//!     retries: 0,
//! };
//! let mut engine = ServeEngine::new(space, config, 42);
//! engine.run(4096);
//! // Conservation: every arrival is live, departed, shed, or evicted.
//! assert_eq!(
//!     engine.in_service(),
//!     engine.arrivals() - engine.departed() - engine.shed() - engine.evicted()
//! );
//! assert!(engine.load_stats().max <= 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod fault;
pub mod journal;
pub mod wheel;

pub use engine::{
    Counters, EngineState, LoadStats, Placement, RetryStats, ServeConfig, ServeEngine, SessionLife,
};
pub use fault::{FaultAction, FaultPlan};
pub use journal::{DurableEngine, JournalError, Recovery, Resumed};
pub use wheel::{DepartureQueue, DepartureWheel, HeapQueue};
