//! Durable checkpoints and a write-ahead journal: crash recovery that is
//! *provably exact*, not best-effort.
//!
//! RNG stream contract v2 makes an engine's state a pure function of
//! `(space, config, root, plan, events)` — replaying any event prefix
//! reproduces it byte for byte. Durability therefore needs to persist
//! only two things: a periodic [`EngineState`] checkpoint, and *progress
//! markers* saying how far past the checkpoint the run had advanced. No
//! per-event payload ever hits the disk; recovery restores the last
//! durable checkpoint and re-derives everything after it from the lanes.
//!
//! ## On-disk layout
//!
//! A journal directory holds two files, both starting with a
//! [`frame::Header`] (magic, format version, and two binding words — the
//! lane root and a fingerprint of `(num_servers, config)` — so a
//! checkpoint can never be restored into an engine it was not taken
//! from):
//!
//! * **`checkpoint.bin`** — one CRC-guarded frame holding the versioned
//!   binary [`EngineState`] codec ([`encode_state`]). Always written as
//!   a temp file (`checkpoint.tmp`) and atomically renamed into place,
//!   so the file is either the old checkpoint or the new one — never a
//!   half-written hybrid.
//! * **`journal.bin`** — appended [`frame`] records, one per executed
//!   chunk, each saying "events `< to_event` are durable". After every
//!   durable checkpoint the journal is truncated back to its header
//!   (compaction): the checkpoint subsumes it.
//!
//! ## Crash semantics
//!
//! [`Recovery::resume`] scans the journal with
//! [`frame::scan_frames`], truncates a torn tail (the residue of a crash
//! mid-append), restores the checkpoint through
//! [`ServeEngine::restore_with_scheduler`], skips any journal frames the
//! checkpoint already covers (the residue of a crash between the
//! checkpoint rename and the journal truncation), and replays
//! deterministically up to the last durable marker. A frame that fails
//! its CRC *with durable frames after it* is real corruption, not a
//! crash artifact, and fails loudly ([`JournalError::Corrupt`]). The
//! `tests/crash_recovery.rs` suite drives arbitrary byte truncations,
//! tail bit flips, and mid-rename crashes through this path and pins
//! `resume + replay ≡ uninterrupted run` across load backings and
//! schedulers.

use crate::engine::{Counters, EngineState, RetryStats, ServeConfig, ServeEngine};
use crate::fault::FaultPlan;
use crate::wheel::{DepartureQueue, DepartureWheel};
use geo2c_core::load::LoadState;
use geo2c_core::space::Space;
use geo2c_util::frame::{self, append_frame, scan_frames, Header, HeaderError, Tail};
use geo2c_util::rng::mix;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic identifying a checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"G2CCKPT\0";
/// Magic identifying a journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"G2CJRNL\0";
/// On-disk format version shared by both files.
pub const FORMAT_VERSION: u32 = 1;
/// Version byte of the [`EngineState`] codec inside a checkpoint frame.
const STATE_VERSION: u8 = 1;

/// Checkpoint file name inside a journal directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
/// Temp file a checkpoint is staged in before its atomic rename.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";
/// Journal file name inside a journal directory.
pub const JOURNAL_FILE: &str = "journal.bin";

/// Journal record: events below `to_event` are durable (record tag, then
/// the event as `u64` LE). The only record kind in format version 1.
const RECORD_ADVANCE: u8 = 1;

/// Why a checkpoint or journal could not be used.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The directory has no checkpoint — nothing durable to resume from.
    MissingCheckpoint(PathBuf),
    /// A file's magic or format version was wrong.
    Header {
        /// The offending file.
        file: PathBuf,
        /// What the header check rejected.
        source: HeaderError,
    },
    /// A file was written by a different engine: its binding words
    /// (lane root, configuration fingerprint) do not match.
    Binding {
        /// The offending file.
        file: PathBuf,
    },
    /// A frame failed its CRC where a crash artifact is impossible —
    /// real corruption, never silently truncated.
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// Byte offset of the corrupt frame, from the start of the file.
        at: usize,
    },
    /// A CRC-valid frame held an undecodable record or state image.
    Codec(&'static str),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "journal I/O error: {err}"),
            Self::MissingCheckpoint(dir) => {
                write!(f, "no checkpoint in {}: nothing to resume", dir.display())
            }
            Self::Header { file, source } => {
                write!(f, "{}: {source}", file.display())
            }
            Self::Binding { file } => write!(
                f,
                "{}: binding mismatch (different root or engine configuration)",
                file.display()
            ),
            Self::Corrupt { file, at } => write!(
                f,
                "{}: corrupt frame at byte {at} with durable frames after it",
                file.display()
            ),
            Self::Codec(what) => write!(f, "undecodable journal payload: {what}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            Self::Header { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

/// A fingerprint of the engine's construction-time shape, bound into
/// every durable file header: restoring a checkpoint under a different
/// space size or [`ServeConfig`] would replay a different pure function,
/// so it is rejected before any state is trusted.
#[must_use]
pub fn fingerprint(num_servers: usize, config: &ServeConfig) -> u64 {
    // Fold the config's canonical debug rendering through the SplitMix64
    // finalizer; stable across runs and platforms, and any field change
    // (strategy, capacity, lifetime model, retry budget) changes it.
    let desc = format!("{config:?}");
    let mut h = mix(num_servers as u64 ^ 0x6A09_E667_F3BC_C908);
    for chunk in desc.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h ^ u64::from_le_bytes(word));
    }
    h
}

/// Encodes an [`EngineState`] into the versioned checkpoint codec.
///
/// Every integer is LEB128 varint-encoded, and the sorted departure
/// deadlines are delta-encoded against their predecessor: a
/// steady-state checkpoint is dominated by small loads (≈ 1 byte each)
/// and near-adjacent deadlines (≈ 1-byte deltas), so the image is
/// roughly a third the size of fixed-width fields — which is most of
/// the checkpoint's write cost at scale.
#[must_use]
pub fn encode_state(state: &EngineState) -> Vec<u8> {
    let n = state.loads.len();
    let mut out = Vec::with_capacity(32 + 2 * n + n / 8 + 4 * state.departures.len());
    out.push(STATE_VERSION);
    for word in [
        state.counters.arrivals,
        state.counters.departed,
        state.counters.shed,
        state.counters.evicted,
        state.retry.shed_capacity,
        state.retry.shed_unavailable,
        state.retry.admitted_on_retry,
    ] {
        put_var(&mut out, word);
    }
    put_var(&mut out, state.retry.by_attempt.len() as u64);
    for &count in &state.retry.by_attempt {
        put_var(&mut out, count);
    }
    put_var(&mut out, u64::from(state.peak_load));
    put_var(&mut out, n as u64);
    for &load in &state.loads {
        put_var(&mut out, u64::from(load));
    }
    // Failure flags as a bitset: bit s of byte s / 8.
    let mut bits = vec![0u8; (n + 7) / 8];
    for (s, &down) in state.failed.iter().enumerate() {
        if down {
            bits[s / 8] |= 1 << (s % 8);
        }
    }
    out.extend_from_slice(&bits);
    put_var(&mut out, state.departures.len() as u64);
    let mut prev_when = 0u64;
    for &(when, server) in &state.departures {
        // `state.departures` is sorted ascending, so the delta is
        // non-negative; an unsorted vector would be rejected by the
        // restore path anyway, but fail loudly here rather than encode
        // an undecodable wrap.
        let delta = when
            .checked_sub(prev_when)
            .expect("EngineState::departures must be sorted ascending");
        put_var(&mut out, delta);
        put_var(&mut out, u64::from(server));
        prev_when = when;
    }
    out
}

/// LEB128: 7 value bits per byte, high bit = continuation.
fn put_var(out: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        out.push((value as u8) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Decodes the versioned checkpoint codec back into an [`EngineState`].
///
/// # Errors
/// [`JournalError::Codec`] when the version byte is unknown or the
/// payload is shorter or longer than its own counts declare. (Semantic
/// validity — conservation, sentinels, the departure map — is the
/// restore path's job; see [`ServeEngine::restore_with_scheduler`].)
pub fn decode_state(bytes: &[u8]) -> Result<EngineState, JournalError> {
    let mut r = Reader { buf: bytes, at: 0 };
    if r.u8()? != STATE_VERSION {
        return Err(JournalError::Codec("unknown state codec version"));
    }
    let counters = Counters {
        arrivals: r.var()?,
        departed: r.var()?,
        shed: r.var()?,
        evicted: r.var()?,
    };
    let shed_capacity = r.var()?;
    let shed_unavailable = r.var()?;
    let admitted_on_retry = r.var()?;
    let attempts = r.len()?;
    let mut by_attempt = Vec::with_capacity(attempts);
    for _ in 0..attempts {
        by_attempt.push(r.var()?);
    }
    let peak_load = r.var_u32()?;
    let n = r.len()?;
    let mut loads = Vec::with_capacity(n);
    for _ in 0..n {
        loads.push(r.var_u32()?);
    }
    let bits = r.bytes((n + 7) / 8)?;
    let failed = (0..n).map(|s| bits[s / 8] & (1 << (s % 8)) != 0).collect();
    let entries = r.len()?;
    let mut departures = Vec::with_capacity(entries);
    let mut prev_when = 0u64;
    for _ in 0..entries {
        let when = prev_when
            .checked_add(r.var()?)
            .ok_or(JournalError::Codec("departure deadline delta overflows"))?;
        let server = r.var_u32()?;
        departures.push((when, server));
        prev_when = when;
    }
    if r.at != bytes.len() {
        return Err(JournalError::Codec("trailing bytes after the state image"));
    }
    Ok(EngineState {
        loads,
        failed,
        departures,
        counters,
        retry: RetryStats {
            shed_capacity,
            shed_unavailable,
            admitted_on_retry,
            by_attempt,
        },
        peak_load,
    })
}

/// Bounds-checked little-endian cursor over a codec payload.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, len: usize) -> Result<&'a [u8], JournalError> {
        let end = self
            .at
            .checked_add(len)
            .filter(|&end| end <= self.buf.len())
            .ok_or(JournalError::Codec("state image shorter than its counts"))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.bytes(1)?[0])
    }

    /// LEB128 varint, the inverse of [`put_var`]. Rejects encodings
    /// that overflow a `u64` (including over-long paddings).
    fn var(&mut self) -> Result<u64, JournalError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7F);
            if shift == 63 && bits > 1 {
                break; // the 10th byte may only carry the top bit
            }
            value |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(JournalError::Codec("varint overflows u64"))
    }

    fn var_u32(&mut self) -> Result<u32, JournalError> {
        u32::try_from(self.var()?).map_err(|_| JournalError::Codec("varint overflows u32"))
    }

    fn len(&mut self) -> Result<usize, JournalError> {
        usize::try_from(self.var()?).map_err(|_| JournalError::Codec("varint overflows usize"))
    }
}

/// A [`ServeEngine`] wrapped with the durability discipline: chunked
/// runs append a progress frame per chunk, and every
/// [`checkpoint interval`](DurableEngine::create) events the full state
/// is checkpointed (temp file + atomic rename) and the journal
/// compacted. Construction inputs are bound into both file headers.
#[derive(Debug)]
pub struct DurableEngine<S: Space, L: LoadState = Vec<u32>, Q: DepartureQueue = DepartureWheel> {
    engine: ServeEngine<S, L, Q>,
    dir: PathBuf,
    root: u64,
    every: u64,
    /// Event count of the last durable checkpoint.
    checkpoint_event: u64,
    /// Journal bytes appended since this handle opened (frames only).
    journal_bytes: u64,
    /// Checkpoints written since this handle opened.
    checkpoints: u64,
}

impl<S: Space> DurableEngine<S> {
    /// Creates a journal directory for a fresh engine on the default
    /// flat load backing and timing-wheel scheduler, checkpointing every
    /// `every` events. Writes the initial (event-0) checkpoint and an
    /// empty journal before returning, so a crash at any later point
    /// has something durable to resume from.
    ///
    /// # Errors
    /// Any filesystem failure creating the directory or its files.
    ///
    /// # Panics
    /// As [`ServeEngine::new`], plus if `every` is zero.
    pub fn create(
        dir: impl Into<PathBuf>,
        space: S,
        config: ServeConfig,
        root: u64,
        every: u64,
    ) -> Result<Self, JournalError> {
        let n = space.num_servers();
        Self::create_with(dir, space, config, root, every, vec![0u32; n])
    }
}

impl<S: Space, L: LoadState, Q: DepartureQueue> DurableEngine<S, L, Q> {
    /// [`DurableEngine::create`] with explicit load-state backing and
    /// scheduler type parameters.
    ///
    /// # Errors
    /// Any filesystem failure creating the directory or its files.
    ///
    /// # Panics
    /// As [`ServeEngine::with_scheduler`], plus if `every` is zero.
    pub fn create_with(
        dir: impl Into<PathBuf>,
        space: S,
        config: ServeConfig,
        root: u64,
        every: u64,
        loads: L,
    ) -> Result<Self, JournalError> {
        assert!(every >= 1, "checkpoint interval must be at least 1 event");
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let engine = ServeEngine::with_scheduler(space, config, root, loads);
        let mut durable = Self {
            engine,
            dir,
            root,
            every,
            checkpoint_event: 0,
            journal_bytes: 0,
            checkpoints: 0,
        };
        fs::write(
            durable.dir.join(JOURNAL_FILE),
            durable.header(JOURNAL_MAGIC).encode(),
        )?;
        durable.write_checkpoint()?;
        durable.checkpoints = 0; // the seed image is not a progress stat
        Ok(durable)
    }

    /// The file header binding this engine's identity.
    fn header(&self, magic: [u8; 8]) -> Header {
        Header {
            magic,
            version: FORMAT_VERSION,
            binds: [
                self.root,
                fingerprint(self.engine.space().num_servers(), self.engine.config()),
            ],
        }
    }

    /// Runs `events` arrival events under `plan`, journaled: the run is
    /// chunked at checkpoint boundaries, each chunk appends one progress
    /// frame, and each boundary writes a durable checkpoint and compacts
    /// the journal. Byte-identical to
    /// [`ServeEngine::run_with_faults`] for the same inputs — the
    /// journal only observes the run.
    ///
    /// # Errors
    /// Any filesystem failure appending to the journal or writing a
    /// checkpoint; the in-memory engine keeps the events it ran.
    pub fn run_journaled(&mut self, events: u64, plan: &FaultPlan) -> Result<(), JournalError> {
        let end = self.engine.arrivals() + events;
        loop {
            let boundary = self.checkpoint_event + self.every;
            if self.engine.arrivals() >= boundary {
                // Reached (or resumed past) the boundary: make it durable.
                self.write_checkpoint()?;
                continue;
            }
            if self.engine.arrivals() >= end {
                return Ok(());
            }
            let chunk_end = end.min(boundary);
            self.engine
                .run_with_faults(chunk_end - self.engine.arrivals(), plan);
            self.append_progress()?;
        }
    }

    /// Appends one "durable up to the current event" frame.
    fn append_progress(&mut self) -> Result<(), JournalError> {
        let mut record = Vec::with_capacity(9);
        record.push(RECORD_ADVANCE);
        record.extend_from_slice(&self.engine.arrivals().to_le_bytes());
        let mut framed = Vec::with_capacity(record.len() + frame::FRAME_OVERHEAD);
        append_frame(&mut framed, &record);
        let mut file = fs::OpenOptions::new()
            .append(true)
            .open(self.dir.join(JOURNAL_FILE))?;
        file.write_all(&framed)?;
        self.journal_bytes += framed.len() as u64;
        Ok(())
    }

    /// Writes the current state as a durable checkpoint (temp file +
    /// atomic rename), then compacts the journal back to its header.
    fn write_checkpoint(&mut self) -> Result<(), JournalError> {
        let mut bytes = self.header(CHECKPOINT_MAGIC).encode().to_vec();
        append_frame(&mut bytes, &encode_state(&self.engine.state()));
        let tmp = self.dir.join(CHECKPOINT_TMP);
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        // The checkpoint subsumes every journal frame: compact. A crash
        // between the rename and this truncation leaves frames at or
        // before the checkpoint event, which recovery skips.
        let journal = fs::OpenOptions::new()
            .write(true)
            .open(self.dir.join(JOURNAL_FILE))?;
        journal.set_len(Header::LEN as u64)?;
        self.checkpoint_event = self.engine.arrivals();
        self.checkpoints += 1;
        Ok(())
    }

    /// Forces a checkpoint now, off the periodic boundary (e.g. at a
    /// clean shutdown).
    ///
    /// # Errors
    /// As [`DurableEngine::run_journaled`].
    pub fn checkpoint_now(&mut self) -> Result<(), JournalError> {
        self.write_checkpoint()
    }

    /// The wrapped engine.
    #[must_use]
    pub fn engine(&self) -> &ServeEngine<S, L, Q> {
        &self.engine
    }

    /// Journal bytes appended through this handle (framing included).
    #[must_use]
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    /// Checkpoints written through this handle (the creation-time seed
    /// image excluded).
    #[must_use]
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Event count of the last durable checkpoint.
    #[must_use]
    pub fn checkpoint_event(&self) -> u64 {
        self.checkpoint_event
    }
}

/// What [`Recovery::resume`] rebuilt, with enough bookkeeping to
/// measure recovery cost (the `durability` experiment family plots
/// `replayed` against the checkpoint interval).
#[derive(Debug)]
pub struct Resumed<S: Space, L: LoadState, Q: DepartureQueue> {
    /// The rebuilt engine, advanced to the last durable event.
    pub engine: ServeEngine<S, L, Q>,
    /// Event count of the checkpoint the rebuild started from.
    pub checkpoint_event: u64,
    /// Events replayed from the journal's progress markers.
    pub replayed: u64,
    /// Bytes of torn journal tail truncated during the scan.
    pub torn_bytes: u64,
}

impl<S: Space, L: LoadState, Q: DepartureQueue> Resumed<S, L, Q> {
    /// Continues the resumed engine under the durability discipline,
    /// journaling to the same directory with checkpoint interval
    /// `every`.
    #[must_use]
    pub fn into_durable(
        self,
        dir: impl Into<PathBuf>,
        root: u64,
        every: u64,
    ) -> DurableEngine<S, L, Q> {
        assert!(every >= 1, "checkpoint interval must be at least 1 event");
        DurableEngine {
            engine: self.engine,
            dir: dir.into(),
            root,
            every,
            checkpoint_event: self.checkpoint_event,
            journal_bytes: 0,
            checkpoints: 0,
        }
    }
}

/// The recovery manager: rebuilds an engine from a journal directory.
pub struct Recovery;

impl Recovery {
    /// Resumes from `dir`: verifies and restores the last durable
    /// checkpoint, scans the journal (truncating a torn tail, skipping
    /// frames the checkpoint already covers), and deterministically
    /// replays up to the last durable progress marker. `space`, `config`,
    /// `root`, and `plan` must be the construction inputs of the
    /// crashed run — the file headers reject the first three if not.
    /// `loads` is a fresh all-zero backing of the caller's chosen
    /// [`LoadState`]; the scheduler type is the caller's `Q`.
    ///
    /// # Errors
    /// [`JournalError`] on filesystem failure, a missing checkpoint, a
    /// header/binding mismatch, real (non-tail) corruption, or an
    /// undecodable payload.
    ///
    /// # Panics
    /// As [`ServeEngine::restore_with_scheduler`] — a CRC-valid
    /// checkpoint that still violates the engine's invariants is a bug,
    /// not a crash artifact.
    pub fn resume<S: Space, L: LoadState, Q: DepartureQueue>(
        dir: impl AsRef<Path>,
        space: S,
        config: ServeConfig,
        root: u64,
        plan: &FaultPlan,
        loads: L,
    ) -> Result<Resumed<S, L, Q>, JournalError> {
        let dir = dir.as_ref();
        let binds = [root, fingerprint(space.num_servers(), &config)];

        // A stale temp file is the residue of a crash between the
        // checkpoint write and its rename; the real checkpoint is intact.
        let _ = fs::remove_file(dir.join(CHECKPOINT_TMP));

        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let ckpt = match fs::read(&ckpt_path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == io::ErrorKind::NotFound => {
                return Err(JournalError::MissingCheckpoint(dir.to_path_buf()));
            }
            Err(err) => return Err(err.into()),
        };
        let state = decode_state(checked_body(&ckpt_path, &ckpt, CHECKPOINT_MAGIC, binds)?)?;
        let engine = ServeEngine::restore_with_scheduler(space, config, root, &state, loads);

        let journal_path = dir.join(JOURNAL_FILE);
        let journal = fs::read(&journal_path)?;
        let header = Header::decode(&journal, JOURNAL_MAGIC, FORMAT_VERSION).map_err(|source| {
            JournalError::Header {
                file: journal_path.clone(),
                source,
            }
        })?;
        if header.binds != binds {
            return Err(JournalError::Binding { file: journal_path });
        }
        let frames = scan_frames(&journal[Header::LEN..]).map_err(|err| JournalError::Corrupt {
            file: journal_path.clone(),
            at: Header::LEN + err.at,
        })?;
        let torn_bytes = match frames.tail {
            Tail::Clean => 0,
            Tail::Torn { at } => {
                // Physically repair the file so the next writer appends
                // onto a clean tail.
                let keep = (Header::LEN + at) as u64;
                let torn = journal.len() as u64 - keep;
                let file = fs::OpenOptions::new().write(true).open(&journal_path)?;
                file.set_len(keep)?;
                torn
            }
        };
        // The last durable marker wins; markers at or before the
        // checkpoint are residue of a crash before journal compaction.
        let mut target = state.counters.arrivals;
        for payload in frames.payloads {
            if payload.len() != 9 || payload[0] != RECORD_ADVANCE {
                return Err(JournalError::Codec("unknown journal record"));
            }
            let to_event = u64::from_le_bytes(payload[1..9].try_into().unwrap());
            target = target.max(to_event);
        }
        let mut engine = engine;
        let replayed = target - engine.arrivals();
        engine.run_with_faults(replayed, plan);
        Ok(Resumed {
            engine,
            checkpoint_event: state.counters.arrivals,
            replayed,
            torn_bytes,
        })
    }
}

/// Verifies a checkpoint file's header, binding, and single clean frame,
/// returning the state payload. A checkpoint is written by atomic
/// rename, so *any* damage — torn tail included — is corruption.
fn checked_body<'a>(
    path: &Path,
    bytes: &'a [u8],
    magic: [u8; 8],
    binds: [u64; 2],
) -> Result<&'a [u8], JournalError> {
    let header =
        Header::decode(bytes, magic, FORMAT_VERSION).map_err(|source| JournalError::Header {
            file: path.to_path_buf(),
            source,
        })?;
    if header.binds != binds {
        return Err(JournalError::Binding {
            file: path.to_path_buf(),
        });
    }
    let frames = scan_frames(&bytes[Header::LEN..]).map_err(|err| JournalError::Corrupt {
        file: path.to_path_buf(),
        at: Header::LEN + err.at,
    })?;
    match (frames.payloads.as_slice(), frames.tail) {
        ([payload], Tail::Clean) => Ok(payload),
        (_, Tail::Torn { at }) => Err(JournalError::Corrupt {
            file: path.to_path_buf(),
            at: Header::LEN + at,
        }),
        (payloads, Tail::Clean) => {
            let at = Header::LEN
                + payloads
                    .first()
                    .map_or(0, |p| p.len() + frame::FRAME_OVERHEAD);
            Err(JournalError::Corrupt {
                file: path.to_path_buf(),
                at,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SessionLife;
    use geo2c_core::space::RingSpace;
    use geo2c_core::strategy::Strategy;
    use geo2c_util::rng::Xoshiro256pp;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let id = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("geo2c-journal-{}-{tag}-{id}", std::process::id()))
    }

    fn config() -> ServeConfig {
        ServeConfig {
            strategy: Strategy::two_choice(),
            capacity: Some(6),
            life: SessionLife::Exponential { mean: 40.0 },
            retries: 1,
        }
    }

    fn space(n: usize, seed: u64) -> RingSpace {
        RingSpace::random(n, &mut Xoshiro256pp::from_u64(seed))
    }

    #[test]
    fn state_codec_round_trips_exactly() {
        let mut engine = ServeEngine::new(space(32, 3), config(), 500);
        engine.run(700);
        engine.fail_server(4);
        engine.run(100);
        let state = engine.state();
        let decoded = decode_state(&encode_state(&state)).unwrap();
        assert_eq!(decoded, state);
        // And the trivial image round-trips too.
        let fresh = ServeEngine::new(space(32, 3), config(), 500).state();
        assert_eq!(decode_state(&encode_state(&fresh)).unwrap(), fresh);
    }

    #[test]
    fn state_codec_rejects_short_versioned_or_padded_payloads() {
        let state = ServeEngine::new(space(8, 5), config(), 9).state();
        let bytes = encode_state(&state);
        assert!(matches!(
            decode_state(&bytes[..bytes.len() - 1]),
            Err(JournalError::Codec(_))
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(matches!(
            decode_state(&wrong_version),
            Err(JournalError::Codec(_))
        ));
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(decode_state(&padded), Err(JournalError::Codec(_))));
    }

    #[test]
    fn fingerprint_distinguishes_every_config_field_and_the_space_size() {
        let base = config();
        let fp = fingerprint(64, &base);
        assert_eq!(fp, fingerprint(64, &base), "deterministic");
        assert_ne!(fp, fingerprint(65, &base));
        assert_ne!(fp, fingerprint(64, &ServeConfig { retries: 2, ..base }));
        assert_ne!(
            fp,
            fingerprint(
                64,
                &ServeConfig {
                    capacity: Some(7),
                    ..base
                }
            )
        );
        assert_ne!(
            fp,
            fingerprint(
                64,
                &ServeConfig {
                    life: SessionLife::Fixed(40),
                    ..base
                }
            )
        );
        assert_ne!(
            fp,
            fingerprint(
                64,
                &ServeConfig {
                    strategy: Strategy::d_choice(3),
                    ..base
                }
            )
        );
    }

    #[test]
    fn journaled_runs_match_plain_runs_and_resume_cleanly() {
        let dir = temp_dir("clean");
        let plan = FaultPlan::random_churn(7, 24, 900, 3, 60);
        let mut durable = DurableEngine::create(&dir, space(24, 11), config(), 42, 256).unwrap();
        durable.run_journaled(900, &plan).unwrap();
        assert_eq!(durable.checkpoints(), 3, "900 events / 256 interval");
        assert!(durable.journal_bytes() > 0);

        let mut plain = ServeEngine::new(space(24, 11), config(), 42);
        plain.run_with_faults(900, &plan);
        assert_eq!(durable.engine().state(), plain.state());

        // A clean (uncrashed) directory resumes to the last marker.
        let resumed: Resumed<_, Vec<u32>, DepartureWheel> =
            Recovery::resume(&dir, space(24, 11), config(), 42, &plan, vec![0; 24]).unwrap();
        assert_eq!(resumed.engine.state(), plain.state());
        assert_eq!(resumed.checkpoint_event, 768);
        assert_eq!(resumed.replayed, 900 - 768);
        assert_eq!(resumed.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_the_wrong_root_or_config() {
        let dir = temp_dir("binding");
        let plan = FaultPlan::empty();
        let mut durable = DurableEngine::create(&dir, space(16, 2), config(), 9, 128).unwrap();
        durable.run_journaled(300, &plan).unwrap();
        let wrong_root: Result<Resumed<_, Vec<u32>, DepartureWheel>, _> =
            Recovery::resume(&dir, space(16, 2), config(), 10, &plan, vec![0; 16]);
        assert!(matches!(wrong_root, Err(JournalError::Binding { .. })));
        let wrong_config: Result<Resumed<_, Vec<u32>, DepartureWheel>, _> = Recovery::resume(
            &dir,
            space(16, 2),
            ServeConfig {
                retries: 3,
                ..config()
            },
            9,
            &plan,
            vec![0; 16],
        );
        assert!(matches!(wrong_config, Err(JournalError::Binding { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_without_a_checkpoint_reports_missing() {
        let dir = temp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        let result: Result<Resumed<_, Vec<u32>, DepartureWheel>, _> = Recovery::resume(
            &dir,
            space(8, 1),
            config(),
            1,
            &FaultPlan::empty(),
            vec![0; 8],
        );
        assert!(matches!(result, Err(JournalError::MissingCheckpoint(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_render_their_file_and_cause() {
        let err = JournalError::Corrupt {
            file: PathBuf::from("/tmp/j/journal.bin"),
            at: 77,
        };
        let text = err.to_string();
        assert!(text.contains("journal.bin") && text.contains("77"));
        assert!(JournalError::MissingCheckpoint(PathBuf::from("/tmp/j"))
            .to_string()
            .contains("nothing to resume"));
    }
}
