//! The event loop: arrivals, departures, failures, recovery, admission
//! control.
//!
//! Time is measured in *arrival events*: [`ServeEngine::step`] is one
//! arrival, and a session admitted at event `t` with lifetime `l`
//! departs at the start of event `t + l`. A failed server
//! ([`ServeEngine::fail_server`]) has its sessions evicted, its pending
//! departure entries purged from the schedule (the wheel does this
//! lazily by bumping the server's epoch), and its load pinned
//! at a sentinel so that any live probed server always wins the
//! least-loaded comparison; [`ServeEngine::recover_server`] clears the
//! sentinel and re-admits the server to placement at load zero. An
//! arrival whose probes all land on failed or at-capacity servers may
//! redraw up to [`ServeConfig::retries`] fresh probe sets from its
//! private retry lane before it is finally shed (see
//! [`crate::fault`] for scheduling faults deterministically).

use crate::wheel::{DepartureQueue, DepartureWheel};
use geo2c_core::load::LoadState;
use geo2c_core::sim::EventOwnerBlocks;
use geo2c_core::space::Space;
use geo2c_core::strategy::Strategy;
use geo2c_util::hist::Histogram;
use geo2c_util::rng::{EventLanes, LaneSource as _};
use rand::RngCore as _;

/// Load sentinel marking a failed server: live loads are bounded far
/// below this, so a live probe always beats a failed one.
const FAILED_LOAD: u32 = u32::MAX;

/// How long an admitted session holds a slot, in arrival events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionLife {
    /// Every session lasts exactly this many events (must be ≥ 1).
    Fixed(u64),
    /// Memoryless sessions: lifetime `⌈Exp(mean)⌉` drawn on the event's
    /// private life lane (so the draw replays with the event).
    Exponential {
        /// Mean lifetime in arrival events (must be positive, finite).
        mean: f64,
    },
}

/// Static configuration of a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Placement strategy. Must support cross-ball batching (every
    /// independent-probe strategy does; Vöcking's split scheme has no
    /// lane form and is rejected at construction).
    pub strategy: Strategy,
    /// Admission bound: an arrival whose chosen server already carries
    /// this many sessions is shed. `None` admits unconditionally.
    pub capacity: Option<u32>,
    /// Session lifetime model.
    pub life: SessionLife,
    /// Probe-retry budget `r`: when every primary probe is failed or at
    /// capacity, redraw up to `r` fresh `d`-probe sets from the event's
    /// private [`RETRY_TAG`](geo2c_util::rng::RETRY_TAG) lane before
    /// shedding. `0` never touches the retry lane, replaying the
    /// retry-free engine byte-identically.
    pub retries: u32,
}

/// What [`ServeEngine::step`] did with its arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The session was admitted to this server (on the primary probes or
    /// on a retry attempt — [`ServeEngine::admitted_on_retry`] splits
    /// the two).
    Admitted(usize),
    /// The least-loaded probed server was at capacity on the final
    /// attempt; shed.
    ShedCapacity(usize),
    /// Every probed server had failed on the final attempt; shed.
    ShedUnavailable,
}

/// Point-in-time load statistics over the *live* servers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Maximum live load.
    pub max: u32,
    /// 99th-percentile live load (max over the lowest `⌈0.99k⌉` of `k`).
    pub p99: u32,
    /// Mean live load.
    pub mean: f64,
    /// Number of live servers.
    pub live_servers: usize,
}

/// The engine's session-flow counters, named so equality tests cannot
/// silently pass on transposed fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Arrival events processed.
    pub arrivals: u64,
    /// Sessions that ran to completion and departed.
    pub departed: u64,
    /// Arrivals rejected by admission control (capacity or unavailable).
    pub shed: u64,
    /// Sessions killed by server failures.
    pub evicted: u64,
}

/// Per-outcome accounting for the shed/retry paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Sheds whose final attempt found a live server at capacity.
    pub shed_capacity: u64,
    /// Sheds whose final attempt landed every probe on a failed server.
    pub shed_unavailable: u64,
    /// Arrivals admitted on a retry attempt (primary probes exhausted).
    pub admitted_on_retry: u64,
    /// Retry histogram: `by_attempt[j]` arrivals were admitted on retry
    /// attempt `j + 1`. Length equals [`ServeConfig::retries`].
    pub by_attempt: Vec<u64>,
}

/// A complete, comparable image of the engine's mutable state — the unit
/// of the replay-prefix byte-identity contract: two engines with equal
/// construction inputs that have processed the same event prefix (and
/// the same fault schedule) have equal `EngineState`s. Also the
/// checkpoint format: [`ServeEngine::restore`] rebuilds an engine that
/// continues byte-identically to one that never stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineState {
    /// Per-server loads; failed servers hold the sentinel.
    pub loads: Vec<u32>,
    /// Per-server failure flags.
    pub failed: Vec<bool>,
    /// Outstanding departures as sorted `(event, server)` pairs. Every
    /// entry references a live server: a failing server's entries are
    /// purged with its sessions (and never appear in a checkpoint).
    pub departures: Vec<(u64, u32)>,
    /// Session-flow counters.
    pub counters: Counters,
    /// Shed-split and retry accounting.
    pub retry: RetryStats,
    /// Highest load any server reached while live.
    pub peak_load: u32,
}

/// The long-running placement engine. See the crate docs for the event
/// model and the stream contract.
///
/// Generic over the [`LoadState`] backing of its live-load vector: the
/// default `Vec<u32>` is the committed-results reference, and the packed
/// backings of [`geo2c_core::load`] serve the same event stream
/// byte-identically at a fraction of the memory
/// ([`ServeEngine::with_load_state`]; pinned by the `packed_equivalence`
/// property suite). Also generic over the [`DepartureQueue`] scheduler:
/// the default [`DepartureWheel`] is the production timing wheel, and
/// [`crate::wheel::HeapQueue`] is the binary-heap oracle the
/// `wheel_oracle` property suite drives the same streams through.
#[derive(Debug, Clone)]
pub struct ServeEngine<S: Space, L: LoadState = Vec<u32>, Q: DepartureQueue = DepartureWheel> {
    space: S,
    config: ServeConfig,
    lanes: EventLanes,
    blocks: EventOwnerBlocks,
    loads: L,
    failed: Vec<bool>,
    /// Pending `(departure event, server)` entries.
    departures: Q,
    clock: u64,
    departed: u64,
    shed_capacity: u64,
    shed_unavailable: u64,
    evicted: u64,
    admitted_on_retry: u64,
    /// `retry_by_attempt[j]` admissions on retry attempt `j + 1`.
    retry_by_attempt: Vec<u64>,
    peak_load: u32,
    /// Reusable probe buffer for the retry path (d entries).
    retry_scratch: Vec<usize>,
}

/// Why an attempt's destination cannot admit.
enum ShedKind {
    Capacity(usize),
    Unavailable,
}

impl<S: Space> ServeEngine<S> {
    /// A fresh engine over `space`, keyed by the lane `root`, tracking
    /// loads in the flat `Vec<u32>` reference backing.
    ///
    /// # Panics
    /// Panics if the strategy has no lane form (split scheme), if a
    /// fixed lifetime is zero, or if an exponential mean is not a
    /// positive finite number.
    #[must_use]
    pub fn new(space: S, config: ServeConfig, root: u64) -> Self {
        let n = space.num_servers();
        Self::with_load_state(space, config, root, vec![0; n])
    }

    /// Rebuilds an engine from a checkpoint taken with
    /// [`ServeEngine::state`], on the flat reference backing. The
    /// restored engine continues byte-identically to one that processed
    /// the whole stream uninterrupted, provided `space`, `config`, and
    /// `root` equal the checkpointed engine's construction inputs.
    ///
    /// # Panics
    /// As [`ServeEngine::restore_with_load_state`].
    #[must_use]
    pub fn restore(space: S, config: ServeConfig, root: u64, state: &EngineState) -> Self {
        let n = space.num_servers();
        Self::restore_with_load_state(space, config, root, state, vec![0; n])
    }
}

impl<S: Space, L: LoadState> ServeEngine<S, L> {
    /// [`ServeEngine::new`] with an explicit all-zero [`LoadState`]
    /// backing, e.g. [`geo2c_core::load::PackedLoads`] for large `n`.
    ///
    /// # Panics
    /// As [`ServeEngine::new`], plus if `loads` is sized for a different
    /// space or not all-zero (the engine's counters assume an empty
    /// start).
    #[must_use]
    pub fn with_load_state(space: S, config: ServeConfig, root: u64, loads: L) -> Self {
        Self::with_scheduler(space, config, root, loads)
    }

    /// [`ServeEngine::restore`] with an explicit all-zero [`LoadState`]
    /// backing (the checkpointed loads are written into it).
    ///
    /// # Panics
    /// As [`ServeEngine::restore_with_scheduler`].
    #[must_use]
    pub fn restore_with_load_state(
        space: S,
        config: ServeConfig,
        root: u64,
        state: &EngineState,
        loads: L,
    ) -> Self {
        Self::restore_with_scheduler(space, config, root, state, loads)
    }
}

impl<S: Space, L: LoadState, Q: DepartureQueue> ServeEngine<S, L, Q> {
    /// [`ServeEngine::with_load_state`] with an explicit
    /// [`DepartureQueue`] implementation — how the `wheel_oracle` suite
    /// runs whole engines on the [`crate::wheel::HeapQueue`] oracle.
    ///
    /// # Panics
    /// As [`ServeEngine::new`], plus if `loads` is sized for a different
    /// space or not all-zero (the engine's counters assume an empty
    /// start).
    #[must_use]
    pub fn with_scheduler(space: S, config: ServeConfig, root: u64, loads: L) -> Self {
        assert!(
            config.strategy.supports_cross_ball_batching(),
            "serving requires a lane-form strategy (not the split scheme)"
        );
        match config.life {
            SessionLife::Fixed(ttl) => assert!(ttl >= 1, "zero-length sessions never occupy"),
            SessionLife::Exponential { mean } => {
                assert!(
                    mean.is_finite() && mean > 0.0,
                    "mean lifetime must be positive"
                );
            }
        }
        let n = space.num_servers();
        assert_eq!(
            loads.num_servers(),
            n,
            "load state sized for a different space"
        );
        assert!(
            (0..n).all(|s| loads.load(s) == 0),
            "load state must start empty"
        );
        Self {
            blocks: EventOwnerBlocks::new(config.strategy.d()),
            lanes: EventLanes::new(root),
            loads,
            failed: vec![false; n],
            departures: Q::with_origin(n, 0),
            clock: 0,
            departed: 0,
            shed_capacity: 0,
            shed_unavailable: 0,
            evicted: 0,
            admitted_on_retry: 0,
            retry_by_attempt: vec![0; config.retries as usize],
            peak_load: 0,
            retry_scratch: vec![0; config.strategy.d()],
            space,
            config,
        }
    }

    /// [`ServeEngine::restore_with_load_state`] with an explicit
    /// [`DepartureQueue`] implementation.
    ///
    /// # Panics
    /// As [`ServeEngine::with_load_state`], plus if the checkpoint is
    /// sized for a different space, was taken under a different retry
    /// budget, is internally inconsistent (shed counter differing from
    /// its capacity/unavailable split, a failed server not holding the
    /// sentinel, live loads violating session conservation
    /// `Σ live = arrivals − departed − shed − evicted`, or a departure
    /// count differing from the in-service session count), or carries a
    /// departure entry on a failed server or one already due before the
    /// checkpoint clock.
    #[must_use]
    pub fn restore_with_scheduler(
        space: S,
        config: ServeConfig,
        root: u64,
        state: &EngineState,
        loads: L,
    ) -> Self {
        let mut engine = Self::with_scheduler(space, config, root, loads);
        let n = engine.space.num_servers();
        assert_eq!(state.loads.len(), n, "checkpoint sized for another space");
        assert_eq!(state.failed.len(), n, "checkpoint sized for another space");
        assert_eq!(
            state.retry.by_attempt.len(),
            config.retries as usize,
            "checkpoint taken under a different retry budget"
        );
        assert_eq!(
            state.counters.shed,
            state.retry.shed_capacity + state.retry.shed_unavailable,
            "shed counter must equal its capacity/unavailable split"
        );
        // Session conservation: every admitted session is in service,
        // departed, or evicted, so the live loads must sum to exactly
        // arrivals − departed − shed − evicted — and each in-service
        // session holds exactly one departure entry. A checkpoint that
        // books sessions nowhere (or twice) is corrupt, not restorable.
        let c = &state.counters;
        let in_service = (c.arrivals)
            .checked_sub(c.departed + c.shed + c.evicted)
            .expect("checkpoint counters book more exits than arrivals");
        let live_sum: u64 = state
            .loads
            .iter()
            .zip(&state.failed)
            .filter(|&(_, &down)| !down)
            .map(|(&load, _)| u64::from(load))
            .sum();
        assert_eq!(
            live_sum, in_service,
            "checkpoint violates session conservation \
             (live loads != arrivals - departed - shed - evicted)"
        );
        assert_eq!(
            state.departures.len() as u64,
            in_service,
            "checkpoint must hold exactly one departure entry per in-service session"
        );
        for (s, (&load, &down)) in state.loads.iter().zip(&state.failed).enumerate() {
            if down {
                assert_eq!(load, FAILED_LOAD, "failed server without sentinel");
            }
            if load != 0 {
                engine.loads.set(s, load);
            }
        }
        engine.failed.copy_from_slice(&state.failed);
        // Re-key the queue to the checkpoint clock before re-filing:
        // every outstanding deadline is ≥ arrivals (earlier ones already
        // drained), and a wheel origined mid-stream files by delta.
        engine.departures = Q::with_origin(n, state.counters.arrivals);
        for &(when, server) in &state.departures {
            let s = server as usize;
            assert!(s < n, "departure entry outside the space");
            assert!(!state.failed[s], "departure entry on a failed server");
            assert!(
                when >= state.counters.arrivals,
                "departure entry already due before the checkpoint clock"
            );
            engine.departures.schedule(when, server);
        }
        engine.clock = state.counters.arrivals;
        engine.departed = state.counters.departed;
        engine.evicted = state.counters.evicted;
        engine.shed_capacity = state.retry.shed_capacity;
        engine.shed_unavailable = state.retry.shed_unavailable;
        engine.admitted_on_retry = state.retry.admitted_on_retry;
        engine
            .retry_by_attempt
            .copy_from_slice(&state.retry.by_attempt);
        engine.peak_load = state.peak_load;
        engine
    }

    /// Processes one arrival event: sessions due to depart leave first,
    /// then the arrival probes `d` owners on its private lanes and is
    /// admitted to the least loaded — or, once the primary probes and up
    /// to [`ServeConfig::retries`] redrawn probe sets are exhausted,
    /// shed by admission control.
    pub fn step(&mut self) -> Placement {
        let t = self.clock;
        self.clock += 1;
        {
            let loads = &mut self.loads;
            let failed = &self.failed;
            let departed = &mut self.departed;
            self.departures.drain_due(t, |server| {
                let server = server as usize;
                debug_assert!(!failed[server], "purged entries never reach the drain");
                loads.dec(server);
                *departed += 1;
            });
        }
        let owners = self.blocks.owners(&self.space, &self.lanes, t);
        let mut tie = self.lanes.tie(t);
        let dest =
            self.config
                .strategy
                .place_from_loads(&self.space, &self.loads, owners, &mut tie);
        let mut verdict = match self.shed_verdict(dest) {
            None => return self.admit(dest, t),
            Some(kind) => kind,
        };
        // Primary probes exhausted: redraw fresh probe sets from the
        // event's private retry lane. Attempt j draws its d probes and
        // any tie randomness sequentially from that one lane, so the
        // happy path (and a zero budget) never touches it.
        if self.config.retries > 0 {
            let mut retry = self.lanes.retry(t);
            for attempt in 1..=self.config.retries {
                self.space
                    .sample_owners_into(&mut retry, &mut self.retry_scratch);
                let dest = self.config.strategy.place_from_loads(
                    &self.space,
                    &self.loads,
                    &self.retry_scratch,
                    &mut retry,
                );
                match self.shed_verdict(dest) {
                    None => {
                        self.admitted_on_retry += 1;
                        self.retry_by_attempt[(attempt - 1) as usize] += 1;
                        return self.admit(dest, t);
                    }
                    Some(kind) => verdict = kind,
                }
            }
        }
        // Shed, classified by the final attempt's destination.
        match verdict {
            ShedKind::Capacity(dest) => {
                self.shed_capacity += 1;
                Placement::ShedCapacity(dest)
            }
            ShedKind::Unavailable => {
                self.shed_unavailable += 1;
                Placement::ShedUnavailable
            }
        }
    }

    /// Why `dest` cannot admit, or `None` if it can.
    fn shed_verdict(&self, dest: usize) -> Option<ShedKind> {
        if self.failed[dest] {
            return Some(ShedKind::Unavailable);
        }
        if let Some(cap) = self.config.capacity {
            if self.loads.load(dest) >= cap {
                return Some(ShedKind::Capacity(dest));
            }
        }
        None
    }

    /// Admits event `t`'s session to `dest` and schedules its departure.
    fn admit(&mut self, dest: usize, t: u64) -> Placement {
        let new_load = self.loads.bump(dest);
        self.peak_load = self.peak_load.max(new_load);
        let life = self.sample_life(t);
        self.departures.schedule(t + life, dest as u32);
        Placement::Admitted(dest)
    }

    /// Runs `events` arrival events, batched along the 64-event aligned
    /// [`EventOwnerBlocks`] the owner pre-draw already materializes: each
    /// run sweeps a load-warming pass over the block's owners (the
    /// `insert_balls_lanes` idiom — read-only, so the stream is
    /// untouched) before stepping through its drain-then-place events.
    /// Byte-identical to calling [`ServeEngine::step`] `events` times.
    pub fn run(&mut self, events: u64) {
        let end = self.clock + events;
        while self.clock < end {
            let block = EventOwnerBlocks::BLOCK_EVENTS;
            let start = self.clock - self.clock % block;
            let run_end = (start + block).min(end);
            let d = self.blocks.d();
            let lo = (self.clock - start) as usize * d;
            let hi = (run_end - start) as usize * d;
            let owners = self.blocks.block(&self.space, &self.lanes, self.clock);
            let mut warm = 0u32;
            for &owner in &owners[lo..hi] {
                warm = warm.wrapping_add(self.loads.warm(owner));
            }
            std::hint::black_box(warm);
            let steps = run_end - self.clock;
            for _ in 0..steps {
                self.step();
            }
        }
    }

    /// Fails `server`: its sessions are evicted, its pending departure
    /// entries are purged from the queue (the wheel bumps the server's
    /// epoch — O(1), not a rebuild — and drops the stale entries as the
    /// drain reaches them), its load is pinned at the sentinel, and
    /// future probes that land
    /// on it lose to any live alternative (until
    /// [`ServeEngine::recover_server`]). Idempotent.
    pub fn fail_server(&mut self, server: usize) {
        if self.failed[server] {
            return;
        }
        self.evicted += u64::from(self.loads.load(server));
        self.loads.set(server, FAILED_LOAD);
        self.failed[server] = true;
        self.departures.purge_server(server as u32);
    }

    /// Recovers a failed `server`: clears the sentinel and re-admits it
    /// to placement at load zero (its evicted sessions are gone for
    /// good). No-op on a live server.
    pub fn recover_server(&mut self, server: usize) {
        if !self.failed[server] {
            return;
        }
        self.failed[server] = false;
        self.loads.set(server, 0);
    }

    /// The event `t`'s session lifetime, drawn on its private life lane.
    fn sample_life(&self, t: u64) -> u64 {
        match self.config.life {
            SessionLife::Fixed(ttl) => ttl,
            SessionLife::Exponential { mean } => {
                // 53-bit uniform in (0, 1]: ln is finite, life ≥ 1.
                let raw = self.lanes.life(t).next_u64();
                let u = ((raw >> 11) + 1) as f64 / (1u64 << 53) as f64;
                let life = (-mean * u.ln()).ceil();
                if life < 1.0 {
                    1
                } else {
                    life as u64
                }
            }
        }
    }

    /// Arrival events processed so far.
    #[must_use]
    pub fn arrivals(&self) -> u64 {
        self.clock
    }

    /// Sessions that ran to completion and departed.
    #[must_use]
    pub fn departed(&self) -> u64 {
        self.departed
    }

    /// Arrivals rejected by admission control (capacity or unavailable).
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_capacity + self.shed_unavailable
    }

    /// Sheds whose final attempt found a live server at capacity.
    #[must_use]
    pub fn shed_capacity(&self) -> u64 {
        self.shed_capacity
    }

    /// Sheds whose final attempt landed every probe on a failed server.
    #[must_use]
    pub fn shed_unavailable(&self) -> u64 {
        self.shed_unavailable
    }

    /// Arrivals admitted on a retry attempt (primary probes exhausted).
    #[must_use]
    pub fn admitted_on_retry(&self) -> u64 {
        self.admitted_on_retry
    }

    /// Retry histogram: entry `j` counts admissions on retry attempt
    /// `j + 1`. Length equals [`ServeConfig::retries`].
    #[must_use]
    pub fn retry_by_attempt(&self) -> &[u64] {
        &self.retry_by_attempt
    }

    /// Sessions killed by server failures.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Arrivals admitted: `arrivals − shed`.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.clock - self.shed()
    }

    /// Sessions currently occupying a live server:
    /// `admitted − departed − evicted`.
    #[must_use]
    pub fn in_service(&self) -> u64 {
        self.admitted() - self.departed - self.evicted
    }

    /// Fraction of arrivals shed (`0` before the first event).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.clock == 0 {
            0.0
        } else {
            self.shed() as f64 / self.clock as f64
        }
    }

    /// Highest load any server reached while live.
    #[must_use]
    pub fn peak_load(&self) -> u32 {
        self.peak_load
    }

    /// Whether `server` has failed.
    #[must_use]
    pub fn is_failed(&self, server: usize) -> bool {
        self.failed[server]
    }

    /// The loads of the live servers, in server order.
    pub fn live_loads(&self) -> impl Iterator<Item = u32> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter(|&(_, &f)| !f)
            .map(|(s, _)| self.loads.load(s))
    }

    /// The substrate the engine routes on.
    #[must_use]
    pub fn space(&self) -> &S {
        &self.space
    }

    /// The engine's static configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Point-in-time statistics over the live loads: one counting pass
    /// into a dense [`Histogram`] (live loads are bounded by
    /// [`ServeEngine::peak_load`], so the bucket array is tiny) instead
    /// of the old clone-and-sort — no O(n log n), and the max/p99/mean
    /// read straight off the counts. The mean is *exactly* the
    /// sorted-sum mean: both are integer sums below 2^53, each exactly
    /// representable in an `f64`.
    #[must_use]
    pub fn load_stats(&self) -> LoadStats {
        let mut hist = Histogram::with_max(self.peak_load);
        for load in self.live_loads() {
            hist.record(load);
        }
        let k = hist.total();
        if k == 0 {
            return LoadStats {
                max: 0,
                p99: 0,
                mean: 0.0,
                live_servers: 0,
            };
        }
        let p99_index = ((k as f64 * 0.99).ceil() as u64).max(1) - 1;
        LoadStats {
            max: hist.max(),
            p99: hist.value_at_sorted_index(p99_index),
            mean: hist.sum() as f64 / k as f64,
            live_servers: k as usize,
        }
    }

    /// A comparable image of the full mutable state (replay tests), and
    /// the checkpoint format [`ServeEngine::restore`] accepts.
    #[must_use]
    pub fn state(&self) -> EngineState {
        let departures = self.departures.entries();
        EngineState {
            loads: self.loads.to_vec(),
            failed: self.failed.clone(),
            departures,
            counters: Counters {
                arrivals: self.clock,
                departed: self.departed,
                shed: self.shed(),
                evicted: self.evicted,
            },
            retry: RetryStats {
                shed_capacity: self.shed_capacity,
                shed_unavailable: self.shed_unavailable,
                admitted_on_retry: self.admitted_on_retry,
                by_attempt: self.retry_by_attempt.clone(),
            },
            peak_load: self.peak_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_core::space::{RingSpace, UniformSpace};
    use geo2c_util::rng::Xoshiro256pp;

    fn config(capacity: Option<u32>, life: SessionLife) -> ServeConfig {
        ServeConfig {
            strategy: Strategy::two_choice(),
            capacity,
            life,
            retries: 0,
        }
    }

    #[test]
    fn fixed_ttl_sessions_depart_on_schedule() {
        // Life 1: the session admitted at t departs at the start of
        // t + 1, so at most one session is ever in service.
        let space = UniformSpace::new(8);
        let mut engine = ServeEngine::new(space, config(None, SessionLife::Fixed(1)), 7);
        for _ in 0..100 {
            engine.step();
            assert!(engine.in_service() <= 1);
        }
        assert_eq!(engine.arrivals(), 100);
        assert_eq!(engine.shed(), 0);
        assert_eq!(engine.departed(), 99);
        assert_eq!(engine.in_service(), 1);
        assert_eq!(engine.load_stats().max, 1);
    }

    #[test]
    fn zero_capacity_sheds_every_arrival() {
        let space = UniformSpace::new(4);
        let mut engine = ServeEngine::new(space, config(Some(0), SessionLife::Fixed(5)), 3);
        for _ in 0..50 {
            assert!(matches!(engine.step(), Placement::ShedCapacity(_)));
        }
        assert_eq!(engine.shed(), 50);
        assert_eq!(engine.in_service(), 0);
        assert_eq!(engine.shed_rate(), 1.0);
        assert_eq!(engine.load_stats().max, 0);
    }

    #[test]
    fn capacity_bounds_every_live_load() {
        let mut rng = Xoshiro256pp::from_u64(11);
        let space = RingSpace::random(16, &mut rng);
        let mut engine = ServeEngine::new(space, config(Some(3), SessionLife::Fixed(1000)), 99);
        engine.run(500);
        assert!(engine.load_stats().max <= 3);
        assert!(engine.shed() > 0, "16 servers x cap 3 < 500 held sessions");
        assert_eq!(
            engine.in_service(),
            engine.live_loads().map(u64::from).sum::<u64>()
        );
    }

    #[test]
    fn all_servers_failed_sheds_as_unavailable() {
        let space = UniformSpace::new(4);
        let mut engine = ServeEngine::new(space, config(None, SessionLife::Fixed(9)), 1);
        engine.run(20);
        let held = engine.in_service();
        assert!(held > 0);
        for s in 0..4 {
            engine.fail_server(s);
        }
        assert_eq!(engine.evicted(), held);
        assert_eq!(engine.in_service(), 0);
        for _ in 0..10 {
            assert_eq!(engine.step(), Placement::ShedUnavailable);
        }
        assert_eq!(engine.load_stats().live_servers, 0);
        assert_eq!(engine.load_stats().max, 0);
    }

    #[test]
    fn live_probe_beats_failed_probe() {
        // With d covering the whole 2-server space every arrival probes
        // both; failing one server must route everything to the other.
        let space = UniformSpace::new(2);
        let cfg = ServeConfig {
            strategy: Strategy::d_choice(8),
            capacity: None,
            life: SessionLife::Fixed(1_000_000),
            retries: 0,
        };
        let mut engine = ServeEngine::new(space, cfg, 5);
        engine.fail_server(0);
        for _ in 0..30 {
            // d = 8 probes over 2 servers: P(all on server 0) = 2^-8,
            // and this seed never rolls it.
            assert_eq!(engine.step(), Placement::Admitted(1));
        }
        assert_eq!(engine.in_service(), 30);
    }

    #[test]
    fn failing_a_server_is_idempotent_and_evicts_its_sessions() {
        let mut rng = Xoshiro256pp::from_u64(13);
        let space = RingSpace::random(8, &mut rng);
        let mut engine = ServeEngine::new(space, config(None, SessionLife::Fixed(400)), 21);
        engine.run(100);
        let before = engine.state();
        let loads = before.loads.clone();
        engine.fail_server(3);
        assert_eq!(engine.evicted(), u64::from(loads[3]));
        engine.fail_server(3);
        assert_eq!(engine.evicted(), u64::from(loads[3]), "idempotent");
        assert!(engine.is_failed(3));
        assert_eq!(
            engine.in_service(),
            engine.live_loads().map(u64::from).sum::<u64>()
        );
    }

    #[test]
    fn exponential_lifetimes_replay_with_the_event() {
        // The life draw is keyed by (root, t): two engines with the same
        // root agree byte-for-byte, a different root disagrees.
        let mut rng = Xoshiro256pp::from_u64(17);
        let space = RingSpace::random(32, &mut rng);
        let life = SessionLife::Exponential { mean: 40.0 };
        let mut a = ServeEngine::new(space.clone(), config(Some(6), life), 1000);
        let mut b = ServeEngine::new(space.clone(), config(Some(6), life), 1000);
        let mut c = ServeEngine::new(space, config(Some(6), life), 1001);
        a.run(2000);
        b.run(2000);
        c.run(2000);
        assert_eq!(a.state(), b.state());
        assert_ne!(a.state(), c.state());
        assert!(a.departed() > 0, "mean 40 over 2000 events must cycle");
    }

    #[test]
    fn split_scheme_is_rejected() {
        let result = std::panic::catch_unwind(|| {
            let space = UniformSpace::new(4);
            let cfg = ServeConfig {
                strategy: Strategy::voecking(2),
                capacity: None,
                life: SessionLife::Fixed(1),
                retries: 0,
            };
            ServeEngine::new(space, cfg, 0)
        });
        assert!(result.is_err());
    }

    #[test]
    fn failing_a_server_purges_its_departure_entries() {
        let space = UniformSpace::new(4);
        let mut engine = ServeEngine::new(space, config(None, SessionLife::Fixed(1_000)), 8);
        engine.run(64);
        let before = engine.state();
        assert!(
            before.departures.iter().any(|&(_, s)| s == 2),
            "seed must route sessions to server 2"
        );
        engine.fail_server(2);
        let after = engine.state();
        assert!(after.departures.iter().all(|&(_, s)| s != 2), "purged");
        assert_eq!(
            after.departures.len() as u64,
            engine.in_service(),
            "exactly one heap entry per in-service session"
        );
    }

    #[test]
    fn recovery_readmits_at_load_zero_and_is_a_noop_on_live_servers() {
        let space = UniformSpace::new(2);
        let cfg = ServeConfig {
            strategy: Strategy::d_choice(8),
            capacity: None,
            life: SessionLife::Fixed(1_000_000),
            retries: 0,
        };
        let mut engine = ServeEngine::new(space, cfg, 5);
        engine.fail_server(0); // d = 8 covers both servers: all load on 1
        engine.run(10);
        engine.fail_server(1);
        assert_eq!(engine.evicted(), 10);
        assert_eq!(engine.step(), Placement::ShedUnavailable);
        engine.recover_server(1);
        assert!(!engine.is_failed(1));
        assert_eq!(engine.state().loads[1], 0, "recovered at load zero");
        // Server 0 is still down, so placements flow back to 1.
        assert!(matches!(engine.step(), Placement::Admitted(1)));
        // No-op on a live server: state is untouched.
        let before = engine.state();
        engine.recover_server(1);
        assert_eq!(engine.state(), before);
    }

    #[test]
    fn fully_failed_cluster_sheds_unavailable_despite_retries() {
        let space = UniformSpace::new(4);
        let mut cfg = config(None, SessionLife::Fixed(9));
        cfg.retries = 3;
        let mut engine = ServeEngine::new(space, cfg, 1);
        for s in 0..4 {
            engine.fail_server(s);
        }
        for _ in 0..10 {
            assert_eq!(engine.step(), Placement::ShedUnavailable);
        }
        assert_eq!(engine.shed_unavailable(), 10);
        assert_eq!(engine.shed_capacity(), 0);
        assert_eq!(engine.admitted_on_retry(), 0);
        assert_eq!(engine.retry_by_attempt(), &[0, 0, 0]);
    }

    #[test]
    fn capacity_sheds_stay_capacity_sheds_on_the_retry_path() {
        // Every server live but at capacity 0: all retry attempts find
        // live-but-full destinations, so the shed stays ShedCapacity and
        // the two shed counters never mix.
        let space = UniformSpace::new(4);
        let mut cfg = config(Some(0), SessionLife::Fixed(5));
        cfg.retries = 2;
        let mut engine = ServeEngine::new(space, cfg, 3);
        for _ in 0..25 {
            assert!(matches!(engine.step(), Placement::ShedCapacity(_)));
        }
        assert_eq!(engine.shed_capacity(), 25);
        assert_eq!(engine.shed_unavailable(), 0);
    }

    #[test]
    fn retries_rescue_arrivals_whose_primary_probes_all_failed() {
        // d = 1 on a 2-server space with server 0 failed: roughly half
        // of the primary probes land on the failed server, and a retry
        // budget of 8 redraws until server 1 turns up — so nearly every
        // arrival is admitted, many of them on the retry path.
        let space = UniformSpace::new(2);
        let cfg = ServeConfig {
            strategy: Strategy::d_choice(1),
            capacity: None,
            life: SessionLife::Fixed(1_000_000),
            retries: 8,
        };
        let mut engine = ServeEngine::new(space, cfg, 77);
        engine.fail_server(0);
        engine.run(200);
        assert!(engine.admitted_on_retry() > 30, "retries must rescue");
        assert_eq!(
            engine.retry_by_attempt().iter().sum::<u64>(),
            engine.admitted_on_retry(),
            "histogram sums to the rescue count"
        );
        assert!(
            engine.shed() < 5,
            "P(9 straight probes on the failed half) is ~2^-9 per event"
        );
        // Zero-budget control on the same root: the primary lanes are
        // untouched by retries, so primary placements agree event for
        // event — every rescued arrival here was a shed there.
        let mut control =
            ServeEngine::new(UniformSpace::new(2), ServeConfig { retries: 0, ..cfg }, 77);
        control.fail_server(0);
        control.run(200);
        // With d = 1, no capacity, and no departures in 200 events the
        // primary outcome of every event is identical across budgets, so
        // the controls' sheds split exactly into rescued + still-shed.
        assert_eq!(control.shed(), engine.shed() + engine.admitted_on_retry());
    }

    /// A checkpoint with ~200 events of real history, for tamper tests.
    fn tamper_base() -> (RingSpace, ServeConfig, EngineState) {
        let mut rng = Xoshiro256pp::from_u64(29);
        let space = RingSpace::random(16, &mut rng);
        let cfg = config(Some(5), SessionLife::Exponential { mean: 25.0 });
        let mut engine = ServeEngine::new(space.clone(), cfg, 77);
        engine.run(150);
        engine.fail_server(2);
        engine.run(50);
        (space, cfg, engine.state())
    }

    fn restore_rejects(state: EngineState, needle: &str) {
        let (space, cfg, _) = tamper_base();
        let err = std::panic::catch_unwind(|| ServeEngine::restore(space, cfg, 77, &state))
            .expect_err("tampered checkpoint must be rejected");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains(needle),
            "panic {msg:?} must mention {needle:?}"
        );
    }

    #[test]
    fn restore_rejects_loads_that_violate_session_conservation() {
        let (_, _, mut state) = tamper_base();
        let live = state.failed.iter().position(|&down| !down).unwrap();
        state.loads[live] += 1; // books a session that never arrived
        restore_rejects(state, "session conservation");
    }

    #[test]
    fn restore_rejects_counters_that_book_more_exits_than_arrivals() {
        let (_, _, mut state) = tamper_base();
        state.counters.departed = state.counters.arrivals + 1;
        restore_rejects(state, "more exits than arrivals");
    }

    #[test]
    fn restore_rejects_a_session_map_missing_a_departure_entry() {
        let (_, _, mut state) = tamper_base();
        // Loads and counters stay conserved; only the entry is gone.
        state.departures.pop().unwrap();
        restore_rejects(state, "one departure entry per in-service session");
    }

    #[test]
    fn restore_rejects_a_session_map_referencing_a_failed_server() {
        let (_, _, mut state) = tamper_base();
        // Re-point one entry at the failed server 2: loads are untouched,
        // so conservation and the entry count still hold — isolating the
        // failed-server check.
        let (when, _) = state.departures[0];
        state.departures[0] = (when, 2);
        restore_rejects(state, "failed server");
    }

    #[test]
    fn restore_rejects_a_failed_server_without_the_sentinel() {
        let (_, _, mut state) = tamper_base();
        state.loads[2] = 0; // failed in the checkpoint, sentinel cleared
        restore_rejects(state, "sentinel");
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        let mut rng = Xoshiro256pp::from_u64(23);
        let space = RingSpace::random(16, &mut rng);
        let mut cfg = config(Some(4), SessionLife::Exponential { mean: 30.0 });
        cfg.retries = 1;
        let mut full = ServeEngine::new(space.clone(), cfg, 900);
        let mut first = ServeEngine::new(space.clone(), cfg, 900);
        first.run(300);
        first.fail_server(5);
        first.run(100);
        full.run(300);
        full.fail_server(5);
        full.run(100);
        let checkpoint = first.state();
        let mut resumed = ServeEngine::restore(space, cfg, 900, &checkpoint);
        assert_eq!(resumed.state(), checkpoint, "restore is lossless");
        resumed.recover_server(5);
        full.recover_server(5);
        resumed.run(400);
        full.run(400);
        assert_eq!(resumed.state(), full.state());
    }
}
