//! The event loop: arrivals, departures, failures, admission control.
//!
//! Time is measured in *arrival events*: [`ServeEngine::step`] is one
//! arrival, and a session admitted at event `t` with lifetime `l`
//! departs at the start of event `t + l`. Server failures are permanent
//! ([`ServeEngine::fail_server`]): a failed server's sessions are
//! evicted, its pending departures are lazily discarded, and its load is
//! pinned at a sentinel so that any live probed server always wins the
//! least-loaded comparison — an arrival is shed as unavailable only when
//! *every* one of its probes lands on a failed server.

use geo2c_core::load::LoadState;
use geo2c_core::sim::EventOwnerBlocks;
use geo2c_core::space::Space;
use geo2c_core::strategy::Strategy;
use geo2c_util::rng::{EventLanes, LaneSource as _};
use rand::RngCore as _;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Load sentinel marking a failed server: live loads are bounded far
/// below this, so a live probe always beats a failed one.
const FAILED_LOAD: u32 = u32::MAX;

/// How long an admitted session holds a slot, in arrival events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionLife {
    /// Every session lasts exactly this many events (must be ≥ 1).
    Fixed(u64),
    /// Memoryless sessions: lifetime `⌈Exp(mean)⌉` drawn on the event's
    /// private life lane (so the draw replays with the event).
    Exponential {
        /// Mean lifetime in arrival events (must be positive, finite).
        mean: f64,
    },
}

/// Static configuration of a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Placement strategy. Must support cross-ball batching (every
    /// independent-probe strategy does; Vöcking's split scheme has no
    /// lane form and is rejected at construction).
    pub strategy: Strategy,
    /// Admission bound: an arrival whose chosen server already carries
    /// this many sessions is shed. `None` admits unconditionally.
    pub capacity: Option<u32>,
    /// Session lifetime model.
    pub life: SessionLife,
}

/// What [`ServeEngine::step`] did with its arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The session was admitted to this server.
    Admitted(usize),
    /// The least-loaded probed server was at capacity; shed.
    ShedCapacity(usize),
    /// Every probed server had failed; shed.
    ShedUnavailable,
}

/// Point-in-time load statistics over the *live* servers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Maximum live load.
    pub max: u32,
    /// 99th-percentile live load (max over the lowest `⌈0.99k⌉` of `k`).
    pub p99: u32,
    /// Mean live load.
    pub mean: f64,
    /// Number of live servers.
    pub live_servers: usize,
}

/// A complete, comparable image of the engine's mutable state — the unit
/// of the replay-prefix byte-identity contract: two engines with equal
/// construction inputs that have processed the same event prefix (and
/// the same failure schedule) have equal `EngineState`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineState {
    /// Per-server loads; failed servers hold the sentinel.
    pub loads: Vec<u32>,
    /// Per-server failure flags.
    pub failed: Vec<bool>,
    /// Outstanding departures as sorted `(event, server)` pairs
    /// (entries for failed servers linger until lazily discarded).
    pub departures: Vec<(u64, u32)>,
    /// `(arrivals, departed, shed, evicted)`.
    pub counters: (u64, u64, u64, u64),
    /// Highest load any server reached while live.
    pub peak_load: u32,
}

/// The long-running placement engine. See the crate docs for the event
/// model and the stream contract.
///
/// Generic over the [`LoadState`] backing of its live-load vector: the
/// default `Vec<u32>` is the committed-results reference, and the packed
/// backings of [`geo2c_core::load`] serve the same event stream
/// byte-identically at a fraction of the memory
/// ([`ServeEngine::with_load_state`]; pinned by the `packed_equivalence`
/// property suite).
#[derive(Debug, Clone)]
pub struct ServeEngine<S: Space, L: LoadState = Vec<u32>> {
    space: S,
    config: ServeConfig,
    lanes: EventLanes,
    blocks: EventOwnerBlocks,
    loads: L,
    failed: Vec<bool>,
    /// Min-heap of `(departure event, server)`.
    departures: BinaryHeap<Reverse<(u64, u32)>>,
    clock: u64,
    departed: u64,
    shed: u64,
    evicted: u64,
    peak_load: u32,
}

impl<S: Space> ServeEngine<S> {
    /// A fresh engine over `space`, keyed by the lane `root`, tracking
    /// loads in the flat `Vec<u32>` reference backing.
    ///
    /// # Panics
    /// Panics if the strategy has no lane form (split scheme), if a
    /// fixed lifetime is zero, or if an exponential mean is not a
    /// positive finite number.
    #[must_use]
    pub fn new(space: S, config: ServeConfig, root: u64) -> Self {
        let n = space.num_servers();
        Self::with_load_state(space, config, root, vec![0; n])
    }
}

impl<S: Space, L: LoadState> ServeEngine<S, L> {
    /// [`ServeEngine::new`] with an explicit all-zero [`LoadState`]
    /// backing, e.g. [`geo2c_core::load::PackedLoads`] for large `n`.
    ///
    /// # Panics
    /// As [`ServeEngine::new`], plus if `loads` is sized for a different
    /// space or not all-zero (the engine's counters assume an empty
    /// start).
    #[must_use]
    pub fn with_load_state(space: S, config: ServeConfig, root: u64, loads: L) -> Self {
        assert!(
            config.strategy.supports_cross_ball_batching(),
            "serving requires a lane-form strategy (not the split scheme)"
        );
        match config.life {
            SessionLife::Fixed(ttl) => assert!(ttl >= 1, "zero-length sessions never occupy"),
            SessionLife::Exponential { mean } => {
                assert!(
                    mean.is_finite() && mean > 0.0,
                    "mean lifetime must be positive"
                );
            }
        }
        let n = space.num_servers();
        assert_eq!(
            loads.num_servers(),
            n,
            "load state sized for a different space"
        );
        assert!(
            (0..n).all(|s| loads.load(s) == 0),
            "load state must start empty"
        );
        Self {
            blocks: EventOwnerBlocks::new(config.strategy.d()),
            lanes: EventLanes::new(root),
            loads,
            failed: vec![false; n],
            departures: BinaryHeap::new(),
            clock: 0,
            departed: 0,
            shed: 0,
            evicted: 0,
            peak_load: 0,
            space,
            config,
        }
    }

    /// Processes one arrival event: sessions due to depart leave first,
    /// then the arrival probes `d` owners on its private lanes and is
    /// admitted to the least loaded — or shed by admission control.
    pub fn step(&mut self) -> Placement {
        let t = self.clock;
        self.clock += 1;
        while let Some(&Reverse((when, server))) = self.departures.peek() {
            if when > t {
                break;
            }
            self.departures.pop();
            let server = server as usize;
            if self.failed[server] {
                continue; // session already evicted with its server
            }
            self.loads.dec(server);
            self.departed += 1;
        }
        let owners = self.blocks.owners(&self.space, &self.lanes, t);
        let mut tie = self.lanes.tie(t);
        let dest =
            self.config
                .strategy
                .place_from_loads(&self.space, &self.loads, owners, &mut tie);
        if self.failed[dest] {
            self.shed += 1;
            return Placement::ShedUnavailable;
        }
        if let Some(cap) = self.config.capacity {
            if self.loads.load(dest) >= cap {
                self.shed += 1;
                return Placement::ShedCapacity(dest);
            }
        }
        let new_load = self.loads.bump(dest);
        self.peak_load = self.peak_load.max(new_load);
        let life = self.sample_life(t);
        self.departures.push(Reverse((t + life, dest as u32)));
        Placement::Admitted(dest)
    }

    /// Runs `events` arrival events.
    pub fn run(&mut self, events: u64) {
        for _ in 0..events {
            self.step();
        }
    }

    /// Permanently fails `server`: its sessions are evicted, its load is
    /// pinned at the sentinel, and future probes that land on it lose to
    /// any live alternative. Idempotent.
    pub fn fail_server(&mut self, server: usize) {
        if self.failed[server] {
            return;
        }
        self.evicted += u64::from(self.loads.load(server));
        self.loads.set(server, FAILED_LOAD);
        self.failed[server] = true;
    }

    /// The event `t`'s session lifetime, drawn on its private life lane.
    fn sample_life(&self, t: u64) -> u64 {
        match self.config.life {
            SessionLife::Fixed(ttl) => ttl,
            SessionLife::Exponential { mean } => {
                // 53-bit uniform in (0, 1]: ln is finite, life ≥ 1.
                let raw = self.lanes.life(t).next_u64();
                let u = ((raw >> 11) + 1) as f64 / (1u64 << 53) as f64;
                let life = (-mean * u.ln()).ceil();
                if life < 1.0 {
                    1
                } else {
                    life as u64
                }
            }
        }
    }

    /// Arrival events processed so far.
    #[must_use]
    pub fn arrivals(&self) -> u64 {
        self.clock
    }

    /// Sessions that ran to completion and departed.
    #[must_use]
    pub fn departed(&self) -> u64 {
        self.departed
    }

    /// Arrivals rejected by admission control (capacity or unavailable).
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Sessions killed by server failures.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Arrivals admitted: `arrivals − shed`.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.clock - self.shed
    }

    /// Sessions currently occupying a live server:
    /// `admitted − departed − evicted`.
    #[must_use]
    pub fn in_service(&self) -> u64 {
        self.admitted() - self.departed - self.evicted
    }

    /// Fraction of arrivals shed (`0` before the first event).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.clock == 0 {
            0.0
        } else {
            self.shed as f64 / self.clock as f64
        }
    }

    /// Highest load any server reached while live.
    #[must_use]
    pub fn peak_load(&self) -> u32 {
        self.peak_load
    }

    /// Whether `server` has failed.
    #[must_use]
    pub fn is_failed(&self, server: usize) -> bool {
        self.failed[server]
    }

    /// The loads of the live servers, in server order.
    pub fn live_loads(&self) -> impl Iterator<Item = u32> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter(|&(_, &f)| !f)
            .map(|(s, _)| self.loads.load(s))
    }

    /// The substrate the engine routes on.
    #[must_use]
    pub fn space(&self) -> &S {
        &self.space
    }

    /// The engine's static configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Point-in-time statistics over the live loads.
    #[must_use]
    pub fn load_stats(&self) -> LoadStats {
        let mut live: Vec<u32> = self.live_loads().collect();
        live.sort_unstable();
        let k = live.len();
        if k == 0 {
            return LoadStats {
                max: 0,
                p99: 0,
                mean: 0.0,
                live_servers: 0,
            };
        }
        let p99_index = ((k as f64 * 0.99).ceil() as usize).max(1) - 1;
        LoadStats {
            max: live[k - 1],
            p99: live[p99_index],
            mean: live.iter().map(|&l| f64::from(l)).sum::<f64>() / k as f64,
            live_servers: k,
        }
    }

    /// A comparable image of the full mutable state (replay tests).
    #[must_use]
    pub fn state(&self) -> EngineState {
        let mut departures: Vec<(u64, u32)> =
            self.departures.iter().map(|&Reverse(pair)| pair).collect();
        departures.sort_unstable();
        EngineState {
            loads: self.loads.to_vec(),
            failed: self.failed.clone(),
            departures,
            counters: (self.clock, self.departed, self.shed, self.evicted),
            peak_load: self.peak_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_core::space::{RingSpace, UniformSpace};
    use geo2c_util::rng::Xoshiro256pp;

    fn config(capacity: Option<u32>, life: SessionLife) -> ServeConfig {
        ServeConfig {
            strategy: Strategy::two_choice(),
            capacity,
            life,
        }
    }

    #[test]
    fn fixed_ttl_sessions_depart_on_schedule() {
        // Life 1: the session admitted at t departs at the start of
        // t + 1, so at most one session is ever in service.
        let space = UniformSpace::new(8);
        let mut engine = ServeEngine::new(space, config(None, SessionLife::Fixed(1)), 7);
        for _ in 0..100 {
            engine.step();
            assert!(engine.in_service() <= 1);
        }
        assert_eq!(engine.arrivals(), 100);
        assert_eq!(engine.shed(), 0);
        assert_eq!(engine.departed(), 99);
        assert_eq!(engine.in_service(), 1);
        assert_eq!(engine.load_stats().max, 1);
    }

    #[test]
    fn zero_capacity_sheds_every_arrival() {
        let space = UniformSpace::new(4);
        let mut engine = ServeEngine::new(space, config(Some(0), SessionLife::Fixed(5)), 3);
        for _ in 0..50 {
            assert!(matches!(engine.step(), Placement::ShedCapacity(_)));
        }
        assert_eq!(engine.shed(), 50);
        assert_eq!(engine.in_service(), 0);
        assert_eq!(engine.shed_rate(), 1.0);
        assert_eq!(engine.load_stats().max, 0);
    }

    #[test]
    fn capacity_bounds_every_live_load() {
        let mut rng = Xoshiro256pp::from_u64(11);
        let space = RingSpace::random(16, &mut rng);
        let mut engine = ServeEngine::new(space, config(Some(3), SessionLife::Fixed(1000)), 99);
        engine.run(500);
        assert!(engine.load_stats().max <= 3);
        assert!(engine.shed() > 0, "16 servers x cap 3 < 500 held sessions");
        assert_eq!(
            engine.in_service(),
            engine.live_loads().map(u64::from).sum::<u64>()
        );
    }

    #[test]
    fn all_servers_failed_sheds_as_unavailable() {
        let space = UniformSpace::new(4);
        let mut engine = ServeEngine::new(space, config(None, SessionLife::Fixed(9)), 1);
        engine.run(20);
        let held = engine.in_service();
        assert!(held > 0);
        for s in 0..4 {
            engine.fail_server(s);
        }
        assert_eq!(engine.evicted(), held);
        assert_eq!(engine.in_service(), 0);
        for _ in 0..10 {
            assert_eq!(engine.step(), Placement::ShedUnavailable);
        }
        assert_eq!(engine.load_stats().live_servers, 0);
        assert_eq!(engine.load_stats().max, 0);
    }

    #[test]
    fn live_probe_beats_failed_probe() {
        // With d covering the whole 2-server space every arrival probes
        // both; failing one server must route everything to the other.
        let space = UniformSpace::new(2);
        let cfg = ServeConfig {
            strategy: Strategy::d_choice(8),
            capacity: None,
            life: SessionLife::Fixed(1_000_000),
        };
        let mut engine = ServeEngine::new(space, cfg, 5);
        engine.fail_server(0);
        for _ in 0..30 {
            // d = 8 probes over 2 servers: P(all on server 0) = 2^-8,
            // and this seed never rolls it.
            assert_eq!(engine.step(), Placement::Admitted(1));
        }
        assert_eq!(engine.in_service(), 30);
    }

    #[test]
    fn failing_a_server_is_idempotent_and_evicts_its_sessions() {
        let mut rng = Xoshiro256pp::from_u64(13);
        let space = RingSpace::random(8, &mut rng);
        let mut engine = ServeEngine::new(space, config(None, SessionLife::Fixed(400)), 21);
        engine.run(100);
        let before = engine.state();
        let loads = before.loads.clone();
        engine.fail_server(3);
        assert_eq!(engine.evicted(), u64::from(loads[3]));
        engine.fail_server(3);
        assert_eq!(engine.evicted(), u64::from(loads[3]), "idempotent");
        assert!(engine.is_failed(3));
        assert_eq!(
            engine.in_service(),
            engine.live_loads().map(u64::from).sum::<u64>()
        );
    }

    #[test]
    fn exponential_lifetimes_replay_with_the_event() {
        // The life draw is keyed by (root, t): two engines with the same
        // root agree byte-for-byte, a different root disagrees.
        let mut rng = Xoshiro256pp::from_u64(17);
        let space = RingSpace::random(32, &mut rng);
        let life = SessionLife::Exponential { mean: 40.0 };
        let mut a = ServeEngine::new(space.clone(), config(Some(6), life), 1000);
        let mut b = ServeEngine::new(space.clone(), config(Some(6), life), 1000);
        let mut c = ServeEngine::new(space, config(Some(6), life), 1001);
        a.run(2000);
        b.run(2000);
        c.run(2000);
        assert_eq!(a.state(), b.state());
        assert_ne!(a.state(), c.state());
        assert!(a.departed() > 0, "mean 40 over 2000 events must cycle");
    }

    #[test]
    fn split_scheme_is_rejected() {
        let result = std::panic::catch_unwind(|| {
            let space = UniformSpace::new(4);
            let cfg = ServeConfig {
                strategy: Strategy::voecking(2),
                capacity: None,
                life: SessionLife::Fixed(1),
            };
            ServeEngine::new(space, cfg, 0)
        });
        assert!(result.is_err());
    }
}
