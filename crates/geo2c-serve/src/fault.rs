//! Deterministic fault injection: crash/recover schedules that replay
//! byte-identically with the event stream they interleave into.
//!
//! A [`FaultPlan`] is a time-sorted list of [`FaultAction`]s, each pinned
//! to an arrival-event timestamp. [`ServeEngine::run_with_faults`]
//! applies every action scheduled at event `t` immediately before
//! processing event `t`, so the engine state after any prefix is a pure
//! function of `(space, config, root, plan)` — chunking, pausing, or
//! checkpoint/resuming a run never changes a single byte (pinned by the
//! `tests/fault_recovery.rs` chaos suite).
//!
//! Randomized schedules draw fault `i`'s crash time, victim, and
//! downtime from `SplitMix64::mixed(root, i, FAULT_TAG)`
//! ([`FaultPlan::random_churn`]) — the fault-lane extension of RNG
//! stream contract v2, so the schedule itself is one more replayable
//! lane family, decorrelated from every probe/tie/life/retry lane.
//! Correlated region-of-space outages ([`FaultPlan::region_outage`])
//! crash a contiguous run of servers at once: on the sorted-by-position
//! spaces ([`geo2c_core::space::RingSpace`] sorts its servers by
//! coordinate at construction), a contiguous index range *is* a
//! contiguous arc of the space, which is what makes the outage
//! geometrically correlated rather than a scattered sample.

use crate::engine::ServeEngine;
use crate::wheel::DepartureQueue;
use geo2c_core::load::LoadState;
use geo2c_core::space::Space;
use geo2c_util::rng::{SplitMix64, FAULT_TAG};
use rand::RngCore as _;

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail this server ([`ServeEngine::fail_server`]).
    Crash(usize),
    /// Recover this server ([`ServeEngine::recover_server`]).
    Recover(usize),
}

/// A deterministic, time-sorted fault schedule. Timestamps are arrival
/// events: an action at time `t` is applied immediately before event `t`
/// is processed. The empty plan leaves a run byte-identical to one that
/// never heard of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(event, action)` pairs, sorted by event (stable, so same-instant
    /// actions apply in insertion order).
    events: Vec<(u64, FaultAction)>,
}

impl FaultPlan {
    /// A plan from explicit `(event, action)` pairs; sorted by event
    /// with same-instant order preserved.
    #[must_use]
    pub fn new(mut events: Vec<(u64, FaultAction)>) -> Self {
        events.sort_by_key(|&(at, _)| at);
        Self { events }
    }

    /// The plan with no faults.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// The scheduled `(event, action)` pairs, in application order.
    #[must_use]
    pub fn events(&self) -> &[(u64, FaultAction)] {
        &self.events
    }

    /// Number of scheduled actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A correlated region outage: servers `start, start+1, …` (`count`
    /// of them, wrapping modulo `n`) crash at event `at` and — when
    /// `recover_at` is given — all recover at that event. On a
    /// sorted-by-position space a contiguous index range is a contiguous
    /// region of the space.
    ///
    /// # Panics
    /// Panics if `count > n` or a recovery predates the crash.
    #[must_use]
    pub fn region_outage(
        n: usize,
        start: usize,
        count: usize,
        at: u64,
        recover_at: Option<u64>,
    ) -> Self {
        assert!(count <= n, "region larger than the space");
        if let Some(up) = recover_at {
            assert!(up >= at, "recovery predates the crash");
        }
        let mut events = Vec::with_capacity(count * if recover_at.is_some() { 2 } else { 1 });
        for i in 0..count {
            let server = (start + i) % n;
            events.push((at, FaultAction::Crash(server)));
            if let Some(up) = recover_at {
                events.push((up, FaultAction::Recover(server)));
            }
        }
        Self::new(events)
    }

    /// A randomized crash-and-repair schedule on the `FAULT_TAG` lane:
    /// fault `i` draws its crash time (uniform in `0..horizon`), victim
    /// (uniform in `0..n`), and downtime (uniform in
    /// `1..=2·mean_downtime`, so the mean is `mean_downtime + ½`) from
    /// `SplitMix64::mixed(root, i, FAULT_TAG)`, then schedules the
    /// matching recovery — a pure function of `(root, i)`, replayable
    /// independently of every other lane.
    ///
    /// # Panics
    /// Panics if `n`, `horizon`, or `mean_downtime` is zero.
    #[must_use]
    pub fn random_churn(
        root: u64,
        n: usize,
        horizon: u64,
        faults: usize,
        mean_downtime: u64,
    ) -> Self {
        assert!(n > 0 && horizon > 0 && mean_downtime > 0);
        let mut events = Vec::with_capacity(faults * 2);
        for i in 0..faults {
            let mut lane = SplitMix64::mixed(root, i as u64, FAULT_TAG);
            let at = lane.next_u64() % horizon;
            let server = (lane.next_u64() % n as u64) as usize;
            let downtime = 1 + lane.next_u64() % (2 * mean_downtime);
            events.push((at, FaultAction::Crash(server)));
            events.push((at + downtime, FaultAction::Recover(server)));
        }
        Self::new(events)
    }
}

impl<S: Space, L: LoadState, Q: DepartureQueue> ServeEngine<S, L, Q> {
    /// Runs `events` arrival events, applying every [`FaultPlan`] action
    /// scheduled in `[clock, clock + events)` immediately before its
    /// event. Actions scheduled before the current clock are skipped (a
    /// resumed engine already applied them in an earlier chunk); actions
    /// at or beyond the end of this chunk stay pending for the next one
    /// — so running a plan in chunks is byte-identical to one long run.
    ///
    /// Between consecutive fault instants the engine runs fault-free, so
    /// each gap goes through the batched [`ServeEngine::run`] loop (owner
    /// blocks + warming sweep) rather than stepping event by event.
    pub fn run_with_faults(&mut self, events: u64, plan: &FaultPlan) {
        let end = self.arrivals() + events;
        let schedule = plan.events();
        let mut cursor = schedule.partition_point(|&(at, _)| at < self.arrivals());
        while self.arrivals() < end {
            let t = self.arrivals();
            while let Some(&(at, action)) = schedule.get(cursor) {
                if at > t {
                    break;
                }
                match action {
                    FaultAction::Crash(server) => self.fail_server(server),
                    FaultAction::Recover(server) => self.recover_server(server),
                }
                cursor += 1;
            }
            // Every action at or before `t` is applied, so the stretch
            // up to the next scheduled instant is fault-free: batch it.
            let next_fault = schedule.get(cursor).map_or(u64::MAX, |&(at, _)| at);
            let run_to = end.min(next_fault);
            debug_assert!(run_to > t, "actions at t were just applied");
            self.run(run_to - t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Placement, ServeConfig, SessionLife};
    use geo2c_core::space::UniformSpace;
    use geo2c_core::strategy::Strategy;

    fn config() -> ServeConfig {
        ServeConfig {
            strategy: Strategy::two_choice(),
            capacity: None,
            life: SessionLife::Fixed(7),
            retries: 0,
        }
    }

    #[test]
    fn plans_sort_by_time_and_preserve_same_instant_order() {
        let plan = FaultPlan::new(vec![
            (9, FaultAction::Crash(1)),
            (3, FaultAction::Crash(0)),
            (9, FaultAction::Recover(1)),
        ]);
        assert_eq!(
            plan.events(),
            &[
                (3, FaultAction::Crash(0)),
                (9, FaultAction::Crash(1)),
                (9, FaultAction::Recover(1)),
            ]
        );
        assert_eq!(plan.len(), 3);
        assert!(FaultPlan::empty().is_empty());
    }

    #[test]
    fn region_outage_wraps_and_schedules_recovery() {
        let plan = FaultPlan::region_outage(4, 3, 2, 10, Some(20));
        let crashes: Vec<usize> = plan
            .events()
            .iter()
            .filter_map(|&(at, a)| match a {
                FaultAction::Crash(s) if at == 10 => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(crashes, vec![3, 0], "wraps modulo n");
        let recovers = plan
            .events()
            .iter()
            .filter(|&&(at, a)| at == 20 && matches!(a, FaultAction::Recover(_)))
            .count();
        assert_eq!(recovers, 2);
    }

    #[test]
    fn random_churn_is_a_pure_function_of_its_root() {
        let a = FaultPlan::random_churn(11, 32, 1000, 8, 50);
        let b = FaultPlan::random_churn(11, 32, 1000, 8, 50);
        let c = FaultPlan::random_churn(12, 32, 1000, 8, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16, "every crash schedules its recovery");
        for &(_, action) in a.events() {
            match action {
                FaultAction::Crash(s) | FaultAction::Recover(s) => assert!(s < 32),
            }
        }
    }

    #[test]
    fn faults_apply_before_their_event_and_empty_plans_change_nothing() {
        let space = UniformSpace::new(1);
        let plan = FaultPlan::new(vec![
            (3, FaultAction::Crash(0)),
            (5, FaultAction::Recover(0)),
        ]);
        let mut engine = ServeEngine::new(space, config(), 4);
        engine.run_with_faults(2, &plan); // events 0, 1: healthy
        assert_eq!(engine.shed(), 0);
        engine.run_with_faults(2, &plan); // event 2 healthy, 3 down
        assert_eq!(engine.shed(), 1);
        engine.run_with_faults(2, &plan); // event 4 down, 5 recovered
        assert_eq!(engine.shed(), 2);
        assert!(matches!(engine.step(), Placement::Admitted(0)));

        // Chunked == one-shot under the same plan.
        let mut oneshot = ServeEngine::new(UniformSpace::new(1), config(), 4);
        oneshot.run_with_faults(7, &plan);
        assert_eq!(oneshot.state(), engine.state());

        // The empty plan is the plain run.
        let mut faulted = ServeEngine::new(UniformSpace::new(1), config(), 4);
        let mut plain = ServeEngine::new(UniformSpace::new(1), config(), 4);
        faulted.run_with_faults(50, &FaultPlan::empty());
        plain.run(50);
        assert_eq!(faulted.state(), plain.state());
    }
}
