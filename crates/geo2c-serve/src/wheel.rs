//! Departure scheduling: a hierarchical timing wheel and the binary-heap
//! oracle it is proven against.
//!
//! Departure deadlines are arrival-event timestamps — small integers
//! that only ever move forward — so a comparison-based priority queue is
//! overkill: a timing wheel gives O(1) [`DepartureQueue::schedule`],
//! O(due) [`DepartureQueue::drain_due`], and — because every server
//! carries an epoch that a purge bumps — O(1)
//! [`DepartureQueue::purge_server`] where the heap had to rebuild itself
//! wholesale on every fault.
//!
//! Layout: `LEVELS` levels of `SLOTS` buckets each, plus one
//! overflow list. Level `l` holds entries due within `SLOTS^(l+1)`
//! events; an entry's level-`l` slot is bits `10l..10(l+1)` of its
//! deadline. When the clock crosses a `SLOTS^l` boundary the matching
//! level-`l` slot *cascades*: its entries re-file one level down (an
//! entry first filed at level `l` re-files at `d & !(SLOTS^l − 1)`,
//! which is at most `d`, so nothing is ever late), and by the time the
//! clock reaches a deadline its entries all sit in the level-0 slot
//! `deadline mod SLOTS`, where the drain pops them without a single
//! comparison. The slots are wide (1024) so that a typical session —
//! mean lifetime on the order of the server count — re-files **once**
//! on its way down rather than walking a tall tower of narrow levels.
//!
//! Slot lists are singly linked and only ever popped wholesale (drain
//! and cascade take the entire list), which is what makes lazy purging
//! work: [`DepartureQueue::purge_server`] never touches a node. It bumps
//! the server's epoch and zeroes its pending count; entries scheduled
//! under the old epoch become *stale* in place, keep cascading toward
//! their deadline, and are dropped silently when the drain reaches them.
//! Fault handling costs O(1) at the fault, and the hot path pays one
//! epoch compare per drained entry instead of threading every node onto
//! a per-server purge list.
//!
//! Nodes live in a slab arena with an internal free list, so steady
//! state schedule/drain churn allocates nothing. Same-deadline drain
//! order differs from the heap's (LIFO slot lists vs server-number
//! order) — the engine's departures commute within a deadline (each one
//! only decrements its own server's load), which is exactly the
//! heap-order-invariance contract the `wheel_oracle` proptests pin:
//! wheel and heap drain the same multiset per deadline and agree on
//! [`DepartureQueue::entries`] bit-for-bit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The scheduling interface [`crate::engine::ServeEngine`] is generic
/// over: the production [`DepartureWheel`] and the [`HeapQueue`] oracle
/// implement it, and the `wheel_oracle` property suite drives both
/// through arbitrary schedule/drain/purge interleavings.
pub trait DepartureQueue {
    /// An empty queue for `num_servers` servers whose clock starts at
    /// `now` (a restored checkpoint starts mid-stream).
    #[must_use]
    fn with_origin(num_servers: usize, now: u64) -> Self;

    /// Schedules `server`'s session to depart at event `when`.
    ///
    /// # Panics
    /// May panic if `when` precedes the current clock or `server` is out
    /// of range (the wheel checks both; the heap oracle cannot).
    fn schedule(&mut self, when: u64, server: u32);

    /// Pops every entry with deadline `≤ t`, advancing the clock to
    /// `t + 1`, and calls `f(server)` for each. Entries sharing a
    /// deadline may be delivered in any order (engine departures
    /// commute); deadlines are delivered in order.
    fn drain_due(&mut self, t: u64, f: impl FnMut(u32));

    /// Removes every entry belonging to `server` (its sessions were just
    /// evicted), returning how many were dropped.
    fn purge_server(&mut self, server: u32) -> u64;

    /// Outstanding entries.
    #[must_use]
    fn len(&self) -> usize;

    /// Whether no entries are outstanding.
    #[must_use]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every outstanding `(deadline, server)` pair, sorted — the
    /// checkpoint image, identical across implementations.
    #[must_use]
    fn entries(&self) -> Vec<(u64, u32)>;
}

/// Null link in the wheel's intrusive lists.
const NONE: u32 = u32::MAX;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 10;
/// Buckets per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Bucketed levels; level `l` spans deadline deltas below `SLOTS^(l+1)`.
const LEVELS: usize = 2;
/// Flat index of the overflow list (deltas of `SLOTS^LEVELS` and beyond).
const OVERFLOW: usize = LEVELS * SLOTS;
/// Events covered by the bucketed levels combined: `SLOTS^LEVELS`.
const WHEEL_SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// One scheduled departure on a singly-linked slot list. Free nodes are
/// chained through `next` and marked by `server == NONE`. The `epoch`
/// snapshots the server's epoch at schedule time; a mismatch at drain
/// means the server was purged in between and the entry is stale.
#[derive(Debug, Clone, Copy)]
struct Node {
    deadline: u64,
    server: u32,
    epoch: u32,
    next: u32,
}

/// Per-server purge state: the current epoch and how many live (current
/// epoch) entries the server has filed in the wheel.
#[derive(Debug, Clone, Copy, Default)]
struct ServerMeta {
    epoch: u32,
    pending: u32,
}

/// The hierarchical timing wheel. See the module docs for the layout,
/// the cascade invariant, and the lazy-purge epoch scheme.
#[derive(Debug, Clone)]
pub struct DepartureWheel {
    /// Slab arena; nodes are recycled through an internal free list.
    nodes: Vec<Node>,
    /// Head of the free list (chained through `next`).
    free: u32,
    /// List heads: `level * SLOTS + slot`, then the overflow at the end.
    slots: Vec<u32>,
    /// Per-server epoch + live pending count.
    meta: Vec<ServerMeta>,
    /// The next event the wheel will drain.
    now: u64,
    /// Live (non-stale) entries — what [`DepartureQueue::len`] reports.
    live: usize,
    /// Nodes filed in some slot, stale ones included. Guards the
    /// empty-wheel clock jump: stale nodes still need to be walked to
    /// (and released at) their deadlines.
    filed: usize,
}

impl DepartureWheel {
    /// The flat slot a deadline files under, given the current clock.
    #[inline]
    fn home_for(&self, when: u64) -> usize {
        let delta = when - self.now;
        let mut level = 0;
        while level < LEVELS && delta >= 1 << (SLOT_BITS * (level as u32 + 1)) {
            level += 1;
        }
        if level == LEVELS {
            OVERFLOW
        } else {
            level * SLOTS + ((when >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1))
        }
    }

    /// Pops a node off the free list (or grows the arena).
    #[inline]
    fn alloc(&mut self, deadline: u64, server: u32, epoch: u32) -> u32 {
        if self.free == NONE {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                deadline,
                server,
                epoch,
                next: NONE,
            });
            idx
        } else {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.deadline = deadline;
            node.server = server;
            node.epoch = epoch;
            idx
        }
    }

    /// Returns a node to the free list.
    #[inline]
    fn release(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        node.server = NONE;
        node.next = self.free;
        self.free = idx;
    }

    /// Pushes `idx` onto the front of slot `home`.
    #[inline]
    fn link_slot(&mut self, idx: u32, home: usize) {
        self.nodes[idx as usize].next = self.slots[home];
        self.slots[home] = idx;
    }

    /// Re-files every entry of `home` against the current clock — one
    /// level down, or into level 0 once its window is the active one.
    #[inline]
    fn cascade(&mut self, home: usize) {
        let mut idx = self.slots[home];
        self.slots[home] = NONE;
        while idx != NONE {
            let next = self.nodes[idx as usize].next;
            let new_home = self.home_for(self.nodes[idx as usize].deadline);
            self.link_slot(idx, new_home);
            idx = next;
        }
    }
}

impl DepartureQueue for DepartureWheel {
    fn with_origin(num_servers: usize, now: u64) -> Self {
        Self {
            nodes: Vec::new(),
            free: NONE,
            slots: vec![NONE; OVERFLOW + 1],
            meta: vec![ServerMeta::default(); num_servers],
            now,
            live: 0,
            filed: 0,
        }
    }

    #[inline]
    fn schedule(&mut self, when: u64, server: u32) {
        assert!(when >= self.now, "departure scheduled in the past");
        let meta = &mut self.meta[server as usize];
        meta.pending += 1;
        let epoch = meta.epoch;
        let idx = self.alloc(when, server, epoch);
        let home = self.home_for(when);
        self.link_slot(idx, home);
        self.live += 1;
        self.filed += 1;
    }

    #[inline]
    fn drain_due(&mut self, t: u64, mut f: impl FnMut(u32)) {
        while self.now <= t {
            if self.filed == 0 {
                // Nothing filed anywhere (stale included): jump the clock.
                self.now = t + 1;
                return;
            }
            let cur = self.now;
            // Cascade every level whose window begins at `cur`, highest
            // first, so re-filed entries settle through lower levels (or
            // into level 0) in this same pass.
            if cur & (SLOTS as u64 - 1) == 0 {
                if cur % WHEEL_SPAN == 0 {
                    self.cascade(OVERFLOW);
                }
                for level in (1..LEVELS).rev() {
                    let span = 1u64 << (SLOT_BITS * level as u32);
                    if cur & (span - 1) == 0 {
                        let slot = (cur >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                        self.cascade(level * SLOTS + slot);
                    }
                }
            }
            // Level-0 slot `cur mod SLOTS` now holds exactly the entries
            // due at `cur`.
            let home = cur as usize & (SLOTS - 1);
            let mut idx = self.slots[home];
            self.slots[home] = NONE;
            while idx != NONE {
                let node = self.nodes[idx as usize];
                debug_assert_eq!(node.deadline, cur);
                self.release(idx);
                self.filed -= 1;
                let meta = &mut self.meta[node.server as usize];
                // Epoch mismatch: the server was purged after this entry
                // was scheduled — drop it silently.
                if node.epoch == meta.epoch {
                    meta.pending -= 1;
                    self.live -= 1;
                    f(node.server);
                }
                idx = node.next;
            }
            self.now = cur + 1;
        }
    }

    fn purge_server(&mut self, server: u32) -> u64 {
        let meta = &mut self.meta[server as usize];
        let purged = u64::from(meta.pending);
        meta.pending = 0;
        meta.epoch = meta.epoch.wrapping_add(1);
        self.live -= purged as usize;
        purged
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }

    fn entries(&self) -> Vec<(u64, u32)> {
        let mut out: Vec<(u64, u32)> = self
            .nodes
            .iter()
            .filter(|node| {
                node.server != NONE && node.epoch == self.meta[node.server as usize].epoch
            })
            .map(|node| (node.deadline, node.server))
            .collect();
        // One-word key: same order as the tuple comparator (deadline,
        // then server), noticeably faster on the checkpoint path.
        out.sort_unstable_by_key(|&(when, server)| (u128::from(when) << 32) | u128::from(server));
        out
    }
}

/// The binary-heap scheduler the wheel replaced, kept as the proptest
/// oracle: same [`DepartureQueue`] contract, with `purge_server` doing
/// the original O(len) filter-and-rebuild.
#[derive(Debug, Clone, Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl DepartureQueue for HeapQueue {
    fn with_origin(_num_servers: usize, _now: u64) -> Self {
        Self::default()
    }

    fn schedule(&mut self, when: u64, server: u32) {
        self.heap.push(Reverse((when, server)));
    }

    fn drain_due(&mut self, t: u64, mut f: impl FnMut(u32)) {
        while let Some(&Reverse((when, server))) = self.heap.peek() {
            if when > t {
                break;
            }
            self.heap.pop();
            f(server);
        }
    }

    fn purge_server(&mut self, server: u32) -> u64 {
        let before = self.heap.len();
        if self.heap.iter().any(|&Reverse((_, s))| s == server) {
            let kept: Vec<_> = std::mem::take(&mut self.heap)
                .into_iter()
                .filter(|&Reverse((_, s))| s != server)
                .collect();
            self.heap = kept.into();
        }
        (before - self.heap.len()) as u64
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn entries(&self) -> Vec<(u64, u32)> {
        let mut out: Vec<(u64, u32)> = self.heap.iter().map(|&Reverse(pair)| pair).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains `[queue.now, t]`, returning the drained servers sorted.
    fn drain_sorted<Q: DepartureQueue>(queue: &mut Q, t: u64) -> Vec<u32> {
        let mut out = Vec::new();
        queue.drain_due(t, |s| out.push(s));
        out.sort_unstable();
        out
    }

    #[test]
    fn drains_in_deadline_order_across_every_level() {
        let mut wheel = DepartureWheel::with_origin(8, 0);
        // Deltas spanning level 0 (3, 900), level 1 (5_000, 800_000),
        // and the overflow.
        let deadlines = [3u64, 900, 5_000, 800_000, WHEEL_SPAN + 17];
        for (i, &d) in deadlines.iter().enumerate() {
            wheel.schedule(d, i as u32);
        }
        assert_eq!(wheel.len(), 5);
        let mut drained = Vec::new();
        for &d in &deadlines {
            wheel.drain_due(d - 1, |_| panic!("nothing due before {d}"));
            wheel.drain_due(d, |s| drained.push(s));
        }
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn same_deadline_entries_drain_together() {
        let mut wheel = DepartureWheel::with_origin(4, 0);
        for server in 0..4 {
            wheel.schedule(70, server);
        }
        wheel.schedule(71, 0);
        assert_eq!(drain_sorted(&mut wheel, 70), vec![0, 1, 2, 3]);
        assert_eq!(drain_sorted(&mut wheel, 71), vec![0]);
    }

    #[test]
    fn purge_drops_only_the_victims_sessions() {
        let mut wheel = DepartureWheel::with_origin(3, 0);
        for (when, server) in [(10, 0), (10, 1), (20, 0), (30, 2), (20, 0)] {
            wheel.schedule(when, server);
        }
        assert_eq!(wheel.purge_server(0), 3);
        assert_eq!(wheel.purge_server(0), 0, "idempotent once empty");
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.entries(), vec![(10, 1), (30, 2)]);
        assert_eq!(drain_sorted(&mut wheel, 30), vec![1, 2]);
    }

    #[test]
    fn entries_scheduled_after_a_purge_are_live_again() {
        // The epoch scheme must not confuse a server's new sessions with
        // its purged ones, even at the same deadline.
        let mut wheel = DepartureWheel::with_origin(2, 0);
        wheel.schedule(10, 0);
        assert_eq!(wheel.purge_server(0), 1);
        wheel.schedule(10, 0);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.entries(), vec![(10, 0)]);
        assert_eq!(drain_sorted(&mut wheel, 10), vec![0]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn empty_wheel_jumps_the_clock_instead_of_walking_slots() {
        let mut wheel = DepartureWheel::with_origin(2, 0);
        wheel.drain_due(10_000_000, |_| panic!("empty"));
        // The clock jumped: a short-delta schedule lands on level 0.
        wheel.schedule(10_000_001, 1);
        assert_eq!(drain_sorted(&mut wheel, 10_000_001), vec![1]);
    }

    #[test]
    fn stale_entries_pin_the_clock_walk_but_not_the_len() {
        // After a purge the wheel reports empty, yet the stale node is
        // still filed: the clock must walk (not jump) to its deadline so
        // it gets released, and the drain must stay silent.
        let mut wheel = DepartureWheel::with_origin(2, 0);
        wheel.schedule(50, 1);
        wheel.purge_server(1);
        assert!(wheel.is_empty());
        assert_eq!(drain_sorted(&mut wheel, 100), Vec::<u32>::new());
        // The node was released at its deadline: a fresh schedule at the
        // same arena size recycles it.
        let arena = wheel.nodes.len();
        wheel.schedule(200, 0);
        assert_eq!(wheel.nodes.len(), arena, "stale node was recycled");
    }

    #[test]
    fn mid_stream_origin_files_against_the_restored_clock() {
        // A restored checkpoint constructs the wheel at now = arrivals:
        // deltas (not absolute deadlines) pick the level.
        let origin = 123_456_789;
        let mut wheel = DepartureWheel::with_origin(2, origin);
        wheel.schedule(origin, 0);
        wheel.schedule(origin + 63, 1);
        wheel.schedule(origin + WHEEL_SPAN + 1, 0);
        assert_eq!(drain_sorted(&mut wheel, origin), vec![0]);
        assert_eq!(drain_sorted(&mut wheel, origin + 63), vec![1]);
        assert_eq!(drain_sorted(&mut wheel, origin + WHEEL_SPAN + 1), vec![0]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn slab_recycles_nodes_through_the_free_list() {
        let mut wheel = DepartureWheel::with_origin(1, 0);
        for round in 0u64..100 {
            wheel.schedule(round + 1, 0);
            wheel.schedule(round + 2, 0);
            wheel.drain_due(round, |_| {});
        }
        wheel.drain_due(200, |_| {});
        assert!(wheel.is_empty());
        // Peak concurrency per round: 3 pending + 2 freshly scheduled.
        assert!(
            wheel.nodes.len() <= 5,
            "steady churn must recycle, not grow: {} nodes",
            wheel.nodes.len()
        );
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_behind_the_clock_panics() {
        let mut wheel = DepartureWheel::with_origin(1, 0);
        wheel.drain_due(10, |_| {});
        wheel.schedule(5, 0);
    }

    #[test]
    fn heap_oracle_matches_on_a_mixed_script() {
        let mut wheel = DepartureWheel::with_origin(8, 0);
        let mut heap = HeapQueue::with_origin(8, 0);
        let script = [
            (2u64, 3u32),
            (2, 5),
            (64, 1),
            (64, 3),
            (4_100, 2),
            (70_000, 3),
            (WHEEL_SPAN + 9, 6),
        ];
        for &(when, server) in &script {
            wheel.schedule(when, server);
            heap.schedule(when, server);
        }
        assert_eq!(wheel.entries(), heap.entries());
        assert_eq!(wheel.purge_server(3), heap.purge_server(3));
        assert_eq!(wheel.entries(), heap.entries());
        for t in [2u64, 64, 4_100, 70_000, WHEEL_SPAN + 9] {
            assert_eq!(drain_sorted(&mut wheel, t), drain_sorted(&mut heap, t));
        }
        assert!(wheel.is_empty() && heap.is_empty());
    }
}
