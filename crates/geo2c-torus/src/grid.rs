//! Exact grid-accelerated nearest-neighbour search on the torus.
//!
//! Every ball insertion in the Table 2 experiments needs "which server is
//! nearest to this probe point?". With `n` servers and `m = n` balls times
//! `d` probes, brute force would be `O(d·n²)` per trial — hopeless at
//! `n = 2^20`. A uniform bucket grid with ~1 site per cell answers queries
//! in `O(1)` expected time while remaining *exact*:
//!
//! 1. scan the probe's own cell, then cells at Chebyshev ring 1, 2, …
//!    (with wraparound), tracking the best site found;
//! 2. stop as soon as the best *squared* distance found is
//!    ≤ `((r−1)·w)²` (with `w` the cell width): every unvisited cell at
//!    ring ≥ `r` is at least `(r−1)·w` away in L∞, hence in L2, so it
//!    cannot contain a closer site. Comparing squared distances keeps
//!    `sqrt` entirely off the query path.
//!
//! The buckets are stored in a flat CSR layout — one `offsets` array of
//! `g² + 1` cursors into one contiguous `indices` array — so a query
//! touches at most two small allocations (plus the site slice) instead of
//! chasing a `Vec` per cell; within a bucket, site indices are in
//! ascending order, which pins the documented scan-order tie-break.
//!
//! Degenerate grids (a ring would wrap onto itself) fall back to scanning
//! all cells once, preserving exactness. [`nearest_brute`] is the oracle
//! the tests compare against (ablation experiment E12 benchmarks both,
//! and `geo2c-torus/tests/owner_equivalence.rs` pins the equivalence with
//! property tests over adversarial layouts).

use crate::point::TorusPoint;

/// Counting-sort CSR construction shared by [`Grid`] and
/// [`crate::kd::KdGrid`]: given each site's bucket id, returns
/// `(offsets, indices)` with the site indices grouped by bucket and
/// ascending within a bucket.
///
/// # Panics
/// Panics if a bucket id is out of range or the arrays would overflow
/// `u32`.
pub(crate) fn csr_buckets(n_buckets: usize, bucket_of_site: &[usize]) -> (Vec<u32>, Vec<u32>) {
    assert!(
        u32::try_from(bucket_of_site.len()).is_ok(),
        "too many sites"
    );
    assert!(u32::try_from(n_buckets + 1).is_ok(), "grid too large");
    let mut offsets = vec![0u32; n_buckets + 1];
    for &b in bucket_of_site {
        offsets[b + 1] += 1;
    }
    for b in 0..n_buckets {
        offsets[b + 1] += offsets[b];
    }
    let mut cursor = offsets.clone();
    let mut indices = vec![0u32; bucket_of_site.len()];
    for (i, &b) in bucket_of_site.iter().enumerate() {
        indices[cursor[b] as usize] = i as u32;
        cursor[b] += 1;
    }
    (offsets, indices)
}

/// A `g × g` bucket grid over the unit torus holding site indices in a
/// flat CSR (offsets + contiguous indices) layout.
#[derive(Debug, Clone)]
pub struct Grid {
    g: usize,
    cell_w: f64,
    /// `offsets[b]..offsets[b+1]` delimits bucket `b` in `indices`
    /// (row-major, `b = cy·g + cx`); length `g² + 1`.
    offsets: Vec<u32>,
    /// All site indices, grouped by bucket, ascending within a bucket.
    indices: Vec<u32>,
    /// Site positions duplicated in `indices` order, so a bucket scan
    /// streams contiguous coordinates instead of gathering random
    /// entries of the caller's site slice.
    packed: Vec<TorusPoint>,
}

impl Grid {
    /// Builds a grid over `sites` with roughly one site per cell
    /// (`g = ⌈√n⌉`, min 1) — measured faster than the K-d grid's
    /// 2-sites-per-cell tuning in two dimensions.
    ///
    /// # Panics
    /// Panics if `sites` is empty or has more than `u32::MAX` entries.
    #[must_use]
    pub fn build(sites: &[TorusPoint]) -> Self {
        Self::with_cells_per_side(sites, (sites.len() as f64).sqrt().ceil() as usize)
    }

    /// Builds a grid with an explicit side length (for tests/ablations).
    ///
    /// # Panics
    /// Panics if `sites` is empty, `g == 0`, or the index arrays would
    /// overflow `u32`.
    #[must_use]
    pub fn with_cells_per_side(sites: &[TorusPoint], g: usize) -> Self {
        assert!(!sites.is_empty(), "grid needs at least one site");
        assert!(g > 0, "grid side must be positive");
        let cell_w = 1.0 / g as f64;
        let bucket_ids: Vec<usize> = sites
            .iter()
            .map(|p| {
                let (cx, cy) = Self::cell_coords_for(p, g);
                cy * g + cx
            })
            .collect();
        let (offsets, indices) = csr_buckets(g * g, &bucket_ids);
        let packed = indices.iter().map(|&i| sites[i as usize]).collect();
        Self {
            g,
            cell_w,
            offsets,
            indices,
            packed,
        }
    }

    /// Cells per side.
    #[must_use]
    pub fn cells_per_side(&self) -> usize {
        self.g
    }

    /// The site indices of bucket `b` (ascending); test-only introspection
    /// (the query paths scan the packed coordinates directly).
    #[cfg(test)]
    fn bucket(&self, b: usize) -> &[u32] {
        &self.indices[self.offsets[b] as usize..self.offsets[b + 1] as usize]
    }

    fn cell_coords_for(p: &TorusPoint, g: usize) -> (usize, usize) {
        // Coordinates are in [0,1); the min guards against FP edge cases.
        let cx = ((p.x * g as f64) as usize).min(g - 1);
        let cy = ((p.y * g as f64) as usize).min(g - 1);
        (cx, cy)
    }

    /// Exact nearest site to `p`. Ties are broken toward the site scanned
    /// first (own cell, near orthant, remaining block cells, then outer
    /// rings; insertion order within a bucket) — deterministic for a
    /// fixed site set.
    ///
    /// Self-contained: scans the packed coordinate copy, so a query
    /// streams contiguous memory and needs no access to the original
    /// site slice. The common case (`g ≥ 4`, answer inside the probe's
    /// 3×3 cell block — almost always, with ~1 site per cell) runs the
    /// same near-orthant fast path as the K-d grid: the probe's own
    /// cell first with an exact cell-boundary early exit, then the 3
    /// cells displaced only *toward* the probe with an exact far-face
    /// exit, then the remaining 5 block cells — every cell carrying its
    /// exact squared lower bound so buckets the current best excludes
    /// are never loaded — and an exact block-boundary exit before the
    /// expanding-ring search resumes at ring 2.
    #[must_use]
    pub fn nearest(&self, p: TorusPoint) -> usize {
        let g = self.g;
        let (cx, cy) = Self::cell_coords_for(&p, g);
        if g < 4 {
            // 3×3 would self-wrap; the ring loop's scan-all branch is
            // already optimal here.
            return self.nearest_from_ring(p, cx, cy, 0, usize::MAX, f64::INFINITY);
        }
        let w = self.cell_w;
        // Probe offsets inside its own cell (clamped against FP skew at
        // the cell seam — a negative offset only makes the exits
        // conservative, never wrong, because the far/block formulas
        // below are true distances either way).
        let fx = p.x - cx as f64 * w;
        let fy = p.y - cy as f64 * w;
        let (near_x, far_x) = (fx.min(w - fx), fx.max(w - fx));
        let (near_y, far_y) = (fy.min(w - fy), fy.max(w - fy));
        let nx2 = near_x.max(0.0) * near_x.max(0.0);
        let ny2 = near_y.max(0.0) * near_y.max(0.0);
        let (fx2, fy2) = (far_x * far_x, far_y * far_y);
        // Neighbour columns/rows toward the nearer and farther side.
        let xm = if cx == 0 { g - 1 } else { cx - 1 };
        let xp = if cx + 1 == g { 0 } else { cx + 1 };
        let ym = if cy == 0 { g - 1 } else { cy - 1 };
        let yp = if cy + 1 == g { 0 } else { cy + 1 };
        let (x_near, x_far) = if fx <= w - fx { (xm, xp) } else { (xp, xm) };
        let (y_near, y_far) = if fy <= w - fy { (ym, yp) } else { (yp, ym) };
        let row_c = cy * g;
        let (row_n, row_f) = (y_near * g, y_far * g);
        // The scans track the best *CSR position*; the site id is a
        // single `indices` load at the very end, keeping that array out
        // of the inner loop entirely.
        let mut best_j = usize::MAX;
        let mut best_d2 = f64::INFINITY;
        let scan = |b: usize, best_j: &mut usize, best_d2: &mut f64| {
            let (lo, hi) = (self.offsets[b] as usize, self.offsets[b + 1] as usize);
            for (off, site) in self.packed[lo..hi].iter().enumerate() {
                let d2 = p.dist2(*site);
                if d2 < *best_d2 {
                    *best_d2 = d2;
                    *best_j = lo + off;
                }
            }
        };
        scan(row_c + cx, &mut best_j, &mut best_d2);
        // A hit closer than the probe's own cell boundary cannot be beaten
        // from any other cell: done after a single bucket. The clamp
        // keeps this exact when FP seam skew makes an offset negative
        // (squaring would otherwise turn "impossible" into "tiny radius").
        let cell_edge = near_x.min(near_y).max(0.0);
        if best_d2 <= cell_edge * cell_edge {
            return self.indices[best_j] as usize;
        }
        // Near-orthant pass: the 3 cells displaced only toward the probe,
        // each pruned by its exact squared lower bound. The true nearest
        // site is almost always here, and every cell outside the orthant
        // is displaced to a far side on some axis, i.e. at least
        // `min(far_x, far_y)` away — an exact certificate.
        let orthant: [(usize, f64); 3] = [
            (row_c + x_near, nx2),
            (row_n + cx, ny2),
            (row_n + x_near, nx2 + ny2),
        ];
        for &(b, bound) in &orthant {
            if bound < best_d2 {
                scan(b, &mut best_j, &mut best_d2);
            }
        }
        // Capped at the block boundary: under FP seam skew a negative
        // cell offset can make the far-face distance exceed the true
        // block-boundary distance, and outside-block sites are only
        // guaranteed to be at least the latter away.
        let far_edge = far_x.min(far_y).min(w + near_x.min(near_y));
        if best_j != usize::MAX && best_d2 <= far_edge * far_edge {
            return self.indices[best_j] as usize;
        }
        // Remainder pass: the other 5 block cells with the same exact
        // per-cell lower bounds (far margin² on far-displaced axes).
        let remainder: [(usize, f64); 5] = [
            (row_c + x_far, fx2),
            (row_f + cx, fy2),
            (row_n + x_far, fx2 + ny2),
            (row_f + x_near, nx2 + fy2),
            (row_f + x_far, fx2 + fy2),
        ];
        for &(b, bound) in &remainder {
            if bound < best_d2 {
                scan(b, &mut best_j, &mut best_d2);
            }
        }
        // Every unscanned site lies outside the 3×3 block, i.e. at least
        // the block-boundary distance away (exact, not the coarser
        // (r−1)·w bound; unclamped so FP seam skew only ever shrinks it).
        let block_edge = w + near_x.min(near_y);
        if best_j != usize::MAX && best_d2 <= block_edge * block_edge {
            return self.indices[best_j] as usize;
        }
        // Rare: nothing conclusive within the block — resume the
        // expanding-ring search at ring 2.
        self.nearest_from_ring(p, cx, cy, 2, best_j, best_d2)
    }

    /// The expanding-ring search, starting at Chebyshev ring `start` with
    /// the best candidate found so far (rings `< start` must already have
    /// been scanned by the caller). `best_j` is a CSR position, not a
    /// site id; the returned value is the resolved site id.
    fn nearest_from_ring(
        &self,
        p: TorusPoint,
        cx: usize,
        cy: usize,
        start: usize,
        mut best_j: usize,
        mut best_d2: f64,
    ) -> usize {
        let g = self.g;

        let scan_bucket = |b: usize, best_j: &mut usize, best_d2: &mut f64| {
            let lo = self.offsets[b] as usize;
            let hi = self.offsets[b + 1] as usize;
            for (k, site) in self.packed[lo..hi].iter().enumerate() {
                let d2 = p.dist2(*site);
                if d2 < *best_d2 {
                    *best_d2 = d2;
                    *best_j = lo + k;
                }
            }
        };

        let max_ring = g / 2 + 1;
        for r in start..=max_ring {
            if r > 0 {
                // Every cell at ring >= r is at least (r-1)*w away (L∞,
                // hence L2). If we already have something at most that
                // close, no further ring can improve on it. Squared on
                // both sides: no sqrt anywhere on the query path.
                let unreachable = (r as f64 - 1.0) * self.cell_w;
                if best_j != usize::MAX && best_d2 <= unreachable * unreachable {
                    break;
                }
            }
            if 2 * r + 1 >= g {
                // Ring wraps onto itself: scan everything once and stop.
                for b in 0..g * g {
                    scan_bucket(b, &mut best_j, &mut best_d2);
                }
                break;
            }
            if r == 0 {
                scan_bucket(cy * g + cx, &mut best_j, &mut best_d2);
                continue;
            }
            // Chebyshev ring r around (cx, cy), wrapped. 2r+1 < g, so the
            // wrapped cells are all distinct.
            let wrap = |v: isize| -> usize { v.rem_euclid(g as isize) as usize };
            let r = r as isize;
            let (cxi, cyi) = (cx as isize, cy as isize);
            let (row_lo, row_hi) = (wrap(cyi - r) * g, wrap(cyi + r) * g);
            for dx in -r..=r {
                let bx = wrap(cxi + dx);
                scan_bucket(row_lo + bx, &mut best_j, &mut best_d2);
                scan_bucket(row_hi + bx, &mut best_j, &mut best_d2);
            }
            let (col_lo, col_hi) = (wrap(cxi - r), wrap(cxi + r));
            for dy in (-r + 1)..r {
                let by = wrap(cyi + dy) * g;
                scan_bucket(by + col_lo, &mut best_j, &mut best_d2);
                scan_bucket(by + col_hi, &mut best_j, &mut best_d2);
            }
        }
        debug_assert!(best_j != usize::MAX, "grid search found no site");
        self.indices[best_j] as usize
    }

    /// All site indices within distance `radius` of `p` (inclusive),
    /// in arbitrary order. Exact; scans every cell intersecting the ball.
    #[must_use]
    pub fn within(&self, p: TorusPoint, radius: f64) -> Vec<usize> {
        let g = self.g;
        let mut out = Vec::new();
        let reach = (radius / self.cell_w).ceil() as usize + 1;
        let (cx, cy) = Self::cell_coords_for(&p, g);
        let r2 = radius * radius;
        let scan_bucket = |b: usize, out: &mut Vec<usize>| {
            let lo = self.offsets[b] as usize;
            let hi = self.offsets[b + 1] as usize;
            for (k, site) in self.packed[lo..hi].iter().enumerate() {
                if p.dist2(*site) <= r2 {
                    out.push(self.indices[lo + k] as usize);
                }
            }
        };
        if 2 * reach + 1 >= g {
            for b in 0..g * g {
                scan_bucket(b, &mut out);
            }
            out.sort_unstable();
            return out;
        }
        let wrap = |v: isize| -> usize { v.rem_euclid(g as isize) as usize };
        let (cxi, cyi) = (cx as isize, cy as isize);
        let reach = reach as isize;
        for dy in -reach..=reach {
            let by = wrap(cyi + dy) * g;
            for dx in -reach..=reach {
                scan_bucket(by + wrap(cxi + dx), &mut out);
            }
        }
        out
    }
}

/// Brute-force nearest site: the `O(n)` oracle used to validate [`Grid`].
///
/// # Panics
/// Panics if `sites` is empty.
#[must_use]
pub fn nearest_brute(p: TorusPoint, sites: &[TorusPoint]) -> usize {
    assert!(!sites.is_empty(), "nearest_brute needs at least one site");
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    for (i, s) in sites.iter().enumerate() {
        let d2 = p.dist2(*s);
        if d2 < best_d2 {
            best_d2 = d2;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;
    use rand::Rng as _;

    fn random_sites(n: usize, seed: u64) -> Vec<TorusPoint> {
        let mut rng = Xoshiro256pp::from_u64(seed);
        (0..n).map(|_| TorusPoint::random(&mut rng)).collect()
    }

    #[test]
    fn single_site() {
        let sites = vec![TorusPoint::new(0.3, 0.7)];
        let grid = Grid::build(&sites);
        let mut rng = Xoshiro256pp::from_u64(1);
        for _ in 0..100 {
            assert_eq!(grid.nearest(TorusPoint::random(&mut rng)), 0);
        }
    }

    #[test]
    fn csr_buckets_partition_the_sites_in_order() {
        // Every site appears exactly once across the buckets, ascending
        // within each bucket (the tie-break order contract).
        let sites = random_sites(137, 5);
        let grid = Grid::with_cells_per_side(&sites, 7);
        let mut seen = vec![false; sites.len()];
        for b in 0..49 {
            let bucket = grid.bucket(b);
            for w in bucket.windows(2) {
                assert!(w[0] < w[1], "bucket {b} not ascending");
            }
            for &i in bucket {
                assert!(!seen[i as usize], "site {i} in two buckets");
                seen[i as usize] = true;
                let (cx, cy) = Grid::cell_coords_for(&sites[i as usize], 7);
                assert_eq!(cy * 7 + cx, b, "site {i} in wrong bucket");
            }
        }
        assert!(seen.iter().all(|&s| s), "missing sites");
    }

    #[test]
    fn grid_matches_brute_force_distances() {
        let mut rng = Xoshiro256pp::from_u64(21);
        for &n in &[2usize, 3, 10, 100, 500] {
            let sites = random_sites(n, 100 + n as u64);
            let grid = Grid::build(&sites);
            for _ in 0..500 {
                let p = TorusPoint::random(&mut rng);
                let fast = grid.nearest(p);
                let slow = nearest_brute(p, &sites);
                // Compare distances, not indices (exact ties may differ).
                assert!(
                    (p.dist2(sites[fast]) - p.dist2(sites[slow])).abs() < 1e-15,
                    "n={n}: grid {fast} vs brute {slow} at {p}"
                );
            }
        }
    }

    #[test]
    fn wraparound_neighbours_found() {
        // Probe near (0,0); nearest site is across both wrap seams.
        let sites = vec![
            TorusPoint::new(0.98, 0.98),
            TorusPoint::new(0.5, 0.5),
            TorusPoint::new(0.25, 0.75),
        ];
        let grid = Grid::with_cells_per_side(&sites, 8);
        assert_eq!(grid.nearest(TorusPoint::new(0.01, 0.01)), 0);
    }

    #[test]
    fn degenerate_small_grids() {
        let sites = random_sites(20, 7);
        for g in [1usize, 2, 3] {
            let grid = Grid::with_cells_per_side(&sites, g);
            let mut rng = Xoshiro256pp::from_u64(8);
            for _ in 0..200 {
                let p = TorusPoint::random(&mut rng);
                let fast = grid.nearest(p);
                let slow = nearest_brute(p, &sites);
                assert!((p.dist2(sites[fast]) - p.dist2(sites[slow])).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn clustered_sites_still_exact() {
        // All sites in one tiny cluster: most grid cells empty, so the
        // expanding-ring search must keep going for distant probes.
        let mut rng = Xoshiro256pp::from_u64(9);
        let sites: Vec<TorusPoint> = (0..50)
            .map(|_| {
                TorusPoint::new(
                    0.5 + 0.01 * (rng.gen::<f64>() - 0.5),
                    0.5 + 0.01 * (rng.gen::<f64>() - 0.5),
                )
            })
            .collect();
        let grid = Grid::build(&sites);
        for _ in 0..300 {
            let p = TorusPoint::random(&mut rng);
            let fast = grid.nearest(p);
            let slow = nearest_brute(p, &sites);
            assert!((p.dist2(sites[fast]) - p.dist2(sites[slow])).abs() < 1e-15);
        }
    }

    #[test]
    fn within_radius_matches_filter() {
        let sites = random_sites(200, 31);
        let grid = Grid::build(&sites);
        let mut rng = Xoshiro256pp::from_u64(32);
        for _ in 0..100 {
            let p = TorusPoint::random(&mut rng);
            let radius = rng.gen::<f64>() * 0.3;
            let mut got = grid.within(p, radius);
            got.sort_unstable();
            let want: Vec<usize> = (0..sites.len())
                .filter(|&i| p.dist(sites[i]) <= radius)
                .collect();
            assert_eq!(got, want, "radius {radius} at {p}");
        }
    }

    #[test]
    fn within_zero_radius() {
        let sites = vec![TorusPoint::new(0.5, 0.5), TorusPoint::new(0.2, 0.2)];
        let grid = Grid::build(&sites);
        let hit = grid.within(TorusPoint::new(0.5, 0.5), 0.0);
        assert_eq!(hit, vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_sites_rejected() {
        let _ = Grid::build(&[]);
    }
}
