//! Exact grid-accelerated nearest-neighbour search on the torus.
//!
//! Every ball insertion in the Table 2 experiments needs "which server is
//! nearest to this probe point?". With `n` servers and `m = n` balls times
//! `d` probes, brute force would be `O(d·n²)` per trial — hopeless at
//! `n = 2^20`. A uniform bucket grid with ~1 site per cell answers queries
//! in `O(1)` expected time while remaining *exact*:
//!
//! 1. scan the probe's own cell, then cells at Chebyshev ring 1, 2, …
//!    (with wraparound), tracking the best site found;
//! 2. stop as soon as the best distance found is ≤ `(r−1)·w` (with `w` the
//!    cell width): every unvisited cell at ring ≥ `r` is at least that far
//!    away in L∞, hence in L2, so it cannot contain a closer site.
//!
//! Degenerate grids (a ring would wrap onto itself) fall back to scanning
//! all cells once, preserving exactness. [`nearest_brute`] is the oracle
//! the tests compare against (ablation experiment E12 benchmarks both).

use crate::point::TorusPoint;

/// A `g × g` bucket grid over the unit torus holding site indices.
#[derive(Debug, Clone)]
pub struct Grid {
    g: usize,
    cell_w: f64,
    buckets: Vec<Vec<u32>>,
}

impl Grid {
    /// Builds a grid over `sites` with roughly one site per cell
    /// (`g = ⌈√n⌉`, min 1).
    ///
    /// # Panics
    /// Panics if `sites` is empty or has more than `u32::MAX` entries.
    #[must_use]
    pub fn build(sites: &[TorusPoint]) -> Self {
        Self::with_cells_per_side(sites, (sites.len() as f64).sqrt().ceil() as usize)
    }

    /// Builds a grid with an explicit side length (for tests/ablations).
    ///
    /// # Panics
    /// Panics if `sites` is empty or `g == 0`.
    #[must_use]
    pub fn with_cells_per_side(sites: &[TorusPoint], g: usize) -> Self {
        assert!(!sites.is_empty(), "grid needs at least one site");
        assert!(g > 0, "grid side must be positive");
        assert!(u32::try_from(sites.len()).is_ok(), "too many sites");
        let mut buckets = vec![Vec::new(); g * g];
        let cell_w = 1.0 / g as f64;
        for (i, p) in sites.iter().enumerate() {
            let (cx, cy) = Self::cell_coords_for(p, g);
            buckets[cy * g + cx].push(i as u32);
        }
        Self { g, cell_w, buckets }
    }

    /// Cells per side.
    #[must_use]
    pub fn cells_per_side(&self) -> usize {
        self.g
    }

    fn cell_coords_for(p: &TorusPoint, g: usize) -> (usize, usize) {
        // Coordinates are in [0,1); the min guards against FP edge cases.
        let cx = ((p.x * g as f64) as usize).min(g - 1);
        let cy = ((p.y * g as f64) as usize).min(g - 1);
        (cx, cy)
    }

    /// Exact nearest site to `p`. Ties are broken toward the site scanned
    /// first (lowest bucket ring, then insertion order) — deterministic for
    /// a fixed site set.
    ///
    /// `sites` must be the same slice the grid was built from.
    #[must_use]
    pub fn nearest(&self, p: TorusPoint, sites: &[TorusPoint]) -> usize {
        let g = self.g;
        let (cx, cy) = Self::cell_coords_for(&p, g);
        let mut best_idx = usize::MAX;
        let mut best_d2 = f64::INFINITY;

        let scan_bucket = |bx: usize, by: usize, best_idx: &mut usize, best_d2: &mut f64| {
            for &i in &self.buckets[by * g + bx] {
                let d2 = p.dist2(sites[i as usize]);
                if d2 < *best_d2 {
                    *best_d2 = d2;
                    *best_idx = i as usize;
                }
            }
        };

        let max_ring = g / 2 + 1;
        for r in 0..=max_ring {
            if r > 0 {
                // Every cell at ring >= r is at least (r-1)*w away (L∞,
                // hence L2). If we already have something at most that
                // close, no further ring can improve on it.
                let unreachable = (r as f64 - 1.0) * self.cell_w;
                if best_idx != usize::MAX && best_d2.sqrt() <= unreachable {
                    break;
                }
            }
            if 2 * r + 1 >= g {
                // Ring wraps onto itself: scan everything once and stop.
                for by in 0..g {
                    for bx in 0..g {
                        scan_bucket(bx, by, &mut best_idx, &mut best_d2);
                    }
                }
                break;
            }
            if r == 0 {
                scan_bucket(cx, cy, &mut best_idx, &mut best_d2);
                continue;
            }
            // Chebyshev ring r around (cx, cy), wrapped. 2r+1 < g, so the
            // wrapped cells are all distinct.
            let wrap = |v: isize| -> usize { v.rem_euclid(g as isize) as usize };
            let r = r as isize;
            let (cxi, cyi) = (cx as isize, cy as isize);
            for dx in -r..=r {
                scan_bucket(wrap(cxi + dx), wrap(cyi - r), &mut best_idx, &mut best_d2);
                scan_bucket(wrap(cxi + dx), wrap(cyi + r), &mut best_idx, &mut best_d2);
            }
            for dy in (-r + 1)..r {
                scan_bucket(wrap(cxi - r), wrap(cyi + dy), &mut best_idx, &mut best_d2);
                scan_bucket(wrap(cxi + r), wrap(cyi + dy), &mut best_idx, &mut best_d2);
            }
        }
        debug_assert!(best_idx != usize::MAX, "grid search found no site");
        best_idx
    }

    /// All site indices within distance `radius` of `p` (inclusive),
    /// in arbitrary order. Exact; scans every cell intersecting the ball.
    #[must_use]
    pub fn within(&self, p: TorusPoint, radius: f64, sites: &[TorusPoint]) -> Vec<usize> {
        let g = self.g;
        let mut out = Vec::new();
        let reach = (radius / self.cell_w).ceil() as usize + 1;
        let (cx, cy) = Self::cell_coords_for(&p, g);
        let r2 = radius * radius;
        if 2 * reach + 1 >= g {
            for (i, s) in sites.iter().enumerate() {
                if p.dist2(*s) <= r2 {
                    out.push(i);
                }
            }
            return out;
        }
        let wrap = |v: isize| -> usize { v.rem_euclid(g as isize) as usize };
        let (cxi, cyi) = (cx as isize, cy as isize);
        let reach = reach as isize;
        for dy in -reach..=reach {
            for dx in -reach..=reach {
                for &i in &self.buckets[wrap(cyi + dy) * g + wrap(cxi + dx)] {
                    if p.dist2(sites[i as usize]) <= r2 {
                        out.push(i as usize);
                    }
                }
            }
        }
        out
    }
}

/// Brute-force nearest site: the `O(n)` oracle used to validate [`Grid`].
///
/// # Panics
/// Panics if `sites` is empty.
#[must_use]
pub fn nearest_brute(p: TorusPoint, sites: &[TorusPoint]) -> usize {
    assert!(!sites.is_empty(), "nearest_brute needs at least one site");
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    for (i, s) in sites.iter().enumerate() {
        let d2 = p.dist2(*s);
        if d2 < best_d2 {
            best_d2 = d2;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;
    use rand::Rng as _;

    fn random_sites(n: usize, seed: u64) -> Vec<TorusPoint> {
        let mut rng = Xoshiro256pp::from_u64(seed);
        (0..n).map(|_| TorusPoint::random(&mut rng)).collect()
    }

    #[test]
    fn single_site() {
        let sites = vec![TorusPoint::new(0.3, 0.7)];
        let grid = Grid::build(&sites);
        let mut rng = Xoshiro256pp::from_u64(1);
        for _ in 0..100 {
            assert_eq!(grid.nearest(TorusPoint::random(&mut rng), &sites), 0);
        }
    }

    #[test]
    fn grid_matches_brute_force_distances() {
        let mut rng = Xoshiro256pp::from_u64(21);
        for &n in &[2usize, 3, 10, 100, 500] {
            let sites = random_sites(n, 100 + n as u64);
            let grid = Grid::build(&sites);
            for _ in 0..500 {
                let p = TorusPoint::random(&mut rng);
                let fast = grid.nearest(p, &sites);
                let slow = nearest_brute(p, &sites);
                // Compare distances, not indices (exact ties may differ).
                assert!(
                    (p.dist2(sites[fast]) - p.dist2(sites[slow])).abs() < 1e-15,
                    "n={n}: grid {fast} vs brute {slow} at {p}"
                );
            }
        }
    }

    #[test]
    fn wraparound_neighbours_found() {
        // Probe near (0,0); nearest site is across both wrap seams.
        let sites = vec![
            TorusPoint::new(0.98, 0.98),
            TorusPoint::new(0.5, 0.5),
            TorusPoint::new(0.25, 0.75),
        ];
        let grid = Grid::with_cells_per_side(&sites, 8);
        assert_eq!(grid.nearest(TorusPoint::new(0.01, 0.01), &sites), 0);
    }

    #[test]
    fn degenerate_small_grids() {
        let sites = random_sites(20, 7);
        for g in [1usize, 2, 3] {
            let grid = Grid::with_cells_per_side(&sites, g);
            let mut rng = Xoshiro256pp::from_u64(8);
            for _ in 0..200 {
                let p = TorusPoint::random(&mut rng);
                let fast = grid.nearest(p, &sites);
                let slow = nearest_brute(p, &sites);
                assert!((p.dist2(sites[fast]) - p.dist2(sites[slow])).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn clustered_sites_still_exact() {
        // All sites in one tiny cluster: most grid cells empty, so the
        // expanding-ring search must keep going for distant probes.
        let mut rng = Xoshiro256pp::from_u64(9);
        let sites: Vec<TorusPoint> = (0..50)
            .map(|_| {
                TorusPoint::new(
                    0.5 + 0.01 * (rng.gen::<f64>() - 0.5),
                    0.5 + 0.01 * (rng.gen::<f64>() - 0.5),
                )
            })
            .collect();
        let grid = Grid::build(&sites);
        for _ in 0..300 {
            let p = TorusPoint::random(&mut rng);
            let fast = grid.nearest(p, &sites);
            let slow = nearest_brute(p, &sites);
            assert!((p.dist2(sites[fast]) - p.dist2(sites[slow])).abs() < 1e-15);
        }
    }

    #[test]
    fn within_radius_matches_filter() {
        let sites = random_sites(200, 31);
        let grid = Grid::build(&sites);
        let mut rng = Xoshiro256pp::from_u64(32);
        for _ in 0..100 {
            let p = TorusPoint::random(&mut rng);
            let radius = rng.gen::<f64>() * 0.3;
            let mut got = grid.within(p, radius, &sites);
            got.sort_unstable();
            let want: Vec<usize> = (0..sites.len())
                .filter(|&i| p.dist(sites[i]) <= radius)
                .collect();
            assert_eq!(got, want, "radius {radius} at {p}");
        }
    }

    #[test]
    fn within_zero_radius() {
        let sites = vec![TorusPoint::new(0.5, 0.5), TorusPoint::new(0.2, 0.2)];
        let grid = Grid::build(&sites);
        let hit = grid.within(TorusPoint::new(0.5, 0.5), 0.0, &sites);
        assert_eq!(hit, vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_sites_rejected() {
        let _ = Grid::build(&[]);
    }
}
