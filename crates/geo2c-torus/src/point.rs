//! Points on the unit torus `[0,1)²` with wrapped arithmetic.
//!
//! The torus identifies `x` with `x+1` on both axes, so displacements are
//! canonicalized into `[-0.5, 0.5)` per coordinate: the wrapped displacement
//! is the *shortest* vector from one point to another, and the toroidal
//! Euclidean distance is its norm (at most `√2/2`).

use rand::Rng;

/// A point on the unit torus, with both coordinates in `[0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TorusPoint {
    /// Horizontal coordinate in `[0, 1)`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1)`.
    pub y: f64,
}

/// Wraps a coordinate into `[0, 1)`.
///
/// Already-canonical inputs (the overwhelmingly common case) take a
/// branch, not an `fmod` libcall; the fallback matches `rem_euclid`
/// bit-for-bit.
#[inline]
#[must_use]
pub fn wrap01(v: f64) -> f64 {
    if (0.0..1.0).contains(&v) {
        return v;
    }
    let mut w = v.rem_euclid(1.0);
    if w >= 1.0 {
        w = 0.0;
    }
    w
}

/// Canonicalizes a displacement component into `[-0.5, 0.5)`.
///
/// Differences of `[0, 1)` coordinates lie in `(-1, 1)`, where the
/// canonicalization is two *branchless* arithmetic selects (the
/// comparisons convert to `0.0`/`1.0` addends). This is the innermost
/// operation of every toroidal distance; with data-dependent values the
/// two range tests are 50/50 coin flips, and replacing their branch
/// mispredicts with converts is worth more than any instruction saved
/// elsewhere in the scan loops. Adding `0.0` keeps the arithmetic
/// bit-identical to the branchy form (up to the sign of a `-0.0`
/// input). The out-of-range fallback matches `rem_euclid` bit-for-bit.
#[inline]
#[must_use]
pub fn wrap_delta(d: f64) -> f64 {
    if (-1.0..1.0).contains(&d) {
        // Branchless: w = d + [d < 0]; w -= [w ≥ 0.5].
        let w = d + f64::from(u8::from(d < 0.0));
        w - f64::from(u8::from(w >= 0.5))
    } else {
        let mut w = d.rem_euclid(1.0);
        if w >= 0.5 {
            w -= 1.0;
        }
        w
    }
}

impl TorusPoint {
    /// Creates a point, wrapping both coordinates into `[0, 1)`.
    ///
    /// # Panics
    /// Panics if either coordinate is not finite.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        assert!(
            x.is_finite() && y.is_finite(),
            "torus coordinates must be finite, got ({x}, {y})"
        );
        Self {
            x: wrap01(x),
            y: wrap01(y),
        }
    }

    /// Samples a uniformly random point on the torus.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            x: rng.gen::<f64>(),
            y: rng.gen::<f64>(),
        }
    }

    /// The shortest displacement vector from `self` to `other`, with each
    /// component in `[-0.5, 0.5)`.
    #[inline]
    #[must_use]
    pub fn delta(self, other: TorusPoint) -> (f64, f64) {
        (wrap_delta(other.x - self.x), wrap_delta(other.y - self.y))
    }

    /// Squared toroidal Euclidean distance (cheaper than [`Self::dist`]
    /// for comparisons).
    #[inline]
    #[must_use]
    pub fn dist2(self, other: TorusPoint) -> f64 {
        let (dx, dy) = self.delta(other);
        dx * dx + dy * dy
    }

    /// Toroidal Euclidean distance, in `[0, √2/2]`.
    #[inline]
    #[must_use]
    pub fn dist(self, other: TorusPoint) -> f64 {
        self.dist2(other).sqrt()
    }

    /// The point displaced by `(dx, dy)` (wraps).
    #[must_use]
    pub fn offset(self, dx: f64, dy: f64) -> TorusPoint {
        TorusPoint::new(self.x + dx, self.y + dy)
    }
}

impl std::fmt::Display for TorusPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;

    #[test]
    fn new_wraps() {
        let p = TorusPoint::new(1.25, -0.25);
        assert!((p.x - 0.25).abs() < 1e-12);
        assert!((p.y - 0.75).abs() < 1e-12);
        assert_eq!(TorusPoint::new(1.0, 2.0), TorusPoint::new(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn new_rejects_infinite() {
        let _ = TorusPoint::new(f64::INFINITY, 0.0);
    }

    #[test]
    fn wrap_delta_canonical_range() {
        assert!((wrap_delta(0.7) - -0.3).abs() < 1e-12);
        assert!((wrap_delta(-0.7) - 0.3).abs() < 1e-12);
        assert_eq!(wrap_delta(0.5), -0.5);
        assert_eq!(wrap_delta(-0.5), -0.5);
        assert_eq!(wrap_delta(0.0), 0.0);
    }

    #[test]
    fn distance_takes_shortest_path() {
        let a = TorusPoint::new(0.05, 0.05);
        let b = TorusPoint::new(0.95, 0.95);
        // Shortest path wraps both axes: (−0.1, −0.1).
        assert!((a.dist(b) - (0.02f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.dist(b), b.dist(a));
    }

    #[test]
    fn max_distance_is_half_diagonal() {
        let a = TorusPoint::new(0.0, 0.0);
        let b = TorusPoint::new(0.5, 0.5);
        assert!((a.dist(b) - (0.5f64).sqrt()).abs() < 1e-12);
        let mut rng = Xoshiro256pp::from_u64(2);
        for _ in 0..1000 {
            let p = TorusPoint::random(&mut rng);
            let q = TorusPoint::random(&mut rng);
            assert!(p.dist(q) <= (0.5f64).sqrt() + 1e-12);
        }
    }

    #[test]
    fn delta_consistent_with_offset() {
        let mut rng = Xoshiro256pp::from_u64(3);
        for _ in 0..1000 {
            let p = TorusPoint::random(&mut rng);
            let (dx, dy) = (rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5);
            let q = p.offset(dx, dy);
            let (gx, gy) = p.delta(q);
            // The recovered displacement equals the applied one (both are
            // already canonical), modulo the ±0.5 boundary.
            if dx.abs() < 0.499 && dy.abs() < 0.499 {
                assert!((gx - dx).abs() < 1e-9, "dx {dx} vs {gx}");
                assert!((gy - dy).abs() < 1e-9, "dy {dy} vs {gy}");
            }
        }
    }

    #[test]
    fn random_points_in_unit_square() {
        let mut rng = Xoshiro256pp::from_u64(4);
        for _ in 0..1000 {
            let p = TorusPoint::random(&mut rng);
            assert!((0.0..1.0).contains(&p.x));
            assert!((0.0..1.0).contains(&p.y));
        }
    }
}
