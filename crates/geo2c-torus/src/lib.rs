//! The 2-dimensional torus substrate for the geometric two-choices paper.
//!
//! Section 3 of *Geometric Generalizations of the Power of Two Choices*
//! places `n` servers uniformly at random on the unit torus `[0,1)²` (with
//! wraparound on both axes); the bins are the servers' Voronoi cells under
//! toroidal Euclidean distance, and a ball probes `d` uniform points, going
//! to the least-loaded owning server. This crate builds that geometry from
//! scratch:
//!
//! * [`point`] — toroidal points, wrapped displacement and distance.
//! * [`grid`] — an exact, grid-accelerated nearest-neighbour index
//!   (expanding-ring search with a provable termination radius), plus the
//!   brute-force oracle used to verify it.
//! * [`polygon`] — convex polygons with half-plane clipping and shoelace
//!   areas; the computational-geometry kernel for Voronoi cells.
//! * [`voronoi`] — [`TorusSites`]: the server set with owner queries and
//!   *exact* Voronoi cell construction (clipping the fundamental square
//!   against perpendicular bisectors of neighbouring sites and their
//!   relevant periodic images), validated against Monte-Carlo areas.
//! * [`sector`] — the six-sector geometric argument of Lemma 8 / Figure 1
//!   and the Lemma 9 tail-bound experiment on the number of large cells.
//!
//! The paper's argument generalizes to any constant dimension; this crate
//! implements the 2-D case the paper evaluates (Table 2), plus the
//! const-generic [`kd`] module for the `K`-torus sweeps of the
//! `dimension` experiment.
//!
//! ```
//! use geo2c_torus::{TorusPoint, TorusSites};
//! use geo2c_util::rng::Xoshiro256pp;
//!
//! // n random sites induce n Voronoi cells (§3's bins). The exact
//! // half-plane-clipped cell areas partition the unit torus...
//! let mut rng = Xoshiro256pp::from_u64(2);
//! let sites = TorusSites::random(24, &mut rng);
//! let total: f64 = sites.cell_areas().iter().sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! // ...and the grid-accelerated owner query matches brute force.
//! let p = TorusPoint::new(0.25, 0.75);
//! assert_eq!(sites.owner(p), sites.owner_brute(p));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod grid;
pub mod kd;
pub mod point;
pub mod polygon;
pub mod sector;
pub mod voronoi;

pub use grid::Grid;
pub use kd::{KdPoint, KdSites};
pub use point::TorusPoint;
pub use polygon::Polygon;
pub use voronoi::TorusSites;
