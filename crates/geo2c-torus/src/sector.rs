//! The six-sector argument (Lemma 8 / Figure 1) and the Voronoi tail bound
//! (Lemma 9), as executable experiments.
//!
//! **Lemma 8.** Divide the disc of area `c/n` centred at site `u` into six
//! 60° sectors (sector 1 spans 0°–60° from the positive x-axis, etc.). If
//! the Voronoi cell of `u` has area ≥ `c/n`, then at least one sector
//! contains none of the other `n−1` sites. Contrapositive: if all six
//! sectors are occupied, the cell is contained in the disc — because any
//! point `w` making an angle within a sector's span is closer to that
//! sector's occupant `v` than to `u` once `d(u,w) > d(u,v)` and the angle
//! `∠(v,u,w) ≤ 60°` (law of cosines with `cos a > 1/2`).
//!
//! **Lemma 9.** Consequently the number of cells of area ≥ `c/n` is at most
//! `Z = Σ_{i,j} Z_{i,j}` (site `i`, sector `j` empty), whose expectation is
//! `6n(1 − c/6n)^{n−1} < 6n e^{−c/6}`, and
//! `Pr(#cells ≥ c/n > 12 n e^{−c/6}) = o(1/n⁴)` for `ln n ≥ c ≥ 12`
//! (via a Doob martingale with an `ln³n` Lipschitz correction).
//!
//! This module provides the sector-occupancy primitive, a direct check of
//! Lemma 8 on random instances, and the Lemma 9 Monte-Carlo experiment
//! (E4 and E7 in DESIGN.md).

use crate::voronoi::TorusSites;
use geo2c_util::parallel::parallel_map;
use geo2c_util::rng::StreamSeeder;
use geo2c_util::stats::RunningStats;

/// Radius of the disc of area `a`: `√(a/π)`.
#[must_use]
pub fn disc_radius(area: f64) -> f64 {
    (area / std::f64::consts::PI).sqrt()
}

/// Sector index (0–5) of the displacement `(dx, dy)`: sector `k` spans
/// angles `[60k°, 60(k+1)°)` counter-clockwise from the positive x-axis.
#[must_use]
pub fn sector_of(dx: f64, dy: f64) -> usize {
    let angle = dy.atan2(dx); // (−π, π]
    let angle = if angle < 0.0 {
        angle + 2.0 * std::f64::consts::PI
    } else {
        angle
    };
    let k = (angle / (std::f64::consts::PI / 3.0)) as usize;
    k.min(5)
}

/// Occupancy of the six sectors of the disc of area `c/n` around site `i`:
/// `occupied[k]` is true iff some *other* site lies in sector `k` within
/// the disc.
#[must_use]
pub fn sector_occupancy(sites: &TorusSites, i: usize, c: f64) -> [bool; 6] {
    let n = sites.len();
    let radius = disc_radius(c / n as f64);
    let p = sites.point(i);
    let mut occupied = [false; 6];
    for j in sites.grid().within(p, radius) {
        if j == i {
            continue;
        }
        let (dx, dy) = p.delta(sites.point(j));
        occupied[sector_of(dx, dy)] = true;
    }
    occupied
}

/// True if at least one of the six sectors around site `i` (disc of area
/// `c/n`) is empty — the event whose count upper-bounds the number of
/// large cells in Lemma 9.
#[must_use]
pub fn has_empty_sector(sites: &TorusSites, i: usize, c: f64) -> bool {
    sector_occupancy(sites, i, c).iter().any(|&occ| !occ)
}

/// Lemma 9's count threshold `12 n e^{−c/6}`.
#[must_use]
pub fn lemma9_threshold(n: usize, c: f64) -> f64 {
    12.0 * n as f64 * (-c / 6.0).exp()
}

/// Expected value of the sector-based upper bound `Z`:
/// `6n (1 − c/(6n))^{n−1}` (< `6n e^{−c/6}`).
#[must_use]
pub fn expected_empty_sectors(n: usize, c: f64) -> f64 {
    let nf = n as f64;
    if c / 6.0 >= nf {
        return 0.0;
    }
    6.0 * nf * (1.0 - c / (6.0 * nf)).powi(n as i32 - 1)
}

/// One `c`-row of the Lemma 9 Monte-Carlo experiment.
#[derive(Debug, Clone, Copy)]
pub struct VoronoiTail {
    /// Cells of area ≥ `c/n` are "large".
    pub c: f64,
    /// The count threshold `12 n e^{−c/6}`.
    pub threshold: f64,
    /// Analytic `E[Z] = 6n(1 − c/6n)^{n−1}`.
    pub expected_z: f64,
    /// Observed mean number of large cells.
    pub mean_large_cells: f64,
    /// Observed mean of the sector upper bound `Z`.
    pub mean_z: f64,
    /// Fraction of trials where `#large cells > 12 n e^{−c/6}`.
    pub violation_rate: f64,
    /// Fraction of (trial, large cell) pairs violating Lemma 8, i.e. a
    /// cell of area ≥ `c/n` with all six sectors occupied. Must be 0.
    pub lemma8_violations: u64,
}

/// Runs `trials` random placements of `n` sites and measures, for each `c`:
/// the number of Voronoi cells of area ≥ `c/n`, the sector bound `Z`, and
/// direct Lemma 8 compliance (experiments E4 + E7).
#[must_use]
pub fn voronoi_tail_experiment(
    n: usize,
    cs: &[f64],
    trials: usize,
    seeder: &StreamSeeder,
    threads: usize,
) -> Vec<VoronoiTail> {
    // Per trial, per c: (large_cell_count, z_count, lemma8_violations).
    let per_trial: Vec<Vec<(usize, usize, u64)>> = parallel_map(trials, threads, |t| {
        let mut rng = seeder.stream(t as u64);
        let sites = TorusSites::random(n, &mut rng);
        let areas = sites.cell_areas();
        cs.iter()
            .map(|&c| {
                let cutoff = c / n as f64;
                let mut large = 0usize;
                let mut z = 0usize;
                let mut violations = 0u64;
                for (i, &area) in areas.iter().enumerate() {
                    let empty = has_empty_sector(&sites, i, c);
                    if empty {
                        z += 1;
                    }
                    if area >= cutoff {
                        large += 1;
                        if !empty {
                            violations += 1;
                        }
                    }
                }
                (large, z, violations)
            })
            .collect()
    });

    cs.iter()
        .enumerate()
        .map(|(ci, &c)| {
            let threshold = lemma9_threshold(n, c);
            let mut large_stats = RunningStats::new();
            let mut z_stats = RunningStats::new();
            let mut violations_of_threshold = 0usize;
            let mut lemma8_violations = 0u64;
            for row in &per_trial {
                let (large, z, viol) = row[ci];
                large_stats.push(large as f64);
                z_stats.push(z as f64);
                if large as f64 > threshold {
                    violations_of_threshold += 1;
                }
                lemma8_violations += viol;
            }
            VoronoiTail {
                c,
                threshold,
                expected_z: expected_empty_sectors(n, c),
                mean_large_cells: large_stats.mean(),
                mean_z: z_stats.mean(),
                violation_rate: violations_of_threshold as f64 / trials as f64,
                lemma8_violations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::TorusPoint;
    use geo2c_util::rng::Xoshiro256pp;

    #[test]
    fn sector_of_cardinal_directions() {
        assert_eq!(sector_of(1.0, 0.001), 0); // just above +x axis
        assert_eq!(sector_of(0.3, 0.6), 1); // ~63°
        assert_eq!(sector_of(-0.5, 0.5), 2); // 135°
        assert_eq!(sector_of(-1.0, -0.001), 3); // just below −x axis
        assert_eq!(sector_of(-0.001, -1.0), 4); // ~270° − ε
        assert_eq!(sector_of(0.5, -0.5), 5); // 315°
    }

    #[test]
    fn sector_boundaries() {
        // Exactly on the +x axis: angle 0 → sector 0.
        assert_eq!(sector_of(1.0, 0.0), 0);
        // Exactly 60°: belongs to sector 1 (half-open sectors).
        let a = std::f64::consts::PI / 3.0;
        assert_eq!(sector_of(a.cos(), a.sin()), 1);
    }

    #[test]
    fn disc_radius_formula() {
        let r = disc_radius(std::f64::consts::PI);
        assert!((r - 1.0).abs() < 1e-12);
        assert!((disc_radius(0.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_detects_placed_neighbours() {
        // c = 16 with n = 4 sites → disc area 4/4… keep explicit.
        let n_area = 16.0;
        // Site 0 at centre; one neighbour in sector 0, one in sector 3.
        let sites = TorusSites::from_points(vec![
            TorusPoint::new(0.5, 0.5),
            TorusPoint::new(0.52, 0.501), // east: sector 0
            TorusPoint::new(0.47, 0.499), // west: sector 3
            TorusPoint::new(0.1, 0.1),    // far away
        ]);
        let c = n_area; // radius = sqrt(c/(n π)) = sqrt(16/(4π)) ≈ 1.128 → clipped by torus, all close sites in disc
        let occ = sector_occupancy(&sites, 0, c);
        assert!(occ[0], "east neighbour in sector 0");
        assert!(occ[3], "west neighbour in sector 3");
        assert!(has_empty_sector(&sites, 0, c) || occ.iter().all(|&o| o));
    }

    #[test]
    fn lemma8_holds_on_random_instances() {
        // Direct check: any cell of area ≥ c/n must have an empty sector.
        let mut rng = Xoshiro256pp::from_u64(51);
        for trial in 0..10 {
            let n = 128;
            let sites = TorusSites::random(n, &mut rng);
            let areas = sites.cell_areas();
            for c in [2.0, 4.0, 8.0] {
                let cutoff = c / n as f64;
                for (i, &area) in areas.iter().enumerate() {
                    if area >= cutoff {
                        assert!(
                            has_empty_sector(&sites, i, c),
                            "trial {trial}, c={c}, cell {i} area {area} violates Lemma 8",
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn z_dominates_large_cell_count() {
        // Lemma 8 implies #large cells ≤ Z for every instance.
        let seeder = StreamSeeder::new(52);
        let rows = voronoi_tail_experiment(64, &[3.0, 6.0], 10, &seeder, 2);
        for row in &rows {
            assert_eq!(row.lemma8_violations, 0);
            assert!(
                row.mean_large_cells <= row.mean_z + 1e-9,
                "c={}: large {} > Z {}",
                row.c,
                row.mean_large_cells,
                row.mean_z
            );
        }
    }

    #[test]
    fn tail_experiment_monotone_in_c() {
        let seeder = StreamSeeder::new(53);
        let rows = voronoi_tail_experiment(128, &[2.0, 6.0, 12.0], 10, &seeder, 2);
        assert!(rows[0].mean_large_cells >= rows[1].mean_large_cells);
        assert!(rows[1].mean_large_cells >= rows[2].mean_large_cells);
        // Z tracks its expectation loosely.
        for row in &rows {
            assert!(
                row.mean_z <= 2.0 * row.expected_z + 5.0,
                "c={}: Z {} vs E[Z] {}",
                row.c,
                row.mean_z,
                row.expected_z
            );
        }
    }

    #[test]
    fn experiment_deterministic_across_thread_counts() {
        let seeder = StreamSeeder::new(54);
        let a = voronoi_tail_experiment(32, &[4.0], 6, &seeder, 1);
        let b = voronoi_tail_experiment(32, &[4.0], 6, &seeder, 3);
        assert_eq!(a[0].mean_large_cells, b[0].mean_large_cells);
        assert_eq!(a[0].mean_z, b[0].mean_z);
    }
}
