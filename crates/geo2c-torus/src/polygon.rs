//! Convex polygons with half-plane clipping — the computational-geometry
//! kernel behind exact Voronoi cells.
//!
//! A Voronoi cell on the torus is constructed in the *local frame* of its
//! site (the site at the origin, no wraparound within the frame): start
//! from the fundamental square `[−½, ½]²` — which always contains the cell,
//! because any point outside it is closer to a periodic image of the site —
//! and intersect with the half-plane `‖x‖ ≤ ‖x − δ‖` for each neighbouring
//! site displacement `δ`. That half-plane is `2δ·x ≤ ‖δ‖²`, so a single
//! primitive suffices: clip a convex polygon by `a·x + b·y ≤ c`
//! (Sutherland–Hodgman specialised to one plane).

/// A convex polygon in the plane, vertices in counter-clockwise order.
///
/// An empty vertex list represents the empty polygon (fully clipped away).
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    verts: Vec<(f64, f64)>,
}

impl Polygon {
    /// Creates a polygon from CCW vertices.
    #[must_use]
    pub fn new(verts: Vec<(f64, f64)>) -> Self {
        Self { verts }
    }

    /// The axis-aligned square `[−h, h]²` (CCW).
    #[must_use]
    pub fn centered_square(h: f64) -> Self {
        Self::new(vec![(-h, -h), (h, -h), (h, h), (-h, h)])
    }

    /// Vertices in CCW order.
    #[must_use]
    pub fn vertices(&self) -> &[(f64, f64)] {
        &self.verts
    }

    /// True if the polygon has been clipped to nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.verts.len() < 3
    }

    /// Signed area via the shoelace formula (positive for CCW ordering).
    #[must_use]
    pub fn signed_area(&self) -> f64 {
        if self.verts.len() < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..self.verts.len() {
            let (x1, y1) = self.verts[i];
            let (x2, y2) = self.verts[(i + 1) % self.verts.len()];
            acc += x1 * y2 - x2 * y1;
        }
        acc / 2.0
    }

    /// Absolute area.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Largest squared distance from the origin to any vertex
    /// (0 for the empty polygon). Used as the termination certificate for
    /// incremental Voronoi construction: once every remaining candidate
    /// site is farther than `2·max_r`, no bisector can cut the polygon.
    #[must_use]
    pub fn max_r2(&self) -> f64 {
        self.verts
            .iter()
            .map(|&(x, y)| x * x + y * y)
            .fold(0.0, f64::max)
    }

    /// True if `(px, py)` lies inside or on the boundary (convexity and CCW
    /// order assumed).
    #[must_use]
    pub fn contains(&self, px: f64, py: f64) -> bool {
        if self.verts.len() < 3 {
            return false;
        }
        for i in 0..self.verts.len() {
            let (x1, y1) = self.verts[i];
            let (x2, y2) = self.verts[(i + 1) % self.verts.len()];
            let cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1);
            if cross < -1e-12 {
                return false;
            }
        }
        true
    }

    /// Clips the polygon to the half-plane `a·x + b·y ≤ c`, in place.
    ///
    /// Runs one pass of Sutherland–Hodgman; the result is again convex and
    /// CCW. Clipping an already-empty polygon is a no-op.
    pub fn clip_halfplane(&mut self, a: f64, b: f64, c: f64) {
        if self.verts.len() < 3 {
            return;
        }
        let inside = |&(x, y): &(f64, f64)| a * x + b * y <= c;
        // Fast path: if every vertex is inside, nothing changes.
        if self.verts.iter().all(inside) {
            return;
        }
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(self.verts.len() + 1);
        for i in 0..self.verts.len() {
            let cur = self.verts[i];
            let nxt = self.verts[(i + 1) % self.verts.len()];
            let cur_in = inside(&cur);
            let nxt_in = inside(&nxt);
            if cur_in {
                out.push(cur);
            }
            if cur_in != nxt_in {
                // Edge crosses the boundary: add the intersection point.
                let denom = a * (nxt.0 - cur.0) + b * (nxt.1 - cur.1);
                // denom cannot be 0 when the two endpoints straddle the
                // line, but guard against FP degeneracy.
                if denom.abs() > f64::EPSILON {
                    let t = (c - a * cur.0 - b * cur.1) / denom;
                    let t = t.clamp(0.0, 1.0);
                    out.push((cur.0 + t * (nxt.0 - cur.0), cur.1 + t * (nxt.1 - cur.1)));
                }
            }
        }
        if out.len() < 3 {
            out.clear();
        }
        self.verts = out;
    }

    /// Clips to the perpendicular-bisector half-plane keeping points closer
    /// to the origin than to `(dx, dy)`: `2δ·x ≤ ‖δ‖²`.
    pub fn clip_bisector(&mut self, dx: f64, dy: f64) {
        self.clip_halfplane(2.0 * dx, 2.0 * dy, dx * dx + dy * dy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::centered_square(0.5)
    }

    #[test]
    fn square_area() {
        assert!((unit_square().area() - 1.0).abs() < 1e-12);
        assert!(unit_square().signed_area() > 0.0);
        assert!((Polygon::centered_square(0.25).area() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clip_keeps_half() {
        let mut p = unit_square();
        p.clip_halfplane(1.0, 0.0, 0.0); // x <= 0
        assert!((p.area() - 0.5).abs() < 1e-12);
        assert!(p.contains(-0.25, 0.0));
        assert!(!p.contains(0.25, 0.0));
    }

    #[test]
    fn clip_diagonal() {
        let mut p = unit_square();
        p.clip_halfplane(1.0, 1.0, 0.0); // x + y <= 0 cuts the square in half
        assert!((p.area() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clip_corner() {
        let mut p = unit_square();
        // x + y <= -0.5 keeps only the corner triangle below the
        // anti-diagonal through (-0.5, 0) and (0, -0.5): area 1/8.
        p.clip_halfplane(1.0, 1.0, -0.5);
        assert!((p.area() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn clip_everything_gives_empty() {
        let mut p = unit_square();
        p.clip_halfplane(1.0, 0.0, -2.0); // x <= -2: nothing survives
        assert!(p.is_empty());
        assert_eq!(p.area(), 0.0);
        assert_eq!(p.max_r2(), 0.0);
        // Further clipping is a no-op.
        p.clip_halfplane(0.0, 1.0, 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn clip_nothing_is_noop() {
        let mut p = unit_square();
        let before = p.clone();
        p.clip_halfplane(1.0, 0.0, 10.0);
        assert_eq!(p, before);
    }

    #[test]
    fn repeated_clips_monotone_area() {
        let mut p = unit_square();
        let mut last = p.area();
        for k in 0..8 {
            let angle = 0.7 * f64::from(k);
            p.clip_halfplane(angle.cos(), angle.sin(), 0.3);
            let a = p.area();
            assert!(a <= last + 1e-12);
            last = a;
        }
    }

    #[test]
    fn bisector_clip_matches_halfplane() {
        // Bisector of origin and (0.4, 0): keep x <= 0.2.
        let mut p = unit_square();
        p.clip_bisector(0.4, 0.0);
        assert!((p.area() - 0.7).abs() < 1e-12);
        for &(x, _) in p.vertices() {
            assert!(x <= 0.2 + 1e-12);
        }
    }

    #[test]
    fn max_r2_square() {
        assert!((unit_square().max_r2() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contains_boundary_and_outside() {
        let p = unit_square();
        assert!(p.contains(0.5, 0.5));
        assert!(p.contains(0.0, 0.0));
        assert!(!p.contains(0.6, 0.0));
        assert!(!Polygon::new(vec![]).contains(0.0, 0.0));
    }

    #[test]
    fn degenerate_polygons_have_zero_area() {
        assert_eq!(Polygon::new(vec![]).area(), 0.0);
        assert_eq!(Polygon::new(vec![(0.0, 0.0), (1.0, 0.0)]).area(), 0.0);
    }
}
