//! Random sites on the torus, ownership queries, and exact Voronoi cells.
//!
//! [`TorusSites`] is the Section-3 substrate: `n` servers at uniform random
//! positions, where a probe point belongs to its nearest server — i.e. the
//! servers' Voronoi cells are the bins. Ownership queries go through the
//! exact grid index ([`crate::grid::Grid`]).
//!
//! ## Exact cells on a torus
//!
//! The Voronoi cell of site `u` is computed in `u`'s local frame: it always
//! lies inside the fundamental square `[−½, ½]²` (a point farther than that
//! in some axis is closer to a periodic image of `u` itself), so we clip
//! that square against the perpendicular bisector of every *relevant image*
//! of every other site. A site image at displacement `δ` produces a
//! bisector at distance `‖δ‖/2` from the origin; since no vertex of the
//! square is farther than `√2/2 ≈ 0.707` from the origin, images with
//! `‖δ‖ > √2` can never cut, and the 3×3 block of images (components in
//! `δ₀ + {−1,0,1}`, `δ₀` the canonical displacement) is always sufficient.
//!
//! Two constructions are provided:
//! * [`TorusSites::cell_brute`] — clips against all `9(n−1)` image
//!   bisectors; the oracle.
//! * [`TorusSites::cell`] — grid-accelerated: processes candidate sites in
//!   expanding radius `r` and stops once `2·max_vertex_radius ≤ r`, at
//!   which point no unprocessed site (all at distance `> r`) can cut the
//!   polygon. Expected `O(1)` neighbours per cell for uniform sites.
//!
//! Cell areas are the paper's "bin sizes" on the torus; they are validated
//! three ways in the tests (against the brute oracle, against Monte-Carlo
//! hit rates, and by the partition-of-unity property Σ areas = 1).

use crate::grid::Grid;
use crate::point::TorusPoint;
use crate::polygon::Polygon;
use geo2c_util::parallel::parallel_map;
use rand::Rng;

/// `n` server sites on the unit torus with exact ownership and Voronoi
/// geometry.
#[derive(Debug, Clone)]
pub struct TorusSites {
    points: Vec<TorusPoint>,
    grid: Grid,
}

impl TorusSites {
    /// Places `n ≥ 1` sites independently and uniformly at random.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0, "torus sites need at least one server");
        let points: Vec<TorusPoint> = (0..n).map(|_| TorusPoint::random(rng)).collect();
        let grid = Grid::build(&points);
        Self { points, grid }
    }

    /// Builds from explicit positions.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    #[must_use]
    pub fn from_points(points: Vec<TorusPoint>) -> Self {
        assert!(!points.is_empty(), "torus sites need at least one server");
        let grid = Grid::build(&points);
        Self { points, grid }
    }

    /// Number of sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: construction requires at least one site.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All site positions (index = server id).
    #[must_use]
    pub fn points(&self) -> &[TorusPoint] {
        &self.points
    }

    /// Position of site `i`.
    #[must_use]
    pub fn point(&self, i: usize) -> TorusPoint {
        self.points[i]
    }

    /// The grid index (exposed for the sector experiments).
    #[must_use]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Exact nearest site to `p` (grid-accelerated).
    #[must_use]
    pub fn owner(&self, p: TorusPoint) -> usize {
        self.grid.nearest(p)
    }

    /// Brute-force nearest site (the oracle used in tests/ablations).
    #[must_use]
    pub fn owner_brute(&self, p: TorusPoint) -> usize {
        crate::grid::nearest_brute(p, &self.points)
    }

    /// Clips `poly` (in site `i`'s local frame) against all nine images of
    /// site `j`.
    fn clip_against_site(&self, poly: &mut Polygon, i: usize, j: usize) {
        let (dx0, dy0) = self.points[i].delta(self.points[j]);
        for ix in -1i32..=1 {
            for iy in -1i32..=1 {
                let dx = dx0 + f64::from(ix);
                let dy = dy0 + f64::from(iy);
                let d2 = dx * dx + dy * dy;
                if d2 == 0.0 {
                    // Coincident sites: the bisector is undefined; by the
                    // tie convention the lower index keeps the cell.
                    continue;
                }
                // A bisector at distance ‖δ‖/2 from the origin only cuts if
                // some vertex is at least that far out.
                if d2 / 4.0 <= poly.max_r2() {
                    poly.clip_bisector(dx, dy);
                }
                if poly.is_empty() {
                    return;
                }
            }
        }
    }

    /// Exact Voronoi cell of site `i` by clipping against every other
    /// site's images: the `O(n)` oracle.
    #[must_use]
    pub fn cell_brute(&self, i: usize) -> Polygon {
        let mut poly = Polygon::centered_square(0.5);
        for j in 0..self.points.len() {
            if j != i {
                self.clip_against_site(&mut poly, i, j);
            }
        }
        poly
    }

    /// Exact Voronoi cell of site `i`, grid-accelerated.
    ///
    /// Processes candidate neighbours in expanding radius; stops once every
    /// unprocessed site is too far for its bisector to reach the current
    /// polygon. Equal to [`Self::cell_brute`] up to FP roundoff.
    #[must_use]
    pub fn cell(&self, i: usize) -> Polygon {
        let n = self.points.len();
        let mut poly = Polygon::centered_square(0.5);
        if n == 1 {
            return poly;
        }
        let p = self.points[i];
        let mut processed = vec![false; n];
        processed[i] = true;
        // Start near the expected nearest-neighbour distance (~1/√n) and
        // double until the termination certificate holds.
        let mut r = (1.0 / (n as f64).sqrt()).max(1e-3);
        loop {
            for j in self.grid.within(p, r) {
                if !processed[j] {
                    processed[j] = true;
                    self.clip_against_site(&mut poly, i, j);
                }
            }
            // Any unprocessed site is at distance > r; its nearest image
            // bisector is at distance > r/2 from the origin. If the whole
            // polygon is within r/2 of the origin, we are done.
            if 4.0 * poly.max_r2() <= r * r {
                break;
            }
            if r > std::f64::consts::FRAC_1_SQRT_2 {
                // All sites processed (torus diameter is √2/2): exact now.
                break;
            }
            r *= 2.0;
        }
        poly
    }

    /// Area of site `i`'s Voronoi cell.
    #[must_use]
    pub fn cell_area(&self, i: usize) -> f64 {
        self.cell(i).area()
    }

    /// Areas of all cells (sequential). Sums to 1 up to FP roundoff.
    #[must_use]
    pub fn cell_areas(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.cell_area(i)).collect()
    }

    /// Areas of all cells computed on `threads` workers.
    #[must_use]
    pub fn cell_areas_parallel(&self, threads: usize) -> Vec<f64> {
        parallel_map(self.len(), threads, |i| self.cell_area(i))
    }

    /// Monte-Carlo estimate of all cell areas from `samples` uniform probe
    /// points: the hit-rate validator for the exact construction.
    #[must_use]
    pub fn mc_cell_areas<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> Vec<f64> {
        let mut hits = vec![0u64; self.len()];
        for _ in 0..samples {
            hits[self.owner(TorusPoint::random(rng))] += 1;
        }
        hits.iter().map(|&h| h as f64 / samples as f64).collect()
    }

    /// The largest cell area (`Θ(log n / n)` w.h.p., per Section 3).
    #[must_use]
    pub fn max_cell_area(&self) -> f64 {
        (0..self.len())
            .map(|i| self.cell_area(i))
            .fold(0.0, f64::max)
    }

    /// The Delaunay neighbours of site `i`: sites whose Voronoi cells
    /// share an edge with `i`'s cell.
    ///
    /// Computed by witness points: for each edge of `i`'s cell, the edge
    /// midpoint is equidistant from `i` and exactly the neighbour that
    /// contributed the edge (vertices — triple points — are avoided by
    /// using midpoints). On the torus the resulting graph is a
    /// triangulation of a genus-1 surface, so its **average degree is
    /// exactly 6** (Euler's formula `V − E + F = 0`) — a strong
    /// whole-structure validator used by the tests.
    ///
    /// Degenerate (co-circular) configurations have measure zero under
    /// random placement; ties are resolved by the distance tolerance.
    #[must_use]
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let cell = self.cell(i);
        let verts = cell.vertices();
        let mut out: Vec<usize> = Vec::new();
        if verts.len() < 2 {
            return out;
        }
        let site = self.points[i];
        for e in 0..verts.len() {
            let (x1, y1) = verts[e];
            let (x2, y2) = verts[(e + 1) % verts.len()];
            // Skip degenerate zero-length edges from clipping roundoff.
            if ((x2 - x1).powi(2) + (y2 - y1).powi(2)).sqrt() < 1e-12 {
                continue;
            }
            let (mx, my) = ((x1 + x2) / 2.0, (y1 + y2) / 2.0);
            let witness = site.offset(mx, my);
            let d_site = witness.dist(site);
            let tol = 1e-9_f64.max(d_site * 1e-9);
            for j in self.grid.within(witness, d_site + tol) {
                if j != i
                    && (witness.dist(self.points[j]) - d_site).abs() <= tol
                    && !out.contains(&j)
                {
                    out.push(j);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Mean Delaunay degree over all sites (≈ 6 on the torus).
    #[must_use]
    pub fn mean_degree(&self) -> f64 {
        let total: usize = (0..self.len()).map(|i| self.neighbors(i).len()).sum();
        total as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;

    #[test]
    fn single_site_owns_unit_cell() {
        let sites = TorusSites::from_points(vec![TorusPoint::new(0.3, 0.3)]);
        assert!((sites.cell_area(0) - 1.0).abs() < 1e-12);
        assert_eq!(sites.owner(TorusPoint::new(0.9, 0.1)), 0);
    }

    #[test]
    fn two_sites_split_torus_in_half() {
        // Opposite sites: each cell is a half-torus band of area 1/2.
        let sites =
            TorusSites::from_points(vec![TorusPoint::new(0.25, 0.5), TorusPoint::new(0.75, 0.5)]);
        assert!((sites.cell_area(0) - 0.5).abs() < 1e-9);
        assert!((sites.cell_area(1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn four_sites_in_grid_pattern() {
        // Sites at the centres of the four quadrants: each cell is a
        // quarter square of area 1/4.
        let sites = TorusSites::from_points(vec![
            TorusPoint::new(0.25, 0.25),
            TorusPoint::new(0.75, 0.25),
            TorusPoint::new(0.25, 0.75),
            TorusPoint::new(0.75, 0.75),
        ]);
        for i in 0..4 {
            assert!(
                (sites.cell_area(i) - 0.25).abs() < 1e-9,
                "cell {i}: {}",
                sites.cell_area(i)
            );
        }
    }

    #[test]
    fn areas_partition_unity() {
        let mut rng = Xoshiro256pp::from_u64(41);
        for &n in &[2usize, 3, 10, 64, 257] {
            let sites = TorusSites::random(n, &mut rng);
            let total: f64 = sites.cell_areas().iter().sum();
            assert!((total - 1.0).abs() < 1e-7, "n={n}: areas sum to {total}");
        }
    }

    #[test]
    fn fast_cell_matches_brute_oracle() {
        let mut rng = Xoshiro256pp::from_u64(42);
        let sites = TorusSites::random(100, &mut rng);
        for i in (0..100).step_by(7) {
            let fast = sites.cell(i).area();
            let brute = sites.cell_brute(i).area();
            assert!(
                (fast - brute).abs() < 1e-10,
                "cell {i}: fast {fast} vs brute {brute}"
            );
        }
    }

    #[test]
    fn parallel_areas_match_sequential() {
        let mut rng = Xoshiro256pp::from_u64(43);
        let sites = TorusSites::random(64, &mut rng);
        let seq = sites.cell_areas();
        let par = sites.cell_areas_parallel(4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn monte_carlo_agrees_with_exact_areas() {
        let mut rng = Xoshiro256pp::from_u64(44);
        let sites = TorusSites::random(16, &mut rng);
        let exact = sites.cell_areas();
        let mc = sites.mc_cell_areas(200_000, &mut rng);
        for (i, (e, m)) in exact.iter().zip(&mc).enumerate() {
            // s.e. of a proportion at 2e5 samples is ≤ ~0.0012.
            assert!((e - m).abs() < 0.01, "cell {i}: exact {e} vs MC {m}");
        }
    }

    #[test]
    fn cell_contains_own_site_region() {
        // The origin (the site itself, in local frame) is inside its cell.
        let mut rng = Xoshiro256pp::from_u64(45);
        let sites = TorusSites::random(50, &mut rng);
        for i in 0..50 {
            assert!(sites.cell(i).contains(0.0, 0.0), "cell {i}");
        }
    }

    #[test]
    fn owner_matches_cell_membership() {
        // Sample points; the owner's cell (in the owner's local frame)
        // must contain the probe's displacement.
        let mut rng = Xoshiro256pp::from_u64(46);
        let sites = TorusSites::random(30, &mut rng);
        for _ in 0..300 {
            let p = TorusPoint::random(&mut rng);
            let o = sites.owner(p);
            let (dx, dy) = sites.point(o).delta(p);
            assert!(
                sites.cell(o).contains(dx, dy),
                "probe {p} owner {o} displacement ({dx}, {dy})"
            );
        }
    }

    #[test]
    fn max_cell_area_scales_like_log_n_over_n() {
        // Loose sanity: max area is within [1/n, C log n / n] for random
        // placements (Section 3 says Θ(log n / n) w.h.p.).
        let mut rng = Xoshiro256pp::from_u64(47);
        let n = 512;
        let sites = TorusSites::random(n, &mut rng);
        let max = sites.max_cell_area();
        let nf = n as f64;
        assert!(max >= 1.0 / nf, "max {max}");
        assert!(max <= 12.0 * nf.ln() / nf, "max {max}");
    }

    #[test]
    fn owner_brute_and_grid_agree() {
        let mut rng = Xoshiro256pp::from_u64(48);
        let sites = TorusSites::random(200, &mut rng);
        for _ in 0..500 {
            let p = TorusPoint::random(&mut rng);
            let a = sites.owner(p);
            let b = sites.owner_brute(p);
            assert!((p.dist2(sites.point(a)) - p.dist2(sites.point(b))).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_sites_rejected() {
        let mut rng = Xoshiro256pp::from_u64(1);
        let _ = TorusSites::random(0, &mut rng);
    }

    #[test]
    fn delaunay_neighbors_are_symmetric() {
        let mut rng = Xoshiro256pp::from_u64(60);
        let sites = TorusSites::random(60, &mut rng);
        for i in 0..60 {
            for &j in &sites.neighbors(i) {
                assert!(
                    sites.neighbors(j).contains(&i),
                    "asymmetric edge {i} -> {j}"
                );
            }
        }
    }

    #[test]
    fn delaunay_mean_degree_is_six() {
        // Euler's formula on the torus: average Delaunay degree exactly 6
        // for a simplicial triangulation (a.s. for random sites).
        let mut rng = Xoshiro256pp::from_u64(61);
        for n in [32usize, 100, 300] {
            let sites = TorusSites::random(n, &mut rng);
            let mean = sites.mean_degree();
            assert!(
                (mean - 6.0).abs() < 0.2,
                "n={n}: mean Delaunay degree {mean}"
            );
        }
    }

    #[test]
    fn four_site_grid_neighbors() {
        // Quadrant grid: each site's cell is a square meeting the other
        // three cells (two across edges, one only at corners — but on the
        // torus each pair shares TWO parallel edges, so all are edge
        // neighbours except the diagonal, which meets only at corners).
        let sites = TorusSites::from_points(vec![
            TorusPoint::new(0.25, 0.25),
            TorusPoint::new(0.75, 0.25),
            TorusPoint::new(0.25, 0.75),
            TorusPoint::new(0.75, 0.75),
        ]);
        let n0 = sites.neighbors(0);
        assert!(n0.contains(&1), "horizontal neighbour");
        assert!(n0.contains(&2), "vertical neighbour");
        assert!(!n0.contains(&0));
    }

    #[test]
    fn two_sites_neighbor_each_other() {
        let sites =
            TorusSites::from_points(vec![TorusPoint::new(0.2, 0.5), TorusPoint::new(0.7, 0.5)]);
        assert_eq!(sites.neighbors(0), vec![1]);
        assert_eq!(sites.neighbors(1), vec![0]);
    }

    #[test]
    fn single_site_has_no_neighbors() {
        let sites = TorusSites::from_points(vec![TorusPoint::new(0.5, 0.5)]);
        assert!(sites.neighbors(0).is_empty());
    }
}
