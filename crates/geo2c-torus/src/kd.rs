//! The k-dimensional torus: the paper's "higher constant dimension"
//! generalization (§3, footnote 3 — "our argument generalizes to higher
//! constant dimension").
//!
//! Everything needed by the allocation process is nearest-neighbour
//! search; this module provides it for any constant dimension `K` via
//! const generics:
//!
//! * [`KdPoint<K>`] — points of `[0,1)^K` with wrapped displacement and
//!   Euclidean distance (diameter `√K/2`).
//! * [`KdGrid<K>`] — the exact bucket-grid index, generalizing the 2-D
//!   expanding-ring search to expanding Chebyshev *shells* of cells. The
//!   same termination certificate applies: every cell in shell `r` is at
//!   least `(r−1)·w` away in L∞ (hence L2), so the search stops as soon
//!   as the best distance found is below that. It carries the full 2-D
//!   [`crate::grid::Grid`] treatment and sharpens it: flat CSR buckets
//!   with the site coordinates *packed* in CSR order (queries never
//!   touch the original site slice), a batched fast path over the 3^K
//!   neighbourhood that scans the probe's own cell, then the 2^K
//!   *near-orthant* (the cells displaced only toward the probe), then
//!   the rest — with exact early exits after each stage (own-face,
//!   far-face, block-boundary distances) and an exact per-cell
//!   branch-and-bound lower bound that skips any bucket the current
//!   best already excludes — and a monomorphized `[isize; K]` shell
//!   walker (no `dyn` dispatch, no fixed dimension cap). When a shell
//!   would wrap onto itself the search falls back to one residual sweep
//!   that skips every cell already covered by completed shells.
//! * [`KdSites<K>`] — the server set with ownership queries, including
//!   the block-resolving [`KdSites::owners_into`] the insertion engine
//!   batches probes through.
//!
//! Exact Voronoi *volumes* in `K > 2` dimensions would need convex
//! polytope clipping; region sizes here are Monte-Carlo estimates (they
//! are only used by the region-size tie-breaks, which are themselves
//! heuristics). `K = 1` reproduces the ring with nearest-neighbour
//! ownership and `K = 2` reproduces [`crate::voronoi::TorusSites`] —
//! both cross-checked in the tests.

use crate::point::{wrap01, wrap_delta};
use rand::Rng;

/// A point on the unit `K`-torus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KdPoint<const K: usize> {
    /// Coordinates, each in `[0, 1)`.
    pub coords: [f64; K],
}

impl<const K: usize> KdPoint<K> {
    /// Creates a point, wrapping every coordinate into `[0, 1)`.
    ///
    /// # Panics
    /// Panics if any coordinate is not finite.
    #[must_use]
    pub fn new(coords: [f64; K]) -> Self {
        let mut wrapped = [0.0; K];
        for (w, &c) in wrapped.iter_mut().zip(&coords) {
            assert!(c.is_finite(), "coordinate must be finite, got {c}");
            *w = wrap01(c);
        }
        Self { coords: wrapped }
    }

    /// Samples a uniformly random point.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut coords = [0.0; K];
        for c in &mut coords {
            *c = rng.gen::<f64>();
        }
        Self { coords }
    }

    /// Squared toroidal Euclidean distance.
    #[inline]
    #[must_use]
    pub fn dist2(&self, other: &KdPoint<K>) -> f64 {
        let mut acc = 0.0;
        for k in 0..K {
            let d = wrap_delta(other.coords[k] - self.coords[k]);
            acc += d * d;
        }
        acc
    }

    /// Toroidal Euclidean distance, in `[0, √K/2]`.
    #[must_use]
    pub fn dist(&self, other: &KdPoint<K>) -> f64 {
        self.dist2(other).sqrt()
    }
}

/// Stack capacity for the 3^K-neighbourhood bucket bounds of the fast
/// path (holds every `K ≤ 4`, i.e. 3⁴ = 81 cells). Larger dimensions
/// fall back to the exact shell walk — a gate, not a cap: results are
/// identical, only the batching differs.
const BLOCK_CAP: usize = 96;

/// Probes per internal batch of [`KdGrid::nearest_batch`]: phase 1
/// derives every probe's cell and loads its bucket bounds, phase 2 runs
/// the per-probe scans, so the bounds cache misses overlap across probes.
const PROBE_BATCH: usize = 32;

/// An exact bucket-grid nearest-neighbour index over the `K`-torus.
///
/// Buckets use the same flat CSR layout as the 2-D [`crate::grid::Grid`]:
/// `offsets[b]..offsets[b+1]` delimits bucket `b` in one contiguous
/// `indices` array, ascending within a bucket; `packed` duplicates the
/// site coordinates in `indices` order so a bucket scan streams
/// contiguous `[f64; K]` blocks instead of gathering random entries of
/// the caller's site slice.
#[derive(Debug, Clone)]
pub struct KdGrid<const K: usize> {
    g: usize,
    cell_w: f64,
    offsets: Vec<u32>,
    indices: Vec<u32>,
    packed: Vec<[f64; K]>,
}

impl<const K: usize> KdGrid<K> {
    /// Sites-per-cell target of [`KdGrid::build`]. A couple of sites per
    /// cell (rather than ~1) makes each bucket load pay for several
    /// candidate distances and widens the cells relative to the
    /// nearest-neighbour distance, so the near-orthant certificate of
    /// the fast path ends most queries within 2^K bucket loads (the
    /// empirical optimum across K ∈ {3, 4} at n = 2^16; see the
    /// committed `results/bench/` numbers).
    const SITES_PER_CELL: usize = 2;

    /// Builds a grid with `g = max(1, ⌊(n/2)^(1/K)⌋)` cells per side
    /// (~`SITES_PER_CELL` sites per cell).
    ///
    /// # Panics
    /// Panics if `sites` is empty or `K == 0`.
    #[must_use]
    pub fn build(sites: &[KdPoint<K>]) -> Self {
        assert!(K >= 1, "dimension must be at least 1");
        let per_cell = (sites.len() as f64 / Self::SITES_PER_CELL as f64).max(1.0);
        let g = per_cell.powf(1.0 / K as f64).floor().max(1.0) as usize;
        Self::with_cells_per_side(sites, g)
    }

    /// Builds a grid with an explicit side length.
    ///
    /// # Panics
    /// Panics if `sites` is empty, `g == 0`, or `g^K` overflows.
    #[must_use]
    pub fn with_cells_per_side(sites: &[KdPoint<K>], g: usize) -> Self {
        assert!(!sites.is_empty(), "grid needs at least one site");
        assert!(g > 0, "grid side must be positive");
        let cells = g.checked_pow(K as u32).expect("grid size overflow");
        let bucket_ids: Vec<usize> = sites
            .iter()
            .map(|p| Self::bucket_index_for(&Self::cell_of(p, g), g))
            .collect();
        let (offsets, indices) = crate::grid::csr_buckets(cells, &bucket_ids);
        let packed = indices.iter().map(|&i| sites[i as usize].coords).collect();
        Self {
            g,
            cell_w: 1.0 / g as f64,
            offsets,
            indices,
            packed,
        }
    }

    /// The site indices of bucket `b` (ascending); test-only introspection
    /// (the query paths scan the packed coordinates directly).
    #[cfg(test)]
    fn bucket(&self, b: usize) -> &[u32] {
        &self.indices[self.offsets[b] as usize..self.offsets[b + 1] as usize]
    }

    /// The grid cell containing `p` — the one center/bucket derivation
    /// shared by construction and every query path, so the two can never
    /// drift. The `min` guards against FP edge cases at the top seam.
    #[inline]
    fn cell_of(p: &KdPoint<K>, g: usize) -> [usize; K] {
        let mut cell = [0usize; K];
        for (slot, &coord) in cell.iter_mut().zip(&p.coords) {
            *slot = ((coord * g as f64) as usize).min(g - 1);
        }
        cell
    }

    /// Row-major bucket index of a cell (last axis fastest).
    #[inline]
    fn bucket_index_for(cell: &[usize; K], g: usize) -> usize {
        let mut idx = 0usize;
        for &c in cell {
            idx = idx * g + c;
        }
        idx
    }

    /// `3^K` when the full neighbourhood block fits the fast path's stack
    /// scratch, `None` otherwise (huge `K`: exact shell walk instead).
    #[inline]
    fn block_cells() -> Option<usize> {
        3usize.checked_pow(K as u32).filter(|&c| c <= BLOCK_CAP)
    }

    /// Scans CSR positions `lo..hi`, tracking the best *position* (not
    /// site id) so the `indices` array stays out of the inner loop.
    #[inline]
    fn scan_range(
        &self,
        p: &KdPoint<K>,
        lo: usize,
        hi: usize,
        best_j: &mut usize,
        best_d2: &mut f64,
    ) {
        for (off, site) in self.packed[lo..hi].iter().enumerate() {
            let mut d2 = 0.0;
            for (s, c) in site.iter().zip(&p.coords) {
                let d = wrap_delta(s - c);
                d2 += d * d;
            }
            // Branchless update (min + select): the comparison is a
            // data-dependent coin flip, and a mispredict here costs more
            // than the whole distance computation above.
            let better = d2 < *best_d2;
            *best_j = if better { lo + off } else { *best_j };
            *best_d2 = if better { d2 } else { *best_d2 };
        }
    }

    /// Enumerates (wrapped) cells at Chebyshev shell `r` around `center`
    /// and calls `visit` with each bucket index. `2r+1 < g` must hold
    /// (no self-wrapping), which the caller guarantees. Monomorphized
    /// over the visitor; the odometer lives in a `[isize; K]` array.
    fn for_shell<F: FnMut(usize)>(&self, center: &[usize; K], r: usize, mut visit: F) {
        // Odometer over the cube [-r, r]^K keeping only L∞ == r points.
        let g = self.g as isize;
        let r = r as isize;
        let mut offsets = [-r; K];
        loop {
            if offsets.iter().any(|&o| o.abs() == r) {
                let mut idx = 0usize;
                for k in 0..K {
                    let c = (center[k] as isize + offsets[k]).rem_euclid(g) as usize;
                    idx = idx * self.g + c;
                }
                visit(idx);
            }
            // Advance the odometer.
            let mut k = 0;
            loop {
                if k == K {
                    return;
                }
                offsets[k] += 1;
                if offsets[k] <= r {
                    break;
                }
                offsets[k] = -r;
                k += 1;
            }
        }
    }

    /// Enumerates every cell whose *wrapped* Chebyshev distance from
    /// `center` is at least `min_shell` — the residual sweep when a shell
    /// would wrap onto itself. Shells `< min_shell` are complete by then,
    /// so this visits exactly the cells no earlier shell scanned.
    fn for_unvisited<F: FnMut(usize)>(&self, center: &[usize; K], min_shell: usize, mut visit: F) {
        let g = self.g;
        let mut coords = [0usize; K];
        loop {
            let mut cheb = 0usize;
            for k in 0..K {
                let d = coords[k].abs_diff(center[k]);
                cheb = cheb.max(d.min(g - d));
            }
            if cheb >= min_shell {
                visit(Self::bucket_index_for(&coords, g));
            }
            // Advance (last axis fastest: ascending bucket order).
            let mut k = K;
            loop {
                if k == 0 {
                    return;
                }
                k -= 1;
                coords[k] += 1;
                if coords[k] < g {
                    break;
                }
                coords[k] = 0;
            }
        }
    }

    /// Exact nearest site to `p`. Ties break toward the site scanned
    /// first — deterministic for a fixed site set.
    ///
    /// Self-contained: scans the packed coordinate copy, never the site
    /// slice the grid was built from. The common case (`g ≥ 4`, answer
    /// inside the probe's 3^K cell block — almost always, with ~1 site
    /// per cell) runs a batched fast path: the probe's own cell first
    /// with an exact cell-boundary early exit, then the remaining
    /// 3^K − 1 buckets with all bounds loaded before any distance work
    /// and an exact block-boundary exit. Only unresolved queries resume
    /// the expanding-shell search at shell 2.
    #[must_use]
    pub fn nearest(&self, p: &KdPoint<K>) -> usize {
        let g = self.g;
        let center = Self::cell_of(p, g);
        let b = Self::bucket_index_for(&center, g);
        self.nearest_with_center(
            p,
            &center,
            self.offsets[b] as usize,
            self.offsets[b + 1] as usize,
        )
    }

    /// [`KdGrid::nearest`] with the probe's cell and its bucket bounds
    /// already derived (the batch path computes them a block at a time).
    #[inline]
    fn nearest_with_center(
        &self,
        p: &KdPoint<K>,
        center: &[usize; K],
        center_lo: usize,
        center_hi: usize,
    ) -> usize {
        let g = self.g;
        let n_cells = match Self::block_cells() {
            Some(c) if g >= 4 => c,
            // 3^K would self-wrap (tiny g) or overflow the stack scratch
            // (huge K): the shell loop handles both exactly.
            _ => return self.nearest_from_shell(p, center, 0, usize::MAX, f64::INFINITY),
        };
        let w = self.cell_w;
        let mut best_j = usize::MAX;
        let mut best_d2 = f64::INFINITY;
        self.scan_range(p, center_lo, center_hi, &mut best_j, &mut best_d2);
        // Per-axis geometry: `f` is the probe's offset inside its cell,
        // `near_edge` the distance to the nearest of its 2K faces,
        // `far_edge` the distance to the nearest *far* face (the closest
        // any cell displaced away from the probe can be), and `dir` the
        // digit (0 = minus, 2 = plus neighbour) of the nearer side.
        // `near_edge` is clamped at zero so FP seam skew cannot turn
        // "impossible" into "tiny radius" when squared; the far/block
        // formulas are true distances either way.
        let mut near_edge = f64::INFINITY;
        let mut far_edge = f64::INFINITY;
        let mut dir = [0usize; K];
        let mut near2 = [0.0f64; K];
        let mut far2 = [0.0f64; K];
        for k in 0..K {
            let f = p.coords[k] - center[k] as f64 * w;
            let to_minus = f;
            let to_plus = w - f;
            let near = to_minus.min(to_plus);
            let far = to_minus.max(to_plus);
            near_edge = near_edge.min(near);
            far_edge = far_edge.min(far);
            dir[k] = if to_minus <= to_plus { 0 } else { 2 };
            let near = near.max(0.0);
            near2[k] = near * near;
            far2[k] = far * far;
        }
        let block_edge = w + near_edge;
        // Capped at the block boundary: under FP seam skew a negative
        // cell offset can make every far-face distance exceed the true
        // block-boundary distance, and outside-block sites are only
        // guaranteed to be at least the latter away.
        let far_edge = far_edge.min(block_edge);
        let near_edge = near_edge.max(0.0);
        // A hit closer than the probe's own nearest cell face cannot be
        // beaten from any other cell: done after a single bucket.
        if best_d2 <= near_edge * near_edge {
            return self.indices[best_j] as usize;
        }
        // Wrapped neighbour coordinate per axis (digit 0/1/2 = minus /
        // center / plus), shared by both block passes below.
        let mut nbr = [[0usize; 3]; K];
        for (k, n) in nbr.iter_mut().enumerate() {
            let c = center[k];
            *n = [
                if c == 0 { g - 1 } else { c - 1 },
                c,
                if c + 1 == g { 0 } else { c + 1 },
            ];
        }
        // Near-orthant pass: the 2^K − 1 cells displaced only *toward*
        // the probe (per axis: not at all, or to the nearer side). The
        // true nearest site is almost always inside this orthant, and
        // every cell outside it is displaced to a far side on some
        // axis, i.e. at least `far_edge` away — an exact certificate
        // that usually ends the query after at most 2^K of the block's
        // 3^K cells. Each cell carries its exact squared lower bound
        // (the root-sum-square of the displaced-axis margins), so a
        // bucket is loaded only if its cell could still beat the
        // current best — branch-and-bound
        // with zero memory traffic for pruned cells. Bucket bounds of
        // surviving cells are loaded before any distance work so their
        // cache misses overlap.
        let orthant = 1usize << K;
        let mut lo = [0u32; BLOCK_CAP];
        let mut hi = [0u32; BLOCK_CAP];
        let mut bound_of = [0.0f64; BLOCK_CAP];
        let mut cnt = 0usize;
        for mask in 1..orthant {
            let mut bound = 0.0f64;
            let mut idx = 0usize;
            for (k, nb) in nbr.iter().enumerate() {
                if mask & (1 << k) != 0 {
                    idx = idx * g + nb[dir[k]];
                    bound += near2[k];
                } else {
                    idx = idx * g + nb[1];
                }
            }
            if bound < best_d2 {
                lo[cnt] = self.offsets[idx];
                hi[cnt] = self.offsets[idx + 1];
                bound_of[cnt] = bound;
                cnt += 1;
            }
        }
        for i in 0..cnt {
            if bound_of[i] < best_d2 {
                self.scan_range(p, lo[i] as usize, hi[i] as usize, &mut best_j, &mut best_d2);
            }
        }
        if best_j != usize::MAX && best_d2 <= far_edge * far_edge {
            return self.indices[best_j] as usize;
        }
        // Remainder pass: the other 3^K − 2^K block cells (at least one
        // axis displaced to the far side), with the same exact per-cell
        // lower bound — near margin² for near-side axes, far margin²
        // for far-side axes — pruning every cell the current best
        // already excludes. After them every unscanned site lies
        // outside the block, i.e. at least the block-boundary distance
        // away (exact, not the coarser (r−1)·w shell bound).
        let mut digits = [0usize; K];
        for _ in 0..n_cells {
            let mut idx = 0usize;
            let mut in_orthant = true;
            let mut bound = 0.0f64;
            for k in 0..K {
                let digit = digits[k];
                idx = idx * g + nbr[k][digit];
                if digit != 1 {
                    if digit == dir[k] {
                        bound += near2[k];
                    } else {
                        in_orthant = false;
                        bound += far2[k];
                    }
                }
            }
            if !in_orthant && bound < best_d2 {
                self.scan_range(
                    p,
                    self.offsets[idx] as usize,
                    self.offsets[idx + 1] as usize,
                    &mut best_j,
                    &mut best_d2,
                );
            }
            // Base-3 odometer, last axis fastest.
            let mut k = K;
            while k > 0 {
                k -= 1;
                digits[k] += 1;
                if digits[k] < 3 {
                    break;
                }
                digits[k] = 0;
            }
        }
        if best_j != usize::MAX && best_d2 <= block_edge * block_edge {
            return self.indices[best_j] as usize;
        }
        // Rare: nothing conclusive within the block — resume the
        // expanding-shell search at shell 2.
        self.nearest_from_shell(p, center, 2, best_j, best_d2)
    }

    /// The expanding-shell search, starting at Chebyshev shell `start`
    /// with the best candidate found so far (shells `< start` must
    /// already have been scanned by the caller). `best_j` is a CSR
    /// position, not a site id; the returned value is the resolved site
    /// id.
    fn nearest_from_shell(
        &self,
        p: &KdPoint<K>,
        center: &[usize; K],
        start: usize,
        mut best_j: usize,
        mut best_d2: f64,
    ) -> usize {
        let g = self.g;
        let max_shell = g / 2 + 1;
        for r in start..=max_shell {
            if r > 0 {
                // Every cell at shell >= r is at least (r-1)*w away (L∞,
                // hence L2). Squared on both sides: no sqrt anywhere on
                // the query path.
                let unreachable = (r as f64 - 1.0) * self.cell_w;
                if best_j != usize::MAX && best_d2 <= unreachable * unreachable {
                    break;
                }
            }
            if 2 * r + 1 >= g {
                // Shell r would wrap onto itself. Shells < r are
                // complete, so sweep only the cells they never visited
                // (wrapped Chebyshev distance >= r) exactly once.
                self.for_unvisited(center, r, |b| {
                    self.scan_range(
                        p,
                        self.offsets[b] as usize,
                        self.offsets[b + 1] as usize,
                        &mut best_j,
                        &mut best_d2,
                    );
                });
                break;
            }
            self.for_shell(center, r, |b| {
                self.scan_range(
                    p,
                    self.offsets[b] as usize,
                    self.offsets[b + 1] as usize,
                    &mut best_j,
                    &mut best_d2,
                );
            });
        }
        debug_assert!(best_j != usize::MAX, "kd grid search found no site");
        self.indices[best_j] as usize
    }

    /// Resolves a block of probes to their nearest sites — the batched
    /// entry point behind [`KdSites::owners_into`]. Processes probes in
    /// internal batches of `PROBE_BATCH` probes: phase 1 derives every
    /// probe's cell and loads its own-bucket bounds (one tight
    /// homogeneous loop whose cache misses overlap), phase 2 runs the
    /// per-probe fast path with the center work already amortized.
    /// Equivalent to `nearest` probe by probe. (A heavier variant that
    /// also pre-gathers the `2^K` near-orthant bounds and warms their
    /// packed lines was measured *slower* on the reference core — the
    /// grid is cache-resident at these `n`, so the extra gathers cost
    /// more than the latency they hide; the DRAM-regime staging lives
    /// where it pays, in `RingPartition::successor_indices_into`.)
    ///
    /// # Panics
    /// Panics if `probes` and `out` differ in length.
    pub fn nearest_batch(&self, probes: &[KdPoint<K>], out: &mut [usize]) {
        assert_eq!(probes.len(), out.len(), "probe/output blocks must match");
        let g = self.g;
        let mut centers = [[0usize; K]; PROBE_BATCH];
        let mut ranges = [(0usize, 0usize); PROBE_BATCH];
        for (probes, out) in probes.chunks(PROBE_BATCH).zip(out.chunks_mut(PROBE_BATCH)) {
            for (i, p) in probes.iter().enumerate() {
                let center = Self::cell_of(p, g);
                let b = Self::bucket_index_for(&center, g);
                centers[i] = center;
                ranges[i] = (self.offsets[b] as usize, self.offsets[b + 1] as usize);
            }
            for (i, (p, slot)) in probes.iter().zip(out.iter_mut()).enumerate() {
                *slot = self.nearest_with_center(p, &centers[i], ranges[i].0, ranges[i].1);
            }
        }
    }
}

/// Brute-force nearest site in `K` dimensions (the oracle).
///
/// # Panics
/// Panics if `sites` is empty.
#[must_use]
pub fn kd_nearest_brute<const K: usize>(p: &KdPoint<K>, sites: &[KdPoint<K>]) -> usize {
    assert!(!sites.is_empty());
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    for (i, s) in sites.iter().enumerate() {
        let d2 = p.dist2(s);
        if d2 < best_d2 {
            best_d2 = d2;
            best = i;
        }
    }
    best
}

/// `n` server sites on the `K`-torus with exact ownership queries.
#[derive(Debug, Clone)]
pub struct KdSites<const K: usize> {
    points: Vec<KdPoint<K>>,
    grid: KdGrid<K>,
}

impl<const K: usize> KdSites<K> {
    /// Places `n ≥ 1` sites uniformly at random.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0, "need at least one site");
        let points: Vec<KdPoint<K>> = (0..n).map(|_| KdPoint::random(rng)).collect();
        let grid = KdGrid::build(&points);
        Self { points, grid }
    }

    /// Builds from explicit positions.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    #[must_use]
    pub fn from_points(points: Vec<KdPoint<K>>) -> Self {
        assert!(!points.is_empty(), "need at least one site");
        let grid = KdGrid::build(&points);
        Self { points, grid }
    }

    /// Number of sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false (construction requires ≥ 1 site).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All site positions.
    #[must_use]
    pub fn points(&self) -> &[KdPoint<K>] {
        &self.points
    }

    /// Position of site `i`.
    #[must_use]
    pub fn point(&self, i: usize) -> &KdPoint<K> {
        &self.points[i]
    }

    /// Exact nearest site to `p`.
    #[must_use]
    pub fn owner(&self, p: &KdPoint<K>) -> usize {
        self.grid.nearest(p)
    }

    /// Exact nearest site for a whole block of probes at once
    /// (equivalent to [`KdSites::owner`] probe by probe; the batch
    /// amortizes the per-probe cell derivation — see
    /// [`KdGrid::nearest_batch`]).
    ///
    /// # Panics
    /// Panics if `probes` and `out` differ in length.
    pub fn owners_into(&self, probes: &[KdPoint<K>], out: &mut [usize]) {
        self.grid.nearest_batch(probes, out);
    }

    /// Brute-force owner: the `O(n)` oracle used to validate the grid.
    #[must_use]
    pub fn owner_brute(&self, p: &KdPoint<K>) -> usize {
        kd_nearest_brute(p, &self.points)
    }

    /// Monte-Carlo estimate of every site's Voronoi cell volume from
    /// `samples` uniform probes (exact polytope volumes are out of scope
    /// for `K > 2`; this estimator is used only by region-size
    /// tie-breaks, which are heuristic anyway).
    #[must_use]
    pub fn mc_cell_volumes<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> Vec<f64> {
        let mut hits = vec![0u64; self.len()];
        for _ in 0..samples {
            hits[self.owner(&KdPoint::random(rng))] += 1;
        }
        hits.iter().map(|&h| h as f64 / samples as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;

    fn random_sites<const K: usize>(n: usize, seed: u64) -> Vec<KdPoint<K>> {
        let mut rng = Xoshiro256pp::from_u64(seed);
        (0..n).map(|_| KdPoint::random(&mut rng)).collect()
    }

    #[test]
    fn distances_match_2d_implementation() {
        use crate::point::TorusPoint;
        let mut rng = Xoshiro256pp::from_u64(1);
        for _ in 0..500 {
            let (ax, ay, bx, by) = (
                rng.gen::<f64>(),
                rng.gen::<f64>(),
                rng.gen::<f64>(),
                rng.gen::<f64>(),
            );
            let a2 = TorusPoint::new(ax, ay);
            let b2 = TorusPoint::new(bx, by);
            let ak = KdPoint::new([ax, ay]);
            let bk = KdPoint::new([bx, by]);
            assert!((a2.dist(b2) - ak.dist(&bk)).abs() < 1e-12);
        }
    }

    #[test]
    fn kd_grid_matches_brute_in_dim_1_2_3() {
        let mut rng = Xoshiro256pp::from_u64(2);
        macro_rules! check_dim {
            ($k:literal) => {{
                for &n in &[2usize, 10, 200] {
                    let sites = random_sites::<$k>(n, 100 + n as u64 + $k);
                    let grid = KdGrid::build(&sites);
                    for _ in 0..300 {
                        let p = KdPoint::<$k>::random(&mut rng);
                        let fast = grid.nearest(&p);
                        let slow = kd_nearest_brute(&p, &sites);
                        assert!(
                            (p.dist2(&sites[fast]) - p.dist2(&sites[slow])).abs() < 1e-15,
                            "K={} n={n}",
                            $k
                        );
                    }
                }
            }};
        }
        check_dim!(1);
        check_dim!(2);
        check_dim!(3);
    }

    #[test]
    fn kd1_matches_ring_nearest_ownership() {
        use geo2c_ring::{Ownership, RingPartition, RingPoint};
        let mut rng = Xoshiro256pp::from_u64(3);
        let coords: Vec<f64> = (0..50).map(|_| rng.gen::<f64>()).collect();
        let sites = KdSites::<1>::from_points(coords.iter().map(|&x| KdPoint::new([x])).collect());
        let part =
            RingPartition::from_positions(coords.iter().map(|&x| RingPoint::new(x)).collect());
        for _ in 0..500 {
            let x = rng.gen::<f64>();
            let kd_owner_pos = sites.point(sites.owner(&KdPoint::new([x]))).coords[0];
            let ring_owner_pos = part
                .position(part.owner(RingPoint::new(x), Ownership::Nearest))
                .coord();
            assert!(
                (kd_owner_pos - ring_owner_pos).abs() < 1e-12
                    // allow exact ties resolved differently
                    || (RingPoint::new(x).distance(RingPoint::new(kd_owner_pos))
                        - RingPoint::new(x).distance(RingPoint::new(ring_owner_pos)))
                    .abs()
                        < 1e-12,
                "1-D owners differ at x={x}"
            );
        }
    }

    #[test]
    fn kd2_matches_torus_sites() {
        use crate::point::TorusPoint;
        use crate::voronoi::TorusSites;
        let mut rng = Xoshiro256pp::from_u64(4);
        let pts: Vec<(f64, f64)> = (0..100).map(|_| (rng.gen(), rng.gen())).collect();
        let sites2 =
            TorusSites::from_points(pts.iter().map(|&(x, y)| TorusPoint::new(x, y)).collect());
        let sitesk =
            KdSites::<2>::from_points(pts.iter().map(|&(x, y)| KdPoint::new([x, y])).collect());
        for _ in 0..500 {
            let (x, y) = (rng.gen::<f64>(), rng.gen::<f64>());
            let a = sites2.owner(TorusPoint::new(x, y));
            let b = sitesk.owner(&KdPoint::new([x, y]));
            let pa = sites2.point(a);
            let pb = sitesk.point(b);
            let probe2 = TorusPoint::new(x, y);
            let probek = KdPoint::new([x, y]);
            assert!(
                (probe2.dist2(pa) - probek.dist2(pb)).abs() < 1e-15,
                "2-D owners differ at ({x}, {y})"
            );
        }
    }

    #[test]
    fn mc_volumes_partition_unity() {
        let mut rng = Xoshiro256pp::from_u64(5);
        let sites = KdSites::<3>::random(16, &mut rng);
        let volumes = sites.mc_cell_volumes(50_000, &mut rng);
        let total: f64 = volumes.iter().sum();
        // Exact: volumes are fractions of the same sample set.
        assert!((total - 1.0).abs() < 1e-9);
        // Every cell should get a roughly fair share (1/16 each ± spread).
        for (i, v) in volumes.iter().enumerate() {
            assert!(*v > 0.0, "cell {i} got no probes");
            assert!(*v < 0.4, "cell {i} implausibly large: {v}");
        }
    }

    #[test]
    fn kd_point_wraps_and_rejects_nan() {
        let p = KdPoint::new([1.25, -0.25, 3.0]);
        assert!((p.coords[0] - 0.25).abs() < 1e-12);
        assert!((p.coords[1] - 0.75).abs() < 1e-12);
        assert_eq!(p.coords[2], 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn kd_point_nan_rejected() {
        let _ = KdPoint::new([f64::NAN]);
    }

    #[test]
    fn high_dim_max_distance() {
        // Diameter of the K-torus is √K/2.
        let a = KdPoint::new([0.0, 0.0, 0.0, 0.0]);
        let b = KdPoint::new([0.5, 0.5, 0.5, 0.5]);
        assert!((a.dist(&b) - 1.0).abs() < 1e-12); // √4/2 = 1
    }

    #[test]
    fn clustered_sites_exact_in_3d() {
        let mut rng = Xoshiro256pp::from_u64(6);
        let sites: Vec<KdPoint<3>> = (0..40)
            .map(|_| {
                KdPoint::new([
                    0.5 + 0.02 * (rng.gen::<f64>() - 0.5),
                    0.5 + 0.02 * (rng.gen::<f64>() - 0.5),
                    0.5 + 0.02 * (rng.gen::<f64>() - 0.5),
                ])
            })
            .collect();
        let grid = KdGrid::build(&sites);
        for _ in 0..200 {
            let p = KdPoint::<3>::random(&mut rng);
            let fast = grid.nearest(&p);
            let slow = kd_nearest_brute(&p, &sites);
            assert!((p.dist2(&sites[fast]) - p.dist2(&sites[slow])).abs() < 1e-15);
        }
    }

    #[test]
    fn csr_buckets_partition_sites_with_packed_coords() {
        // Every site appears exactly once, ascending within its bucket,
        // and the packed copy mirrors `indices` order exactly.
        let sites = random_sites::<3>(120, 11);
        let grid = KdGrid::with_cells_per_side(&sites, 5);
        let mut seen = vec![false; sites.len()];
        for b in 0..125 {
            let bucket = grid.bucket(b);
            for w in bucket.windows(2) {
                assert!(w[0] < w[1], "bucket {b} not ascending");
            }
            for &i in bucket {
                assert!(!seen[i as usize], "site {i} in two buckets");
                seen[i as usize] = true;
                let cell = KdGrid::cell_of(&sites[i as usize], 5);
                assert_eq!(KdGrid::bucket_index_for(&cell, 5), b, "site {i} misfiled");
            }
        }
        assert!(seen.iter().all(|&s| s), "missing sites");
        for (j, &i) in grid.indices.iter().enumerate() {
            assert_eq!(grid.packed[j], sites[i as usize].coords, "packed order");
        }
    }

    #[test]
    fn nearest_batch_matches_single_queries() {
        let mut rng = Xoshiro256pp::from_u64(12);
        for &n in &[1usize, 7, 300] {
            let sites = random_sites::<3>(n, 500 + n as u64);
            let grid = KdGrid::build(&sites);
            // 77 spans multiple internal probe batches plus a ragged tail.
            let probes: Vec<KdPoint<3>> = (0..77).map(|_| KdPoint::random(&mut rng)).collect();
            let mut batched = vec![0usize; probes.len()];
            grid.nearest_batch(&probes, &mut batched);
            let singles: Vec<usize> = probes.iter().map(|p| grid.nearest(p)).collect();
            assert_eq!(batched, singles, "n={n}");
        }
    }

    #[test]
    fn residual_sweep_skips_completed_shells_but_stays_exact() {
        // Clustered sites + distant probes force deep shells that wrap
        // (the residual sweep); a degenerate g=2 grid hits it at r=1.
        let mut rng = Xoshiro256pp::from_u64(13);
        let sites: Vec<KdPoint<4>> = (0..30)
            .map(|_| {
                let mut c = [0.0; 4];
                for x in &mut c {
                    *x = 0.25 + 1e-3 * rng.gen::<f64>();
                }
                KdPoint::new(c)
            })
            .collect();
        for g in [1usize, 2, 3, 5] {
            let grid = KdGrid::with_cells_per_side(&sites, g);
            for _ in 0..100 {
                let p = KdPoint::<4>::random(&mut rng);
                let fast = grid.nearest(&p);
                let slow = kd_nearest_brute(&p, &sites);
                assert!(
                    (p.dist2(&sites[fast]) - p.dist2(&sites[slow])).abs() < 1e-15,
                    "g={g}"
                );
            }
        }
    }

    #[test]
    fn unvisited_sweep_covers_exactly_the_cells_outside_completed_shells() {
        // For every cell the sweep visits, the wrapped Chebyshev distance
        // must be >= min_shell, and together with shells 0..min_shell it
        // must cover every cell exactly once.
        let sites = random_sites::<2>(40, 14);
        let grid = KdGrid::<2>::with_cells_per_side(&sites, 6);
        let center = [2usize, 5];
        for min_shell in 0..=3usize {
            let mut counts = vec![0usize; 36];
            for r in 0..min_shell {
                grid.for_shell(&center, r, |b| counts[b] += 1);
            }
            grid.for_unvisited(&center, min_shell, |b| counts[b] += 1);
            assert!(
                counts.iter().all(|&c| c == 1),
                "min_shell={min_shell}: {counts:?}"
            );
        }
    }
}
