//! The k-dimensional torus: the paper's "higher constant dimension"
//! generalization (§3, footnote 3 — "our argument generalizes to higher
//! constant dimension").
//!
//! Everything needed by the allocation process is nearest-neighbour
//! search; this module provides it for any constant dimension `K` via
//! const generics:
//!
//! * [`KdPoint<K>`] — points of `[0,1)^K` with wrapped displacement and
//!   Euclidean distance (diameter `√K/2`).
//! * [`KdGrid<K>`] — the exact bucket-grid index, generalizing the 2-D
//!   expanding-ring search to expanding Chebyshev *shells* of cells. The
//!   same termination certificate applies: every cell in shell `r` is at
//!   least `(r−1)·w` away in L∞ (hence L2), so the search stops as soon
//!   as the best distance found is below that.
//! * [`KdSites<K>`] — the server set with ownership queries.
//!
//! Exact Voronoi *volumes* in `K > 2` dimensions would need convex
//! polytope clipping; region sizes here are Monte-Carlo estimates (they
//! are only used by the region-size tie-breaks, which are themselves
//! heuristics). `K = 1` reproduces the ring with nearest-neighbour
//! ownership and `K = 2` reproduces [`crate::voronoi::TorusSites`] —
//! both cross-checked in the tests.

use crate::point::{wrap01, wrap_delta};
use rand::Rng;

/// A point on the unit `K`-torus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KdPoint<const K: usize> {
    /// Coordinates, each in `[0, 1)`.
    pub coords: [f64; K],
}

impl<const K: usize> KdPoint<K> {
    /// Creates a point, wrapping every coordinate into `[0, 1)`.
    ///
    /// # Panics
    /// Panics if any coordinate is not finite.
    #[must_use]
    pub fn new(coords: [f64; K]) -> Self {
        let mut wrapped = [0.0; K];
        for (w, &c) in wrapped.iter_mut().zip(&coords) {
            assert!(c.is_finite(), "coordinate must be finite, got {c}");
            *w = wrap01(c);
        }
        Self { coords: wrapped }
    }

    /// Samples a uniformly random point.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut coords = [0.0; K];
        for c in &mut coords {
            *c = rng.gen::<f64>();
        }
        Self { coords }
    }

    /// Squared toroidal Euclidean distance.
    #[inline]
    #[must_use]
    pub fn dist2(&self, other: &KdPoint<K>) -> f64 {
        let mut acc = 0.0;
        for k in 0..K {
            let d = wrap_delta(other.coords[k] - self.coords[k]);
            acc += d * d;
        }
        acc
    }

    /// Toroidal Euclidean distance, in `[0, √K/2]`.
    #[must_use]
    pub fn dist(&self, other: &KdPoint<K>) -> f64 {
        self.dist2(other).sqrt()
    }
}

/// An exact bucket-grid nearest-neighbour index over the `K`-torus.
///
/// Buckets use the same flat CSR layout as the 2-D [`crate::grid::Grid`]:
/// `offsets[b]..offsets[b+1]` delimits bucket `b` in one contiguous
/// `indices` array, ascending within a bucket.
#[derive(Debug, Clone)]
pub struct KdGrid<const K: usize> {
    g: usize,
    cell_w: f64,
    offsets: Vec<u32>,
    indices: Vec<u32>,
}

impl<const K: usize> KdGrid<K> {
    /// Builds a grid with `g = max(1, ⌊n^(1/K)⌋)` cells per side
    /// (~1 site per cell).
    ///
    /// # Panics
    /// Panics if `sites` is empty or `K == 0`.
    #[must_use]
    pub fn build(sites: &[KdPoint<K>]) -> Self {
        assert!(K >= 1, "dimension must be at least 1");
        let g = (sites.len() as f64).powf(1.0 / K as f64).floor().max(1.0) as usize;
        Self::with_cells_per_side(sites, g)
    }

    /// Builds a grid with an explicit side length.
    ///
    /// # Panics
    /// Panics if `sites` is empty, `g == 0`, or `g^K` overflows.
    #[must_use]
    pub fn with_cells_per_side(sites: &[KdPoint<K>], g: usize) -> Self {
        assert!(!sites.is_empty(), "grid needs at least one site");
        assert!(g > 0, "grid side must be positive");
        let cells = g.checked_pow(K as u32).expect("grid size overflow");
        let bucket_ids: Vec<usize> = sites.iter().map(|p| Self::bucket_of(p, g)).collect();
        let (offsets, indices) = crate::grid::csr_buckets(cells, &bucket_ids);
        Self {
            g,
            cell_w: 1.0 / g as f64,
            offsets,
            indices,
        }
    }

    /// The site indices of bucket `b` (ascending).
    #[inline]
    fn bucket(&self, b: usize) -> &[u32] {
        &self.indices[self.offsets[b] as usize..self.offsets[b + 1] as usize]
    }

    fn bucket_of(p: &KdPoint<K>, g: usize) -> usize {
        let mut idx = 0usize;
        for k in 0..K {
            let c = ((p.coords[k] * g as f64) as usize).min(g - 1);
            idx = idx * g + c;
        }
        idx
    }

    /// Enumerates (wrapped) cells at Chebyshev shell `r` around `center`
    /// and calls `visit` with each bucket index. `2r+1 < g` must hold
    /// (no self-wrapping), which the caller guarantees.
    fn for_shell(&self, center: &[usize], r: usize, visit: &mut dyn FnMut(usize)) {
        // Odometer over the cube [-r, r]^K keeping only L∞ == r points.
        let g = self.g as isize;
        let r = r as isize;
        let mut offsets = [0isize; 16];
        assert!(K <= 16, "dimension too large for shell walker");
        for o in offsets.iter_mut().take(K) {
            *o = -r;
        }
        loop {
            if offsets.iter().take(K).any(|&o| o.abs() == r) {
                let mut idx = 0usize;
                for k in 0..K {
                    let c = (center[k] as isize + offsets[k]).rem_euclid(g) as usize;
                    idx = idx * self.g + c;
                }
                visit(idx);
            }
            // Advance the odometer.
            let mut k = 0;
            loop {
                if k == K {
                    return;
                }
                offsets[k] += 1;
                if offsets[k] <= r {
                    break;
                }
                offsets[k] = -r;
                k += 1;
            }
        }
    }

    /// Exact nearest site to `p`.
    ///
    /// `sites` must be the slice the grid was built from.
    #[must_use]
    pub fn nearest(&self, p: &KdPoint<K>, sites: &[KdPoint<K>]) -> usize {
        let g = self.g;
        let mut center = [0usize; 16];
        for (slot, &coord) in center.iter_mut().zip(&p.coords) {
            *slot = ((coord * g as f64) as usize).min(g - 1);
        }
        let center = &center[..K];

        let mut best_idx = usize::MAX;
        let mut best_d2 = f64::INFINITY;
        let scan = |bucket: usize, best_idx: &mut usize, best_d2: &mut f64| {
            for &i in self.bucket(bucket) {
                let d2 = p.dist2(&sites[i as usize]);
                if d2 < *best_d2 {
                    *best_d2 = d2;
                    *best_idx = i as usize;
                }
            }
        };

        let max_shell = g / 2 + 1;
        for r in 0..=max_shell {
            if r > 0 {
                // Squared on both sides: no sqrt on the query path.
                let unreachable = (r as f64 - 1.0) * self.cell_w;
                if best_idx != usize::MAX && best_d2 <= unreachable * unreachable {
                    break;
                }
            }
            if 2 * r + 1 >= g {
                for bucket in 0..self.offsets.len() - 1 {
                    scan(bucket, &mut best_idx, &mut best_d2);
                }
                break;
            }
            self.for_shell(center, r, &mut |bucket| {
                scan(bucket, &mut best_idx, &mut best_d2);
            });
        }
        debug_assert!(best_idx != usize::MAX, "kd grid search found no site");
        best_idx
    }
}

/// Brute-force nearest site in `K` dimensions (the oracle).
///
/// # Panics
/// Panics if `sites` is empty.
#[must_use]
pub fn kd_nearest_brute<const K: usize>(p: &KdPoint<K>, sites: &[KdPoint<K>]) -> usize {
    assert!(!sites.is_empty());
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    for (i, s) in sites.iter().enumerate() {
        let d2 = p.dist2(s);
        if d2 < best_d2 {
            best_d2 = d2;
            best = i;
        }
    }
    best
}

/// `n` server sites on the `K`-torus with exact ownership queries.
#[derive(Debug, Clone)]
pub struct KdSites<const K: usize> {
    points: Vec<KdPoint<K>>,
    grid: KdGrid<K>,
}

impl<const K: usize> KdSites<K> {
    /// Places `n ≥ 1` sites uniformly at random.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0, "need at least one site");
        let points: Vec<KdPoint<K>> = (0..n).map(|_| KdPoint::random(rng)).collect();
        let grid = KdGrid::build(&points);
        Self { points, grid }
    }

    /// Builds from explicit positions.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    #[must_use]
    pub fn from_points(points: Vec<KdPoint<K>>) -> Self {
        assert!(!points.is_empty(), "need at least one site");
        let grid = KdGrid::build(&points);
        Self { points, grid }
    }

    /// Number of sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false (construction requires ≥ 1 site).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All site positions.
    #[must_use]
    pub fn points(&self) -> &[KdPoint<K>] {
        &self.points
    }

    /// Position of site `i`.
    #[must_use]
    pub fn point(&self, i: usize) -> &KdPoint<K> {
        &self.points[i]
    }

    /// Exact nearest site to `p`.
    #[must_use]
    pub fn owner(&self, p: &KdPoint<K>) -> usize {
        self.grid.nearest(p, &self.points)
    }

    /// Monte-Carlo estimate of every site's Voronoi cell volume from
    /// `samples` uniform probes (exact polytope volumes are out of scope
    /// for `K > 2`; this estimator is used only by region-size
    /// tie-breaks, which are heuristic anyway).
    #[must_use]
    pub fn mc_cell_volumes<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> Vec<f64> {
        let mut hits = vec![0u64; self.len()];
        for _ in 0..samples {
            hits[self.owner(&KdPoint::random(rng))] += 1;
        }
        hits.iter().map(|&h| h as f64 / samples as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;

    fn random_sites<const K: usize>(n: usize, seed: u64) -> Vec<KdPoint<K>> {
        let mut rng = Xoshiro256pp::from_u64(seed);
        (0..n).map(|_| KdPoint::random(&mut rng)).collect()
    }

    #[test]
    fn distances_match_2d_implementation() {
        use crate::point::TorusPoint;
        let mut rng = Xoshiro256pp::from_u64(1);
        for _ in 0..500 {
            let (ax, ay, bx, by) = (
                rng.gen::<f64>(),
                rng.gen::<f64>(),
                rng.gen::<f64>(),
                rng.gen::<f64>(),
            );
            let a2 = TorusPoint::new(ax, ay);
            let b2 = TorusPoint::new(bx, by);
            let ak = KdPoint::new([ax, ay]);
            let bk = KdPoint::new([bx, by]);
            assert!((a2.dist(b2) - ak.dist(&bk)).abs() < 1e-12);
        }
    }

    #[test]
    fn kd_grid_matches_brute_in_dim_1_2_3() {
        let mut rng = Xoshiro256pp::from_u64(2);
        macro_rules! check_dim {
            ($k:literal) => {{
                for &n in &[2usize, 10, 200] {
                    let sites = random_sites::<$k>(n, 100 + n as u64 + $k);
                    let grid = KdGrid::build(&sites);
                    for _ in 0..300 {
                        let p = KdPoint::<$k>::random(&mut rng);
                        let fast = grid.nearest(&p, &sites);
                        let slow = kd_nearest_brute(&p, &sites);
                        assert!(
                            (p.dist2(&sites[fast]) - p.dist2(&sites[slow])).abs() < 1e-15,
                            "K={} n={n}",
                            $k
                        );
                    }
                }
            }};
        }
        check_dim!(1);
        check_dim!(2);
        check_dim!(3);
    }

    #[test]
    fn kd1_matches_ring_nearest_ownership() {
        use geo2c_ring::{Ownership, RingPartition, RingPoint};
        let mut rng = Xoshiro256pp::from_u64(3);
        let coords: Vec<f64> = (0..50).map(|_| rng.gen::<f64>()).collect();
        let sites = KdSites::<1>::from_points(coords.iter().map(|&x| KdPoint::new([x])).collect());
        let part =
            RingPartition::from_positions(coords.iter().map(|&x| RingPoint::new(x)).collect());
        for _ in 0..500 {
            let x = rng.gen::<f64>();
            let kd_owner_pos = sites.point(sites.owner(&KdPoint::new([x]))).coords[0];
            let ring_owner_pos = part
                .position(part.owner(RingPoint::new(x), Ownership::Nearest))
                .coord();
            assert!(
                (kd_owner_pos - ring_owner_pos).abs() < 1e-12
                    // allow exact ties resolved differently
                    || (RingPoint::new(x).distance(RingPoint::new(kd_owner_pos))
                        - RingPoint::new(x).distance(RingPoint::new(ring_owner_pos)))
                    .abs()
                        < 1e-12,
                "1-D owners differ at x={x}"
            );
        }
    }

    #[test]
    fn kd2_matches_torus_sites() {
        use crate::point::TorusPoint;
        use crate::voronoi::TorusSites;
        let mut rng = Xoshiro256pp::from_u64(4);
        let pts: Vec<(f64, f64)> = (0..100).map(|_| (rng.gen(), rng.gen())).collect();
        let sites2 =
            TorusSites::from_points(pts.iter().map(|&(x, y)| TorusPoint::new(x, y)).collect());
        let sitesk =
            KdSites::<2>::from_points(pts.iter().map(|&(x, y)| KdPoint::new([x, y])).collect());
        for _ in 0..500 {
            let (x, y) = (rng.gen::<f64>(), rng.gen::<f64>());
            let a = sites2.owner(TorusPoint::new(x, y));
            let b = sitesk.owner(&KdPoint::new([x, y]));
            let pa = sites2.point(a);
            let pb = sitesk.point(b);
            let probe2 = TorusPoint::new(x, y);
            let probek = KdPoint::new([x, y]);
            assert!(
                (probe2.dist2(pa) - probek.dist2(pb)).abs() < 1e-15,
                "2-D owners differ at ({x}, {y})"
            );
        }
    }

    #[test]
    fn mc_volumes_partition_unity() {
        let mut rng = Xoshiro256pp::from_u64(5);
        let sites = KdSites::<3>::random(16, &mut rng);
        let volumes = sites.mc_cell_volumes(50_000, &mut rng);
        let total: f64 = volumes.iter().sum();
        // Exact: volumes are fractions of the same sample set.
        assert!((total - 1.0).abs() < 1e-9);
        // Every cell should get a roughly fair share (1/16 each ± spread).
        for (i, v) in volumes.iter().enumerate() {
            assert!(*v > 0.0, "cell {i} got no probes");
            assert!(*v < 0.4, "cell {i} implausibly large: {v}");
        }
    }

    #[test]
    fn kd_point_wraps_and_rejects_nan() {
        let p = KdPoint::new([1.25, -0.25, 3.0]);
        assert!((p.coords[0] - 0.25).abs() < 1e-12);
        assert!((p.coords[1] - 0.75).abs() < 1e-12);
        assert_eq!(p.coords[2], 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn kd_point_nan_rejected() {
        let _ = KdPoint::new([f64::NAN]);
    }

    #[test]
    fn high_dim_max_distance() {
        // Diameter of the K-torus is √K/2.
        let a = KdPoint::new([0.0, 0.0, 0.0, 0.0]);
        let b = KdPoint::new([0.5, 0.5, 0.5, 0.5]);
        assert!((a.dist(&b) - 1.0).abs() < 1e-12); // √4/2 = 1
    }

    #[test]
    fn clustered_sites_exact_in_3d() {
        let mut rng = Xoshiro256pp::from_u64(6);
        let sites: Vec<KdPoint<3>> = (0..40)
            .map(|_| {
                KdPoint::new([
                    0.5 + 0.02 * (rng.gen::<f64>() - 0.5),
                    0.5 + 0.02 * (rng.gen::<f64>() - 0.5),
                    0.5 + 0.02 * (rng.gen::<f64>() - 0.5),
                ])
            })
            .collect();
        let grid = KdGrid::build(&sites);
        for _ in 0..200 {
            let p = KdPoint::<3>::random(&mut rng);
            let fast = grid.nearest(&p, &sites);
            let slow = kd_nearest_brute(&p, &sites);
            assert!((p.dist2(&sites[fast]) - p.dist2(&sites[slow])).abs() < 1e-15);
        }
    }
}
