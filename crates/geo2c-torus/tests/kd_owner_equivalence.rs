//! Property tests pinning the `K`-torus grid's nearest-site search —
//! the near-orthant fast path with its exact per-cell pruning bounds,
//! the cell/far-face/block-boundary early exits, the monomorphized
//! shell walker, and the batched `nearest_batch`/`owners_into` entry
//! point — to the brute-force oracle across adversarial layouts:
//! clustered sites, wrap-seam probes, degenerate tiny grids (`g = 1`),
//! and `n = 1`, for `K ∈ {1, 3, 4}`. Mirrors `owner_equivalence.rs`,
//! which covers the 2-D specialization.
//!
//! Exact coordinate ties may legitimately resolve to different site
//! indices (the tie-break is scan order), so equivalence is asserted on
//! the achieved *distance*, which must match the oracle to FP roundoff.

use geo2c_torus::kd::{kd_nearest_brute, KdGrid, KdPoint, KdSites};
use proptest::prelude::*;

fn to_points<const K: usize>(pts: &[Vec<f64>]) -> Vec<KdPoint<K>> {
    pts.iter()
        .map(|c| {
            let mut coords = [0.0; K];
            coords.copy_from_slice(c);
            KdPoint::new(coords)
        })
        .collect()
}

fn assert_matches_oracle<const K: usize>(
    sites: &[KdPoint<K>],
    grid: &KdGrid<K>,
    probes: &[KdPoint<K>],
) {
    for p in probes {
        let fast = grid.nearest(p);
        let slow = kd_nearest_brute(p, sites);
        let (df, ds) = (p.dist2(&sites[fast]), p.dist2(&sites[slow]));
        assert!(
            (df - ds).abs() < 1e-15,
            "K={K}: grid {fast} (d2 {df}) vs brute {slow} (d2 {ds}) over {} sites",
            sites.len(),
        );
    }
}

fn assert_batch_matches_singles<const K: usize>(grid: &KdGrid<K>, probes: &[KdPoint<K>]) {
    let mut batched = vec![0usize; probes.len()];
    grid.nearest_batch(probes, &mut batched);
    let singles: Vec<usize> = probes.iter().map(|p| grid.nearest(p)).collect();
    assert_eq!(batched, singles, "K={K}: batch diverged from singles");
}

/// Arbitrary sites anywhere on the `K`-torus.
fn free_sites(k: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, k..k + 1), 1..48)
}

/// All sites inside one tiny cluster: most grid cells empty, so the
/// expanding search must keep going and every certificate (orthant,
/// block boundary, shell radius, residual sweep) must stay sound.
fn clustered_sites(k: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        prop::collection::vec(0.0f64..1.0, k..k + 1),
        prop::collection::vec(prop::collection::vec(0.0f64..2e-3, k..k + 1), 2..40),
    )
        .prop_map(|(center, offsets)| {
            offsets
                .into_iter()
                .map(|off| {
                    center
                        .iter()
                        .zip(off)
                        .map(|(&c, o)| (c + o) % 1.0)
                        .collect()
                })
                .collect()
        })
}

/// Probes hugging the wrap seams (first coordinate ~0, last ~1) plus a
/// few free ones.
fn seam_probes(k: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        prop::collection::vec(prop::collection::vec(0.0f64..1e-6, k..k + 1), 4..5),
        prop::collection::vec(prop::collection::vec(0.999_999f64..1.0, k..k + 1), 4..5),
        prop::collection::vec(prop::collection::vec(0.0f64..1.0, k..k + 1), 8..9),
    )
        .prop_map(|(low, high, free)| low.into_iter().chain(high).chain(free).collect())
}

macro_rules! kd_equivalence_suite {
    ($mod_name:ident, $k:literal) => {
        mod $mod_name {
            use super::*;

            proptest! {
                #[test]
                fn grid_matches_brute_on_free_layouts(
                    sites in free_sites($k),
                    probes in seam_probes($k),
                ) {
                    let sites = to_points::<$k>(&sites);
                    let grid = KdGrid::build(&sites);
                    let probes = to_points::<$k>(&probes);
                    assert_matches_oracle(&sites, &grid, &probes);
                    assert_batch_matches_singles(&grid, &probes);
                }

                #[test]
                fn grid_matches_brute_on_clustered_layouts(
                    sites in clustered_sites($k),
                    probes in seam_probes($k),
                ) {
                    let sites = to_points::<$k>(&sites);
                    let grid = KdGrid::build(&sites);
                    let probes = to_points::<$k>(&probes);
                    assert_matches_oracle(&sites, &grid, &probes);
                    assert_batch_matches_singles(&grid, &probes);
                }

                #[test]
                fn degenerate_grid_sides_stay_exact(
                    sites in free_sites($k),
                    probes in prop::collection::vec(
                        prop::collection::vec(0.0f64..1.0, $k..$k + 1), 12..13),
                    g in 1usize..6,
                ) {
                    // g ∈ {1, 2, 3} exercises the residual-sweep branch;
                    // 4 and 5 the smallest orthant fast paths with heavy
                    // wrapping.
                    let sites = to_points::<$k>(&sites);
                    let grid = KdGrid::with_cells_per_side(&sites, g);
                    let probes = to_points::<$k>(&probes);
                    assert_matches_oracle(&sites, &grid, &probes);
                    assert_batch_matches_singles(&grid, &probes);
                }

                #[test]
                fn single_site_owns_everything(
                    site in prop::collection::vec(0.0f64..1.0, $k..$k + 1),
                    probes in prop::collection::vec(
                        prop::collection::vec(0.0f64..1.0, $k..$k + 1), 8..9),
                ) {
                    let sites = to_points::<$k>(&[site]);
                    let grid = KdGrid::build(&sites);
                    for p in &to_points::<$k>(&probes) {
                        prop_assert_eq!(grid.nearest(p), 0);
                    }
                }

                #[test]
                fn kd_sites_owner_agrees_with_its_brute_oracle(
                    sites in free_sites($k),
                    probes in seam_probes($k),
                ) {
                    // The public KdSites::owner / owners_into paths (what
                    // the experiments drive) wrap the same grid; pin them
                    // to KdSites::owner_brute too.
                    let sites = KdSites::<$k>::from_points(to_points::<$k>(&sites));
                    let probes = to_points::<$k>(&probes);
                    let mut batched = vec![0usize; probes.len()];
                    sites.owners_into(&probes, &mut batched);
                    for (p, &owner) in probes.iter().zip(&batched) {
                        prop_assert_eq!(sites.owner(p), owner);
                        let slow = sites.owner_brute(p);
                        let (df, ds) =
                            (p.dist2(sites.point(owner)), p.dist2(sites.point(slow)));
                        prop_assert!(
                            (df - ds).abs() < 1e-15,
                            "owner {} vs brute {}", owner, slow
                        );
                    }
                }

                #[test]
                fn probes_exactly_on_sites_resolve_to_zero_distance(
                    sites in free_sites($k),
                    pick in 0usize..48,
                ) {
                    // A probe exactly at a site must resolve to distance 0
                    // (the site itself or an exact duplicate).
                    let sites = to_points::<$k>(&sites);
                    let grid = KdGrid::build(&sites);
                    let p = sites[pick % sites.len()];
                    let fast = grid.nearest(&p);
                    prop_assert!(p.dist2(&sites[fast]) < 1e-30);
                }
            }
        }
    };
}

kd_equivalence_suite!(k1, 1);
kd_equivalence_suite!(k3, 3);
kd_equivalence_suite!(k4, 4);
