//! Property tests pinning the CSR grid's nearest-site search (including
//! its batched 3×3 fast path and early-exit certificates) to the
//! brute-force oracle across adversarial layouts: clustered sites,
//! wrap-seam probes, degenerate tiny grids, and `n = 1`.
//!
//! Exact coordinate ties may legitimately resolve to different site
//! indices (the tie-break is scan order), so equivalence is asserted on
//! the achieved *distance*, which must match the oracle to FP roundoff.

use geo2c_torus::grid::{nearest_brute, Grid};
use geo2c_torus::{TorusPoint, TorusSites};
use proptest::prelude::*;

fn to_points(pts: &[(f64, f64)]) -> Vec<TorusPoint> {
    pts.iter().map(|&(x, y)| TorusPoint::new(x, y)).collect()
}

fn assert_matches_oracle(sites: &[TorusPoint], grid: &Grid, probes: &[TorusPoint]) {
    for &p in probes {
        let fast = grid.nearest(p);
        let slow = nearest_brute(p, sites);
        let (df, ds) = (p.dist2(sites[fast]), p.dist2(sites[slow]));
        assert!(
            (df - ds).abs() < 1e-15,
            "grid {fast} (d2 {df}) vs brute {slow} (d2 {ds}) at {p} over {} sites (g = {})",
            sites.len(),
            grid.cells_per_side()
        );
    }
}

/// Arbitrary sites anywhere on the torus.
fn free_sites() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..48)
}

/// All sites inside one tiny cluster: most grid cells empty, so the
/// expanding search must keep going and the early exits must stay sound.
fn clustered_sites() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (
        (0.0f64..1.0, 0.0f64..1.0),
        prop::collection::vec((0.0f64..2e-3, 0.0f64..2e-3), 2..40),
    )
        .prop_map(|((cx, cy), offsets)| {
            offsets
                .into_iter()
                .map(|(dx, dy)| ((cx + dx) % 1.0, (cy + dy) % 1.0))
                .collect()
        })
}

/// Probes hugging the wrap seams plus a few free ones.
fn seam_probes() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (
        prop::collection::vec((0.0f64..1e-6, 0.0f64..1.0), 4..5),
        prop::collection::vec((0.0f64..1.0, 0.999_999f64..1.0), 4..5),
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..9),
    )
        .prop_map(|(left, top, free)| left.into_iter().chain(top).chain(free).collect())
}

proptest! {
    #[test]
    fn grid_matches_brute_on_free_layouts(
        sites in free_sites(),
        probes in seam_probes(),
    ) {
        let sites = to_points(&sites);
        let grid = Grid::build(&sites);
        assert_matches_oracle(&sites, &grid, &to_points(&probes));
    }

    #[test]
    fn grid_matches_brute_on_clustered_layouts(
        sites in clustered_sites(),
        probes in seam_probes(),
    ) {
        let sites = to_points(&sites);
        let grid = Grid::build(&sites);
        assert_matches_oracle(&sites, &grid, &to_points(&probes));
    }

    #[test]
    fn degenerate_grid_sides_stay_exact(
        sites in free_sites(),
        probes in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 12..13),
        g in 1usize..6,
    ) {
        // g ∈ {1, 2, 3} exercises the scan-all branch; 4 and 5 the
        // smallest 3×3 fast paths with heavy wrapping.
        let sites = to_points(&sites);
        let grid = Grid::with_cells_per_side(&sites, g);
        assert_matches_oracle(&sites, &grid, &to_points(&probes));
    }

    #[test]
    fn single_site_owns_everything(
        site in (0.0f64..1.0, 0.0f64..1.0),
        probes in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..9),
    ) {
        let sites = to_points(&[site]);
        let grid = Grid::build(&sites);
        for &p in &to_points(&probes) {
            prop_assert_eq!(grid.nearest(p), 0);
        }
    }

    #[test]
    fn torus_sites_owner_agrees_with_its_brute_oracle(
        sites in free_sites(),
        probes in seam_probes(),
    ) {
        // The public TorusSites::owner path (what the experiments drive)
        // wraps the same grid; pin it to TorusSites::owner_brute too.
        let sites = TorusSites::from_points(to_points(&sites));
        for &p in &to_points(&probes) {
            let fast = sites.owner(p);
            let slow = sites.owner_brute(p);
            let (df, ds) = (p.dist2(sites.point(fast)), p.dist2(sites.point(slow)));
            prop_assert!((df - ds).abs() < 1e-15, "owner {fast} vs brute {slow} at {p}");
        }
    }

    #[test]
    fn probes_exactly_on_sites_resolve_to_zero_distance(
        sites in free_sites(),
        pick in 0usize..48,
    ) {
        // A probe exactly at a site must resolve to distance 0 (the site
        // itself or an exact duplicate).
        let sites = to_points(&sites);
        let grid = Grid::build(&sites);
        let p = sites[pick % sites.len()];
        let fast = grid.nearest(p);
        prop_assert!(p.dist2(sites[fast]) < 1e-30);
    }
}
