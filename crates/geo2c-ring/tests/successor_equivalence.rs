//! Property tests pinning the bucket-accelerated successor search to the
//! `partition_point` binary-search oracle across adversarial layouts.
//!
//! The `O(1)` fast path ([`RingPartition::successor_index`]) jumps to a
//! coordinate bucket and scans forward, falling back to binary search on
//! dense clusters; any disagreement with
//! [`RingPartition::successor_index_binary`] on *any* input is a bug, not
//! noise, so the comparison is exact index equality.

use geo2c_ring::{Ownership, RingPartition, RingPoint};
use proptest::prelude::*;

/// Uniformly spread positions: the layout the accelerant is tuned for.
fn uniform_positions() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 1..64)
}

/// Adversarial clusters: many servers packed into a tiny window around an
/// anchor (forces the bounded-scan fallback), plus a few background
/// servers so wrap behaviour still varies.
fn clustered_positions() -> impl Strategy<Value = Vec<f64>> {
    (
        0.0f64..1.0,
        prop::collection::vec(0.0f64..1e-4, 20..60),
        prop::collection::vec(0.0f64..1.0, 0..4),
    )
        .prop_map(|(anchor, offsets, background)| {
            let mut out: Vec<f64> = offsets
                .into_iter()
                .map(|delta| (anchor + delta) % 1.0)
                .collect();
            out.extend(background);
            out
        })
}

/// Probes that matter: arbitrary points, plus points at and immediately
/// around each server (the seams of the half-open arc convention).
fn check_partition(positions: &[f64], probes: &[f64]) {
    let part =
        RingPartition::from_positions(positions.iter().map(|&x| RingPoint::new(x)).collect());
    for &x in probes {
        let p = RingPoint::new(x);
        assert_eq!(
            part.successor_index(p),
            part.successor_index_binary(p),
            "successor mismatch at {x} over {} servers",
            part.len()
        );
    }
    for i in 0..part.len() {
        for delta in [-1e-9, 0.0, 1e-9] {
            let p = part.position(i).offset(delta);
            assert_eq!(
                part.successor_index(p),
                part.successor_index_binary(p),
                "seam mismatch near server {i}"
            );
        }
    }
}

proptest! {
    #[test]
    fn fast_successor_matches_binary_on_uniform_layouts(
        positions in uniform_positions(),
        probes in prop::collection::vec(0.0f64..1.0, 32..33),
    ) {
        check_partition(&positions, &probes);
    }

    #[test]
    fn fast_successor_matches_binary_on_clustered_layouts(
        positions in clustered_positions(),
        probes in prop::collection::vec(0.0f64..1.0, 32..33),
    ) {
        check_partition(&positions, &probes);
    }

    #[test]
    fn fast_successor_matches_binary_with_duplicates(
        base in prop::collection::vec(0.0f64..1.0, 1..12),
        copies in 1usize..5,
        probes in prop::collection::vec(0.0f64..1.0, 16..17),
    ) {
        // Exact duplicate coordinates: partition_point's "first index with
        // coord >= x" answer must be reproduced, not just any duplicate.
        let mut positions = Vec::new();
        for &x in &base {
            for _ in 0..copies {
                positions.push(x);
            }
        }
        check_partition(&positions, &probes);
    }

    #[test]
    fn wrap_seam_probes_agree(positions in uniform_positions()) {
        // Probes hugging both sides of the 0/1 seam, where the successor
        // wraps to server 0.
        let probes = [0.0, 1e-12, 1e-9, 0.999_999_999, 0.999_999_999_999];
        check_partition(&positions, &probes);
    }

    #[test]
    fn single_server_owns_every_probe(probe in 0.0f64..1.0, pos in 0.0f64..1.0) {
        let part = RingPartition::from_positions(vec![RingPoint::new(pos)]);
        prop_assert_eq!(part.successor_index(RingPoint::new(probe)), 0);
        prop_assert_eq!(part.owner(RingPoint::new(probe), Ownership::Nearest), 0);
    }

    #[test]
    fn owner_conventions_agree_with_oracle_derived_owner(
        positions in uniform_positions(),
        probe in 0.0f64..1.0,
    ) {
        // The public owner() entry point must route through the same
        // successor answer the oracle gives.
        let part = RingPartition::from_positions(
            positions.iter().map(|&x| RingPoint::new(x)).collect(),
        );
        let p = RingPoint::new(probe);
        prop_assert_eq!(
            part.owner(p, Ownership::Successor),
            part.successor_index_binary(p)
        );
    }
}
