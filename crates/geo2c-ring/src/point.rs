//! Positions on the unit circle (circumference 1) with wrapped arithmetic.
//!
//! The paper works on a circle of circumference 1; all positions live in
//! `[0, 1)` and all distances are computed modulo 1. We fix an orientation
//! convention once and use it everywhere:
//!
//! * "**clockwise** from `a` to `b`" means moving in the direction of
//!   *increasing* coordinate, i.e. the distance is `(b − a) mod 1`. This
//!   matches Chord's "key is assigned to the nearest server in the clockwise
//!   direction" with server identifiers increasing clockwise.
//! * The paper's "counterclockwise arc from the jth point" is then the arc
//!   `(p_j − ℓ, p_j]` of the *predecessor* gap. Only the multiset of arc
//!   lengths matters for every result in the paper, so the two conventions
//!   are interchangeable; tests in [`crate::partition`] verify this.

use rand::Rng;

/// A point on the unit circle, stored as a coordinate in `[0, 1)`.
///
/// Construction normalizes any finite `f64` into the canonical range, so
/// wrapped arithmetic (`+ 0.3` past 1.0, negative offsets, …) is safe by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct RingPoint(f64);

impl RingPoint {
    /// Creates a point, wrapping `x` into `[0, 1)`.
    ///
    /// # Panics
    /// Panics if `x` is not finite.
    #[must_use]
    pub fn new(x: f64) -> Self {
        assert!(x.is_finite(), "ring coordinate must be finite, got {x}");
        // Already-canonical inputs (every probe the samplers draw) skip
        // the fmod; the fallback matches rem_euclid bit-for-bit.
        if (0.0..1.0).contains(&x) {
            return Self(x);
        }
        let mut v = x.rem_euclid(1.0);
        // rem_euclid can return exactly 1.0 for tiny negative inputs due to
        // rounding; canonicalize.
        if v >= 1.0 {
            v = 0.0;
        }
        Self(v)
    }

    /// Samples a uniformly random point on the circle.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(rng.gen::<f64>())
    }

    /// The coordinate in `[0, 1)`.
    #[must_use]
    pub fn coord(self) -> f64 {
        self.0
    }

    /// Clockwise distance from `self` to `other`: `(other − self) mod 1`,
    /// in `[0, 1)`.
    #[must_use]
    pub fn clockwise_to(self, other: RingPoint) -> f64 {
        let d = other.0 - self.0;
        if d < 0.0 {
            d + 1.0
        } else {
            d
        }
    }

    /// Symmetric ring distance: the shorter way around, in `[0, 0.5]`.
    #[must_use]
    pub fn distance(self, other: RingPoint) -> f64 {
        let cw = self.clockwise_to(other);
        cw.min(1.0 - cw)
    }

    /// The point at clockwise offset `delta` from `self` (wraps).
    #[must_use]
    pub fn offset(self, delta: f64) -> RingPoint {
        RingPoint::new(self.0 + delta)
    }

    /// True if `self` lies on the clockwise arc `(from, to]`.
    ///
    /// The half-open convention matches successor ownership: a point exactly
    /// at a server's position belongs to that server. An empty arc
    /// (`from == to`) contains nothing except when `self == to` (a full
    /// wrap is not representable; arcs here are proper sub-arcs).
    #[must_use]
    pub fn in_cw_arc(self, from: RingPoint, to: RingPoint) -> bool {
        if from.0 == to.0 {
            return self.0 == to.0;
        }
        let span = from.clockwise_to(to);
        let into = from.clockwise_to(self);
        into > 0.0 && into <= span
    }
}

impl Eq for RingPoint {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for RingPoint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Coordinates are finite and canonical by construction, so
        // partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("canonical coordinates")
    }
}

impl From<f64> for RingPoint {
    fn from(x: f64) -> Self {
        RingPoint::new(x)
    }
}

impl std::fmt::Display for RingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;

    #[test]
    fn new_wraps_into_unit_interval() {
        assert_eq!(RingPoint::new(0.25).coord(), 0.25);
        assert_eq!(RingPoint::new(1.25).coord(), 0.25);
        assert!((RingPoint::new(-0.25).coord() - 0.75).abs() < 1e-12);
        assert_eq!(RingPoint::new(1.0).coord(), 0.0);
        assert_eq!(RingPoint::new(-3.0).coord(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn new_rejects_nan() {
        let _ = RingPoint::new(f64::NAN);
    }

    #[test]
    fn clockwise_distance() {
        let a = RingPoint::new(0.1);
        let b = RingPoint::new(0.4);
        assert!((a.clockwise_to(b) - 0.3).abs() < 1e-12);
        assert!((b.clockwise_to(a) - 0.7).abs() < 1e-12);
        assert_eq!(a.clockwise_to(a), 0.0);
    }

    #[test]
    fn symmetric_distance_takes_shorter_way() {
        let a = RingPoint::new(0.05);
        let b = RingPoint::new(0.95);
        assert!((a.distance(b) - 0.1).abs() < 1e-12);
        assert_eq!(a.distance(b), b.distance(a));
        assert!(a.distance(b) <= 0.5 + 1e-12);
    }

    #[test]
    fn offset_wraps() {
        let p = RingPoint::new(0.9).offset(0.2);
        assert!((p.coord() - 0.1).abs() < 1e-12);
        let q = RingPoint::new(0.1).offset(-0.2);
        assert!((q.coord() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn arc_membership_half_open() {
        let from = RingPoint::new(0.2);
        let to = RingPoint::new(0.5);
        assert!(!RingPoint::new(0.2).in_cw_arc(from, to)); // open at from
        assert!(RingPoint::new(0.35).in_cw_arc(from, to));
        assert!(RingPoint::new(0.5).in_cw_arc(from, to)); // closed at to
        assert!(!RingPoint::new(0.6).in_cw_arc(from, to));
    }

    #[test]
    fn arc_membership_wrapping() {
        let from = RingPoint::new(0.8);
        let to = RingPoint::new(0.1);
        assert!(RingPoint::new(0.9).in_cw_arc(from, to));
        assert!(RingPoint::new(0.05).in_cw_arc(from, to));
        assert!(RingPoint::new(0.1).in_cw_arc(from, to));
        assert!(!RingPoint::new(0.5).in_cw_arc(from, to));
        assert!(!RingPoint::new(0.8).in_cw_arc(from, to));
    }

    #[test]
    fn random_points_are_canonical() {
        let mut rng = Xoshiro256pp::from_u64(1);
        for _ in 0..1000 {
            let p = RingPoint::random(&mut rng);
            assert!((0.0..1.0).contains(&p.coord()));
        }
    }

    #[test]
    fn ordering_is_by_coordinate() {
        let mut pts = [
            RingPoint::new(0.9),
            RingPoint::new(0.1),
            RingPoint::new(0.5),
        ];
        pts.sort();
        let coords: Vec<f64> = pts.iter().map(|p| p.coord()).collect();
        assert_eq!(coords, vec![0.1, 0.5, 0.9]);
    }
}
