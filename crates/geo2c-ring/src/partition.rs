//! The random arc partition: `n` servers on the circle and the bins they
//! induce.
//!
//! [`RingPartition`] is the substrate of the paper's Theorem 1: server
//! positions are sorted once at construction, and every point-to-owner
//! query is answered in `O(1)` expected time by a bucket-index accelerant
//! over the sorted positions (jump to the probe's bucket, scan forward a
//! few slots; a bounded linear scan falls back to binary search on
//! adversarially clustered inputs, so the worst case stays `O(log n)`).
//! [`RingPartition::successor_index_binary`] keeps the plain
//! `partition_point` binary search as the oracle the property tests pin
//! the fast path against. Two ownership conventions are provided:
//!
//! * [`Ownership::Successor`] — a point belongs to the first server at or
//!   after it in the clockwise direction. This is the consistent-hashing /
//!   Chord convention, and (up to reflection) the paper's "counterclockwise
//!   arc" convention: server `i` owns the arc `(p_{i-1}, p_i]`, whose length
//!   is the gap to its predecessor.
//! * [`Ownership::Nearest`] — a point belongs to the closest server under
//!   the symmetric ring distance, i.e. the 1-D Voronoi cell
//!   `(p_i − g_prev/2, p_i + g_next/2]`.
//!
//! Every distributional statement in the paper is invariant under the choice
//! (both make the bin-size vector a function of the i.i.d. uniform gaps);
//! the experiments default to `Successor` to match the DHT application.

use crate::point::RingPoint;
use rand::Rng;

/// How a probe point on the circle is mapped to an owning server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ownership {
    /// Clockwise successor (consistent hashing / Chord; the paper's arcs).
    #[default]
    Successor,
    /// Symmetric nearest neighbour (1-D Voronoi cells).
    Nearest,
}

/// `n` servers placed on the unit circle, with `O(log n)` ownership queries
/// and per-server region sizes.
#[derive(Debug, Clone)]
pub struct RingPartition {
    /// Server positions, sorted ascending by coordinate. Index in this
    /// vector is the server id used throughout the workspace.
    positions: Vec<RingPoint>,
    /// Raw coordinates of `positions` (structure-of-arrays copy): the
    /// successor scan touches only this dense `f64` array.
    coords: Vec<f64>,
    /// Bucket accelerant: `bucket_first[b]` is the first index `i` with
    /// `coords[i] ≥ b / B` for `B = bucket_first.len() − 1 = n` buckets
    /// (`bucket_first[B] == n`). A successor query jumps here and scans.
    bucket_first: Vec<u32>,
}

impl RingPartition {
    /// Forward-scan budget before [`Self::successor_index`] falls back to
    /// binary search (only reachable on heavily clustered positions).
    const SCAN_LIMIT: usize = 16;

    /// Places `n ≥ 1` servers independently and uniformly at random.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0, "a ring partition needs at least one server");
        let mut positions: Vec<RingPoint> = (0..n).map(|_| RingPoint::random(rng)).collect();
        positions.sort();
        Self::index(positions)
    }

    /// Builds a partition from explicit positions (sorted internally).
    ///
    /// # Panics
    /// Panics if `positions` is empty.
    #[must_use]
    pub fn from_positions(mut positions: Vec<RingPoint>) -> Self {
        assert!(
            !positions.is_empty(),
            "a ring partition needs at least one server"
        );
        positions.sort();
        Self::index(positions)
    }

    /// Builds the bucket accelerant over already-sorted positions.
    fn index(positions: Vec<RingPoint>) -> Self {
        let n = positions.len();
        assert!(u32::try_from(n).is_ok(), "too many servers");
        let coords: Vec<f64> = positions.iter().map(|p| p.coord()).collect();
        let mut bucket_first = vec![0u32; n + 1];
        let mut i = 0usize;
        for (b, slot) in bucket_first.iter_mut().enumerate() {
            let lo = b as f64 / n as f64;
            while i < n && coords[i] < lo {
                i += 1;
            }
            *slot = i as u32;
        }
        Self {
            positions,
            coords,
            bucket_first,
        }
    }

    /// Number of servers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Always false: construction requires at least one server.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All server positions in ascending order.
    #[must_use]
    pub fn positions(&self) -> &[RingPoint] {
        &self.positions
    }

    /// Position of server `i`.
    #[must_use]
    pub fn position(&self, i: usize) -> RingPoint {
        self.positions[i]
    }

    /// Index of the clockwise successor of `p`: the first server at
    /// coordinate ≥ `p`, wrapping to server 0 past the top of the circle.
    ///
    /// `O(1)` expected time for random positions: jump to the probe's
    /// bucket (one bucket per server on average) and scan forward; a
    /// bounded scan falls back to binary search so clustered layouts stay
    /// `O(log n)`. Always equal to [`Self::successor_index_binary`]
    /// (pinned by the property tests in `tests/successor_equivalence.rs`).
    #[must_use]
    pub fn successor_index(&self, p: RingPoint) -> usize {
        let start = self.bucket_start(p.coord());
        self.finish_scan(p.coord(), start)
    }

    /// The bucket-accelerant's first stage: the index of the first
    /// position in the coordinate `x`'s bucket. Shared by the per-point
    /// query and the staged batch so the two can never drift.
    #[inline]
    fn bucket_start(&self, x: f64) -> usize {
        let n = self.coords.len();
        let mut b = ((x * n as f64) as usize).min(n - 1);
        // floor(x·n) can land a bucket high after FP rounding; the
        // invariant we rely on is fl(b/n) ≤ x, checked with the exact
        // expression the index was built from (≤ 1 step in practice).
        while b > 0 && b as f64 / n as f64 > x {
            b -= 1;
        }
        self.bucket_first[b] as usize
    }

    /// The bucket-accelerant's second stage: the bounded forward scan
    /// from `start` (with the binary-search fallback for dense clusters)
    /// yielding the successor index of coordinate `x`. Shared by the
    /// per-point query and the staged batch.
    #[inline]
    fn finish_scan(&self, x: f64, start: usize) -> usize {
        let n = self.coords.len();
        let mut i = start;
        let end = (i + Self::SCAN_LIMIT).min(n);
        while i < end && self.coords[i] < x {
            i += 1;
        }
        if i == end && i < n && self.coords[i] < x {
            // Dense cluster in this bucket: finish with binary search.
            i += self.coords[i..].partition_point(|&c| c < x);
        }
        if i == n {
            0
        } else {
            i
        }
    }

    /// Batched [`Self::successor_index`]: writes the successor of
    /// `points[j]` into `out[j]`, exactly equal to the per-point query
    /// (pinned by `tests/successor_equivalence.rs`).
    ///
    /// The point of the batch is *memory-level parallelism*, not fewer
    /// instructions: a single query chains two dependent DRAM accesses
    /// (`bucket_first[b]`, then `coords[start..]`), so a loop of
    /// independent queries is latency-bound once `n` outgrows the cache.
    /// The batch splits the chain into per-block passes — gather every
    /// query's bucket start, touch every scan's first `coords` line
    /// (both loops are pure independent loads the out-of-order core
    /// overlaps), then finish the scans against warm lines.
    ///
    /// # Panics
    /// Panics if `points.len() != out.len()`.
    pub fn successor_indices_into(&self, points: &[RingPoint], out: &mut [usize]) {
        assert_eq!(points.len(), out.len(), "output sized for the points");
        /// Queries staged per pass: 128 warm lines ≤ 8 KiB, safely L1.
        const BATCH: usize = 128;
        let n = self.coords.len();
        let mut starts = [0u32; BATCH];
        for (pts, outs) in points.chunks(BATCH).zip(out.chunks_mut(BATCH)) {
            // Pass 1: bucket index arithmetic + one independent gather of
            // bucket_first per query.
            for (start, p) in starts.iter_mut().zip(pts.iter()) {
                *start = self.bucket_start(p.coord()) as u32;
            }
            // Pass 2: touch the first coords line of every scan — the
            // loads are independent now that the starts are known, so
            // their misses overlap instead of serializing per query.
            let mut warm = 0.0f64;
            for &start in &starts[..pts.len()] {
                warm += self.coords[(start as usize).min(n - 1)];
            }
            std::hint::black_box(warm);
            // Pass 3: finish each scan against warm lines.
            for ((slot, p), &start) in outs.iter_mut().zip(pts.iter()).zip(starts.iter()) {
                *slot = self.finish_scan(p.coord(), start as usize);
            }
        }
    }

    /// Batched [`Self::owner`]: the staged successor batch for
    /// [`Ownership::Successor`]; the per-point query in a plain loop for
    /// [`Ownership::Nearest`] (not on the simulation hot path).
    ///
    /// # Panics
    /// Panics if `points.len() != out.len()`.
    pub fn owners_into(&self, points: &[RingPoint], ownership: Ownership, out: &mut [usize]) {
        match ownership {
            Ownership::Successor => self.successor_indices_into(points, out),
            Ownership::Nearest => {
                assert_eq!(points.len(), out.len(), "output sized for the points");
                for (slot, &p) in out.iter_mut().zip(points.iter()) {
                    *slot = self.nearest_index(p);
                }
            }
        }
    }

    /// The plain `partition_point` binary search (`O(log n)`): the oracle
    /// [`Self::successor_index`] is validated against, kept for tests,
    /// ablation benches, and as a reference implementation.
    #[must_use]
    pub fn successor_index_binary(&self, p: RingPoint) -> usize {
        let idx = self.positions.partition_point(|s| s.coord() < p.coord());
        if idx == self.positions.len() {
            0
        } else {
            idx
        }
    }

    /// Index of the server nearest to `p` under the symmetric ring
    /// distance. Ties (equidistant predecessor/successor) go to the
    /// successor, deterministically.
    #[must_use]
    pub fn nearest_index(&self, p: RingPoint) -> usize {
        let n = self.positions.len();
        if n == 1 {
            return 0;
        }
        let succ = self.successor_index(p);
        let pred = (succ + n - 1) % n;
        let d_succ = p.distance(self.positions[succ]);
        let d_pred = p.distance(self.positions[pred]);
        if d_pred < d_succ {
            pred
        } else {
            succ
        }
    }

    /// Owner of `p` under the given convention.
    #[must_use]
    pub fn owner(&self, p: RingPoint, ownership: Ownership) -> usize {
        match ownership {
            Ownership::Successor => self.successor_index(p),
            Ownership::Nearest => self.nearest_index(p),
        }
    }

    /// Length of the arc `(p_{i-1}, p_i]` owned by server `i` under
    /// [`Ownership::Successor`]; the full circle when `n == 1`.
    #[must_use]
    pub fn arc_length(&self, i: usize) -> f64 {
        let n = self.positions.len();
        if n == 1 {
            return 1.0;
        }
        let pred = (i + n - 1) % n;
        let gap = self.positions[pred].clockwise_to(self.positions[i]);
        // Adjacent duplicates make a zero gap; the wrap gap of the first
        // server after the last is what clockwise_to already returns.
        if i == 0 && gap == 0.0 && self.positions[pred] == self.positions[i] {
            // All servers at one point: server 0 owns everything.
            return if self.positions.iter().all(|&q| q == self.positions[0]) {
                1.0
            } else {
                0.0
            };
        }
        gap
    }

    /// All successor-arc lengths, indexed by server. Sums to 1.
    #[must_use]
    pub fn arc_lengths(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.arc_length(i)).collect()
    }

    /// Size of the region owned by server `i` under `ownership`:
    /// the successor arc, or the 1-D Voronoi cell (half of each adjacent
    /// gap). Both variants sum to 1 over all servers.
    #[must_use]
    pub fn region_size(&self, i: usize, ownership: Ownership) -> f64 {
        match ownership {
            Ownership::Successor => self.arc_length(i),
            Ownership::Nearest => {
                let n = self.positions.len();
                if n == 1 {
                    return 1.0;
                }
                let next = (i + 1) % n;
                let g_prev = self.arc_length(i);
                let g_next = self.positions[i].clockwise_to(self.positions[next]);
                let g_next = if next == i { 1.0 } else { g_next };
                (g_prev + g_next) / 2.0
            }
        }
    }

    /// The longest region size under `ownership` (`Θ(log n / n)` w.h.p. for
    /// random placement, per the discussion before the paper's Lemma 6).
    #[must_use]
    pub fn max_region(&self, ownership: Ownership) -> f64 {
        (0..self.len())
            .map(|i| self.region_size(i, ownership))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;

    fn fixed() -> RingPartition {
        RingPartition::from_positions(vec![
            RingPoint::new(0.1),
            RingPoint::new(0.4),
            RingPoint::new(0.8),
        ])
    }

    #[test]
    fn successor_basic_and_wrap() {
        let part = fixed();
        assert_eq!(part.successor_index(RingPoint::new(0.05)), 0);
        assert_eq!(part.successor_index(RingPoint::new(0.1)), 0); // closed at server
        assert_eq!(part.successor_index(RingPoint::new(0.2)), 1);
        assert_eq!(part.successor_index(RingPoint::new(0.75)), 2);
        assert_eq!(part.successor_index(RingPoint::new(0.9)), 0); // wraps
    }

    #[test]
    fn nearest_basic_and_wrap() {
        let part = fixed();
        assert_eq!(part.nearest_index(RingPoint::new(0.12)), 0);
        assert_eq!(part.nearest_index(RingPoint::new(0.3)), 1);
        assert_eq!(part.nearest_index(RingPoint::new(0.97)), 0); // 0.13 to 0.1 via wrap vs 0.17 to 0.8
        assert_eq!(part.nearest_index(RingPoint::new(0.92)), 2);
    }

    #[test]
    fn arc_lengths_sum_to_one() {
        let mut rng = Xoshiro256pp::from_u64(5);
        for n in [1usize, 2, 3, 17, 256] {
            let part = RingPartition::random(n, &mut rng);
            let total: f64 = part.arc_lengths().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}: arcs sum to {total}");
        }
    }

    #[test]
    fn voronoi_regions_sum_to_one() {
        let mut rng = Xoshiro256pp::from_u64(6);
        for n in [1usize, 2, 5, 64] {
            let part = RingPartition::random(n, &mut rng);
            let total: f64 = (0..n)
                .map(|i| part.region_size(i, Ownership::Nearest))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}: cells sum to {total}");
        }
    }

    #[test]
    fn fixed_arc_lengths() {
        let part = fixed();
        let arcs = part.arc_lengths();
        // Server 0 at 0.1 owns (0.8, 0.1]: length 0.3 (wrap).
        assert!((arcs[0] - 0.3).abs() < 1e-12);
        assert!((arcs[1] - 0.3).abs() < 1e-12);
        assert!((arcs[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn single_server_owns_everything() {
        let part = RingPartition::from_positions(vec![RingPoint::new(0.5)]);
        assert_eq!(part.successor_index(RingPoint::new(0.99)), 0);
        assert_eq!(part.nearest_index(RingPoint::new(0.0)), 0);
        assert_eq!(part.arc_length(0), 1.0);
        assert_eq!(part.region_size(0, Ownership::Nearest), 1.0);
    }

    #[test]
    fn successor_matches_linear_scan() {
        let mut rng = Xoshiro256pp::from_u64(7);
        let part = RingPartition::random(50, &mut rng);
        for _ in 0..2000 {
            let p = RingPoint::random(&mut rng);
            let fast = part.successor_index(p);
            // Brute force: the server whose arc (pred, pos] contains p.
            let slow = (0..part.len())
                .min_by(|&a, &b| {
                    p.clockwise_to(part.position(a))
                        .partial_cmp(&p.clockwise_to(part.position(b)))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(fast, slow, "at {}", p.coord());
        }
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let mut rng = Xoshiro256pp::from_u64(8);
        let part = RingPartition::random(50, &mut rng);
        for _ in 0..2000 {
            let p = RingPoint::random(&mut rng);
            let fast = part.nearest_index(p);
            let slow_dist = (0..part.len())
                .map(|i| p.distance(part.position(i)))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (p.distance(part.position(fast)) - slow_dist).abs() < 1e-12,
                "nearest mismatch at {}",
                p.coord()
            );
        }
    }

    #[test]
    fn region_fractions_match_hit_rates() {
        // Monte-Carlo: the empirical probability of hitting each region
        // should approximate its size, for both ownership conventions.
        let mut rng = Xoshiro256pp::from_u64(9);
        let part = RingPartition::random(8, &mut rng);
        for ownership in [Ownership::Successor, Ownership::Nearest] {
            let mut hits = vec![0u32; part.len()];
            let samples = 200_000;
            for _ in 0..samples {
                hits[part.owner(RingPoint::random(&mut rng), ownership)] += 1;
            }
            for (i, &h) in hits.iter().enumerate() {
                let expected = part.region_size(i, ownership);
                let got = f64::from(h) / f64::from(samples);
                assert!(
                    (got - expected).abs() < 0.01,
                    "{ownership:?} server {i}: size {expected} vs hit rate {got}"
                );
            }
        }
    }

    #[test]
    fn max_region_is_a_region() {
        let part = fixed();
        assert!((part.max_region(Ownership::Successor) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn fast_successor_matches_binary_oracle() {
        let mut rng = Xoshiro256pp::from_u64(11);
        for n in [1usize, 2, 3, 50, 1000] {
            let part = RingPartition::random(n, &mut rng);
            for _ in 0..2000 {
                let p = RingPoint::random(&mut rng);
                assert_eq!(
                    part.successor_index(p),
                    part.successor_index_binary(p),
                    "n={n} at {p}"
                );
            }
            // Probe exactly at and adjacent to every server position.
            for i in 0..n {
                for delta in [-1e-12, 0.0, 1e-12] {
                    let p = part.position(i).offset(delta);
                    assert_eq!(part.successor_index(p), part.successor_index_binary(p));
                }
            }
        }
    }

    #[test]
    fn clustered_positions_hit_the_binary_fallback() {
        // 200 servers packed into one bucket-width: the forward scan
        // exceeds SCAN_LIMIT and must fall back without losing exactness.
        let mut rng = Xoshiro256pp::from_u64(12);
        let mut positions: Vec<RingPoint> = (0..200)
            .map(|i| RingPoint::new(0.5 + 1e-6 * i as f64))
            .collect();
        positions.push(RingPoint::new(0.1));
        let part = RingPartition::from_positions(positions);
        for _ in 0..2000 {
            let p = RingPoint::random(&mut rng);
            assert_eq!(part.successor_index(p), part.successor_index_binary(p));
        }
        for i in 0..part.len() {
            let p = part.position(i);
            assert_eq!(part.successor_index(p), part.successor_index_binary(p));
        }
    }

    #[test]
    fn duplicate_positions_resolve_identically() {
        let part = RingPartition::from_positions(vec![
            RingPoint::new(0.25),
            RingPoint::new(0.25),
            RingPoint::new(0.25),
            RingPoint::new(0.75),
        ]);
        for x in [0.0, 0.25, 0.2500001, 0.5, 0.75, 0.9] {
            let p = RingPoint::new(x);
            assert_eq!(
                part.successor_index(p),
                part.successor_index_binary(p),
                "{x}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let mut rng = Xoshiro256pp::from_u64(1);
        let _ = RingPartition::random(0, &mut rng);
    }
}
