//! Empirical verification of Lemma 3: **negative dependence** of the
//! long-arc indicators.
//!
//! Lemma 3 proves that the indicators `Z_j` ("the arc from the `j`-th
//! placed point has length ≥ `c/n`") satisfy, for any distinct indices,
//!
//! ```text
//! E[Z_{i1} Z_{i2} … Z_{ik}]  ≤  E[Z_{i1}] E[Z_{i2}] … E[Z_{ik}],
//! ```
//!
//! which is what lets the Chernoff upper-tail bound apply to `N_c = Σ Z_j`
//! despite the dependence between arc lengths. The paper proves it by a
//! conditioning argument (shrinking the circle by the reserved arcs);
//! intuitively, one long arc uses up circumference, making other long
//! arcs *less* likely.
//!
//! [`negative_dependence_experiment`] measures the joint probability
//! `E[Z_1 … Z_k]` against the exact marginal `(1 − c/n)^{n−1}` raised to
//! the `k`, reporting the ratio (≤ 1 + sampling noise if the lemma
//! holds). By exchangeability of the placement the specific index set is
//! irrelevant, so each trial contributes `⌊n/k⌋` disjoint index groups as
//! samples.

use crate::partition::RingPartition;
use crate::point::RingPoint;
use geo2c_util::parallel::parallel_map;
use geo2c_util::rng::StreamSeeder;
use rand::Rng;

/// Exact marginal probability `Pr(Z_j = 1) = (1 − c/n)^{n−1}`.
#[must_use]
pub fn exact_marginal(n: usize, c: f64) -> f64 {
    let nf = n as f64;
    if c >= nf {
        return 0.0;
    }
    (1.0 - c / nf).powi(n as i32 - 1)
}

/// One row of the negative-dependence experiment.
#[derive(Debug, Clone, Copy)]
pub struct NegDepRow {
    /// Arc-length threshold parameter (`arcs ≥ c/n` are long).
    pub c: f64,
    /// Order of the joint moment tested.
    pub k: usize,
    /// Monte-Carlo estimate of `E[Z_1 … Z_k]`.
    pub joint: f64,
    /// `(1 − c/n)^{k(n−1)}` — the product of exact marginals.
    pub product_of_marginals: f64,
    /// Monte-Carlo estimate of the marginal `E[Z]` (sanity cross-check).
    pub empirical_marginal: f64,
    /// `joint / product_of_marginals`; Lemma 3 says ≤ 1 (up to noise).
    pub ratio: f64,
    /// Number of joint samples behind the estimate.
    pub samples: u64,
}

/// Forward (clockwise) gap of every *placed* point: the arc it "owns" in
/// the paper's Lemma 3 sense. Returned in placement order, not sorted
/// order.
#[must_use]
pub fn forward_gaps(points: &[RingPoint]) -> Vec<f64> {
    let n = points.len();
    assert!(n >= 1);
    if n == 1 {
        return vec![1.0];
    }
    // Sort indices by coordinate; the forward gap of the point at sorted
    // position s is positions[s+1] − positions[s] (wrapped).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .coord()
            .partial_cmp(&points[b].coord())
            .expect("canonical coords")
    });
    let mut gaps = vec![0.0; n];
    for s in 0..n {
        let here = order[s];
        let next = order[(s + 1) % n];
        gaps[here] = points[here].clockwise_to(points[next]);
        if n >= 2 && points[here] == points[next] {
            // Coincident points: gap truly 0 unless all points coincide.
            gaps[here] = points[here].clockwise_to(points[next]);
        }
    }
    // A single full wrap: when all points coincide every gap is 0 except
    // conceptually one; measure-zero, leave as-is.
    gaps
}

/// Runs the Lemma 3 experiment for each `(c, k)` combination.
#[must_use]
pub fn negative_dependence_experiment(
    n: usize,
    cs: &[f64],
    ks: &[usize],
    trials: usize,
    seeder: &StreamSeeder,
    threads: usize,
) -> Vec<NegDepRow> {
    assert!(ks.iter().all(|&k| k >= 1 && k <= n), "1 <= k <= n");
    // Per trial, per (c, k): (joint hits, joint groups, marginal hits).
    let per_trial: Vec<Vec<(u64, u64, u64)>> = parallel_map(trials, threads, |t| {
        let mut rng = seeder.stream(t as u64);
        let points: Vec<RingPoint> = (0..n).map(|_| RingPoint::random(&mut rng)).collect();
        let gaps = forward_gaps(&points);
        let mut out = Vec::with_capacity(cs.len() * ks.len());
        for &c in cs {
            let cutoff = c / n as f64;
            let z: Vec<bool> = gaps.iter().map(|&g| g >= cutoff).collect();
            let marginal_hits = z.iter().filter(|&&b| b).count() as u64;
            for &k in ks {
                let groups = n / k;
                let mut hits = 0u64;
                for g in 0..groups {
                    if z[g * k..(g + 1) * k].iter().all(|&b| b) {
                        hits += 1;
                    }
                }
                out.push((hits, groups as u64, marginal_hits));
            }
        }
        out
    });

    let mut rows = Vec::with_capacity(cs.len() * ks.len());
    let mut idx = 0usize;
    for &c in cs {
        for &k in ks {
            let mut hits = 0u64;
            let mut groups = 0u64;
            let mut marginal_hits = 0u64;
            for trial in &per_trial {
                let (h, g, m) = trial[idx];
                hits += h;
                groups += g;
                marginal_hits += m;
            }
            let joint = hits as f64 / groups.max(1) as f64;
            let marginal = exact_marginal(n, c);
            let product = marginal.powi(k as i32);
            rows.push(NegDepRow {
                c,
                k,
                joint,
                product_of_marginals: product,
                empirical_marginal: marginal_hits as f64 / (trials as u64 * n as u64) as f64,
                ratio: if product > 0.0 { joint / product } else { 0.0 },
                samples: groups,
            });
            idx += 1;
        }
    }
    rows
}

/// Direct check that a single uniform point's forward gap has the exact
/// marginal: used by tests and the lemmas binary's self-check.
///
/// Note the subtlety this guards against: the marginal applies to the
/// forward gap of a *placed point* (any fixed placement index, by
/// exchangeability). The arc containing a fixed *location* of the circle
/// (e.g. the coordinate origin — `RingPartition::arc_length(0)`'s wrap
/// arc) is **size-biased** and has a strictly heavier tail,
/// `≈ (1 + c) e^{−c}` instead of `e^{−c}`.
#[must_use]
pub fn marginal_self_check<R: Rng + ?Sized>(n: usize, c: f64, trials: usize, rng: &mut R) -> f64 {
    let cutoff = c / n as f64;
    let mut hits = 0u64;
    for _ in 0..trials {
        let points: Vec<RingPoint> = (0..n).map(|_| RingPoint::random(rng)).collect();
        if forward_gaps(&points)[0] >= cutoff {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

/// The size-biased tail: probability that the arc containing a fixed
/// location (the origin) has length ≥ `c/n`. Exposed so the lemmas binary
/// can demonstrate the distinction explicitly.
#[must_use]
pub fn size_biased_self_check<R: Rng + ?Sized>(
    n: usize,
    c: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let cutoff = c / n as f64;
    let mut hits = 0u64;
    for _ in 0..trials {
        let part = RingPartition::random(n, rng);
        // arc_length(0) is the wrap arc — the one containing coordinate 0.
        if part.arc_length(0) >= cutoff {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;

    #[test]
    fn exact_marginal_formula() {
        // n = 2, c = 1: (1 − 1/2)^1 = 0.5.
        assert!((exact_marginal(2, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(exact_marginal(8, 8.0), 0.0);
        // Approaches e^{-c} for large n.
        assert!((exact_marginal(100_000, 3.0) - (-3.0f64).exp()).abs() < 1e-4);
    }

    #[test]
    fn forward_gaps_partition_unity() {
        let mut rng = Xoshiro256pp::from_u64(1);
        for n in [1usize, 2, 7, 100] {
            let points: Vec<RingPoint> = (0..n).map(|_| RingPoint::random(&mut rng)).collect();
            let total: f64 = forward_gaps(&points).iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}: {total}");
        }
    }

    #[test]
    fn forward_gaps_explicit() {
        let points = vec![
            RingPoint::new(0.8),
            RingPoint::new(0.1),
            RingPoint::new(0.4),
        ];
        let gaps = forward_gaps(&points);
        // Point at 0.8 wraps to 0.1: gap 0.3; 0.1 → 0.4: 0.3; 0.4 → 0.8: 0.4.
        assert!((gaps[0] - 0.3).abs() < 1e-12);
        assert!((gaps[1] - 0.3).abs() < 1e-12);
        assert!((gaps[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn marginals_match_exact_formula() {
        let seeder = StreamSeeder::new(2);
        let rows = negative_dependence_experiment(256, &[2.0, 4.0], &[1], 400, &seeder, 2);
        for row in rows {
            assert!(
                (row.empirical_marginal - exact_marginal(256, row.c)).abs() < 0.02,
                "c={}: empirical {} vs exact {}",
                row.c,
                row.empirical_marginal,
                exact_marginal(256, row.c)
            );
            // k=1: joint is the marginal itself; ratio ≈ 1.
            assert!(
                (row.ratio - 1.0).abs() < 0.2,
                "c={}: ratio {}",
                row.c,
                row.ratio
            );
        }
    }

    #[test]
    fn joint_moments_are_negatively_dependent() {
        // The lemma's content: ratio ≤ 1 (+ sampling noise; within-trial
        // group samples are correlated, so allow a few percent).
        let seeder = StreamSeeder::new(3);
        let rows = negative_dependence_experiment(512, &[1.0, 2.0], &[2, 3], 2500, &seeder, 2);
        for row in rows {
            assert!(
                row.ratio <= 1.05,
                "c={} k={}: ratio {} exceeds 1 beyond noise",
                row.c,
                row.k,
                row.ratio
            );
            assert!(row.samples > 10_000, "not enough joint samples");
        }
    }

    #[test]
    fn experiment_is_deterministic() {
        let seeder = StreamSeeder::new(4);
        let a = negative_dependence_experiment(64, &[2.0], &[2], 50, &seeder, 1);
        let b = negative_dependence_experiment(64, &[2.0], &[2], 50, &seeder, 4);
        assert_eq!(a[0].joint, b[0].joint);
    }

    #[test]
    fn marginal_self_check_agrees() {
        let mut rng = Xoshiro256pp::from_u64(5);
        let got = marginal_self_check(128, 2.0, 600, &mut rng);
        let want = exact_marginal(128, 2.0);
        assert!((got - want).abs() < 0.06, "{got} vs {want}");
    }

    #[test]
    fn size_biased_arc_has_heavier_tail() {
        // The arc containing a fixed location is size-biased: its tail is
        // ≈ (1 + c) e^{−c}, strictly above the point-gap marginal e^{−c}.
        let mut rng = Xoshiro256pp::from_u64(7);
        let c = 2.0;
        let biased = size_biased_self_check(128, c, 800, &mut rng);
        let plain = exact_marginal(128, c);
        assert!(
            biased > 1.5 * plain,
            "size-biased {biased} should exceed plain {plain} markedly"
        );
        let predicted = (1.0 + c) * (-c).exp();
        assert!(
            (biased - predicted).abs() < 0.08,
            "size-biased {biased} vs (1+c)e^-c = {predicted}"
        );
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn k_zero_rejected() {
        let seeder = StreamSeeder::new(6);
        let _ = negative_dependence_experiment(16, &[2.0], &[0], 1, &seeder, 1);
    }
}
