//! The exact distribution theory of uniform spacings on the circle.
//!
//! When `n` points fall uniformly on a circle of circumference 1, the `n`
//! arcs form an exchangeable Dirichlet(1, …, 1) vector: each arc is
//! marginally `Beta(1, n−1)`, the maximum has expectation `H_n / n`
//! (harmonic number), and the `k`-th longest has expectation
//! `(H_n − H_{k−1}) / n` — the Rényi representation. These closed forms
//! are the analytic ground truth behind the paper's Lemmas 4–6:
//!
//! * Lemma 4/5 bound the *count* of arcs with survival
//!   `S(x) = (1 − x)^{n−1}` past `x = c/n`;
//! * Lemma 6 bounds the *top-`a` sum*, whose exact expectation
//!   `(a·H_n − Σ_{k<a} H_k)/n ≈ (a/n)(ln(n/a) + 1)` shows the paper's
//!   `2(a/n)ln(n/a)` carries ≈ 2× slack;
//! * the paper's `4 ln n / n` longest-arc bound is ≈ 4× the exact mean
//!   `H_n/n ≈ ln n / n`.
//!
//! The experiments use these to annotate observed order statistics with
//! their exact expectations (not just the paper's upper bounds).

/// The `n`-th harmonic number `H_n = Σ_{i=1..n} 1/i`.
///
/// Exact summation below 10⁶; Euler–Maclaurin
/// (`ln n + γ + 1/2n − 1/12n²`) above, with error < 1e-12.
#[must_use]
pub fn harmonic(n: u64) -> f64 {
    const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
    if n == 0 {
        return 0.0;
    }
    if n < 1_000_000 {
        return (1..=n).map(|i| 1.0 / i as f64).sum();
    }
    let x = n as f64;
    x.ln() + EULER_MASCHERONI + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x)
}

/// Survival function of a single arc: `Pr(L ≥ x) = (1 − x)^{n−1}` for
/// `x ∈ [0, 1]`.
///
/// # Panics
/// Panics unless `n ≥ 1` and `x ∈ [0, 1]`.
#[must_use]
pub fn arc_survival(n: usize, x: f64) -> f64 {
    assert!(n >= 1, "need at least one point");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    (1.0 - x).powi(n as i32 - 1)
}

/// Quantile of the arc length: the `x` with `Pr(L ≥ x) = q`, i.e.
/// `x = 1 − q^{1/(n−1)}`.
///
/// # Panics
/// Panics unless `n ≥ 2` and `q ∈ (0, 1]`.
#[must_use]
pub fn arc_quantile(n: usize, q: f64) -> f64 {
    assert!(n >= 2, "quantile needs n >= 2");
    assert!(q > 0.0 && q <= 1.0, "q must be in (0,1]");
    1.0 - q.powf(1.0 / (n as f64 - 1.0))
}

/// Expected length of the `k`-th longest arc (`k = 1` is the maximum):
/// `(H_n − H_{k−1}) / n` by the Rényi representation of spacings.
///
/// # Panics
/// Panics unless `1 ≤ k ≤ n`.
#[must_use]
pub fn expected_kth_longest(n: usize, k: usize) -> f64 {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    (harmonic(n as u64) - harmonic(k as u64 - 1)) / n as f64
}

/// Expected length of the longest arc: `H_n / n ≈ (ln n + γ)/n`.
#[must_use]
pub fn expected_max_arc(n: usize) -> f64 {
    expected_kth_longest(n, 1)
}

/// Expected total length of the `a` longest arcs:
/// `(a·H_n − Σ_{k=0}^{a−1} H_k) / n`, using the identity
/// `Σ_{k=1}^{m} H_k = (m+1)H_m − m`.
///
/// # Panics
/// Panics unless `1 ≤ a ≤ n`.
#[must_use]
pub fn expected_top_a_sum(n: usize, a: usize) -> f64 {
    assert!(a >= 1 && a <= n, "need 1 <= a <= n");
    let hn = harmonic(n as u64);
    // Σ_{k=0}^{a-1} H_k = Σ_{k=1}^{a-1} H_k = a·H_{a−1} − (a−1).
    let sum_h = a as f64 * harmonic(a as u64 - 1) - (a as f64 - 1.0);
    (a as f64 * hn - sum_h) / n as f64
}

/// Expected number of arcs of length ≥ `c/n`: `n (1 − c/n)^{n−1}` — the
/// same closed form as [`crate::tail::expected_long_arcs`], re-derived
/// from the survival function (kept as a consistency cross-check).
#[must_use]
pub fn expected_count_at_least(n: usize, c: f64) -> f64 {
    if c >= n as f64 {
        return 0.0;
    }
    n as f64 * arc_survival(n, c / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RingPartition;
    use geo2c_util::rng::Xoshiro256pp;
    use geo2c_util::stats::RunningStats;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-15);
    }

    #[test]
    fn harmonic_asymptotic_seam() {
        // The Euler–Maclaurin branch must agree with direct summation.
        let direct: f64 = (1..=1_000_000u64).map(|i| 1.0 / i as f64).sum();
        let approx = {
            let x = 1_000_000f64;
            x.ln() + 0.577_215_664_901_532_9 + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x)
        };
        assert!((direct - approx).abs() < 1e-10);
    }

    #[test]
    fn survival_and_quantile_are_inverse() {
        let n = 1024;
        for q in [0.9, 0.5, 0.1, 0.01] {
            let x = arc_quantile(n, q);
            assert!((arc_survival(n, x) - q).abs() < 1e-10, "q={q}");
        }
        assert_eq!(arc_survival(1, 0.7), 1.0);
    }

    #[test]
    fn expected_order_statistics_are_decreasing() {
        let n = 256;
        let mut last = f64::INFINITY;
        for k in 1..=10 {
            let e = expected_kth_longest(n, k);
            assert!(e < last);
            assert!(e > 0.0);
            last = e;
        }
        // Max ≈ ln n / n.
        let max = expected_max_arc(n);
        let nf = n as f64;
        assert!((max - (nf.ln() + 0.5772) / nf).abs() < 0.1 / nf);
    }

    #[test]
    fn top_a_sum_matches_direct_summation() {
        let n = 512;
        for a in [1usize, 2, 16, 100] {
            let direct: f64 = (1..=a).map(|k| expected_kth_longest(n, k)).sum();
            let closed = expected_top_a_sum(n, a);
            assert!(
                (direct - closed).abs() < 1e-10,
                "a={a}: direct {direct} vs closed {closed}"
            );
        }
    }

    #[test]
    fn lemma6_bound_has_about_2x_slack() {
        // The paper's 2(a/n)ln(n/a) versus the exact expectation.
        let n = 1 << 14;
        for a in [64usize, 128, 256] {
            let exact = expected_top_a_sum(n, a);
            let bound = crate::tail::lemma6_bound(n, a);
            let ratio = bound / exact;
            assert!((1.3..=2.2).contains(&ratio), "a={a}: bound/exact = {ratio}");
        }
    }

    #[test]
    fn monte_carlo_agrees_with_expectations() {
        let n = 512;
        let trials = 300;
        let mut max_stats = RunningStats::new();
        let mut top8_stats = RunningStats::new();
        let mut rng = Xoshiro256pp::from_u64(9);
        for _ in 0..trials {
            let part = RingPartition::random(n, &mut rng);
            let mut arcs = part.arc_lengths();
            arcs.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
            max_stats.push(arcs[0]);
            top8_stats.push(arcs[..8].iter().sum());
        }
        let e_max = expected_max_arc(n);
        let e_top8 = expected_top_a_sum(n, 8);
        assert!(
            (max_stats.mean() - e_max).abs() < 0.15 * e_max,
            "max: MC {} vs exact {}",
            max_stats.mean(),
            e_max
        );
        assert!(
            (top8_stats.mean() - e_top8).abs() < 0.1 * e_top8,
            "top-8: MC {} vs exact {}",
            top8_stats.mean(),
            e_top8
        );
    }

    #[test]
    fn count_expectation_consistent_with_tail_module() {
        let n = 4096;
        for c in [2.0, 4.0, 8.0] {
            let a = expected_count_at_least(n, c);
            let b = crate::tail::expected_long_arcs(n, c);
            assert!((a - b).abs() < 1e-9, "c={c}: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "need 1 <= k <= n")]
    fn kth_longest_domain() {
        let _ = expected_kth_longest(8, 0);
    }
}
