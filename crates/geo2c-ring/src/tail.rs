//! Executable forms of the paper's arc-length tail bounds (Lemmas 4–6).
//!
//! Theorem 1's layered induction needs two probabilistic facts about the
//! arcs induced by `n` uniform points on the circle:
//!
//! * **Lemma 4** (via negative dependence, Lemma 3): the number `N_c` of
//!   arcs of length ≥ `c/n` satisfies
//!   `Pr(N_c ≥ 2n e^{−c}) ≤ e^{−n e^{−c}/3}` for `2 ≤ c ≤ n`.
//! * **Lemma 5** (martingale/Azuma fallback): the weaker
//!   `Pr(N_c ≥ 2n e^{−c}) ≤ e^{−n e^{−2c}/8}` — same threshold, looser
//!   exponent; kept because the 2-D torus argument only achieves this form.
//! * **Lemma 6**: for `(ln n)² ≤ a ≤ n/64`, the total length of the `a`
//!   longest arcs is at most `2(a/n)·ln(n/a)` except with probability
//!   `o(1/n²)`; additionally the single longest arc is ≤ `4 ln n / n`
//!   except with probability `1/n³`.
//!
//! This module provides the bound formulas and Monte-Carlo experiments that
//! measure the empirical violation rates, which the `lemmas` bench binary
//! reports next to the analytic bounds (experiments E5, E6 in DESIGN.md).

use crate::partition::RingPartition;
use geo2c_util::parallel::parallel_map;
use geo2c_util::rng::StreamSeeder;
use geo2c_util::stats::RunningStats;

/// Number of arcs with length ≥ `threshold` (the paper's `N_c` with
/// `threshold = c/n`).
#[must_use]
pub fn count_arcs_at_least(arc_lengths: &[f64], threshold: f64) -> usize {
    arc_lengths.iter().filter(|&&l| l >= threshold).count()
}

/// Sum of the `a` longest arcs (clamped to the number of arcs).
#[must_use]
pub fn sum_longest_arcs(arc_lengths: &[f64], a: usize) -> f64 {
    let mut sorted = arc_lengths.to_vec();
    sorted.sort_unstable_by(|x, y| y.partial_cmp(x).expect("finite arc lengths"));
    sorted.iter().take(a).sum()
}

/// Lemma 4's count threshold `2n e^{−c}`.
#[must_use]
pub fn lemma4_threshold(n: usize, c: f64) -> f64 {
    2.0 * n as f64 * (-c).exp()
}

/// Lemma 4's probability bound `e^{−n e^{−c}/3}` (valid for `2 ≤ c ≤ n`).
#[must_use]
pub fn lemma4_prob_bound(n: usize, c: f64) -> f64 {
    (-(n as f64) * (-c).exp() / 3.0).exp()
}

/// Lemma 5's (weaker, martingale) probability bound `e^{−n e^{−2c}/8}`.
#[must_use]
pub fn lemma5_prob_bound(n: usize, c: f64) -> f64 {
    (-(n as f64) * (-2.0 * c).exp() / 8.0).exp()
}

/// Expected number of arcs of length ≥ `c/n`: exactly
/// `n (1 − c/n)^{n−1}` (≤ `n e^{−c}` for `c ≥ 2`, as used in Lemma 4).
#[must_use]
pub fn expected_long_arcs(n: usize, c: f64) -> f64 {
    let nf = n as f64;
    if c >= nf {
        return 0.0;
    }
    nf * (1.0 - c / nf).powi(n as i32 - 1)
}

/// Lemma 6's bound on the total length of the `a` longest arcs:
/// `2(a/n)·ln(n/a)`.
///
/// # Panics
/// Panics unless `1 ≤ a < n` (the ratio `ln(n/a)` must be positive).
#[must_use]
pub fn lemma6_bound(n: usize, a: usize) -> f64 {
    assert!(
        a >= 1 && a < n,
        "lemma 6 requires 1 <= a < n, got a={a}, n={n}"
    );
    let (af, nf) = (a as f64, n as f64);
    2.0 * (af / nf) * (nf / af).ln()
}

/// The paper's bound on the single longest arc: `4 ln n / n`, violated with
/// probability at most `1/n³`.
#[must_use]
pub fn longest_arc_bound(n: usize) -> f64 {
    4.0 * (n as f64).ln() / n as f64
}

/// Result of a Monte-Carlo check of Lemma 4/5 at one `c` value.
#[derive(Debug, Clone, Copy)]
pub struct LongArcTail {
    /// The `c` parameter (arcs of length ≥ `c/n` are "long").
    pub c: f64,
    /// The count threshold `2n e^{−c}`.
    pub threshold: f64,
    /// Analytic expectation `n (1 − c/n)^{n−1}`.
    pub expected: f64,
    /// Observed mean of `N_c` across trials.
    pub mean_count: f64,
    /// Observed max of `N_c` across trials.
    pub max_count: f64,
    /// Fraction of trials with `N_c ≥ 2n e^{−c}` (what Lemma 4 bounds).
    pub violation_rate: f64,
    /// Lemma 4's analytic bound on that fraction.
    pub lemma4_bound: f64,
    /// Lemma 5's weaker analytic bound.
    pub lemma5_bound: f64,
}

/// Runs `trials` independent placements of `n` points and measures the
/// long-arc count tail at each `c` in `cs` (experiment E5).
#[must_use]
pub fn long_arc_tail_experiment(
    n: usize,
    cs: &[f64],
    trials: usize,
    seeder: &StreamSeeder,
    threads: usize,
) -> Vec<LongArcTail> {
    let per_trial: Vec<Vec<usize>> = parallel_map(trials, threads, |t| {
        let mut rng = seeder.stream(t as u64);
        let part = RingPartition::random(n, &mut rng);
        let arcs = part.arc_lengths();
        cs.iter()
            .map(|&c| count_arcs_at_least(&arcs, c / n as f64))
            .collect()
    });

    cs.iter()
        .enumerate()
        .map(|(ci, &c)| {
            let threshold = lemma4_threshold(n, c);
            let mut stats = RunningStats::new();
            let mut violations = 0usize;
            for counts in &per_trial {
                let count = counts[ci] as f64;
                stats.push(count);
                if count >= threshold {
                    violations += 1;
                }
            }
            LongArcTail {
                c,
                threshold,
                expected: expected_long_arcs(n, c),
                mean_count: stats.mean(),
                max_count: stats.max(),
                violation_rate: violations as f64 / trials as f64,
                lemma4_bound: lemma4_prob_bound(n, c).min(1.0),
                lemma5_bound: lemma5_prob_bound(n, c).min(1.0),
            }
        })
        .collect()
}

/// Result of a Monte-Carlo check of Lemma 6 at one `a` value.
#[derive(Debug, Clone, Copy)]
pub struct LongestArcsSum {
    /// How many of the longest arcs are summed.
    pub a: usize,
    /// Lemma 6's bound `2(a/n)ln(n/a)`.
    pub bound: f64,
    /// Observed mean of the top-`a` sum.
    pub mean_sum: f64,
    /// Observed max of the top-`a` sum.
    pub max_sum: f64,
    /// Fraction of trials exceeding the bound (Lemma 6 says `o(1/n²)`).
    pub violation_rate: f64,
}

/// Runs `trials` placements and measures the total length of the `a`
/// longest arcs for each `a` in `sizes` (experiment E6), plus the single
/// longest arc against `4 ln n / n` reported as `a = 1` when requested.
#[must_use]
pub fn longest_arcs_experiment(
    n: usize,
    sizes: &[usize],
    trials: usize,
    seeder: &StreamSeeder,
    threads: usize,
) -> Vec<LongestArcsSum> {
    let max_size = sizes.iter().copied().max().unwrap_or(0).min(n);
    let per_trial: Vec<Vec<f64>> = parallel_map(trials, threads, |t| {
        let mut rng = seeder.stream(t as u64);
        let part = RingPartition::random(n, &mut rng);
        let mut arcs = part.arc_lengths();
        arcs.sort_unstable_by(|x, y| y.partial_cmp(x).expect("finite"));
        // Prefix sums of the sorted arcs up to the largest requested size,
        // so `sizes` may arrive in any order.
        let mut prefix = Vec::with_capacity(max_size + 1);
        prefix.push(0.0);
        for i in 0..max_size {
            prefix.push(prefix[i] + arcs[i]);
        }
        sizes.iter().map(|&a| prefix[a.min(max_size)]).collect()
    });

    sizes
        .iter()
        .enumerate()
        .map(|(ai, &a)| {
            let bound = if a == 1 {
                longest_arc_bound(n)
            } else {
                lemma6_bound(n, a)
            };
            let mut stats = RunningStats::new();
            let mut violations = 0usize;
            for sums in &per_trial {
                let s = sums[ai];
                stats.push(s);
                if s > bound {
                    violations += 1;
                }
            }
            LongestArcsSum {
                a,
                bound,
                mean_sum: stats.mean(),
                max_sum: stats.max(),
                violation_rate: violations as f64 / trials as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_sum_helpers() {
        let arcs = [0.5, 0.2, 0.2, 0.1];
        assert_eq!(count_arcs_at_least(&arcs, 0.2), 3);
        assert_eq!(count_arcs_at_least(&arcs, 0.6), 0);
        assert!((sum_longest_arcs(&arcs, 2) - 0.7).abs() < 1e-12);
        assert!((sum_longest_arcs(&arcs, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bound_formulas() {
        // threshold: 2 * 100 * e^-2 ≈ 27.07
        assert!((lemma4_threshold(100, 2.0) - 200.0 * (-2.0f64).exp()).abs() < 1e-9);
        assert!(lemma4_prob_bound(1000, 3.0) < 1.0);
        // Lemma 5 is weaker (larger probability bound) than Lemma 4 for the
        // same parameters whenever both exponents are active.
        assert!(lemma5_prob_bound(1000, 3.0) > lemma4_prob_bound(1000, 3.0));
        let b = lemma6_bound(1024, 64);
        assert!((b - 2.0 * (64.0 / 1024.0) * (1024.0f64 / 64.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn expected_long_arcs_matches_closed_form() {
        // For n=2, c=1: 2 * (1 - 1/2)^1 = 1.
        assert!((expected_long_arcs(2, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(expected_long_arcs(10, 10.0), 0.0);
        // Within the e^{-c} envelope for c >= 2.
        let n = 4096;
        for c in [2.0, 4.0, 8.0] {
            assert!(expected_long_arcs(n, c) <= n as f64 * (-c).exp() + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "lemma 6 requires")]
    fn lemma6_domain_checked() {
        let _ = lemma6_bound(10, 10);
    }

    #[test]
    fn long_arc_tail_experiment_sane() {
        let seeder = StreamSeeder::new(11);
        let rows = long_arc_tail_experiment(1024, &[2.0, 4.0, 6.0], 50, &seeder, 2);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // Mean is near the analytic expectation (generous tolerance).
            assert!(
                (row.mean_count - row.expected).abs() < 0.3 * row.expected + 3.0,
                "c={}: mean {} vs expected {}",
                row.c,
                row.mean_count,
                row.expected
            );
            // The Chernoff threshold is ~2x the mean, so violations are rare.
            assert!(
                row.violation_rate <= 0.1,
                "c={}: rate {}",
                row.c,
                row.violation_rate
            );
        }
        // Monotone: larger c means fewer long arcs.
        assert!(rows[0].mean_count > rows[1].mean_count);
        assert!(rows[1].mean_count > rows[2].mean_count);
    }

    #[test]
    fn longest_arcs_experiment_handles_unsorted_sizes() {
        let seeder = StreamSeeder::new(14);
        let n = 512;
        let sorted = longest_arcs_experiment(n, &[4, 16, 64], 10, &seeder, 1);
        let shuffled = longest_arcs_experiment(n, &[64, 4, 16], 10, &seeder, 1);
        assert_eq!(sorted[0].mean_sum, shuffled[1].mean_sum);
        assert_eq!(sorted[1].mean_sum, shuffled[2].mean_sum);
        assert_eq!(sorted[2].mean_sum, shuffled[0].mean_sum);
    }

    #[test]
    fn longest_arcs_experiment_sane() {
        let seeder = StreamSeeder::new(12);
        let n = 1024;
        // (ln 1024)^2 ≈ 48; use a ∈ {49, .., 16 = n/64} — pick valid range.
        let sizes = [1usize, 8, 49];
        let rows = longest_arcs_experiment(n, &sizes, 40, &seeder, 2);
        assert_eq!(rows.len(), 3);
        // Top-a sums increase with a; all ≤ 1.
        assert!(rows[0].mean_sum < rows[1].mean_sum);
        assert!(rows[1].mean_sum < rows[2].mean_sum);
        for row in &rows {
            assert!(row.max_sum <= 1.0 + 1e-9);
            assert!(row.mean_sum > 0.0);
        }
        // Lemma 6 bound should essentially never be violated in range
        // (a=49 is within [ (ln n)^2 ≈ 48, n/64 = 16 ]… n/64 < (ln n)^2 here,
        // so the range is formally empty; the bound still holds comfortably).
        assert!(rows[2].violation_rate <= 0.05);
    }

    #[test]
    fn experiment_is_deterministic() {
        let seeder = StreamSeeder::new(13);
        let a = long_arc_tail_experiment(256, &[3.0], 20, &seeder, 1);
        let b = long_arc_tail_experiment(256, &[3.0], 20, &seeder, 4);
        assert_eq!(a[0].mean_count, b[0].mean_count);
        assert_eq!(a[0].violation_rate, b[0].violation_rate);
    }
}
