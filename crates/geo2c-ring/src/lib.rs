//! The 1-dimensional ring substrate for the geometric two-choices paper.
//!
//! Theorem 1 of *Geometric Generalizations of the Power of Two Choices*
//! (Byers, Considine, Mitzenmacher) places `n` servers uniformly at random
//! on a circle of circumference 1. The `n` induced arcs are the bins: a
//! ball probes a uniform point of the circle and is charged to the server
//! owning the arc containing that point. This crate implements that space:
//!
//! * [`point`] — positions on the unit circle with wrapped arithmetic.
//! * [`partition`] — [`RingPartition`]: the sorted server set with
//!   `O(1)`-expected point-to-owner lookup (bucket-accelerated successor
//!   search, `O(log n)` worst case) under two ownership conventions
//!   (clockwise successor, as in Chord/consistent hashing, and symmetric
//!   nearest neighbour), plus arc-length queries used by the region-aware
//!   tie-breaking strategies of the paper's Table 3.
//! * [`tail`] — executable versions of the paper's Lemmas 4, 5 and 6:
//!   tail bounds on the number of long arcs and on the total length of the
//!   `a` longest arcs. These are the load-bearing probabilistic facts behind
//!   Theorem 1, and `geo2c-bench --bin lemmas` validates them empirically.
//!
//! The same structure doubles as the consistent-hashing ring for the
//! Chord-style DHT application crate (`geo2c-dht`).
//!
//! ```
//! use geo2c_ring::{Ownership, RingPartition, RingPoint};
//! use geo2c_util::rng::Xoshiro256pp;
//!
//! // n random servers induce n arcs that exactly partition the circle
//! // (the paper's bins)...
//! let mut rng = Xoshiro256pp::from_u64(7);
//! let ring = RingPartition::random(64, &mut rng);
//! let total: f64 = ring.arc_lengths().iter().sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! // ...and every probe point is owned by its clockwise successor, as
//! // in consistent hashing (Theorem 1's charging rule).
//! let owner = ring.owner(RingPoint::new(0.5), Ownership::Successor);
//! assert!(ring.arc_length(owner) > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod negdep;
pub mod partition;
pub mod point;
pub mod spacings;
pub mod tail;

pub use partition::{Ownership, RingPartition};
pub use point::RingPoint;
