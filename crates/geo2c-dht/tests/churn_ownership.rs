//! Property tests for churn: ownership stays a partition of the key
//! space, and reconfiguration is minimally disruptive in Chord's sense.
//!
//! "Partition" here is the consistent-hashing invariant: every key has
//! exactly one owner (its clockwise successor's physical node), the
//! per-node ownership fractions sum to the whole ring, and churn can only
//! move a key's owner in the allowed direction — on a *leave*, a key
//! moves only if its old owner departed; on a *join*, a key moves only
//! onto a joiner.

use geo2c_dht::chord::ChordRing;
use geo2c_dht::churn::{apply_churn, apply_join};
use geo2c_dht::id::NodeId;
use geo2c_util::rng::Xoshiro256pp;
use proptest::prelude::*;
use rand::Rng;

/// Keys probing the arcs: fixed grid plus random draws.
fn sample_keys(rng: &mut Xoshiro256pp, count: usize) -> Vec<NodeId> {
    let mut keys: Vec<NodeId> = (0..32)
        .map(|i| NodeId(i * (u64::MAX / 32) + (u64::MAX / 64)))
        .collect();
    keys.extend((0..count).map(|_| NodeId(rng.gen::<u64>())));
    keys
}

fn fractions_cover_the_ring(ring: &ChordRing) {
    let fractions = ring.ownership_fractions();
    assert_eq!(fractions.len(), ring.num_physical());
    let total: f64 = fractions.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "ownership fractions sum to {total}, not 1"
    );
    assert!(fractions.iter().all(|&f| f >= 0.0));
}

proptest! {
    /// Leave: survivors keep exactly the keys they owned; orphaned keys
    /// land on some survivor. Together with single-valued `owner_of`
    /// this is the partition property under departures.
    #[test]
    fn ownership_partitions_the_key_space_under_leave(
        seed in 0u64..1 << 48,
        n in 2usize..40,
        v in 1usize..4,
        fail_mask in 0u64..1 << 20,
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0x0DD);
        let ring = ChordRing::with_virtual_servers(n, v, &mut rng);
        // Derive a failure set from the mask, always sparing node 0.
        let failed: Vec<bool> =
            (0..n).map(|i| i != 0 && (fail_mask >> (i % 20)) & 1 == 1).collect();
        let (new_ring, remap) = apply_churn(&ring, &failed);
        fractions_cover_the_ring(&ring);
        fractions_cover_the_ring(&new_ring);
        let survivors = new_ring.num_physical();
        prop_assert_eq!(
            survivors,
            failed.iter().filter(|&&f| !f).count()
        );
        for key in sample_keys(&mut rng, 64) {
            let before = ring.owner_of(key);
            let after = new_ring.owner_of(key);
            prop_assert!(after < survivors, "owner out of range");
            match remap[before] {
                // Old owner survived: the key must not move.
                Some(new_phys) => prop_assert_eq!(after as u32, new_phys),
                // Old owner failed: any survivor may inherit the arc.
                None => prop_assert!(failed[before]),
            }
        }
    }

    /// Join: a key either keeps its owner (same physical id — old nodes
    /// are numbered first) or moves onto one of the joiners.
    #[test]
    fn ownership_partitions_the_key_space_under_join(
        seed in 0u64..1 << 48,
        n in 1usize..32,
        v in 1usize..4,
        joining in 1usize..6,
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0x101);
        let ring = ChordRing::with_virtual_servers(n, v, &mut rng);
        let joined = apply_join(&ring, joining, v, &mut rng);
        fractions_cover_the_ring(&joined);
        prop_assert_eq!(joined.num_physical(), n + joining);
        for key in sample_keys(&mut rng, 64) {
            let before = ring.owner_of(key);
            let after = joined.owner_of(key);
            prop_assert!(
                after == before || after >= n,
                "key moved between old nodes: {} -> {}", before, after
            );
        }
    }

    /// Leave-then-join round trips keep the partition well formed at
    /// every stage (the composition the serving scenario exercises).
    #[test]
    fn repeated_churn_preserves_the_partition(
        seed in 0u64..1 << 48,
        n in 2usize..24,
        v in 1usize..3,
        rounds in 1usize..4,
    ) {
        let mut rng = Xoshiro256pp::from_u64(seed ^ 0x5EA);
        let mut ring = ChordRing::with_virtual_servers(n, v, &mut rng);
        for _ in 0..rounds {
            let cur = ring.num_physical();
            // Fail every third node except node 0, then add two.
            let failed: Vec<bool> = (0..cur).map(|i| i != 0 && i % 3 == 0).collect();
            let (after_leave, _) = apply_churn(&ring, &failed);
            fractions_cover_the_ring(&after_leave);
            ring = apply_join(&after_leave, 2, v, &mut rng);
            fractions_cover_the_ring(&ring);
            let total_virtual: usize = ring.num_virtual();
            prop_assert_eq!(
                total_virtual,
                (0..ring.num_physical())
                    .map(|p| (0..ring.num_virtual())
                        .filter(|&vv| ring.physical_of(vv) == p)
                        .count())
                    .sum::<usize>(),
                "every virtual node belongs to exactly one physical node"
            );
        }
    }
}
