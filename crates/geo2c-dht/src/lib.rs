//! A Chord-style distributed hash table: the paper's motivating
//! application (§1.1).
//!
//! Consistent hashing places both servers and keys on an identifier ring;
//! a key belongs to its clockwise successor server. Because the arcs
//! between random server points are non-uniform (longest `Θ(log n / n)`),
//! plain consistent hashing concentrates `Θ(log n)` times the average
//! load on unlucky servers. Chord's remedy is `Θ(log n)` *virtual
//! servers* per physical node; the paper (and its companion IPTPS paper
//! \[3]) proposes the cheaper two-choices alternative: each item probes
//! `d ≥ 2` ring locations and is stored at the least-loaded owner.
//!
//! This crate implements the full substrate needed to evaluate that
//! trade-off (experiment E11):
//!
//! * [`id`] — the 64-bit identifier ring and key hashing.
//! * [`chord`] — [`chord::ChordRing`]: sorted node ring, finger tables,
//!   `O(log n)`-hop greedy lookups with hop counting, and virtual-server
//!   construction.
//! * [`placement`] — item placement policies (plain consistent hashing,
//!   virtual servers, `d`-choice with redirection pointers) and their
//!   load/lookup metrics.
//!
//! The ring geometry is the same mathematics as `geo2c-ring` (a `u64` ring
//! instead of `[0,1)`); the tests cross-check the two.
//!
//! ```
//! use geo2c_dht::chord::ChordRing;
//! use geo2c_dht::placement::{evaluate, PlacementPolicy};
//! use geo2c_util::rng::Xoshiro256pp;
//!
//! // 64 nodes, 1024 items: two-choice placement keeps the maximum
//! // load near the m/n = 16 average without any virtual servers.
//! let mut rng = Xoshiro256pp::from_u64(3);
//! let ring = ChordRing::new(64, &mut rng);
//! let report = evaluate(&ring, PlacementPolicy::DChoice { d: 2 }, 1024, 100, &mut rng);
//! assert_eq!(report.load.histogram.total(), 64); // every server counted
//! assert!((report.load.mean - 16.0).abs() < 1e-9);
//! assert!(report.load.max >= 16);
//! assert!(report.lookup.unwrap().mean_hops >= 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chord;
pub mod churn;
pub mod id;
pub mod placement;
pub mod replication;

pub use chord::ChordRing;
pub use churn::{apply_churn, apply_join, churn_experiment, ChurnReport};
pub use id::{hash_with_salt, key_id, NodeId};
pub use placement::{place_key, LoadMetrics, LookupMetrics, PlacementPolicy, PlacementReport};
