//! A Chord-style distributed hash table: the paper's motivating
//! application (§1.1).
//!
//! Consistent hashing places both servers and keys on an identifier ring;
//! a key belongs to its clockwise successor server. Because the arcs
//! between random server points are non-uniform (longest `Θ(log n / n)`),
//! plain consistent hashing concentrates `Θ(log n)` times the average
//! load on unlucky servers. Chord's remedy is `Θ(log n)` *virtual
//! servers* per physical node; the paper (and its companion IPTPS paper
//! \[3]) proposes the cheaper two-choices alternative: each item probes
//! `d ≥ 2` ring locations and is stored at the least-loaded owner.
//!
//! This crate implements the full substrate needed to evaluate that
//! trade-off (experiment E11):
//!
//! * [`id`] — the 64-bit identifier ring and key hashing.
//! * [`chord`] — [`chord::ChordRing`]: sorted node ring, finger tables,
//!   `O(log n)`-hop greedy lookups with hop counting, and virtual-server
//!   construction.
//! * [`placement`] — item placement policies (plain consistent hashing,
//!   virtual servers, `d`-choice with redirection pointers) and their
//!   load/lookup metrics.
//!
//! The ring geometry is the same mathematics as `geo2c-ring` (a `u64` ring
//! instead of `[0,1)`); the tests cross-check the two.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chord;
pub mod churn;
pub mod id;
pub mod placement;
pub mod replication;

pub use chord::ChordRing;
pub use id::{hash_with_salt, key_id, NodeId};
pub use placement::{LoadMetrics, LookupMetrics, PlacementPolicy, PlacementReport};
