//! Item placement policies and their load / lookup-cost trade-off.
//!
//! Three ways to place `m` items on a Chord ring of `n` physical servers
//! (experiment E11 compares all three):
//!
//! 1. **Plain consistent hashing** — item `k` lives at
//!    `successor(hash(k))`. Free lookups, but the max load is
//!    `Θ(log n)·m/n` because arc lengths are non-uniform.
//! 2. **Virtual servers** — same placement on a ring where each physical
//!    server runs `v = Θ(log n)` virtual nodes. Load tightens to
//!    `Θ(m/n · (1 + O(1/√log n)))`-ish, but every node needs `v` finger
//!    tables (Chord's own mitigation, criticized by the paper as costly).
//! 3. **`d`-choice (the paper / \[3])** — item `k` hashes to `d` locations
//!    `hash(k, j)`; it is *stored* at the location whose physical owner is
//!    least loaded, and the owner of the *primary* location (`j = 0`)
//!    keeps a redirection pointer. Lookups route to the primary owner and
//!    pay one extra hop when redirected. Max load drops to
//!    `m/n + O(log log n)` by Theorem 1.
//!
//! The placement is sequential (each item sees current loads), exactly the
//! paper's insertion model.

use crate::chord::ChordRing;
use crate::id::{hash_with_salt, NodeId};
use geo2c_util::hist::Counter;
use geo2c_util::stats::RunningStats;
use rand::Rng;

/// How items are placed on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Plain consistent hashing (`d = 1`).
    Consistent,
    /// `d`-choice placement with redirection pointers at the primary
    /// location.
    DChoice {
        /// Number of hash locations per item (`d ≥ 1`; `d = 1` reduces to
        /// [`PlacementPolicy::Consistent`]).
        d: usize,
    },
}

impl PlacementPolicy {
    /// Short label for tables.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PlacementPolicy::Consistent => "consistent".to_string(),
            PlacementPolicy::DChoice { d } => format!("{d}-choice"),
        }
    }

    /// Number of hash locations probed per item (`≥ 1`).
    #[must_use]
    pub fn d(&self) -> usize {
        match self {
            PlacementPolicy::Consistent => 1,
            PlacementPolicy::DChoice { d } => (*d).max(1),
        }
    }
}

/// Routes one item: probes `hash(key, j)` for `j ∈ 0..d` and picks the
/// least-loaded physical owner, first probe winning ties (so the primary
/// location wins when loads are level and a `d = 1` probe is exactly
/// consistent hashing). Returns `(owner, winning probe index)`.
///
/// This is the one placement loop behind [`place_items` → `evaluate`],
/// `churn::churn_experiment`'s initial and re-placement passes, and the
/// `run_tables` churn spec — extracted so the DHT application and the
/// serving experiments share a single routing definition.
#[must_use]
pub fn place_key(ring: &ChordRing, d: usize, key: u64, loads: &[u32]) -> (usize, usize) {
    assert!(d >= 1, "at least one probe per item");
    let mut best_owner = usize::MAX;
    let mut best_load = u32::MAX;
    let mut best_j = 0usize;
    for j in 0..d {
        let owner = ring.owner_of(hash_with_salt(key, j as u64));
        if loads[owner] < best_load {
            best_load = loads[owner];
            best_owner = owner;
            best_j = j;
        }
    }
    (best_owner, best_j)
}

/// Load-balance statistics over *physical* servers.
#[derive(Debug, Clone)]
pub struct LoadMetrics {
    /// Largest number of items on any physical server.
    pub max: u32,
    /// Mean items per server (= m/n).
    pub mean: f64,
    /// Standard deviation of the per-server load.
    pub stddev: f64,
    /// Full load distribution (value = load, count = #servers).
    pub histogram: Counter,
}

impl LoadMetrics {
    fn from_loads(loads: &[u32]) -> Self {
        let mut stats = RunningStats::new();
        let mut histogram = Counter::new();
        for &l in loads {
            stats.push(f64::from(l));
            histogram.add(u64::from(l));
        }
        Self {
            max: loads.iter().copied().max().unwrap_or(0),
            mean: stats.mean(),
            stddev: stats.stddev(),
            histogram,
        }
    }
}

/// Lookup-cost statistics over sampled queries.
#[derive(Debug, Clone)]
pub struct LookupMetrics {
    /// Mean hops per lookup (including any redirection hop).
    pub mean_hops: f64,
    /// Worst sampled lookup.
    pub max_hops: u32,
    /// Fraction of lookups that paid a redirection hop.
    pub redirect_rate: f64,
}

/// The outcome of placing `m` items under a policy and sampling lookups.
#[derive(Debug, Clone)]
pub struct PlacementReport {
    /// Items per physical server.
    pub loads: Vec<u32>,
    /// Aggregated load statistics.
    pub load: LoadMetrics,
    /// Aggregated lookup statistics (if lookups were sampled).
    pub lookup: Option<LookupMetrics>,
    /// How many items ended up away from their primary location.
    pub redirected_items: u64,
}

/// Places items `0..m` sequentially under `policy` and returns per-item
/// storage decisions: `(stored_physical, was_redirected)`.
fn place_items(ring: &ChordRing, policy: PlacementPolicy, m: u64) -> (Vec<u32>, Vec<bool>) {
    let n = ring.num_physical();
    let mut loads = vec![0u32; n];
    let mut redirected = vec![false; m as usize];
    let d = policy.d();
    for k in 0..m {
        let (owner, j) = place_key(ring, d, k, &loads);
        loads[owner] += 1;
        redirected[k as usize] = j != 0;
    }
    (loads, redirected)
}

/// Places `m` items and samples `lookup_samples` random lookups (random
/// item, random start node), returning the full report.
///
/// Lookup cost model: route to the owner of the item's *primary* location
/// (standard Chord lookup), plus one redirection hop if the item was
/// stored at an alternative location (\[3]'s pointer scheme).
#[must_use]
pub fn evaluate<R: Rng + ?Sized>(
    ring: &ChordRing,
    policy: PlacementPolicy,
    m: u64,
    lookup_samples: usize,
    rng: &mut R,
) -> PlacementReport {
    let (loads, redirected) = place_items(ring, policy, m);
    let redirected_items = redirected.iter().filter(|&&r| r).count() as u64;

    let lookup = if lookup_samples > 0 && m > 0 {
        let mut stats = RunningStats::new();
        let mut max_hops = 0u32;
        let mut redirects = 0u64;
        for _ in 0..lookup_samples {
            let item = rng.gen_range(0..m);
            let start = rng.gen_range(0..ring.num_virtual());
            let primary: NodeId = hash_with_salt(item, 0);
            let (_owner, mut hops) = ring.lookup(start, primary);
            if redirected[item as usize] {
                hops += 1;
                redirects += 1;
            }
            stats.push(f64::from(hops));
            max_hops = max_hops.max(hops);
        }
        Some(LookupMetrics {
            mean_hops: stats.mean(),
            max_hops,
            redirect_rate: redirects as f64 / lookup_samples as f64,
        })
    } else {
        None
    };

    PlacementReport {
        load: LoadMetrics::from_loads(&loads),
        loads,
        lookup,
        redirected_items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;

    #[test]
    fn conservation_of_items() {
        let mut rng = Xoshiro256pp::from_u64(1);
        let ring = ChordRing::new(32, &mut rng);
        for policy in [
            PlacementPolicy::Consistent,
            PlacementPolicy::DChoice { d: 2 },
            PlacementPolicy::DChoice { d: 4 },
        ] {
            let report = evaluate(&ring, policy, 500, 0, &mut rng);
            let total: u64 = report.loads.iter().map(|&l| u64::from(l)).sum();
            assert_eq!(total, 500, "{}", policy.label());
            assert!((report.load.mean - 500.0 / 32.0).abs() < 1e-9);
        }
    }

    #[test]
    fn consistent_placement_never_redirects() {
        let mut rng = Xoshiro256pp::from_u64(2);
        let ring = ChordRing::new(16, &mut rng);
        let report = evaluate(&ring, PlacementPolicy::Consistent, 200, 100, &mut rng);
        assert_eq!(report.redirected_items, 0);
        let lookup = report.lookup.unwrap();
        assert_eq!(lookup.redirect_rate, 0.0);
    }

    #[test]
    fn d1_choice_equals_consistent() {
        let mut rng = Xoshiro256pp::from_u64(3);
        let ring = ChordRing::new(16, &mut rng);
        let a = evaluate(&ring, PlacementPolicy::Consistent, 300, 0, &mut rng);
        let b = evaluate(&ring, PlacementPolicy::DChoice { d: 1 }, 300, 0, &mut rng);
        assert_eq!(a.loads, b.loads);
    }

    #[test]
    fn two_choice_tightens_load() {
        // The paper's DHT claim: max load with d=2 beats plain consistent
        // hashing (aggregated over a few rings to damp variance).
        let mut rng = Xoshiro256pp::from_u64(4);
        let n = 128;
        let m = 1024;
        let mut plain_total = 0u64;
        let mut choice_total = 0u64;
        for _ in 0..5 {
            let ring = ChordRing::new(n, &mut rng);
            plain_total += u64::from(
                evaluate(&ring, PlacementPolicy::Consistent, m, 0, &mut rng)
                    .load
                    .max,
            );
            choice_total += u64::from(
                evaluate(&ring, PlacementPolicy::DChoice { d: 2 }, m, 0, &mut rng)
                    .load
                    .max,
            );
        }
        assert!(
            choice_total < plain_total,
            "2-choice {choice_total} !< consistent {plain_total}"
        );
    }

    #[test]
    fn two_choice_beats_virtual_servers_on_max_load() {
        // At equal ring sizes, d=2 on a plain ring should at least match
        // the virtual-server mitigation (the paper's headline for §1.1).
        let mut rng = Xoshiro256pp::from_u64(5);
        let n = 128;
        let m = 2048;
        let v = 7; // ≈ log2 n
        let mut virt_total = 0u64;
        let mut choice_total = 0u64;
        for _ in 0..5 {
            let plain = ChordRing::new(n, &mut rng);
            let virt = ChordRing::with_virtual_servers(n, v, &mut rng);
            virt_total += u64::from(
                evaluate(&virt, PlacementPolicy::Consistent, m, 0, &mut rng)
                    .load
                    .max,
            );
            choice_total += u64::from(
                evaluate(&plain, PlacementPolicy::DChoice { d: 2 }, m, 0, &mut rng)
                    .load
                    .max,
            );
        }
        assert!(
            choice_total <= virt_total,
            "2-choice {choice_total} !<= virtual servers {virt_total}"
        );
    }

    #[test]
    fn redirect_rate_reflects_placement() {
        // With d=2 roughly half the items go to the alternate location
        // (less at the start when loads are all zero and ties go primary
        // …we break ties by first-best, i.e. primary wins ties).
        let mut rng = Xoshiro256pp::from_u64(6);
        let ring = ChordRing::new(64, &mut rng);
        let report = evaluate(
            &ring,
            PlacementPolicy::DChoice { d: 2 },
            2000,
            500,
            &mut rng,
        );
        let frac = report.redirected_items as f64 / 2000.0;
        assert!(frac > 0.1 && frac < 0.6, "redirect fraction {frac}");
        let lookup = report.lookup.unwrap();
        assert!(lookup.redirect_rate > 0.0);
        assert!(lookup.mean_hops >= 1.0);
    }

    #[test]
    fn lookup_cost_overhead_is_at_most_one_hop() {
        // Mean lookup cost with redirection ≤ consistent mean + 1.
        let mut rng = Xoshiro256pp::from_u64(7);
        let ring = ChordRing::new(256, &mut rng);
        let plain = evaluate(&ring, PlacementPolicy::Consistent, 1000, 1000, &mut rng)
            .lookup
            .unwrap();
        let choice = evaluate(
            &ring,
            PlacementPolicy::DChoice { d: 2 },
            1000,
            1000,
            &mut rng,
        )
        .lookup
        .unwrap();
        assert!(
            choice.mean_hops <= plain.mean_hops + 1.0 + 0.5,
            "choice {} vs plain {}",
            choice.mean_hops,
            plain.mean_hops
        );
    }

    #[test]
    fn zero_items() {
        let mut rng = Xoshiro256pp::from_u64(8);
        let ring = ChordRing::new(4, &mut rng);
        let report = evaluate(&ring, PlacementPolicy::DChoice { d: 2 }, 0, 10, &mut rng);
        assert_eq!(report.load.max, 0);
        assert!(report.lookup.is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(PlacementPolicy::Consistent.label(), "consistent");
        assert_eq!(PlacementPolicy::DChoice { d: 3 }.label(), "3-choice");
    }
}
