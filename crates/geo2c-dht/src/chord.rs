//! The Chord ring: sorted nodes, finger tables, greedy lookups.
//!
//! A [`ChordRing`] holds `V` *virtual* nodes (ring positions) belonging to
//! `P ≤ V` *physical* servers. Plain Chord has `V = P`; the virtual-server
//! mitigation gives every physical server `v = Θ(log P)` positions.
//!
//! Finger tables follow the Chord paper: virtual node at id `x` keeps, for
//! every `k < 64`, a pointer to `successor(x + 2^k)`. A lookup for key `y`
//! greedily forwards to the closest finger preceding `y` until the key
//! falls in the gap before the current node's successor; the hop count is
//! logarithmic in `V` w.h.p., which the tests check.

use crate::id::NodeId;
use rand::Rng;

/// Number of finger-table levels (we use the full 64-bit ring).
pub const ID_BITS: usize = 64;

/// A Chord identifier ring with finger tables and physical-node ownership.
#[derive(Debug, Clone)]
pub struct ChordRing {
    /// Virtual node ids, sorted ascending.
    ids: Vec<NodeId>,
    /// `physical[i]` is the physical server owning virtual node `i`.
    physical: Vec<u32>,
    /// Number of physical servers.
    num_physical: usize,
    /// `fingers[i][k]` = index of `successor(ids[i] + 2^k)`.
    fingers: Vec<Vec<u32>>,
}

impl ChordRing {
    /// Builds a ring of `n` physical servers with one virtual node each
    /// (plain Chord), ids drawn uniformly at random.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Self::with_virtual_servers(n, 1, rng)
    }

    /// Builds a ring of `n` physical servers, each simulating `v` virtual
    /// nodes (Chord's load-balancing mitigation; `v = ⌈log₂ n⌉` is the
    /// paper's reference configuration).
    ///
    /// # Panics
    /// Panics if `n == 0` or `v == 0`.
    #[must_use]
    pub fn with_virtual_servers<R: Rng + ?Sized>(n: usize, v: usize, rng: &mut R) -> Self {
        assert!(n > 0, "need at least one server");
        assert!(v > 0, "need at least one virtual node per server");
        let mut pairs: Vec<(NodeId, u32)> = Vec::with_capacity(n * v);
        for server in 0..n {
            for _ in 0..v {
                pairs.push((NodeId(rng.gen::<u64>()), server as u32));
            }
        }
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let ids: Vec<NodeId> = pairs.iter().map(|&(id, _)| id).collect();
        let physical: Vec<u32> = pairs.iter().map(|&(_, p)| p).collect();
        let mut ring = Self {
            ids,
            physical,
            num_physical: n,
            fingers: Vec::new(),
        };
        ring.build_fingers();
        ring
    }

    /// Builds a ring from explicit `(virtual id, physical owner)` pairs —
    /// the reconfiguration path used by churn handling. Physical ids must
    /// be dense in `0..num_physical`.
    ///
    /// # Panics
    /// Panics if `pairs` is empty, `num_physical == 0`, or a physical id
    /// is out of range.
    #[must_use]
    pub fn from_pairs(mut pairs: Vec<(NodeId, u32)>, num_physical: usize) -> Self {
        assert!(!pairs.is_empty(), "need at least one virtual node");
        assert!(num_physical > 0, "need at least one server");
        assert!(
            pairs.iter().all(|&(_, p)| (p as usize) < num_physical),
            "physical id out of range"
        );
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let ids: Vec<NodeId> = pairs.iter().map(|&(id, _)| id).collect();
        let physical: Vec<u32> = pairs.iter().map(|&(_, p)| p).collect();
        let mut ring = Self {
            ids,
            physical,
            num_physical,
            fingers: Vec::new(),
        };
        ring.build_fingers();
        ring
    }

    fn build_fingers(&mut self) {
        let v = self.ids.len();
        self.fingers = (0..v)
            .map(|i| {
                (0..ID_BITS)
                    .map(|k| self.successor_index(self.ids[i].offset(1u64 << k)) as u32)
                    .collect()
            })
            .collect();
    }

    /// Number of virtual nodes on the ring.
    #[must_use]
    pub fn num_virtual(&self) -> usize {
        self.ids.len()
    }

    /// Number of physical servers.
    #[must_use]
    pub fn num_physical(&self) -> usize {
        self.num_physical
    }

    /// The id of virtual node `i`.
    #[must_use]
    pub fn id(&self, i: usize) -> NodeId {
        self.ids[i]
    }

    /// The physical server owning virtual node `i`.
    #[must_use]
    pub fn physical_of(&self, i: usize) -> usize {
        self.physical[i] as usize
    }

    /// Index of the virtual node owning `key`: the first node at id ≥ key
    /// (clockwise successor), wrapping to node 0.
    #[must_use]
    pub fn successor_index(&self, key: NodeId) -> usize {
        let idx = self.ids.partition_point(|&id| id < key);
        if idx == self.ids.len() {
            0
        } else {
            idx
        }
    }

    /// The physical server owning `key`.
    #[must_use]
    pub fn owner_of(&self, key: NodeId) -> usize {
        self.physical_of(self.successor_index(key))
    }

    /// Greedy Chord lookup from virtual node `start` for `key`:
    /// returns `(owning virtual node, hops)`.
    ///
    /// Each hop forwards to the closest finger strictly preceding the key,
    /// per the Chord protocol; the hop count is the number of forwards
    /// (0 if the key already lies between `start` and its successor).
    #[must_use]
    pub fn lookup(&self, start: usize, key: NodeId) -> (usize, u32) {
        let owner = self.successor_index(key);
        let mut current = start;
        let mut hops = 0u32;
        // A lookup terminates once the key falls in (current, successor]:
        // the successor is the owner.
        loop {
            let succ = self.fingers[current][0] as usize;
            if key.in_interval(self.ids[current], self.ids[succ]) {
                // One final hop to the owner unless we are already there.
                if succ != current {
                    hops += 1;
                }
                debug_assert_eq!(succ, owner);
                return (succ, hops);
            }
            let next = self.closest_preceding(current, key);
            if next == current {
                // Degenerate (single node): the owner is ourselves.
                return (current, hops);
            }
            current = next;
            hops += 1;
            debug_assert!(
                hops <= 2 * ID_BITS as u32 + self.ids.len() as u32,
                "lookup failed to converge"
            );
        }
    }

    /// The closest finger of `current` that strictly precedes `key`
    /// (Chord's `closest_preceding_node`).
    fn closest_preceding(&self, current: usize, key: NodeId) -> usize {
        let cur_id = self.ids[current];
        for k in (0..ID_BITS).rev() {
            let f = self.fingers[current][k] as usize;
            let fid = self.ids[f];
            // f ∈ (current, key) strictly (open at key: the owner is
            // reached via the successor check in `lookup`).
            if f != current
                && cur_id.clockwise_to(fid) > 0
                && cur_id.clockwise_to(fid) < cur_id.clockwise_to(key)
            {
                return f;
            }
        }
        current
    }

    /// Fraction of the ring owned by each physical server (sums to 1):
    /// the DHT analogue of `geo2c-ring`'s arc lengths.
    #[must_use]
    pub fn ownership_fractions(&self) -> Vec<f64> {
        let v = self.ids.len();
        let mut fractions = vec![0.0f64; self.num_physical];
        let scale = 2.0f64.powi(64);
        for i in 0..v {
            let pred = (i + v - 1) % v;
            let gap = if v == 1 {
                scale
            } else {
                self.ids[pred].clockwise_to(self.ids[i]) as f64
            };
            fractions[self.physical[i] as usize] += gap / scale;
        }
        fractions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;

    #[test]
    fn successor_matches_linear_scan() {
        let mut rng = Xoshiro256pp::from_u64(1);
        let ring = ChordRing::new(50, &mut rng);
        for _ in 0..1000 {
            let key = NodeId(rng.gen::<u64>());
            let fast = ring.successor_index(key);
            let slow = (0..ring.num_virtual())
                .min_by_key(|&i| key.clockwise_to(ring.id(i)))
                .unwrap();
            assert_eq!(ring.id(fast), ring.id(slow));
        }
    }

    #[test]
    fn lookup_finds_owner_from_any_start() {
        let mut rng = Xoshiro256pp::from_u64(2);
        let ring = ChordRing::new(128, &mut rng);
        for _ in 0..500 {
            let key = NodeId(rng.gen::<u64>());
            let owner = ring.successor_index(key);
            let start = rng.gen_range(0..ring.num_virtual());
            let (found, _hops) = ring.lookup(start, key);
            assert_eq!(found, owner);
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let mut rng = Xoshiro256pp::from_u64(3);
        let n = 1024;
        let ring = ChordRing::new(n, &mut rng);
        let mut total_hops = 0u64;
        let queries = 2000;
        let mut max_hops = 0u32;
        for _ in 0..queries {
            let key = NodeId(rng.gen::<u64>());
            let start = rng.gen_range(0..n);
            let (_, hops) = ring.lookup(start, key);
            total_hops += u64::from(hops);
            max_hops = max_hops.max(hops);
        }
        let mean = total_hops as f64 / f64::from(queries);
        let log2n = (n as f64).log2();
        // Chord: mean ≈ ½ log₂ n, max ≤ ~2 log₂ n w.h.p.
        assert!(mean <= log2n, "mean hops {mean} vs log2 n {log2n}");
        assert!(mean >= 0.25 * log2n, "mean hops {mean} suspiciously low");
        assert!(f64::from(max_hops) <= 3.0 * log2n, "max hops {max_hops}");
    }

    #[test]
    fn lookup_from_owner_is_cheap() {
        let mut rng = Xoshiro256pp::from_u64(4);
        let ring = ChordRing::new(64, &mut rng);
        for _ in 0..100 {
            let key = NodeId(rng.gen::<u64>());
            let owner = ring.successor_index(key);
            // Starting at the owner's predecessor: exactly one hop.
            let pred = (owner + ring.num_virtual() - 1) % ring.num_virtual();
            let (found, hops) = ring.lookup(pred, key);
            assert_eq!(found, owner);
            assert!(hops <= 1, "hops from predecessor: {hops}");
        }
    }

    #[test]
    fn single_node_ring() {
        let mut rng = Xoshiro256pp::from_u64(5);
        let ring = ChordRing::new(1, &mut rng);
        let (owner, hops) = ring.lookup(0, NodeId(12345));
        assert_eq!(owner, 0);
        assert_eq!(hops, 0);
        assert_eq!(ring.owner_of(NodeId(777)), 0);
        let fr = ring.ownership_fractions();
        assert!((fr[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn virtual_servers_multiply_ring_presence() {
        let mut rng = Xoshiro256pp::from_u64(6);
        let ring = ChordRing::with_virtual_servers(16, 8, &mut rng);
        assert_eq!(ring.num_virtual(), 128);
        assert_eq!(ring.num_physical(), 16);
        // Every physical server owns exactly 8 virtual nodes.
        let mut counts = [0u32; 16];
        for i in 0..128 {
            counts[ring.physical_of(i)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 8));
    }

    #[test]
    fn ownership_fractions_sum_to_one() {
        let mut rng = Xoshiro256pp::from_u64(7);
        for (n, v) in [(1usize, 1usize), (10, 1), (10, 4), (64, 6)] {
            let ring = ChordRing::with_virtual_servers(n, v, &mut rng);
            let total: f64 = ring.ownership_fractions().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} v={v}: {total}");
        }
    }

    #[test]
    fn virtual_servers_tighten_ownership() {
        // With v = log2 n virtual servers, the max ownership fraction
        // should drop versus plain consistent hashing.
        let mut rng = Xoshiro256pp::from_u64(8);
        let n = 256;
        let mut plain_max = 0.0f64;
        let mut virt_max = 0.0f64;
        for _ in 0..5 {
            let plain = ChordRing::new(n, &mut rng);
            let virt = ChordRing::with_virtual_servers(n, 8, &mut rng);
            plain_max += plain
                .ownership_fractions()
                .iter()
                .fold(0.0f64, |a, &b| a.max(b));
            virt_max += virt
                .ownership_fractions()
                .iter()
                .fold(0.0f64, |a, &b| a.max(b));
        }
        assert!(
            virt_max < plain_max,
            "virtual {virt_max} !< plain {plain_max}"
        );
    }

    #[test]
    fn finger_zero_is_immediate_successor() {
        let mut rng = Xoshiro256pp::from_u64(9);
        let ring = ChordRing::new(32, &mut rng);
        for i in 0..32 {
            let expected = ring.successor_index(ring.id(i).offset(1));
            assert_eq!(ring.fingers[i][0] as usize, expected);
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_ring_rejected() {
        let mut rng = Xoshiro256pp::from_u64(10);
        let _ = ChordRing::new(0, &mut rng);
    }
}
