//! Churn: node departures and arrivals, and what they do to placement.
//!
//! The paper's conclusion flags "how to apply [two choices] while
//! maintaining reliability and other useful features of these systems" as
//! open practical work. This module provides the substrate to study it:
//!
//! * Ring reconfiguration is modelled functionally: [`apply_churn`] builds the
//!   ring that remains after a set of physical nodes departs (and
//!   optionally new ones join), re-deriving finger tables.
//! * [`churn_experiment`] places items, applies churn, re-places, and
//!   measures the two costs that matter: how many items *moved* (the
//!   consistent-hashing selling point: plain hashing moves only departed
//!   nodes' items) and the post-churn load balance (the two-choices
//!   selling point).
//!
//! The interesting trade-off this exposes: after a failure, plain
//! consistent hashing dumps the departed node's whole load onto its
//! successor, making the *worst* bin worse; `d`-choice re-placement of
//! orphaned items re-balances, at the same O(moved · lookup) cost.

use crate::chord::ChordRing;
use crate::id::hash_with_salt;
use crate::placement::PlacementPolicy;
use geo2c_util::rng::Xoshiro256pp;
use rand::seq::SliceRandom;

/// Outcome of one churn experiment.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Max physical load before churn.
    pub max_before: u32,
    /// Max physical load after churn and re-placement of orphans.
    pub max_after: u32,
    /// Number of items whose physical owner changed.
    pub moved_items: u64,
    /// Number of surviving physical nodes.
    pub survivors: usize,
}

/// Builds the ring remaining after removing `failed` physical nodes from
/// `ring` (their virtual nodes disappear; finger tables are rebuilt) and
/// returns it together with the mapping `old physical id → new physical
/// id` for the survivors.
///
/// # Panics
/// Panics if all nodes fail.
#[must_use]
pub fn apply_churn(ring: &ChordRing, failed: &[bool]) -> (ChordRing, Vec<Option<u32>>) {
    assert_eq!(failed.len(), ring.num_physical());
    let mut remap: Vec<Option<u32>> = vec![None; ring.num_physical()];
    let mut next = 0u32;
    for (old, &is_failed) in failed.iter().enumerate() {
        if !is_failed {
            remap[old] = Some(next);
            next += 1;
        }
    }
    assert!(next > 0, "at least one node must survive");
    let pairs: Vec<(crate::id::NodeId, u32)> = (0..ring.num_virtual())
        .filter_map(|v| remap[ring.physical_of(v)].map(|new_phys| (ring.id(v), new_phys)))
        .collect();
    (ChordRing::from_pairs(pairs, next as usize), remap)
}

/// Runs one churn experiment: place `m` items under `policy`, fail
/// `fail_fraction` of the physical nodes uniformly at random, re-place
/// every *orphaned* item under the same policy on the surviving ring
/// (surviving items stay put unless their owner's id-space assignment
/// changed), and measure movement + balance.
#[must_use]
pub fn churn_experiment(
    n: usize,
    virtual_servers: usize,
    policy: PlacementPolicy,
    m: u64,
    fail_fraction: f64,
    rng: &mut Xoshiro256pp,
) -> ChurnReport {
    let ring = ChordRing::with_virtual_servers(n, virtual_servers, rng);
    let d = match policy {
        PlacementPolicy::Consistent => 1,
        PlacementPolicy::DChoice { d } => d.max(1),
    };

    // Initial sequential placement; remember each item's physical home.
    let mut loads = vec![0u32; n];
    let mut home: Vec<u32> = Vec::with_capacity(m as usize);
    for k in 0..m {
        let mut best = usize::MAX;
        let mut best_load = u32::MAX;
        for j in 0..d {
            let owner = ring.owner_of(hash_with_salt(k, j as u64));
            if loads[owner] < best_load {
                best_load = loads[owner];
                best = owner;
            }
        }
        loads[best] += 1;
        home.push(best as u32);
    }
    let max_before = loads.iter().copied().max().unwrap_or(0);

    // Fail a uniform random subset of physical nodes.
    let failures = ((n as f64) * fail_fraction).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut failed = vec![false; n];
    for &node in order.iter().take(failures.min(n - 1)) {
        failed[node] = true;
    }

    let (new_ring, remap) = apply_churn(&ring, &failed);
    let survivors = new_ring.num_physical();

    // Re-place: items on surviving nodes keep their home (the DHT only
    // re-assigns data whose owner departed); orphaned items re-run the
    // placement against current loads on the new ring.
    let mut new_loads = vec![0u32; survivors];
    for k in 0..m {
        if let Some(new_phys) = remap[home[k as usize] as usize] {
            new_loads[new_phys as usize] += 1;
        }
    }
    let mut moved = 0u64;
    for k in 0..m {
        if remap[home[k as usize] as usize].is_some() {
            continue;
        }
        moved += 1;
        let mut best = usize::MAX;
        let mut best_load = u32::MAX;
        for j in 0..d {
            let owner = new_ring.owner_of(hash_with_salt(k, j as u64));
            if new_loads[owner] < best_load {
                best_load = new_loads[owner];
                best = owner;
            }
        }
        new_loads[best] += 1;
    }
    let max_after = new_loads.iter().copied().max().unwrap_or(0);

    ChurnReport {
        max_before,
        max_after,
        moved_items: moved,
        survivors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;
    use rand::Rng;

    #[test]
    fn apply_churn_removes_exactly_failed_nodes() {
        let mut rng = Xoshiro256pp::from_u64(1);
        let ring = ChordRing::with_virtual_servers(10, 3, &mut rng);
        let mut failed = vec![false; 10];
        failed[2] = true;
        failed[7] = true;
        let (new_ring, remap) = apply_churn(&ring, &failed);
        assert_eq!(new_ring.num_physical(), 8);
        assert_eq!(new_ring.num_virtual(), 24);
        assert!(remap[2].is_none() && remap[7].is_none());
        let mut seen: Vec<u32> = remap.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn surviving_ring_lookups_work() {
        let mut rng = Xoshiro256pp::from_u64(2);
        let ring = ChordRing::new(64, &mut rng);
        let mut failed = vec![false; 64];
        for i in (0..64).step_by(3) {
            failed[i] = true;
        }
        let (new_ring, _) = apply_churn(&ring, &failed);
        for _ in 0..200 {
            let key = crate::id::NodeId(rng.gen::<u64>());
            let owner = new_ring.successor_index(key);
            let (found, _) = new_ring.lookup(rng.gen_range(0..new_ring.num_virtual()), key);
            assert_eq!(found, owner);
        }
    }

    #[test]
    fn moved_items_roughly_proportional_to_failures() {
        // Consistent hashing's minimal-disruption property: failing a
        // fraction f of nodes orphans ≈ f of the items.
        let mut rng = Xoshiro256pp::from_u64(3);
        let report = churn_experiment(256, 1, PlacementPolicy::Consistent, 16_384, 0.25, &mut rng);
        let frac = report.moved_items as f64 / 16_384.0;
        assert!(
            (frac - 0.25).abs() < 0.08,
            "moved fraction {frac} should track fail fraction"
        );
        assert_eq!(report.survivors, 192);
    }

    #[test]
    fn two_choice_rebalances_after_churn() {
        // After failures, 2-choice re-placement keeps the max load lower
        // than consistent hashing's successor-dumping (mean over seeds).
        let mut consistent_total = 0u64;
        let mut choice_total = 0u64;
        for seed in 0..6 {
            let mut rng = Xoshiro256pp::from_u64(10 + seed);
            let c = churn_experiment(128, 1, PlacementPolicy::Consistent, 4096, 0.3, &mut rng);
            consistent_total += u64::from(c.max_after);
            let mut rng = Xoshiro256pp::from_u64(10 + seed);
            let t = churn_experiment(
                128,
                1,
                PlacementPolicy::DChoice { d: 2 },
                4096,
                0.3,
                &mut rng,
            );
            choice_total += u64::from(t.max_after);
        }
        assert!(
            choice_total < consistent_total,
            "post-churn 2-choice {choice_total} !< consistent {consistent_total}"
        );
    }

    #[test]
    fn churn_conserves_items() {
        let mut rng = Xoshiro256pp::from_u64(5);
        let report = churn_experiment(
            64,
            2,
            PlacementPolicy::DChoice { d: 2 },
            2048,
            0.5,
            &mut rng,
        );
        // All items still placed: max load must be at least ceil(m / survivors).
        let min_possible = (2048f64 / report.survivors as f64).ceil() as u32;
        assert!(report.max_after >= min_possible);
        assert!(report.max_after >= report.max_before);
    }

    #[test]
    #[should_panic(expected = "at least one node must survive")]
    fn total_failure_rejected() {
        let mut rng = Xoshiro256pp::from_u64(6);
        let ring = ChordRing::new(4, &mut rng);
        let _ = apply_churn(&ring, &[true, true, true, true]);
    }
}
