//! Churn: node departures and arrivals, and what they do to placement.
//!
//! The paper's conclusion flags "how to apply [two choices] while
//! maintaining reliability and other useful features of these systems" as
//! open practical work. This module provides the substrate to study it:
//!
//! * Ring reconfiguration is modelled functionally: [`apply_churn`] builds the
//!   ring that remains after a set of physical nodes departs (and
//!   optionally new ones join), re-deriving finger tables.
//! * [`churn_experiment`] places items, applies churn, re-places, and
//!   measures the two costs that matter: how many items *moved* (the
//!   consistent-hashing selling point: plain hashing moves only departed
//!   nodes' items) and the post-churn load balance (the two-choices
//!   selling point).
//!
//! The interesting trade-off this exposes: after a failure, plain
//! consistent hashing dumps the departed node's whole load onto its
//! successor, making the *worst* bin worse; `d`-choice re-placement of
//! orphaned items re-balances, at the same O(moved · lookup) cost.

use crate::chord::ChordRing;
use crate::id::NodeId;
use crate::placement::{place_key, PlacementPolicy};
use geo2c_util::rng::Xoshiro256pp;
use rand::seq::SliceRandom;
use rand::Rng;

/// Outcome of one churn experiment.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Max physical load before churn.
    pub max_before: u32,
    /// Max physical load after churn and re-placement of orphans.
    pub max_after: u32,
    /// Number of items whose physical owner changed.
    pub moved_items: u64,
    /// Number of surviving physical nodes.
    pub survivors: usize,
}

/// Builds the ring remaining after removing `failed` physical nodes from
/// `ring` (their virtual nodes disappear; finger tables are rebuilt) and
/// returns it together with the mapping `old physical id → new physical
/// id` for the survivors.
///
/// # Panics
/// Panics if all nodes fail.
#[must_use]
pub fn apply_churn(ring: &ChordRing, failed: &[bool]) -> (ChordRing, Vec<Option<u32>>) {
    assert_eq!(failed.len(), ring.num_physical());
    let mut remap: Vec<Option<u32>> = vec![None; ring.num_physical()];
    let mut next = 0u32;
    for (old, &is_failed) in failed.iter().enumerate() {
        if !is_failed {
            remap[old] = Some(next);
            next += 1;
        }
    }
    assert!(next > 0, "at least one node must survive");
    let pairs: Vec<(crate::id::NodeId, u32)> = (0..ring.num_virtual())
        .filter_map(|v| remap[ring.physical_of(v)].map(|new_phys| (ring.id(v), new_phys)))
        .collect();
    (ChordRing::from_pairs(pairs, next as usize), remap)
}

/// Builds the ring after `joining` new physical nodes arrive, each with
/// `virtual_servers` fresh random ring positions. Existing virtual nodes
/// keep their ids and physical numbering; the joiners take physical ids
/// `old_n..old_n + joining`. The Chord minimal-disruption property
/// follows: a key's owner either stays put or moves to a *joiner* (a new
/// virtual node can only steal the id-space arc it lands in).
///
/// # Panics
/// Panics if `virtual_servers == 0` (a joiner must own ring positions).
#[must_use]
pub fn apply_join<R: Rng + ?Sized>(
    ring: &ChordRing,
    joining: usize,
    virtual_servers: usize,
    rng: &mut R,
) -> ChordRing {
    assert!(virtual_servers >= 1, "a joiner needs ring positions");
    let old_n = ring.num_physical();
    let mut pairs: Vec<(NodeId, u32)> = (0..ring.num_virtual())
        .map(|v| (ring.id(v), ring.physical_of(v) as u32))
        .collect();
    for p in 0..joining {
        for _ in 0..virtual_servers {
            pairs.push((NodeId(rng.gen()), (old_n + p) as u32));
        }
    }
    ChordRing::from_pairs(pairs, old_n + joining)
}

/// Runs one churn experiment: place `m` items under `policy`, fail
/// `fail_fraction` of the physical nodes uniformly at random, re-place
/// every *orphaned* item under the same policy on the surviving ring
/// (surviving items stay put unless their owner's id-space assignment
/// changed), and measure movement + balance.
#[must_use]
pub fn churn_experiment(
    n: usize,
    virtual_servers: usize,
    policy: PlacementPolicy,
    m: u64,
    fail_fraction: f64,
    rng: &mut Xoshiro256pp,
) -> ChurnReport {
    let ring = ChordRing::with_virtual_servers(n, virtual_servers, rng);
    let d = policy.d();

    // Initial sequential placement; remember each item's physical home.
    let mut loads = vec![0u32; n];
    let mut home: Vec<u32> = Vec::with_capacity(m as usize);
    for k in 0..m {
        let (owner, _) = place_key(&ring, d, k, &loads);
        loads[owner] += 1;
        home.push(owner as u32);
    }
    let max_before = loads.iter().copied().max().unwrap_or(0);

    // Fail a uniform random subset of physical nodes.
    let failures = ((n as f64) * fail_fraction).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut failed = vec![false; n];
    for &node in order.iter().take(failures.min(n - 1)) {
        failed[node] = true;
    }

    let (new_ring, remap) = apply_churn(&ring, &failed);
    let survivors = new_ring.num_physical();

    // Re-place: items on surviving nodes keep their home (the DHT only
    // re-assigns data whose owner departed); orphaned items re-run the
    // placement against current loads on the new ring.
    let mut new_loads = vec![0u32; survivors];
    for k in 0..m {
        if let Some(new_phys) = remap[home[k as usize] as usize] {
            new_loads[new_phys as usize] += 1;
        }
    }
    let mut moved = 0u64;
    for k in 0..m {
        if remap[home[k as usize] as usize].is_some() {
            continue;
        }
        moved += 1;
        let (owner, _) = place_key(&new_ring, d, k, &new_loads);
        new_loads[owner] += 1;
    }
    let max_after = new_loads.iter().copied().max().unwrap_or(0);

    ChurnReport {
        max_before,
        max_after,
        moved_items: moved,
        survivors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;
    use rand::Rng;

    #[test]
    fn apply_churn_removes_exactly_failed_nodes() {
        let mut rng = Xoshiro256pp::from_u64(1);
        let ring = ChordRing::with_virtual_servers(10, 3, &mut rng);
        let mut failed = vec![false; 10];
        failed[2] = true;
        failed[7] = true;
        let (new_ring, remap) = apply_churn(&ring, &failed);
        assert_eq!(new_ring.num_physical(), 8);
        assert_eq!(new_ring.num_virtual(), 24);
        assert!(remap[2].is_none() && remap[7].is_none());
        let mut seen: Vec<u32> = remap.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn surviving_ring_lookups_work() {
        let mut rng = Xoshiro256pp::from_u64(2);
        let ring = ChordRing::new(64, &mut rng);
        let mut failed = vec![false; 64];
        for i in (0..64).step_by(3) {
            failed[i] = true;
        }
        let (new_ring, _) = apply_churn(&ring, &failed);
        for _ in 0..200 {
            let key = crate::id::NodeId(rng.gen::<u64>());
            let owner = new_ring.successor_index(key);
            let (found, _) = new_ring.lookup(rng.gen_range(0..new_ring.num_virtual()), key);
            assert_eq!(found, owner);
        }
    }

    #[test]
    fn moved_items_roughly_proportional_to_failures() {
        // Consistent hashing's minimal-disruption property: failing a
        // fraction f of nodes orphans ≈ f of the items.
        let mut rng = Xoshiro256pp::from_u64(3);
        let report = churn_experiment(256, 1, PlacementPolicy::Consistent, 16_384, 0.25, &mut rng);
        let frac = report.moved_items as f64 / 16_384.0;
        assert!(
            (frac - 0.25).abs() < 0.08,
            "moved fraction {frac} should track fail fraction"
        );
        assert_eq!(report.survivors, 192);
    }

    #[test]
    fn two_choice_rebalances_after_churn() {
        // After failures, 2-choice re-placement keeps the max load lower
        // than consistent hashing's successor-dumping (mean over seeds).
        let mut consistent_total = 0u64;
        let mut choice_total = 0u64;
        for seed in 0..6 {
            let mut rng = Xoshiro256pp::from_u64(10 + seed);
            let c = churn_experiment(128, 1, PlacementPolicy::Consistent, 4096, 0.3, &mut rng);
            consistent_total += u64::from(c.max_after);
            let mut rng = Xoshiro256pp::from_u64(10 + seed);
            let t = churn_experiment(
                128,
                1,
                PlacementPolicy::DChoice { d: 2 },
                4096,
                0.3,
                &mut rng,
            );
            choice_total += u64::from(t.max_after);
        }
        assert!(
            choice_total < consistent_total,
            "post-churn 2-choice {choice_total} !< consistent {consistent_total}"
        );
    }

    #[test]
    fn churn_conserves_items() {
        let mut rng = Xoshiro256pp::from_u64(5);
        let report = churn_experiment(
            64,
            2,
            PlacementPolicy::DChoice { d: 2 },
            2048,
            0.5,
            &mut rng,
        );
        // All items still placed: max load must be at least ceil(m / survivors).
        let min_possible = (2048f64 / report.survivors as f64).ceil() as u32;
        assert!(report.max_after >= min_possible);
        assert!(report.max_after >= report.max_before);
    }

    #[test]
    fn leave_accounting_keeps_survivor_virtual_nodes() {
        // Each survivor carries exactly its old virtual nodes (same ids)
        // under the new physical numbering — apply_churn only removes.
        let mut rng = Xoshiro256pp::from_u64(7);
        let ring = ChordRing::with_virtual_servers(12, 4, &mut rng);
        let mut failed = vec![false; 12];
        failed[0] = true;
        failed[5] = true;
        failed[11] = true;
        let (new_ring, remap) = apply_churn(&ring, &failed);
        let mut old_ids: Vec<Vec<crate::id::NodeId>> = vec![Vec::new(); 12];
        for v in 0..ring.num_virtual() {
            old_ids[ring.physical_of(v)].push(ring.id(v));
        }
        let mut new_ids: Vec<Vec<crate::id::NodeId>> = vec![Vec::new(); 9];
        for v in 0..new_ring.num_virtual() {
            new_ids[new_ring.physical_of(v)].push(new_ring.id(v));
        }
        for old in 0..12 {
            match remap[old] {
                Some(new_phys) => {
                    let mut a = old_ids[old].clone();
                    let mut b = new_ids[new_phys as usize].clone();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "survivor {old} kept its ring positions");
                }
                None => assert!(failed[old]),
            }
        }
    }

    #[test]
    fn join_accounting_adds_only_the_joiners() {
        let mut rng = Xoshiro256pp::from_u64(8);
        let ring = ChordRing::with_virtual_servers(10, 3, &mut rng);
        let joined = apply_join(&ring, 4, 3, &mut rng);
        assert_eq!(joined.num_physical(), 14);
        assert_eq!(joined.num_virtual(), 30 + 12);
        // Old virtual nodes survive verbatim under their old numbering.
        let mut old_pairs: Vec<(crate::id::NodeId, usize)> = (0..ring.num_virtual())
            .map(|v| (ring.id(v), ring.physical_of(v)))
            .collect();
        let mut kept: Vec<(crate::id::NodeId, usize)> = (0..joined.num_virtual())
            .map(|v| (joined.id(v), joined.physical_of(v)))
            .filter(|&(_, p)| p < 10)
            .collect();
        old_pairs.sort_unstable();
        kept.sort_unstable();
        assert_eq!(old_pairs, kept);
    }

    #[test]
    fn join_steals_keys_only_for_joiners() {
        // Minimal disruption on join: a key's owner stays put unless a
        // joiner's virtual node landed in its arc.
        let mut rng = Xoshiro256pp::from_u64(9);
        let ring = ChordRing::with_virtual_servers(16, 2, &mut rng);
        let joined = apply_join(&ring, 3, 2, &mut rng);
        let mut stolen = 0u32;
        for _ in 0..500 {
            let key = crate::id::NodeId(rng.gen::<u64>());
            let before = ring.owner_of(key);
            let after = joined.owner_of(key);
            if after != before {
                assert!(after >= 16, "key moved to old node {after}");
                stolen += 1;
            }
        }
        assert!(stolen > 0, "3 joiners x 2 arcs should steal something");
    }

    #[test]
    #[should_panic(expected = "at least one node must survive")]
    fn total_failure_rejected() {
        let mut rng = Xoshiro256pp::from_u64(6);
        let ring = ChordRing::new(4, &mut rng);
        let _ = apply_churn(&ring, &[true, true, true, true]);
    }
}
