//! The 64-bit identifier ring and key hashing.
//!
//! Chord works on the ring of `m`-bit identifiers ordered clockwise with
//! wraparound; we use `m = 64`. Node and key identifiers are produced by
//! hashing (here: the SplitMix64 finalizer over a salted input, which is
//! the same avalanche mix the rest of the workspace uses for stream
//! derivation). Clockwise distance `(b − a) mod 2^64` is the wrapped
//! subtraction of `u64`s — the identifier ring is the `[0,1)` circle of
//! `geo2c-ring` scaled by `2^64`, and the tests verify that correspondence.

use geo2c_util::rng::mix;

/// A position on the 64-bit identifier ring.
///
/// Wrapping arithmetic on `u64` *is* the ring arithmetic: distances and
/// interval membership are defined clockwise (increasing ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Clockwise distance from `self` to `other`: `(other − self) mod 2^64`.
    #[must_use]
    pub fn clockwise_to(self, other: NodeId) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// True if `self` lies on the clockwise-open interval `(from, to]`.
    ///
    /// This is Chord's successor-ownership convention: the key at a node's
    /// exact id belongs to that node. When `from == to` the interval is
    /// the whole ring (a single-node system owns everything).
    #[must_use]
    pub fn in_interval(self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        from.clockwise_to(self) > 0 && from.clockwise_to(self) <= from.clockwise_to(to)
    }

    /// The id at clockwise offset `delta` (wraps).
    #[must_use]
    pub fn offset(self, delta: u64) -> NodeId {
        NodeId(self.0.wrapping_add(delta))
    }

    /// Maps the id to the unit circle coordinate `id / 2^64 ∈ [0, 1)`
    /// (the bridge to `geo2c-ring`). Uses the top 53 bits so the result is
    /// strictly below 1 even for `u64::MAX` (a plain `as f64` division
    /// rounds up to 1.0 there).
    #[must_use]
    pub fn to_unit(self) -> f64 {
        (self.0 >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Hashes an item key (by index) to a ring id.
///
/// Items in the simulations are identified by dense indices; the hash must
/// behave like a uniform random oracle over the ring, which the SplitMix64
/// finalizer provides (it is a bijective avalanche mix, measured to pass
/// the usual avalanche criteria).
#[must_use]
pub fn key_id(key: u64) -> NodeId {
    NodeId(mix(key ^ 0xA076_1D64_78BD_642F))
}

/// Hashes a key with a salt: the `j`-th alternative location of a key in
/// the `d`-choice placement (`salt = 0` is the *primary* location used
/// for lookups).
#[must_use]
pub fn hash_with_salt(key: u64, salt: u64) -> NodeId {
    NodeId(mix(
        mix(key ^ 0xA076_1D64_78BD_642F) ^ mix(salt.wrapping_add(0x9E37_79B9))
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clockwise_distance_wraps() {
        let a = NodeId(u64::MAX - 1);
        let b = NodeId(2);
        assert_eq!(a.clockwise_to(b), 4);
        assert_eq!(b.clockwise_to(a), u64::MAX - 3);
        assert_eq!(a.clockwise_to(a), 0);
    }

    #[test]
    fn interval_membership() {
        let from = NodeId(100);
        let to = NodeId(200);
        assert!(NodeId(150).in_interval(from, to));
        assert!(NodeId(200).in_interval(from, to)); // closed at to
        assert!(!NodeId(100).in_interval(from, to)); // open at from
        assert!(!NodeId(250).in_interval(from, to));
    }

    #[test]
    fn interval_membership_wrapping() {
        let from = NodeId(u64::MAX - 10);
        let to = NodeId(10);
        assert!(NodeId(u64::MAX).in_interval(from, to));
        assert!(NodeId(5).in_interval(from, to));
        assert!(NodeId(10).in_interval(from, to));
        assert!(!NodeId(50).in_interval(from, to));
        assert!(!NodeId(u64::MAX - 10).in_interval(from, to));
    }

    #[test]
    fn degenerate_interval_is_whole_ring() {
        let x = NodeId(42);
        assert!(NodeId(0).in_interval(x, x));
        assert!(NodeId(u64::MAX).in_interval(x, x));
        assert!(x.in_interval(x, x));
    }

    #[test]
    fn offset_wraps() {
        assert_eq!(NodeId(u64::MAX).offset(1), NodeId(0));
        assert_eq!(NodeId(5).offset(10), NodeId(15));
    }

    #[test]
    fn to_unit_in_range_and_monotone() {
        assert_eq!(NodeId(0).to_unit(), 0.0);
        assert!(NodeId(u64::MAX).to_unit() < 1.0);
        assert!(NodeId(1 << 63).to_unit() - 0.5 < 1e-12);
        assert!(NodeId(100).to_unit() < NodeId(1 << 40).to_unit());
    }

    #[test]
    fn key_hashing_is_spread_out() {
        // Dense keys must land all over the ring: check quadrant counts.
        let mut quadrants = [0u32; 4];
        let n = 10_000u64;
        for k in 0..n {
            let id = key_id(k).0;
            quadrants[(id >> 62) as usize] += 1;
        }
        for (q, &count) in quadrants.iter().enumerate() {
            let frac = f64::from(count) / n as f64;
            assert!((frac - 0.25).abs() < 0.03, "quadrant {q}: {frac}");
        }
    }

    #[test]
    fn salts_give_independent_locations() {
        // The d alternative locations of a key must not be correlated:
        // distinct salts produce different ids, and the joint quadrant
        // distribution is near-uniform.
        let mut joint = [[0u32; 2]; 2];
        let n = 10_000u64;
        for k in 0..n {
            let a = hash_with_salt(k, 0).0 >> 63;
            let b = hash_with_salt(k, 1).0 >> 63;
            joint[a as usize][b as usize] += 1;
        }
        for row in &joint {
            for &cell in row {
                let frac = f64::from(cell) / n as f64;
                assert!((frac - 0.25).abs() < 0.03, "joint cell {frac}");
            }
        }
    }

    #[test]
    fn salt_zero_is_primary() {
        for k in [0u64, 1, 99, 12345] {
            assert_ne!(hash_with_salt(k, 0), hash_with_salt(k, 1));
            assert_eq!(hash_with_salt(k, 0), hash_with_salt(k, 0));
        }
    }
}
