//! Successor-list replication: reliability for two-choice placement.
//!
//! The paper's conclusion notes that applying two choices to Chord-like
//! systems must preserve "reliability and other useful features". The
//! standard Chord reliability mechanism replicates each item on the `r`
//! distinct *physical* successors of its owning virtual node (CFS \[4]
//! stores a block's replicas on the successor list). This module combines
//! that mechanism with each placement policy so the trade-off can be
//! measured (experiment E17):
//!
//! * storage cost is `r×` regardless of policy;
//! * **availability** after a fraction of nodes fail is governed by `r`
//!   (an item is lost only if all `r` replica holders fail);
//! * the **load** penalty of replication differs by policy: replicas land
//!   on ring-adjacent nodes, so a hot primary's overflow spills onto its
//!   neighbourhood — two-choice placement keeps primaries balanced, which
//!   keeps replica load balanced too.

use crate::chord::ChordRing;
use crate::id::hash_with_salt;
use crate::placement::PlacementPolicy;
use rand::seq::SliceRandom;
use rand::Rng;

/// The outcome of a replicated placement.
#[derive(Debug, Clone)]
pub struct ReplicatedPlacement {
    /// Total items (primaries + replicas) per physical node.
    pub loads: Vec<u32>,
    /// `replica_sets[k]` lists the distinct physical nodes holding item `k`.
    pub replica_sets: Vec<Vec<u32>>,
}

impl ReplicatedPlacement {
    /// Largest total load on any physical node.
    #[must_use]
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }
}

/// Finds the first `r` *distinct physical* nodes on the ring starting at
/// (and including) virtual node `start`, walking clockwise.
#[must_use]
pub fn distinct_physical_successors(ring: &ChordRing, start: usize, r: usize) -> Vec<u32> {
    let v = ring.num_virtual();
    let mut out: Vec<u32> = Vec::with_capacity(r);
    let mut i = start;
    for _ in 0..v {
        let phys = ring.physical_of(i) as u32;
        if !out.contains(&phys) {
            out.push(phys);
            if out.len() == r {
                break;
            }
        }
        i = (i + 1) % v;
    }
    out
}

/// Places `m` items under `policy` and replicates each on the `r`
/// distinct physical successors of its storage location (the storage
/// node itself is replica 0).
///
/// # Panics
/// Panics if `r == 0`.
#[must_use]
pub fn place_replicated(
    ring: &ChordRing,
    policy: PlacementPolicy,
    m: u64,
    r: usize,
) -> ReplicatedPlacement {
    assert!(r >= 1, "need at least one replica (the primary)");
    let n = ring.num_physical();
    let d = match policy {
        PlacementPolicy::Consistent => 1,
        PlacementPolicy::DChoice { d } => d.max(1),
    };
    let mut loads = vec![0u32; n];
    let mut replica_sets = Vec::with_capacity(m as usize);
    for k in 0..m {
        // Primary placement: least-loaded owner among the d locations
        // (loads count everything the node stores, replicas included —
        // that is the disk/bandwidth the system actually cares about).
        let mut best_virtual = usize::MAX;
        let mut best_load = u32::MAX;
        for j in 0..d {
            let vnode = ring.successor_index(hash_with_salt(k, j as u64));
            let owner = ring.physical_of(vnode);
            if loads[owner] < best_load {
                best_load = loads[owner];
                best_virtual = vnode;
            }
        }
        let holders = distinct_physical_successors(ring, best_virtual, r);
        for &h in &holders {
            loads[h as usize] += 1;
        }
        replica_sets.push(holders);
    }
    ReplicatedPlacement {
        loads,
        replica_sets,
    }
}

/// Availability report after failing a random node subset.
#[derive(Debug, Clone, Copy)]
pub struct AvailabilityReport {
    /// Fraction of items with at least one surviving replica.
    pub available: f64,
    /// Number of failed physical nodes.
    pub failed: usize,
}

/// Fails `⌊n·fail_fraction⌋` uniformly random physical nodes and reports
/// the fraction of items that remain available.
#[must_use]
pub fn availability_after_failures<R: Rng + ?Sized>(
    placement: &ReplicatedPlacement,
    n: usize,
    fail_fraction: f64,
    rng: &mut R,
) -> AvailabilityReport {
    let failures = ((n as f64) * fail_fraction).floor() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut failed = vec![false; n];
    for &node in order.iter().take(failures.min(n.saturating_sub(1))) {
        failed[node] = true;
    }
    let mut available = 0u64;
    for holders in &placement.replica_sets {
        if holders.iter().any(|&h| !failed[h as usize]) {
            available += 1;
        }
    }
    AvailabilityReport {
        available: available as f64 / placement.replica_sets.len().max(1) as f64,
        failed: failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo2c_util::rng::Xoshiro256pp;

    #[test]
    fn r1_matches_unreplicated_load_total() {
        let mut rng = Xoshiro256pp::from_u64(1);
        let ring = ChordRing::new(32, &mut rng);
        let placement = place_replicated(&ring, PlacementPolicy::DChoice { d: 2 }, 500, 1);
        let total: u64 = placement.loads.iter().map(|&l| u64::from(l)).sum();
        assert_eq!(total, 500);
        assert!(placement.replica_sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn replication_multiplies_storage() {
        let mut rng = Xoshiro256pp::from_u64(2);
        let ring = ChordRing::new(32, &mut rng);
        for r in [2usize, 3] {
            let placement = place_replicated(&ring, PlacementPolicy::Consistent, 400, r);
            let total: u64 = placement.loads.iter().map(|&l| u64::from(l)).sum();
            assert_eq!(total, 400 * r as u64, "r={r}");
            // All replica sets have r distinct members.
            for set in &placement.replica_sets {
                assert_eq!(set.len(), r);
                let mut dedup = set.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), r);
            }
        }
    }

    #[test]
    fn distinct_successors_skip_same_physical() {
        let mut rng = Xoshiro256pp::from_u64(3);
        // Virtual servers: consecutive virtual nodes often share a
        // physical owner; the successor walk must skip duplicates.
        let ring = ChordRing::with_virtual_servers(8, 4, &mut rng);
        for start in 0..ring.num_virtual() {
            let succ = distinct_physical_successors(&ring, start, 3);
            assert_eq!(succ.len(), 3);
            let mut dedup = succ.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "start={start}");
            assert_eq!(succ[0] as usize, ring.physical_of(start));
        }
    }

    #[test]
    fn more_replicas_cannot_exceed_physical_count() {
        let mut rng = Xoshiro256pp::from_u64(4);
        let ring = ChordRing::new(4, &mut rng);
        let placement = place_replicated(&ring, PlacementPolicy::Consistent, 100, 10);
        // Only 4 physical nodes exist; sets cap at 4.
        assert!(placement.replica_sets.iter().all(|s| s.len() == 4));
    }

    #[test]
    fn availability_improves_with_r() {
        // Replica holders are ring-adjacent, so per-draw availability has
        // heavy-tailed variance (one failed run of the ring kills whole
        // neighbourhoods); average over failure draws.
        let mut rng = Xoshiro256pp::from_u64(5);
        let ring = ChordRing::new(128, &mut rng);
        let mut avail = Vec::new();
        for r in [1usize, 2, 4] {
            let placement = place_replicated(&ring, PlacementPolicy::DChoice { d: 2 }, 4096, r);
            let mut rng2 = Xoshiro256pp::from_u64(99);
            let mean: f64 = (0..20)
                .map(|_| availability_after_failures(&placement, 128, 0.3, &mut rng2).available)
                .sum::<f64>()
                / 20.0;
            avail.push(mean);
        }
        assert!(avail[0] < avail[1] && avail[1] < avail[2], "{avail:?}");
        // r=1 loses ≈ the fail fraction (30%); r=4 loses ≈ 0.3⁴ ≈ 1%.
        assert!(
            (avail[0] - 0.7).abs() < 0.05,
            "r=1 availability {}",
            avail[0]
        );
        assert!(avail[2] > 0.97, "r=4 availability {}", avail[2]);
    }

    #[test]
    fn two_choice_keeps_replicated_load_balanced() {
        let mut rng = Xoshiro256pp::from_u64(6);
        let n = 128;
        let m = 4096;
        let r = 3;
        let mut plain_total = 0u64;
        let mut choice_total = 0u64;
        for _ in 0..4 {
            let ring = ChordRing::new(n, &mut rng);
            plain_total +=
                u64::from(place_replicated(&ring, PlacementPolicy::Consistent, m, r).max_load());
            choice_total += u64::from(
                place_replicated(&ring, PlacementPolicy::DChoice { d: 2 }, m, r).max_load(),
            );
        }
        assert!(
            choice_total < plain_total,
            "replicated 2-choice {choice_total} !< consistent {plain_total}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let mut rng = Xoshiro256pp::from_u64(7);
        let ring = ChordRing::new(4, &mut rng);
        let _ = place_replicated(&ring, PlacementPolicy::Consistent, 10, 0);
    }
}
