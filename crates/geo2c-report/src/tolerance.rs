//! Statistical tolerance diffing between a fresh run and committed
//! expectations.
//!
//! The committed tables are Monte-Carlo estimates, so `run_tables
//! --check` cannot demand byte equality against a run with a different
//! seed or a legitimately refactored sampler — but with the *same* seed
//! and an unchanged algorithm the comparison is exact, and with an
//! intentional algorithm change the diff must flag every cell whose
//! distribution moved beyond noise. The middle ground implemented here:
//!
//! * **Spec drift is an error, not a tolerance question.** If the
//!   committed file was produced by a different `(id, trials, seed,
//!   params)` than the current harness would run, the expectations are
//!   stale and every number comparison would be meaningless.
//! * **Distributions** are compared per support value with the pooled
//!   two-proportion z statistic ([`geo2c_util::stats::two_proportion_z`]):
//!   each table percentage is a binomial proportion over `trials`.
//! * **Means** are compared with Welch's z
//!   ([`geo2c_util::stats::welch_z`]) over the per-trial max-load
//!   samples reconstructed from the distributions.
//! * **Scalar metrics** compare exactly: they are deterministic
//!   functions of the seed, so any difference is a real change, not
//!   noise. The one carve-out is metrics whose key starts with `~`
//!   (informational wall-clock measurements such as the scaling table's
//!   `~balls_per_s`): machine-dependent by nature, they render in the
//!   tables but never participate in the compare.
//!
//! A difference must exceed *both* the z threshold and a small absolute
//! slack to count: the absolute slack keeps one-trial flickers in a
//! 0.1%-tail bucket from failing CI, the z threshold scales correctly
//! with trial count everywhere else.

use crate::spec::{Cell, ExperimentResult, ResultSet};
use geo2c_util::stats::{two_proportion_z, welch_z};

/// Thresholds for [`compare_results`] / [`compare_sets`].
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Maximum allowed z statistic (both proportion and mean tests).
    pub max_z: f64,
    /// Absolute proportion slack: differences below this never fail.
    pub proportion_slack: f64,
    /// Absolute mean slack: mean differences below this never fail.
    pub mean_slack: f64,
}

impl Default for Tolerance {
    /// `max_z = 4` (a one-in-~16000 two-sided false-positive rate per
    /// bucket), 2% proportion slack, 0.05 mean slack.
    fn default() -> Self {
        Self {
            max_z: 4.0,
            proportion_slack: 0.02,
            mean_slack: 0.05,
        }
    }
}

/// One detected inconsistency between a fresh run and an expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrepancy {
    /// Spec id of the experiment.
    pub experiment: String,
    /// Cell label (empty for experiment-level problems such as spec drift).
    pub cell: String,
    /// What differed.
    pub message: String,
}

impl std::fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cell.is_empty() {
            write!(f, "[{}] {}", self.experiment, self.message)
        } else {
            write!(f, "[{} @ {}] {}", self.experiment, self.cell, self.message)
        }
    }
}

fn drift(experiment: &str, message: impl Into<String>) -> Discrepancy {
    Discrepancy {
        experiment: experiment.to_string(),
        cell: String::new(),
        message: message.into(),
    }
}

/// Compares a fresh [`ExperimentResult`] against a committed expectation.
///
/// Returns every discrepancy found (empty means the fresh run is
/// consistent with the expectation under `tol`).
#[must_use]
pub fn compare_results(
    fresh: &ExperimentResult,
    expected: &ExperimentResult,
    tol: &Tolerance,
) -> Vec<Discrepancy> {
    let id = &fresh.spec.id;
    let mut out = Vec::new();

    if fresh.spec != expected.spec {
        out.push(drift(
            id,
            format!(
                "spec drift: fresh spec {} != committed spec {} — regenerate the expectations",
                fresh.spec.to_json().render(),
                expected.spec.to_json().render()
            ),
        ));
        return out;
    }
    if fresh.cells.len() != expected.cells.len() {
        out.push(drift(
            id,
            format!(
                "cell count changed: fresh {} != committed {}",
                fresh.cells.len(),
                expected.cells.len()
            ),
        ));
        return out;
    }

    for (fresh_cell, expected_cell) in fresh.cells.iter().zip(&expected.cells) {
        compare_cells(id, fresh_cell, expected_cell, tol, &mut out);
    }
    out
}

fn compare_cells(
    experiment: &str,
    fresh: &Cell,
    expected: &Cell,
    tol: &Tolerance,
    out: &mut Vec<Discrepancy>,
) {
    let mut push = |cell: &Cell, message: String| {
        out.push(Discrepancy {
            experiment: experiment.to_string(),
            cell: cell.label(),
            message,
        });
    };

    if fresh.coords != expected.coords {
        push(
            fresh,
            format!("cell coordinates changed (committed: {})", expected.label()),
        );
        return;
    }

    // Scalar metrics are deterministic functions of the seed (unlike the
    // trial distributions, there is no legitimate noise between a fresh
    // run and the committed expectation), so they compare exactly: the
    // JSON round-trip is lossless and thread count never changes them.
    // Metrics whose key starts with `~` are *informational* — wall-clock
    // measurements (the scaling table's `~balls_per_s`) that legitimately
    // differ between machines and runs — and are excluded on both sides.
    let checked = |cell: &Cell| -> Vec<(String, crate::json::Json)> {
        cell.metrics
            .iter()
            .filter(|(k, _)| !k.starts_with('~'))
            .cloned()
            .collect()
    };
    if checked(fresh) != checked(expected) {
        let describe = |cell: &Cell| {
            cell.metrics
                .iter()
                .map(|(k, v)| format!("{k}={}", v.render()))
                .collect::<Vec<_>>()
                .join(", ")
        };
        push(
            fresh,
            format!(
                "metrics changed: fresh {{{}}} vs committed {{{}}}",
                describe(fresh),
                describe(expected)
            ),
        );
    }

    match (&fresh.distribution, &expected.distribution) {
        (None, None) => {}
        (Some(_), None) | (None, Some(_)) => {
            push(fresh, "distribution presence changed".to_string());
        }
        (Some(fresh_dist), Some(expected_dist)) => {
            let (n1, n2) = (fresh_dist.total(), expected_dist.total());
            // Union of the supports, in increasing value order.
            let mut values: Vec<u64> = fresh_dist
                .iter()
                .map(|(v, _)| v)
                .chain(expected_dist.iter().map(|(v, _)| v))
                .collect();
            values.sort_unstable();
            values.dedup();
            for value in values {
                let (k1, k2) = (fresh_dist.count(value), expected_dist.count(value));
                let p1 = if n1 == 0 { 0.0 } else { k1 as f64 / n1 as f64 };
                let p2 = if n2 == 0 { 0.0 } else { k2 as f64 / n2 as f64 };
                let z = two_proportion_z(k1, n1, k2, n2);
                if z > tol.max_z && (p1 - p2).abs() > tol.proportion_slack {
                    push(
                        fresh,
                        format!(
                            "P(max load = {value}) moved: fresh {:.1}% vs committed {:.1}% (z = {z:.1})",
                            100.0 * p1,
                            100.0 * p2
                        ),
                    );
                }
            }

            let (s1, s2) = (fresh.dist_stats(), expected.dist_stats());
            let z = welch_z(
                s1.mean(),
                s1.variance(),
                s1.count(),
                s2.mean(),
                s2.variance(),
                s2.count(),
            );
            if z > tol.max_z && (s1.mean() - s2.mean()).abs() > tol.mean_slack {
                push(
                    fresh,
                    format!(
                        "mean max load moved: fresh {:.3} vs committed {:.3} (z = {z:.1})",
                        s1.mean(),
                        s2.mean()
                    ),
                );
            }
        }
    }
}

/// Compares every experiment of a fresh [`ResultSet`] against the
/// matching (by spec id) experiment of the committed set. Experiments
/// present on only one side are discrepancies; provenance differences
/// (git revision, tool version) are deliberately ignored.
#[must_use]
pub fn compare_sets(fresh: &ResultSet, expected: &ResultSet, tol: &Tolerance) -> Vec<Discrepancy> {
    let mut out = Vec::new();
    for fresh_result in &fresh.experiments {
        match expected.experiment(&fresh_result.spec.id) {
            Some(expected_result) => {
                out.extend(compare_results(fresh_result, expected_result, tol));
            }
            None => out.push(drift(
                &fresh_result.spec.id,
                "missing from the committed expectations",
            )),
        }
    }
    for expected_result in &expected.experiments {
        if fresh.experiment(&expected_result.spec.id).is_none() {
            out.push(drift(
                &expected_result.spec.id,
                "committed expectation was not produced by the fresh run",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::spec::{ExperimentSpec, Provenance};
    use geo2c_util::hist::Counter;

    fn dist(pairs: &[(u64, u64)]) -> Counter {
        let mut c = Counter::new();
        for &(v, k) in pairs {
            c.add_n(v, k);
        }
        c
    }

    fn result(pairs: &[(u64, u64)]) -> ExperimentResult {
        let spec = ExperimentSpec::new("table1", "t")
            .trials(1000)
            .seed(0)
            .param("space", Json::str("ring"));
        let mut r = ExperimentResult::new(spec);
        r.push(
            Cell::new()
                .coord("n", Json::from_usize(4096))
                .coord("d", Json::from_usize(2))
                .dist(dist(pairs)),
        );
        r
    }

    #[test]
    fn identical_results_are_accepted() {
        let a = result(&[(4, 881), (5, 118), (6, 1)]);
        let b = a.clone();
        assert!(compare_results(&a, &b, &Tolerance::default()).is_empty());
    }

    #[test]
    fn noise_level_differences_are_accepted() {
        // ~1% reshuffle between adjacent buckets: well inside z = 4 at
        // 1000 trials.
        let a = result(&[(4, 881), (5, 118), (6, 1)]);
        let b = result(&[(4, 873), (5, 126), (6, 1)]);
        let diffs = compare_results(&a, &b, &Tolerance::default());
        assert!(diffs.is_empty(), "{diffs:?}");
    }

    #[test]
    fn gross_distribution_shift_is_rejected() {
        let a = result(&[(4, 881), (5, 118), (6, 1)]);
        let b = result(&[(4, 300), (5, 600), (6, 100)]);
        let diffs = compare_results(&a, &b, &Tolerance::default());
        assert!(!diffs.is_empty());
        let rendered = diffs[0].to_string();
        assert!(rendered.contains("table1"), "{rendered}");
        assert!(rendered.contains("n=4096"), "{rendered}");
    }

    #[test]
    fn shifted_support_is_rejected() {
        // Same shape, support moved by one — mean test must catch it
        // even though each bucket pair is (p, 0) vs (0, p).
        let a = result(&[(4, 900), (5, 100)]);
        let b = result(&[(5, 900), (6, 100)]);
        let diffs = compare_results(&a, &b, &Tolerance::default());
        assert!(!diffs.is_empty());
    }

    #[test]
    fn spec_drift_short_circuits() {
        let a = result(&[(4, 1000)]);
        let mut b = result(&[(4, 1000)]);
        b.spec.seed = 1;
        let diffs = compare_results(&a, &b, &Tolerance::default());
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].to_string().contains("spec drift"));
    }

    #[test]
    fn cell_count_and_coord_changes_are_flagged() {
        let a = result(&[(4, 1000)]);
        let mut b = result(&[(4, 1000)]);
        b.cells.push(Cell::new());
        assert!(compare_results(&a, &b, &Tolerance::default())[0]
            .to_string()
            .contains("cell count"));

        let mut c = result(&[(4, 1000)]);
        c.cells[0].coords[0].1 = Json::from_usize(8192);
        assert!(compare_results(&a, &c, &Tolerance::default())[0]
            .to_string()
            .contains("coordinates"));
    }

    #[test]
    fn set_comparison_matches_by_id_and_flags_missing() {
        let prov = Provenance {
            tool: "t".into(),
            version: "v".into(),
            git_rev: "r1".into(),
            seed: 0,
        };
        let mut fresh = ResultSet::new(prov.clone());
        fresh.push(result(&[(4, 1000)]));
        let mut committed = ResultSet::new(Provenance {
            git_rev: "r2".into(), // provenance differences are ignored
            ..prov
        });
        committed.push(result(&[(4, 1000)]));
        assert!(compare_sets(&fresh, &committed, &Tolerance::default()).is_empty());

        let mut extra = ExperimentResult::new(ExperimentSpec::new("table9", "x"));
        extra.push(Cell::new());
        committed.push(extra);
        let diffs = compare_sets(&fresh, &committed, &Tolerance::default());
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].to_string().contains("not produced"));
    }

    #[test]
    fn metric_only_drift_is_flagged() {
        // Cells without distributions (dht/churn-style) must still be
        // comparable: metrics are deterministic, so exact match required.
        let cell = |hops: f64| {
            Cell::new()
                .coord("scheme", Json::str("2-choice"))
                .metric("mean_hops", Json::num(hops))
        };
        let spec = ExperimentSpec::new("dht", "t").trials(20).seed(0);
        let mut a = ExperimentResult::new(spec.clone());
        a.push(cell(4.25));
        let mut b = ExperimentResult::new(spec);
        b.push(cell(4.25));
        assert!(compare_results(&a, &b, &Tolerance::default()).is_empty());

        b.cells[0].metrics[0].1 = Json::num(5.0);
        let diffs = compare_results(&a, &b, &Tolerance::default());
        assert_eq!(diffs.len(), 1);
        assert!(
            diffs[0].to_string().contains("metrics changed"),
            "{diffs:?}"
        );
        assert!(diffs[0].to_string().contains("mean_hops"), "{diffs:?}");
    }

    #[test]
    fn tilde_metrics_are_informational_and_never_compared() {
        // `~`-prefixed metrics are wall-clock measurements: they differ
        // between any two runs and must not fail the exact compare —
        // whether they moved, appeared, or disappeared.
        let cell = |rate: f64| {
            Cell::new()
                .coord("backing", Json::str("packed-nibble"))
                .metric("bytes_per_bin", Json::num(0.5))
                .metric("~balls_per_s", Json::num(rate))
        };
        let spec = ExperimentSpec::new("scaling", "t").trials(3).seed(0);
        let mut a = ExperimentResult::new(spec.clone());
        a.push(cell(41_000_000.0));
        let mut b = ExperimentResult::new(spec.clone());
        b.push(cell(37_500_000.0));
        assert!(compare_results(&a, &b, &Tolerance::default()).is_empty());

        // Missing on one side entirely: still not a discrepancy.
        let mut c = ExperimentResult::new(spec);
        c.push(
            Cell::new()
                .coord("backing", Json::str("packed-nibble"))
                .metric("bytes_per_bin", Json::num(0.5)),
        );
        assert!(compare_results(&a, &c, &Tolerance::default()).is_empty());

        // The deterministic metric beside it still compares exactly.
        b.cells[0].metrics[0].1 = Json::num(1.0);
        let diffs = compare_results(&a, &b, &Tolerance::default());
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].to_string().contains("bytes_per_bin"), "{diffs:?}");
    }

    #[test]
    fn tiny_tail_flicker_is_within_slack() {
        // One trial moving in/out of a 0.1% bucket must not fail.
        let a = result(&[(4, 999), (5, 1)]);
        let b = result(&[(4, 1000)]);
        assert!(compare_results(&a, &b, &Tolerance::default()).is_empty());
    }
}
