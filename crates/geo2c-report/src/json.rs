//! A minimal, dependency-free JSON value type with a hand-rolled parser
//! and a *stable* renderer.
//!
//! The build environment is offline (no `serde`), and the vendor-shim
//! policy of this workspace prefers small in-tree implementations with
//! upstream-compatible semantics. Two properties matter more here than
//! feature coverage:
//!
//! 1. **Stable output** — `EXPERIMENTS.md` and the committed files under
//!    `results/` must regenerate byte-identically from the committed
//!    seeds, so object keys keep insertion order and numbers render via
//!    Rust's shortest-round-trip `Display`.
//! 2. **Lossless round-trips** — `parse(render(v)) == v` for every value
//!    the harness produces (integers up to 2^53, finite floats, strings
//!    with escapes, nested arrays/objects).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (rendering is stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from anything convertible to `f64` losslessly
    /// enough for the harness (`u32`, `u64` counts ≤ 2^53, `f64`).
    #[must_use]
    pub fn num(x: impl Into<f64>) -> Json {
        Json::Num(x.into())
    }

    /// Builds a number from a `usize` (exact up to 2^53).
    #[must_use]
    pub fn from_usize(x: usize) -> Json {
        Json::Num(x as f64)
    }

    /// Builds a number from a `u64` (exact up to 2^53).
    #[must_use]
    pub fn from_u64(x: u64) -> Json {
        Json::Num(x as f64)
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integral number.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as ordered fields, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace). Stable: key order is preserved
    /// and numbers use shortest-round-trip formatting.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with newlines and two-space indentation — the format of
    /// the committed files under `results/`.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    /// Returns a [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

/// Writes `x` as a JSON number: integers without a fraction, everything
/// else via `f64`'s shortest-round-trip `Display`.
fn write_number(out: &mut String, x: f64) {
    assert!(x.is_finite(), "JSON cannot represent non-finite number {x}");
    if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number bytes"))?;
    match text.parse::<f64>() {
        // Overflowing literals (1e999) parse to ±inf in Rust; JSON has no
        // non-finite numbers and the renderer asserts finiteness, so
        // reject them here instead of panicking at re-render time.
        Ok(x) if x.is_finite() => Ok(Json::Num(x)),
        _ => Err(JsonError::at(start, format!("invalid number '{text}'"))),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(JsonError::at(*pos, "unterminated string"));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(JsonError::at(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        // Surrogate pairs: a leading surrogate must be
                        // followed by \uXXXX carrying a trailing
                        // surrogate; anything else is an error (lone
                        // surrogates fail the char::from_u32 below).
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if (0xDC00..0xE000).contains(&low) {
                                    char::from_u32(
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00),
                                    )
                                } else {
                                    None
                                }
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| JsonError::at(*pos, "invalid \\u escape"))?);
                    }
                    other => {
                        return Err(JsonError::at(
                            *pos - 1,
                            format!("invalid escape '\\{}'", other as char),
                        ));
                    }
                }
            }
            _ => {
                // Copy one UTF-8 scalar (input is &str, so boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                if (c as u32) < 0x20 {
                    return Err(JsonError::at(*pos, "unescaped control character"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    if *pos + 4 > bytes.len() {
        return Err(JsonError::at(*pos, "truncated \\u escape"));
    }
    let hex = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
    let code =
        u32::from_str_radix(hex, 16).map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
    *pos += 4;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        assert_eq!(&Json::parse(&v.render()).unwrap(), v);
        assert_eq!(&Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(0.1),
            Json::Num(1e-9),
            Json::Num(9_007_199_254_740_992.0), // 2^53
            Json::Str(String::new()),
            Json::str("plain"),
            Json::str("esc \" \\ \n \t \u{1}"),
            Json::str("unicode: φ δ ∈ 🎲"),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let v = Json::Obj(vec![
            ("id".into(), Json::str("table1")),
            (
                "ns".into(),
                Json::Arr(vec![Json::Num(256.0), Json::Num(4096.0)]),
            ),
            (
                "cells".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("d".into(), Json::Num(2.0)),
                    (
                        "dist".into(),
                        Json::Arr(vec![Json::Arr(vec![Json::Num(4.0), Json::Num(881.0)])]),
                    ),
                    ("note".into(), Json::Null),
                ])]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn object_key_order_is_preserved() {
        let text = r#"{"z": 1, "a": 2, "m": 3}"#;
        let v = Json::parse(text).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(v.render(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Arr(vec![Json::Num(2.0), Json::Num(3.0)])),
        ]);
        let expected = "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}\n";
        assert_eq!(v.render_pretty(), expected);
        // Stability: re-rendering a parse of the output reproduces it.
        assert_eq!(Json::parse(expected).unwrap().render_pretty(), expected);
    }

    #[test]
    fn surrogate_pair_parses() {
        let v = Json::parse(r#""🎲""#).unwrap();
        assert_eq!(v.as_str(), Some("🎲"));
        // The escaped surrogate pair decodes to the same scalar (U+1F3B2).
        let v = Json::parse("\"\\uD83C\\uDFB2\"").unwrap();
        assert_eq!(v.as_str(), Some("🎲"));
    }

    #[test]
    fn malformed_surrogates_are_errors_not_garbage() {
        // A high surrogate must be followed by a valid low surrogate;
        // these are errors (never panics, never mojibake).
        for text in [
            "\"\\uD800\\u0041\"", // trailing escape is not a low surrogate
            r#""\uD800x""#,       // no trailing escape at all
            r#""\uD800""#,        // string ends after the high surrogate
            r#""\uDC00""#,        // lone low surrogate
        ] {
            assert!(Json::parse(text).is_err(), "should reject: {text}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 256, "x": 1.5, "s": "hi", "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(256));
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(256));
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("x").and_then(Json::as_u64), None);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            "tru",
            r#"{"a" 1}"#,
            r#""unterminated"#,
            "1 2",
            r#""bad \q escape""#,
            "nan",
            "1e999",  // overflows f64 to inf — not representable
            "-1e999", // likewise
        ] {
            assert!(Json::parse(text).is_err(), "should reject: {text}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_numbers_panic_on_render() {
        let _ = Json::Num(f64::NAN).render();
    }
}
