//! Experiment specifications and persisted results.
//!
//! The unit of persistence is a [`ResultSet`]: provenance (who produced
//! the numbers, from which seed, at which git revision) plus one
//! [`ExperimentResult`] per experiment. Each result carries the
//! [`ExperimentSpec`] it was produced from — the spec is stored *inside*
//! the result file so that a `--check` run can detect drift between the
//! committed expectations and the current harness configuration before
//! comparing any numbers.
//!
//! Everything serializes through the in-tree [`Json`] value type; there
//! is no reflection or derive machinery, just explicit `to_json` /
//! `from_json` pairs with strict field checking (unknown structure is an
//! error: expectation files are part of the reviewed tree).

use crate::json::{Json, JsonError};
use geo2c_util::hist::Counter;
use geo2c_util::stats::RunningStats;

/// Schema tag written into every persisted file.
pub const FORMAT: &str = "geo2c/resultset-v1";

/// Errors produced when loading or interpreting persisted results.
#[derive(Debug)]
pub enum ReportError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not valid JSON.
    Json(JsonError),
    /// The JSON does not match the result-set schema.
    Schema(String),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Io(e) => write!(f, "io error: {e}"),
            ReportError::Json(e) => write!(f, "{e}"),
            ReportError::Schema(msg) => write!(f, "schema error: {msg}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<std::io::Error> for ReportError {
    fn from(e: std::io::Error) -> Self {
        ReportError::Io(e)
    }
}

impl From<JsonError> for ReportError {
    fn from(e: JsonError) -> Self {
        ReportError::Json(e)
    }
}

fn schema_err<T>(msg: impl Into<String>) -> Result<T, ReportError> {
    Err(ReportError::Schema(msg.into()))
}

fn req<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, ReportError> {
    obj.get(key)
        .ok_or_else(|| ReportError::Schema(format!("{ctx}: missing field '{key}'")))
}

fn req_str(obj: &Json, key: &str, ctx: &str) -> Result<String, ReportError> {
    req(obj, key, ctx)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| ReportError::Schema(format!("{ctx}: '{key}' must be a string")))
}

fn req_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, ReportError> {
    req(obj, key, ctx)?.as_u64().ok_or_else(|| {
        ReportError::Schema(format!("{ctx}: '{key}' must be a non-negative integer"))
    })
}

/// Rejects unknown top-level fields: expectation files are part of the
/// reviewed tree, so a misspelled field is a mistake to surface, not
/// forward-compatible data to drop (the `format` tag versions the schema).
fn only_fields(v: &Json, allowed: &[&str], ctx: &str) -> Result<(), ReportError> {
    if let Some(fields) = v.as_object() {
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return schema_err(format!("{ctx}: unknown field '{key}'"));
            }
        }
    }
    Ok(())
}

/// What was run: identity, scale and parameters of one experiment.
///
/// `params` is free-form ordered key→JSON metadata (sweep sizes, strategy
/// labels, space kind, …); it participates verbatim in spec-drift
/// detection, so anything that influences the numbers belongs in it.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Stable machine identifier (`"table1"`, `"dimension"`, …).
    pub id: String,
    /// Human title for reports.
    pub title: String,
    /// Which artifact of the paper this reproduces (`"Table 1"`, `"§3 footnote 3"`, …).
    pub paper_ref: String,
    /// Independent trials per cell.
    pub trials: usize,
    /// Root seed (streams are derived per cell and trial).
    pub seed: u64,
    /// Everything else that shaped the run.
    pub params: Vec<(String, Json)>,
}

impl ExperimentSpec {
    /// Creates a spec with no parameters.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            paper_ref: String::new(),
            trials: 0,
            seed: 0,
            params: Vec::new(),
        }
    }

    /// Sets the paper reference.
    #[must_use]
    pub fn paper_ref(mut self, r: impl Into<String>) -> Self {
        self.paper_ref = r.into();
        self
    }

    /// Sets the trial count.
    #[must_use]
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the root seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Appends one parameter.
    #[must_use]
    pub fn param(mut self, key: impl Into<String>, value: Json) -> Self {
        self.params.push((key.into(), value));
        self
    }

    /// Serializes to JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::str(&self.id)),
            ("title".into(), Json::str(&self.title)),
            ("paper_ref".into(), Json::str(&self.paper_ref)),
            ("trials".into(), Json::from_usize(self.trials)),
            ("seed".into(), Json::from_u64(self.seed)),
            ("params".into(), Json::Obj(self.params.clone())),
        ])
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    /// Returns [`ReportError::Schema`] if required fields are missing or
    /// have the wrong type.
    pub fn from_json(v: &Json) -> Result<Self, ReportError> {
        let ctx = "spec";
        only_fields(
            v,
            &["id", "title", "paper_ref", "trials", "seed", "params"],
            ctx,
        )?;
        let params = match req(v, "params", ctx)? {
            Json::Obj(fields) => fields.clone(),
            _ => return schema_err("spec: 'params' must be an object"),
        };
        Ok(Self {
            id: req_str(v, "id", ctx)?,
            title: req_str(v, "title", ctx)?,
            paper_ref: req_str(v, "paper_ref", ctx)?,
            trials: req_u64(v, "trials", ctx)? as usize,
            seed: req_u64(v, "seed", ctx)?,
            params,
        })
    }
}

/// One measured configuration: coordinates in the sweep, an optional
/// max-load distribution, and scalar metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cell {
    /// Where in the sweep this cell sits (`n`, `d`, `space`, …), ordered.
    pub coords: Vec<(String, Json)>,
    /// Distribution of an integer statistic over trials (the paper's
    /// table cells are max-load distributions), if this experiment has one.
    pub distribution: Option<Counter>,
    /// Scalar metrics (`mean`, `violation_rate`, …), ordered.
    pub metrics: Vec<(String, Json)>,
}

impl Cell {
    /// Creates an empty cell.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a coordinate.
    #[must_use]
    pub fn coord(mut self, key: impl Into<String>, value: Json) -> Self {
        self.coords.push((key.into(), value));
        self
    }

    /// Sets the distribution.
    #[must_use]
    pub fn dist(mut self, distribution: Counter) -> Self {
        self.distribution = Some(distribution);
        self
    }

    /// Appends a scalar metric.
    #[must_use]
    pub fn metric(mut self, key: impl Into<String>, value: Json) -> Self {
        self.metrics.push((key.into(), value));
        self
    }

    /// A short human label for the cell, e.g. `n=4096, d=2`.
    #[must_use]
    pub fn label(&self) -> String {
        self.coords
            .iter()
            .map(|(k, v)| format!("{k}={}", v.render()))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Summary statistics of the distribution (empty if there is none).
    #[must_use]
    pub fn dist_stats(&self) -> RunningStats {
        let mut stats = RunningStats::new();
        if let Some(dist) = &self.distribution {
            for (value, count) in dist.iter() {
                for _ in 0..count {
                    stats.push(value as f64);
                }
            }
        }
        stats
    }

    /// Serializes to JSON. The distribution is stored as sorted
    /// `[value, count]` pairs.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let dist = match &self.distribution {
            Some(d) => Json::Arr(
                d.iter()
                    .map(|(v, c)| Json::Arr(vec![Json::from_u64(v), Json::from_u64(c)]))
                    .collect(),
            ),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("coords".into(), Json::Obj(self.coords.clone())),
            ("distribution".into(), dist),
            ("metrics".into(), Json::Obj(self.metrics.clone())),
        ])
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    /// Returns [`ReportError::Schema`] on structural mismatch.
    pub fn from_json(v: &Json) -> Result<Self, ReportError> {
        only_fields(v, &["coords", "distribution", "metrics"], "cell")?;
        let coords = match req(v, "coords", "cell")? {
            Json::Obj(fields) => fields.clone(),
            _ => return schema_err("cell: 'coords' must be an object"),
        };
        let distribution = match req(v, "distribution", "cell")? {
            Json::Null => None,
            Json::Arr(pairs) => {
                let mut counter = Counter::new();
                for pair in pairs {
                    let items = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                        ReportError::Schema(
                            "cell: distribution entries must be [value, count]".into(),
                        )
                    })?;
                    let value = items[0].as_u64();
                    let count = items[1].as_u64();
                    match (value, count) {
                        (Some(value), Some(count)) => counter.add_n(value, count),
                        _ => return schema_err("cell: distribution entries must be integer pairs"),
                    }
                }
                Some(counter)
            }
            _ => return schema_err("cell: 'distribution' must be an array or null"),
        };
        let metrics = match req(v, "metrics", "cell")? {
            Json::Obj(fields) => fields.clone(),
            _ => return schema_err("cell: 'metrics' must be an object"),
        };
        Ok(Self {
            coords,
            distribution,
            metrics,
        })
    }
}

/// A spec plus the cells it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// The configuration that produced the numbers.
    pub spec: ExperimentSpec,
    /// One cell per sweep configuration, in sweep order.
    pub cells: Vec<Cell>,
}

impl ExperimentResult {
    /// Creates an empty result for `spec`.
    #[must_use]
    pub fn new(spec: ExperimentSpec) -> Self {
        Self {
            spec,
            cells: Vec::new(),
        }
    }

    /// Appends a cell.
    pub fn push(&mut self, cell: Cell) {
        self.cells.push(cell);
    }

    /// Serializes to JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("spec".into(), self.spec.to_json()),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(Cell::to_json).collect()),
            ),
        ])
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    /// Returns [`ReportError::Schema`] on structural mismatch.
    pub fn from_json(v: &Json) -> Result<Self, ReportError> {
        only_fields(v, &["spec", "cells"], "experiment")?;
        let spec = ExperimentSpec::from_json(req(v, "spec", "experiment")?)?;
        let cells = match req(v, "cells", "experiment")? {
            Json::Arr(items) => items
                .iter()
                .map(Cell::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return schema_err("experiment: 'cells' must be an array"),
        };
        Ok(Self { spec, cells })
    }
}

/// Who produced a result set, and from what.
///
/// The git revision is *informational* (it records where the numbers came
/// from); it is deliberately excluded from rendered reports and from
/// tolerance checking, so that regenerating `EXPERIMENTS.md` at a later
/// commit is byte-identical as long as the numbers are.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Producing tool (`"geo2c-report"` unless overridden).
    pub tool: String,
    /// Version of the producing tool.
    pub version: String,
    /// `git rev-parse HEAD` at production time, or `"unknown"`.
    pub git_rev: String,
    /// The root seed every stream was derived from.
    pub seed: u64,
}

impl Provenance {
    /// Captures provenance for `seed`: package version from the build,
    /// git revision from the working tree (falling back to `"unknown"`
    /// outside a repository or without a `git` binary).
    #[must_use]
    pub fn capture(seed: u64) -> Self {
        Self {
            tool: env!("CARGO_PKG_NAME").to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            git_rev: git_revision().unwrap_or_else(|| "unknown".into()),
            seed,
        }
    }

    /// Serializes to JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tool".into(), Json::str(&self.tool)),
            ("version".into(), Json::str(&self.version)),
            ("git_rev".into(), Json::str(&self.git_rev)),
            ("seed".into(), Json::from_u64(self.seed)),
        ])
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    /// Returns [`ReportError::Schema`] on structural mismatch.
    pub fn from_json(v: &Json) -> Result<Self, ReportError> {
        let ctx = "provenance";
        only_fields(v, &["tool", "version", "git_rev", "seed"], ctx)?;
        Ok(Self {
            tool: req_str(v, "tool", ctx)?,
            version: req_str(v, "version", ctx)?,
            git_rev: req_str(v, "git_rev", ctx)?,
            seed: req_u64(v, "seed", ctx)?,
        })
    }
}

/// The current git HEAD revision, if discoverable.
#[must_use]
pub fn git_revision() -> Option<String> {
    let output = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let rev = String::from_utf8(output.stdout).ok()?;
    let rev = rev.trim();
    if rev.is_empty() {
        None
    } else {
        Some(rev.to_string())
    }
}

/// Provenance plus a list of experiment results: the persisted unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Production metadata.
    pub provenance: Provenance,
    /// The results, in run order.
    pub experiments: Vec<ExperimentResult>,
}

impl ResultSet {
    /// Creates an empty set with the given provenance.
    #[must_use]
    pub fn new(provenance: Provenance) -> Self {
        Self {
            provenance,
            experiments: Vec::new(),
        }
    }

    /// Appends an experiment result.
    pub fn push(&mut self, result: ExperimentResult) {
        self.experiments.push(result);
    }

    /// Looks up an experiment by spec id.
    #[must_use]
    pub fn experiment(&self, id: &str) -> Option<&ExperimentResult> {
        self.experiments.iter().find(|e| e.spec.id == id)
    }

    /// Serializes to JSON (including the schema tag).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), Json::str(FORMAT)),
            ("provenance".into(), self.provenance.to_json()),
            (
                "experiments".into(),
                Json::Arr(
                    self.experiments
                        .iter()
                        .map(ExperimentResult::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes from JSON, checking the schema tag.
    ///
    /// # Errors
    /// Returns [`ReportError::Schema`] on a wrong format tag or
    /// structural mismatch.
    pub fn from_json(v: &Json) -> Result<Self, ReportError> {
        only_fields(v, &["format", "provenance", "experiments"], "result set")?;
        match req(v, "format", "result set")?.as_str() {
            Some(FORMAT) => {}
            Some(other) => {
                return schema_err(format!("unsupported format '{other}', expected '{FORMAT}'"))
            }
            None => return schema_err("result set: 'format' must be a string"),
        }
        let provenance = Provenance::from_json(req(v, "provenance", "result set")?)?;
        let experiments = match req(v, "experiments", "result set")? {
            Json::Arr(items) => items
                .iter()
                .map(ExperimentResult::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return schema_err("result set: 'experiments' must be an array"),
        };
        Ok(Self {
            provenance,
            experiments,
        })
    }

    /// Parses a result set from JSON text.
    ///
    /// # Errors
    /// Returns [`ReportError`] on malformed JSON or schema mismatch.
    pub fn parse(text: &str) -> Result<Self, ReportError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Renders the pretty JSON document (the on-disk format).
    #[must_use]
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Writes the set to `path` (creating parent directories).
    ///
    /// # Errors
    /// Returns [`ReportError::Io`] on filesystem errors.
    pub fn save(&self, path: &std::path::Path) -> Result<(), ReportError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.render())?;
        Ok(())
    }

    /// Loads a set from `path`.
    ///
    /// # Errors
    /// Returns [`ReportError`] on filesystem, JSON, or schema errors.
    pub fn load(path: &std::path::Path) -> Result<Self, ReportError> {
        Self::parse(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ResultSet {
        let mut dist = Counter::new();
        dist.add_n(4, 881);
        dist.add_n(5, 118);
        dist.add_n(6, 1);
        let spec = ExperimentSpec::new("table1", "Max load with random arcs")
            .paper_ref("Table 1")
            .trials(1000)
            .seed(0)
            .param("space", Json::str("ring"))
            .param(
                "n",
                Json::Arr(vec![Json::from_usize(256), Json::from_usize(4096)]),
            )
            .param("m", Json::str("n"));
        let mut result = ExperimentResult::new(spec);
        result.push(
            Cell::new()
                .coord("n", Json::from_usize(4096))
                .coord("d", Json::from_usize(2))
                .dist(dist)
                .metric("mean", Json::num(4.12)),
        );
        result.push(
            Cell::new()
                .coord("n", Json::from_usize(256))
                .coord("d", Json::from_usize(1))
                .metric("mean_hops", Json::num(3.5)),
        );
        let mut set = ResultSet::new(Provenance {
            tool: "geo2c-report".into(),
            version: "0.1.0".into(),
            git_rev: "deadbeef".into(),
            seed: 0,
        });
        set.push(result);
        set
    }

    #[test]
    fn result_set_roundtrips_through_json_text() {
        let set = sample_set();
        let text = set.render();
        let back = ResultSet::parse(&text).unwrap();
        assert_eq!(back, set);
        // And the render is stable (byte-identical re-render).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn result_set_roundtrips_through_files() {
        let set = sample_set();
        let path = std::env::temp_dir().join(format!(
            "geo2c-report-test-{}/nested/dir/set.json",
            std::process::id()
        ));
        set.save(&path).unwrap();
        let back = ResultSet::load(&path).unwrap();
        assert_eq!(back, set);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn experiment_lookup_by_id() {
        let set = sample_set();
        assert!(set.experiment("table1").is_some());
        assert!(set.experiment("nope").is_none());
    }

    #[test]
    fn cell_label_and_stats() {
        let set = sample_set();
        let cell = &set.experiments[0].cells[0];
        assert_eq!(cell.label(), "n=4096, d=2");
        let stats = cell.dist_stats();
        assert_eq!(stats.count(), 1000);
        assert!((stats.mean() - 4.12).abs() < 1e-12);
        // A cell without a distribution has empty stats.
        assert_eq!(set.experiments[0].cells[1].dist_stats().count(), 0);
    }

    #[test]
    fn wrong_format_tag_is_rejected() {
        let mut v = sample_set().to_json();
        if let Json::Obj(fields) = &mut v {
            fields[0].1 = Json::str("geo2c/resultset-v999");
        }
        let err = ResultSet::from_json(&v).unwrap_err();
        assert!(err.to_string().contains("unsupported format"));
    }

    #[test]
    fn missing_fields_are_schema_errors() {
        for text in [
            r#"{"format": "geo2c/resultset-v1"}"#,
            r#"{"format": "geo2c/resultset-v1", "provenance": {"tool": "t"}, "experiments": []}"#,
        ] {
            let err = ResultSet::parse(text).unwrap_err();
            assert!(matches!(err, ReportError::Schema(_)), "{text}");
        }
        assert!(matches!(
            ResultSet::parse("not json").unwrap_err(),
            ReportError::Json(_)
        ));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        // A typo'd field in a hand-edited expectation file must error,
        // not silently vanish ('trails' alongside the real 'trials').
        let mut spec_json = ExperimentSpec::new("t", "t").to_json();
        if let Json::Obj(fields) = &mut spec_json {
            fields.push(("trails".into(), Json::from_usize(500)));
        }
        let err = ExperimentSpec::from_json(&spec_json).unwrap_err();
        assert!(err.to_string().contains("unknown field 'trails'"), "{err}");

        let cell_json =
            Json::parse(r#"{"coords": {}, "distribution": null, "metrics": {}, "extra": 1}"#)
                .unwrap();
        assert!(Cell::from_json(&cell_json)
            .unwrap_err()
            .to_string()
            .contains("unknown field 'extra'"));
    }

    #[test]
    fn bad_distribution_entries_are_rejected() {
        let text = r#"{"coords": {}, "distribution": [[1.5, 2]], "metrics": {}}"#;
        let err = Cell::from_json(&Json::parse(text).unwrap()).unwrap_err();
        assert!(err.to_string().contains("integer pairs"));
    }

    #[test]
    fn provenance_capture_runs() {
        let p = Provenance::capture(7);
        assert_eq!(p.seed, 7);
        assert!(!p.tool.is_empty());
        assert!(!p.git_rev.is_empty());
    }
}
