//! Rendering [`ExperimentResult`]s for humans: plain-text tables for
//! stdout and markdown tables for `EXPERIMENTS.md`.
//!
//! Two layouts cover every experiment in the workspace:
//!
//! * **flat** — one row per cell; columns are the cell coordinates, the
//!   scalar metrics, and (if present) the distribution in the paper's
//!   `value: percent` style.
//! * **pivot** — the paper's own layout for Tables 1–3: one row per
//!   value of a *row coordinate* (`n`), one column per value of a
//!   *column coordinate* (`d`, or the tie-break strategy), each cell a
//!   small max-load distribution.
//!
//! All output is a pure function of the result (no clocks, no locale),
//! which is what lets `tables.sh` regenerate `EXPERIMENTS.md`
//! byte-identically.

use crate::json::Json;
use crate::spec::{Cell, ExperimentResult};
use geo2c_util::hist::Counter;
use geo2c_util::table::TextTable;
use std::fmt::Write as _;

/// Formats a JSON scalar for table cells: integers plainly, floats with
/// up to four decimals (scientific notation below `1e-3`), everything
/// else via compact JSON.
#[must_use]
pub fn fmt_json(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Num(x) => fmt_num(*x),
        Json::Null => "-".to_string(),
        other => other.render(),
    }
}

fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        return format!("{}", x as i64);
    }
    if x.abs() < 1e-3 {
        return format!("{x:.3e}");
    }
    let mut s = format!("{x:.4}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// Formats a coordinate value; large powers of two render as `2^k`
/// (the paper's row labels).
#[must_use]
pub fn fmt_coord(v: &Json) -> String {
    if let Some(x) = v.as_u64() {
        if x >= 64 && x.is_power_of_two() {
            return format!("2^{}", x.trailing_zeros());
        }
    }
    fmt_json(v)
}

/// The paper-style distribution text, one `value: percent` pair per line.
fn dist_lines(dist: &Counter) -> Vec<String> {
    let total = dist.total().max(1);
    dist.iter()
        .map(|(v, c)| format!("{v}: {:.1}%", 100.0 * c as f64 / total as f64))
        .collect()
}

/// A single-line distribution: the full paper style when the support is
/// small, a `min..max (mode m)` range when it is wide (clustered d = 1
/// runs can span dozens of values — a row-width, not information, limit).
fn dist_summary(dist: &Counter) -> String {
    const MAX_INLINE_SUPPORT: usize = 8;
    if dist.iter().count() <= MAX_INLINE_SUPPORT {
        dist_lines(dist).join(" · ")
    } else {
        format!(
            "{}..{} (mode {})",
            dist.min().unwrap_or(0),
            dist.max().unwrap_or(0),
            dist.mode().unwrap_or(0)
        )
    }
}

/// The columns of a flat layout: coordinate keys, then metric keys (in
/// first-appearance order), then the distribution if any cell has one.
fn flat_columns(result: &ExperimentResult) -> (Vec<String>, bool) {
    let mut keys: Vec<String> = Vec::new();
    let mut has_dist = false;
    for cell in &result.cells {
        for (k, _) in cell.coords.iter().chain(&cell.metrics) {
            if !keys.contains(k) {
                keys.push(k.clone());
            }
        }
        has_dist |= cell.distribution.is_some();
    }
    (keys, has_dist)
}

fn flat_row(cell: &Cell, keys: &[String], has_dist: bool) -> Vec<String> {
    let lookup = |key: &String| {
        cell.coords
            .iter()
            .chain(&cell.metrics)
            .find(|(k, _)| k == key)
            .map_or_else(String::new, |(k, v)| {
                if k == "n" {
                    fmt_coord(v)
                } else {
                    fmt_json(v)
                }
            })
    };
    let mut row: Vec<String> = keys.iter().map(lookup).collect();
    if has_dist {
        row.push(match &cell.distribution {
            Some(d) => dist_summary(d),
            None => "-".to_string(),
        });
    }
    row
}

/// Renders the flat plain-text table for stdout.
#[must_use]
pub fn render_text(result: &ExperimentResult) -> String {
    let (keys, has_dist) = flat_columns(result);
    let mut header = keys.clone();
    if has_dist {
        header.push("distribution".to_string());
    }
    let mut table = TextTable::new(header);
    for cell in &result.cells {
        table.push_row(flat_row(cell, &keys, has_dist));
    }
    format!(
        "== {} ==\n({}; trials={} seed={})\n\n{}",
        result.spec.title, result.spec.paper_ref, result.spec.trials, result.spec.seed, table
    )
}

/// The distinct values of a coordinate, in first-appearance order.
fn coord_values(result: &ExperimentResult, key: &str) -> Vec<Json> {
    let mut values = Vec::new();
    for cell in &result.cells {
        if let Some((_, v)) = cell.coords.iter().find(|(k, _)| k == key) {
            if !values.contains(v) {
                values.push(v.clone());
            }
        }
    }
    values
}

fn find_cell<'a>(
    result: &'a ExperimentResult,
    row_key: &str,
    row: &Json,
    col_key: &str,
    col: &Json,
) -> Option<&'a Cell> {
    result.cells.iter().find(|cell| {
        cell.coords.iter().any(|(k, v)| k == row_key && v == row)
            && cell.coords.iter().any(|(k, v)| k == col_key && v == col)
    })
}

fn pivot_cell_text(cell: Option<&Cell>, sep: &str) -> String {
    match cell.and_then(|c| c.distribution.as_ref().map(|d| (c, d))) {
        Some((cell, dist)) => {
            let mut lines = dist_lines(dist);
            let stats = cell.dist_stats();
            lines.push(format!("(mean {:.2})", stats.mean()));
            lines.join(sep)
        }
        None => "-".to_string(),
    }
}

/// Renders the paper-layout plain-text table: rows by `row_key`,
/// columns by `col_key`, multi-line distribution cells.
#[must_use]
pub fn render_text_pivot(result: &ExperimentResult, row_key: &str, col_key: &str) -> String {
    let rows = coord_values(result, row_key);
    let cols = coord_values(result, col_key);
    let mut table = TextTable::new(
        std::iter::once(row_key.to_string())
            .chain(cols.iter().map(|c| format!("{col_key}={}", fmt_json(c)))),
    );
    for row in &rows {
        let mut cells = vec![fmt_coord(row)];
        for col in &cols {
            cells.push(pivot_cell_text(
                find_cell(result, row_key, row, col_key, col),
                "\n",
            ));
        }
        table.push_row(cells);
    }
    format!(
        "== {} ==\n({}; trials={} seed={})\n\n{}",
        result.spec.title, result.spec.paper_ref, result.spec.trials, result.spec.seed, table
    )
}

fn markdown_escape(s: &str) -> String {
    s.replace('|', "\\|")
}

fn markdown_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {} |",
        header
            .iter()
            .map(|h| markdown_escape(h))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let _ = writeln!(out, "|{}|", vec!["---"; header.len()].join("|"));
    for row in rows {
        let _ = writeln!(
            out,
            "| {} |",
            row.iter()
                .map(|c| markdown_escape(c))
                .collect::<Vec<_>>()
                .join(" | ")
        );
    }
    out
}

fn spec_preamble(result: &ExperimentResult) -> String {
    let spec = &result.spec;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "*Reproduces:* {} · *trials per cell:* {} · *seed:* {}",
        spec.paper_ref, spec.trials, spec.seed
    );
    if !spec.params.is_empty() {
        let params: Vec<String> = spec
            .params
            .iter()
            .map(|(k, v)| format!("`{k} = {}`", v.render()))
            .collect();
        let _ = writeln!(out, "\nParameters: {}.", params.join(", "));
    }
    out.push('\n');
    out
}

/// Renders one experiment as a flat markdown section (`##` heading).
#[must_use]
pub fn render_markdown(result: &ExperimentResult) -> String {
    let (keys, has_dist) = flat_columns(result);
    let mut header = keys.clone();
    if has_dist {
        // Generic label: flat tables carry max-load distributions for
        // the paper tables but per-server load profiles for `serving`.
        header.push("distribution".to_string());
    }
    let rows: Vec<Vec<String>> = result
        .cells
        .iter()
        .map(|cell| flat_row(cell, &keys, has_dist))
        .collect();
    format!(
        "## {}\n\n{}{}",
        result.spec.title,
        spec_preamble(result),
        markdown_table(&header, &rows)
    )
}

/// Renders one experiment as a paper-layout markdown section: rows by
/// `row_key`, one column per `col_key` value, `<br>`-separated
/// distribution lines inside each cell.
#[must_use]
pub fn render_markdown_pivot(result: &ExperimentResult, row_key: &str, col_key: &str) -> String {
    let rows = coord_values(result, row_key);
    let cols = coord_values(result, col_key);
    let header: Vec<String> = std::iter::once(row_key.to_string())
        .chain(cols.iter().map(|c| format!("{col_key} = {}", fmt_json(c))))
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            std::iter::once(fmt_coord(row))
                .chain(cols.iter().map(|col| {
                    pivot_cell_text(find_cell(result, row_key, row, col_key, col), "<br>")
                }))
                .collect()
        })
        .collect();
    format!(
        "## {}\n\n{}{}",
        result.spec.title,
        spec_preamble(result),
        markdown_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn sample() -> ExperimentResult {
        let mut dist = Counter::new();
        dist.add_n(4, 881);
        dist.add_n(5, 119);
        let spec = ExperimentSpec::new("table1", "Table 1 sample")
            .paper_ref("Table 1")
            .trials(1000)
            .param("space", Json::str("ring"));
        let mut result = ExperimentResult::new(spec);
        result.push(
            Cell::new()
                .coord("n", Json::from_usize(4096))
                .coord("d", Json::from_usize(2))
                .dist(dist)
                .metric("mean", Json::num(4.119)),
        );
        result.push(
            Cell::new()
                .coord("n", Json::from_usize(4096))
                .coord("d", Json::from_usize(1))
                .metric("mean", Json::num(7.0)),
        );
        result
    }

    #[test]
    fn flat_text_contains_everything() {
        let text = render_text(&sample());
        assert!(text.contains("Table 1 sample"));
        assert!(text.contains("2^12"), "{text}");
        assert!(text.contains("4: 88.1% · 5: 11.9%"), "{text}");
        assert!(text.contains("4.119"));
        assert!(text.contains("trials=1000"));
    }

    #[test]
    fn pivot_layouts_place_cells_by_coords() {
        let result = sample();
        let text = render_text_pivot(&result, "n", "d");
        assert!(text.contains("d=2"));
        assert!(text.contains("(mean 4.12)"), "{text}");
        let md = render_markdown_pivot(&result, "n", "d");
        assert!(md.contains("| n | d = 2 | d = 1 |"), "{md}");
        assert!(md.contains("4: 88.1%<br>5: 11.9%<br>(mean 4.12)"), "{md}");
        // The d=1 cell has no distribution.
        assert!(md.contains("| - |"), "{md}");
    }

    #[test]
    fn flat_markdown_is_a_table() {
        let md = render_markdown(&sample());
        assert!(md.starts_with("## Table 1 sample"));
        assert!(md.contains("| n | d | mean | distribution |"), "{md}");
        assert!(md.contains("`space = \"ring\"`"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(4.0), "4");
        assert_eq!(fmt_num(4.1), "4.1");
        assert_eq!(fmt_num(4.119), "4.119");
        assert_eq!(fmt_num(0.30000000000000004), "0.3");
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1e-7), "1.000e-7");
        assert_eq!(fmt_num(-2.5), "-2.5");
        assert_eq!(fmt_coord(&Json::from_usize(65536)), "2^16");
        assert_eq!(fmt_coord(&Json::from_usize(48)), "48");
        assert_eq!(fmt_json(&Json::str("ring")), "ring");
        assert_eq!(fmt_json(&Json::Null), "-");
    }

    #[test]
    fn wide_distributions_collapse_to_a_range_in_flat_rows() {
        let mut dist = Counter::new();
        for v in 5..25u64 {
            dist.add_n(v, if v == 9 { 10 } else { 1 });
        }
        let mut result = ExperimentResult::new(ExperimentSpec::new("wide", "Wide").trials(29));
        result.push(Cell::new().coord("q", Json::num(0.99)).dist(dist));
        let text = render_text(&result);
        assert!(text.contains("5..24 (mode 9)"), "{text}");
        assert!(!text.contains(" · "), "{text}");
    }

    #[test]
    fn markdown_pipes_are_escaped() {
        let table = markdown_table(&["a|b".to_string()], &[vec!["c|d".to_string()]]);
        assert!(table.contains("a\\|b"));
        assert!(table.contains("c\\|d"));
    }
}
