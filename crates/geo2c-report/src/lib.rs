//! Experiment reporting for the geometric two-choices reproduction.
//!
//! The paper's claims live in its tables (max-load distributions on the
//! ring and torus as `d` grows); this crate is the substrate that makes
//! those tables *reproducible and diffable* instead of scrollback text:
//!
//! * [`json`] — a hand-rolled, vendor-shim-friendly JSON value type with
//!   a stable renderer (insertion-ordered keys, shortest-round-trip
//!   numbers), so committed artifacts regenerate byte-identically.
//! * [`spec`] — [`ExperimentSpec`] (what was run), [`Cell`] /
//!   [`ExperimentResult`] (what was measured) and [`ResultSet`] (the
//!   persisted unit, stamped with seed and git-revision [`Provenance`]).
//!   These are the files under `results/` in the repository root.
//! * [`tolerance`] — statistical diffing between a fresh run and the
//!   committed expectations (`run_tables --check`), built on the
//!   two-sample statistics in [`geo2c_util::stats`].
//! * [`markdown`] — flat and paper-layout (pivot) rendering to plain
//!   text for stdout and markdown for `EXPERIMENTS.md`.
//!
//! Every `geo2c-bench` binary declares a spec and emits its numbers
//! through these types; the `run_tables` driver persists them and keeps
//! `EXPERIMENTS.md` honest in CI.
//!
//! ```
//! use geo2c_report::{Cell, ExperimentResult, ExperimentSpec, Json, ResultSet, Provenance};
//! use geo2c_util::hist::Counter;
//!
//! // Declare what is being run...
//! let spec = ExperimentSpec::new("demo", "Demo sweep").trials(3).seed(7);
//! let mut result = ExperimentResult::new(spec);
//! // ...record a measured cell...
//! let dist: Counter = [4u64, 4, 5].into_iter().collect();
//! result.push(Cell::new().coord("n", Json::from_usize(256)).dist(dist));
//! // ...and persist with provenance. The JSON round-trips losslessly.
//! let mut set = ResultSet::new(Provenance::capture(7));
//! set.push(result);
//! let reloaded = ResultSet::parse(&set.render()).unwrap();
//! assert_eq!(reloaded, set);
//! assert_eq!(reloaded.experiment("demo").unwrap().cells.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod markdown;
pub mod spec;
pub mod tolerance;

pub use json::{Json, JsonError};
pub use spec::{
    Cell, ExperimentResult, ExperimentSpec, Provenance, ReportError, ResultSet, FORMAT,
};
pub use tolerance::{compare_results, compare_sets, Discrepancy, Tolerance};
