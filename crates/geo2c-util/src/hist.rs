//! Integer-valued empirical distributions.
//!
//! The paper reports its headline results (Tables 1–3) as *distributions of
//! the maximum load* over trials: e.g. for `n = 2^12`, `d = 2`, "4 : 88.1%,
//! 5 : 11.8%, 6 : 0.1%". [`Counter`] collects such distributions and renders
//! them in exactly that form, so the `geo2c-bench` table binaries can print
//! output that is line-for-line comparable with the paper.
//!
//! [`Histogram`] is the hot-path sibling: a dense `Vec<u64>` of counts
//! indexed by value, for order statistics (max, percentiles, mean) over
//! value ranges the two-choices bound keeps tiny — one counting pass, no
//! sort, no per-sample allocation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A frequency counter over `u64` values, kept in sorted order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Counter {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `k` observations of `value`.
    pub fn add_n(&mut self, value: u64, k: u64) {
        if k > 0 {
            *self.counts.entry(value).or_insert(0) += k;
            self.total += k;
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        for (&v, &c) in &other.counts {
            self.add_n(v, c);
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations of exactly `value`.
    #[must_use]
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Fraction of observations equal to `value` (0 if the counter is empty).
    #[must_use]
    pub fn fraction(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Smallest observed value, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest observed value, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Most frequent value (smallest such value on ties), if any.
    #[must_use]
    pub fn mode(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&v, _)| v)
    }

    /// Mean of the observations (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.counts.iter().map(|(&v, &c)| v as f64 * c as f64).sum();
        sum / self.total as f64
    }

    /// Fraction of observations that are ≥ `value`.
    #[must_use]
    pub fn fraction_at_least(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self.counts.range(value..).map(|(_, &c)| c).sum();
        c as f64 / self.total as f64
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Renders the distribution in the paper's style:
    /// `"4: 88.1%  5: 11.8%  6: 0.1%"`, one decimal place, increasing value.
    ///
    /// Values with zero recorded observations are omitted, as in the paper.
    #[must_use]
    pub fn paper_style(&self) -> String {
        let mut out = String::new();
        for (v, c) in self.iter() {
            if !out.is_empty() {
                out.push_str("  ");
            }
            let pct = 100.0 * c as f64 / self.total.max(1) as f64;
            let _ = write!(out, "{v}: {pct:.1}%");
        }
        if out.is_empty() {
            out.push('-');
        }
        out
    }

    /// Renders one line per value: `"  4 ...... 88.1%"`, mirroring the
    /// layout of the paper's Tables 1–3 cells.
    #[must_use]
    pub fn paper_column(&self) -> String {
        let mut out = String::new();
        for (v, c) in self.iter() {
            let pct = 100.0 * c as f64 / self.total.max(1) as f64;
            let _ = writeln!(out, "{v:>4} ...... {pct:.1}%");
        }
        out
    }
}

/// A dense frequency histogram over small `u32` values.
///
/// Buckets are a flat `Vec<u64>` indexed by value, so recording is one
/// increment and every order statistic is a single forward scan of the
/// counts. Made for distributions whose support is tiny relative to the
/// sample count — live server loads under the power-of-d bound, where a
/// full sort per sample point is pure waste. Memory is
/// O(largest recorded value); do not feed it sentinel-sized values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[v]` observations of value `v`.
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty histogram pre-sized to record values up to `max_value`
    /// without reallocating.
    #[must_use]
    pub fn with_max(max_value: u32) -> Self {
        Self {
            buckets: vec![0; max_value as usize + 1],
            total: 0,
        }
    }

    /// Records one observation of `value`, growing the bucket array if
    /// the value exceeds the pre-sized range.
    pub fn record(&mut self, value: u32) {
        let v = value as usize;
        if v >= self.buckets.len() {
            self.buckets.resize(v + 1, 0);
        }
        self.buckets[v] += 1;
        self.total += 1;
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of observations of exactly `value`.
    #[must_use]
    pub fn count(&self, value: u32) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// Largest recorded value (`0` if empty).
    #[must_use]
    pub fn max(&self) -> u32 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |v| v as u32)
    }

    /// Sum of all observations. Exact while below `u64` range — with
    /// integer observations this makes `sum() / total()` bit-identical
    /// to the mean of the sorted sample (both are the same integer sum).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum()
    }

    /// Mean of the observations (`0` if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum() as f64 / self.total as f64
        }
    }

    /// The value that would sit at `index` in the sorted sample — the
    /// percentile primitive: the smallest value whose cumulative count
    /// exceeds `index`.
    ///
    /// # Panics
    /// Panics if `index >= total()`.
    #[must_use]
    pub fn value_at_sorted_index(&self, index: u64) -> u32 {
        assert!(index < self.total, "sorted index out of range");
        let mut seen = 0u64;
        for (v, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > index {
                return v as u32;
            }
        }
        unreachable!("cumulative counts sum to total");
    }
}

impl FromIterator<u32> for Histogram {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl FromIterator<u64> for Counter {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut c = Counter::new();
        for v in iter {
            c.add(v);
        }
        c
    }
}

impl Extend<u64> for Counter {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_fractions() {
        let c: Counter = [4u64, 4, 4, 5, 5, 6].into_iter().collect();
        assert_eq!(c.total(), 6);
        assert_eq!(c.count(4), 3);
        assert_eq!(c.count(7), 0);
        assert!((c.fraction(4) - 0.5).abs() < 1e-12);
        assert_eq!(c.min(), Some(4));
        assert_eq!(c.max(), Some(6));
        assert_eq!(c.mode(), Some(4));
        assert!((c.mean() - 28.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_at_least() {
        let c: Counter = [1u64, 2, 2, 3, 10].into_iter().collect();
        assert!((c.fraction_at_least(2) - 0.8).abs() < 1e-12);
        assert!((c.fraction_at_least(4) - 0.2).abs() < 1e-12);
        assert_eq!(c.fraction_at_least(11), 0.0);
        assert_eq!(c.fraction_at_least(0), 1.0);
    }

    #[test]
    fn empty_counter() {
        let c = Counter::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.min(), None);
        assert_eq!(c.max(), None);
        assert_eq!(c.mode(), None);
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.fraction(3), 0.0);
        assert_eq!(c.paper_style(), "-");
    }

    #[test]
    fn merge_accumulates() {
        let mut a: Counter = [1u64, 2].into_iter().collect();
        let b: Counter = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(3), 1);
    }

    #[test]
    fn paper_style_formatting() {
        let mut c = Counter::new();
        c.add_n(4, 881);
        c.add_n(5, 118);
        c.add_n(6, 1);
        assert_eq!(c.paper_style(), "4: 88.1%  5: 11.8%  6: 0.1%");
    }

    #[test]
    fn paper_column_formatting() {
        let mut c = Counter::new();
        c.add_n(3, 500);
        c.add_n(4, 500);
        let col = c.paper_column();
        assert!(col.contains("3 ...... 50.0%"));
        assert!(col.contains("4 ...... 50.0%"));
    }

    #[test]
    fn mode_prefers_smaller_on_tie() {
        let c: Counter = [7u64, 7, 9, 9].into_iter().collect();
        assert_eq!(c.mode(), Some(7));
    }

    #[test]
    fn add_n_zero_is_noop() {
        let mut c = Counter::new();
        c.add_n(5, 0);
        assert_eq!(c.total(), 0);
        assert_eq!(c.count(5), 0);
    }

    #[test]
    fn histogram_order_statistics_match_the_sorted_sample() {
        let sample = [4u32, 0, 7, 4, 4, 2, 7, 1, 0, 3];
        let hist: Histogram = sample.iter().copied().collect();
        let mut sorted = sample.to_vec();
        sorted.sort_unstable();
        assert_eq!(hist.total(), sample.len() as u64);
        assert_eq!(hist.max(), *sorted.last().unwrap());
        assert_eq!(hist.count(4), 3);
        assert_eq!(hist.count(99), 0);
        for (i, &v) in sorted.iter().enumerate() {
            assert_eq!(hist.value_at_sorted_index(i as u64), v);
        }
        let sum: u64 = sample.iter().map(|&v| u64::from(v)).sum();
        assert_eq!(hist.sum(), sum);
        assert!((hist.mean() - sum as f64 / 10.0).abs() < 1e-15);
    }

    #[test]
    fn histogram_grows_past_its_presized_range() {
        let mut hist = Histogram::with_max(3);
        hist.record(2);
        hist.record(9);
        assert_eq!(hist.max(), 9);
        assert_eq!(hist.total(), 2);
        assert_eq!(hist.value_at_sorted_index(1), 9);
    }

    #[test]
    fn empty_histogram() {
        let hist = Histogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.max(), 0);
        assert_eq!(hist.sum(), 0);
        assert_eq!(hist.mean(), 0.0);
        let also = Histogram::with_max(8);
        assert!(also.is_empty());
        assert_eq!(also.max(), 0);
    }

    #[test]
    #[should_panic(expected = "sorted index out of range")]
    fn histogram_sorted_index_bounds_are_checked() {
        let hist: Histogram = [1u32].iter().copied().collect();
        let _ = hist.value_at_sorted_index(1);
    }
}
