//! Summary and order statistics for experiment post-processing.
//!
//! Three tools live here:
//!
//! * [`RunningStats`] — single-pass mean/variance/min/max (Welford's
//!   algorithm), used wherever we aggregate per-trial scalars (max load,
//!   lookup hops, region areas) without storing every sample.
//! * [`OrderStats`] — exact quantiles and "sum of the `a` largest" queries
//!   over a stored sample. The paper's Lemma 6 is a statement about the sum
//!   of the `a` longest arcs; its empirical validation (experiment E6)
//!   needs exact top-`a` sums, not approximations.
//! * [`two_proportion_z`] / [`welch_z`] — two-sample test statistics used
//!   by the `run_tables --check` tolerance diff (`geo2c-report`) to decide
//!   whether a fresh run of a table is statistically consistent with the
//!   expectations committed in `EXPERIMENTS.md` / `results/`.

/// Two-sample pooled z statistic for a difference in proportions.
///
/// Given `k1` successes out of `n1` trials and `k2` out of `n2`, returns
/// `|p1 − p2| / √(p̄(1−p̄)(1/n1 + 1/n2))` with `p̄` the pooled proportion.
/// This is the statistic the experiment `--check` mode uses to decide
/// whether a freshly measured max-load distribution is consistent with
/// the committed expectation: each table cell percentage is a binomial
/// proportion over trials, so a large z flags real drift rather than
/// Monte-Carlo noise.
///
/// Degenerate cases: returns `0` when the observed difference is zero
/// (even with no trials), and `+∞` when the pooled variance is zero but
/// the proportions differ (e.g. 0/100 vs 5/100 has positive variance;
/// 0/100 vs 0/100 returns 0; comparing against zero-trial samples with a
/// nonzero difference returns `+∞`).
#[must_use]
pub fn two_proportion_z(k1: u64, n1: u64, k2: u64, n2: u64) -> f64 {
    let p1 = if n1 == 0 { 0.0 } else { k1 as f64 / n1 as f64 };
    let p2 = if n2 == 0 { 0.0 } else { k2 as f64 / n2 as f64 };
    let diff = (p1 - p2).abs();
    if diff == 0.0 {
        return 0.0;
    }
    if n1 == 0 || n2 == 0 {
        return f64::INFINITY;
    }
    let pooled = (k1 + k2) as f64 / (n1 + n2) as f64;
    let var = pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64);
    if var <= 0.0 {
        return f64::INFINITY;
    }
    diff / var.sqrt()
}

/// Welch's (unpooled) z statistic for a difference in means.
///
/// `|m1 − m2| / √(v1/n1 + v2/n2)` with sample variances `v1`, `v2`. Used
/// by the `--check` mode to compare per-cell mean max loads. Returns `0`
/// for a zero difference and `+∞` when the standard error is zero but
/// the means differ (a deterministic quantity changed).
#[must_use]
pub fn welch_z(m1: f64, v1: f64, n1: u64, m2: f64, v2: f64, n2: u64) -> f64 {
    let diff = (m1 - m2).abs();
    if diff == 0.0 {
        return 0.0;
    }
    if n1 == 0 || n2 == 0 {
        return f64::INFINITY;
    }
    let se2 = v1 / n1 as f64 + v2 / n2 as f64;
    if se2 <= 0.0 {
        return f64::INFINITY;
    }
    diff / se2.sqrt()
}

/// Single-pass (Welford) accumulator for mean, variance, min and max.
///
/// Numerically stable for long streams; merging two accumulators is
/// supported so per-thread statistics can be combined.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// variance update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` if empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Exact order statistics over a stored `f64` sample.
///
/// Sorting is deferred until the first query and cached thereafter; pushes
/// after a query re-mark the sample dirty.
#[derive(Debug, Clone, Default)]
pub struct OrderStats {
    data: Vec<f64>,
    sorted: bool,
}

impl OrderStats {
    /// Creates an empty sample.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sample from a vector of observations.
    #[must_use]
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self {
            data,
            sorted: false,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.data.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no observations have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.data
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank on the sorted sample.
    ///
    /// # Panics
    /// Panics if the sample is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(!self.data.is_empty(), "quantile of empty sample");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        self.ensure_sorted();
        let idx = ((q * (self.data.len() - 1) as f64).round() as usize).min(self.data.len() - 1);
        self.data[idx]
    }

    /// Sum of the `a` largest observations (`a` clamped to the sample size).
    ///
    /// This is the quantity bounded by the paper's Lemma 6: with `n` random
    /// arcs, the sum of the `a` longest is at most `2(a/n)·ln(n/a)` w.h.p.
    pub fn sum_of_largest(&mut self, a: usize) -> f64 {
        self.ensure_sorted();
        let a = a.min(self.data.len());
        self.data[self.data.len() - a..].iter().sum()
    }

    /// The `k`-th largest observation (1-based; `k = 1` is the maximum).
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds the sample size.
    pub fn kth_largest(&mut self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.data.len(), "k={k} out of range");
        self.ensure_sorted();
        self.data[self.data.len() - k]
    }

    /// Number of observations that are at least `threshold`.
    pub fn count_at_least(&mut self, threshold: f64) -> usize {
        self.ensure_sorted();
        let idx = self.data.partition_point(|&x| x < threshold);
        self.data.len() - idx
    }

    /// Sum of all observations.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_proportion_z_behaviour() {
        // Identical samples: no signal.
        assert_eq!(two_proportion_z(881, 1000, 881, 1000), 0.0);
        assert_eq!(two_proportion_z(0, 0, 0, 0), 0.0);
        // A 88.1% vs 86.0% shift over 1000 trials is ~1.4 sigma.
        let z = two_proportion_z(881, 1000, 860, 1000);
        assert!(z > 1.0 && z < 2.0, "z = {z}");
        // A gross shift is many sigma.
        assert!(two_proportion_z(881, 1000, 500, 1000) > 10.0);
        // Zero-trial sample with a nonzero difference: infinite signal.
        assert_eq!(two_proportion_z(5, 10, 0, 0), f64::INFINITY);
        // Symmetric.
        assert_eq!(
            two_proportion_z(881, 1000, 860, 1000),
            two_proportion_z(860, 1000, 881, 1000)
        );
    }

    #[test]
    fn welch_z_behaviour() {
        assert_eq!(welch_z(4.1, 0.3, 1000, 4.1, 0.3, 1000), 0.0);
        let z = welch_z(4.10, 0.3, 1000, 4.15, 0.3, 1000);
        assert!(z > 1.0 && z < 3.0, "z = {z}");
        assert!(welch_z(4.1, 0.3, 1000, 6.0, 0.3, 1000) > 10.0);
        // Deterministic quantity changed: infinite signal.
        assert_eq!(welch_z(4.0, 0.0, 1000, 4.1, 0.0, 1000), f64::INFINITY);
        assert_eq!(welch_z(4.0, 0.1, 0, 4.1, 0.1, 10), f64::INFINITY);
    }

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; unbiased sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(xs.iter().copied());
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.extend(xs[..37].iter().copied());
        b.extend(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn running_stats_merge_with_empty() {
        let mut a = RunningStats::new();
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 3.0);
    }

    #[test]
    fn order_stats_quantiles() {
        let mut o = OrderStats::from_vec((1..=100).map(f64::from).collect());
        assert_eq!(o.quantile(0.0), 1.0);
        assert_eq!(o.quantile(1.0), 100.0);
        // round(0.5 * 99) = 50 (half away from zero) → the 51st value.
        assert_eq!(o.quantile(0.5), 51.0);
        assert_eq!(o.quantile(0.25), 26.0);
    }

    #[test]
    fn order_stats_sum_of_largest() {
        let mut o = OrderStats::from_vec(vec![0.1, 0.5, 0.2, 0.9, 0.3]);
        assert!((o.sum_of_largest(2) - 1.4).abs() < 1e-12);
        assert!((o.sum_of_largest(100) - 2.0).abs() < 1e-12);
        assert_eq!(o.sum_of_largest(0), 0.0);
    }

    #[test]
    fn order_stats_kth_largest_and_count() {
        let mut o = OrderStats::from_vec(vec![5.0, 1.0, 3.0, 3.0, 8.0]);
        assert_eq!(o.kth_largest(1), 8.0);
        assert_eq!(o.kth_largest(2), 5.0);
        assert_eq!(o.kth_largest(5), 1.0);
        assert_eq!(o.count_at_least(3.0), 4);
        assert_eq!(o.count_at_least(8.5), 0);
        assert_eq!(o.count_at_least(-1.0), 5);
    }

    #[test]
    fn order_stats_push_invalidates_cache() {
        let mut o = OrderStats::from_vec(vec![1.0, 2.0]);
        assert_eq!(o.kth_largest(1), 2.0);
        o.push(10.0);
        assert_eq!(o.kth_largest(1), 10.0);
    }

    #[test]
    #[should_panic(expected = "quantile of empty sample")]
    fn quantile_empty_panics() {
        OrderStats::new().quantile(0.5);
    }
}
