//! Shared infrastructure for the *geometric power of two choices* workspace.
//!
//! This crate provides the non-geometric substrate that every experiment in
//! the reproduction relies on:
//!
//! * [`rng`] — deterministic, splittable random-number generation. Every
//!   experiment in the paper is a Monte-Carlo trial; reproducibility across
//!   threads requires that trial `i` sees the same stream regardless of which
//!   worker executes it. We implement SplitMix64 (seeding / stream
//!   derivation) and xoshiro256++ (bulk generation) in-tree so results are
//!   stable across platforms and `rand` versions.
//! * [`parallel`] — a small fork-join trial runner built on
//!   `crossbeam::scope`. The paper's tables are 1000-trial sweeps; trials are
//!   embarrassingly parallel.
//! * [`stats`] — streaming summary statistics (Welford) and exact order
//!   statistics used by the tail-bound experiments (Lemmas 4–6, 9).
//! * [`hist`] — integer-valued distributions. The paper reports *maximum
//!   load* as a percentage distribution over trials (Tables 1–3); this module
//!   reproduces that presentation.
//! * [`table`] — plain-text table rendering for the paper-style output of the
//!   `geo2c-bench` binaries.
//! * [`bounds`] — executable concentration bounds (Chernoff / Lemma 2,
//!   Chernoff–Hoeffding KL form, Azuma, exact binomial tails) so lemma
//!   experiments print *bound vs observed* from one source of truth.
//! * [`frame`] — length-prefixed, CRC-guarded binary framing (plus
//!   magic/version file headers) for the serving engine's durable
//!   checkpoint and journal files, with torn-tail vs real-corruption
//!   discrimination for crash recovery.
//!
//! The reproducibility contract in one example — independent streams per
//! `(experiment, trial)`, identical on every platform and thread count
//! (the committed `EXPERIMENTS.md` numbers rely on exactly this):
//!
//! ```
//! use geo2c_util::{Counter, StreamSeeder};
//! use rand::Rng;
//!
//! let seeder = StreamSeeder::new(0).child("demo-experiment");
//! // Trial 3's stream is the same no matter who runs it, or when.
//! let mut rng = seeder.stream(3);
//! let dist: Counter = (0..100).map(|_| rng.gen_range(0u64..4)).collect();
//! assert_eq!(dist.total(), 100);
//! assert!(dist.paper_style().contains('%'));
//! assert_eq!(
//!     seeder.stream(3).gen::<u64>(),
//!     StreamSeeder::new(0).child("demo-experiment").stream(3).gen::<u64>(),
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod frame;
pub mod hist;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod table;

pub use hist::Counter;
pub use parallel::{num_threads, parallel_map};
pub use rng::{SplitMix64, StreamSeeder, Xoshiro256pp};
pub use stats::{OrderStats, RunningStats};
pub use table::TextTable;
