//! Analytic concentration bounds used throughout the paper's proofs.
//!
//! The paper leans on three tools, all provided here in executable form
//! so the lemma experiments can print *bound vs observed* side by side:
//!
//! * [`chernoff_upper`] — the multiplicative Chernoff bound the paper
//!   states as Lemma 2: `Pr(B(n,p) ≥ 2np) ≤ e^{−np/3}` (and its general
//!   `(1+δ)` form).
//! * [`chernoff_kl`] — the sharp Chernoff–Hoeffding bound
//!   `Pr(B(n,p) ≥ na) ≤ e^{−n·KL(a‖p)}`, strictly tighter than Lemma 2;
//!   useful to show how much slack the paper's constants carry.
//! * [`azuma_upper`] — Azuma's inequality for `c`-Lipschitz Doob
//!   martingales, the engine of Lemmas 5 and 9.
//! * [`binomial_tail`] — the exact tail `Pr(B(n,p) ≥ k)` by stable
//!   summation, as ground truth for small `n`.

/// Multiplicative Chernoff bound, the paper's Lemma 2 (δ = 1 case):
/// `Pr(B(n,p) ≥ (1+δ)np) ≤ exp(−np·δ²/(2+δ))`.
///
/// With `δ = 1` the exponent is `np/3`, matching the paper's statement.
///
/// # Panics
/// Panics unless `p ∈ [0,1]` and `delta ≥ 0`.
#[must_use]
pub fn chernoff_upper(n: u64, p: f64, delta: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(delta >= 0.0, "delta must be nonnegative");
    let np = n as f64 * p;
    (-np * delta * delta / (2.0 + delta)).exp().min(1.0)
}

/// Binary Kullback–Leibler divergence `KL(a ‖ p)` in nats.
///
/// # Panics
/// Panics unless both arguments are in `[0, 1]`.
#[must_use]
pub fn kl_divergence(a: f64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&p));
    let term = |x: f64, y: f64| -> f64 {
        if x == 0.0 {
            0.0
        } else if y == 0.0 {
            f64::INFINITY
        } else {
            x * (x / y).ln()
        }
    };
    term(a, p) + term(1.0 - a, 1.0 - p)
}

/// Sharp Chernoff–Hoeffding upper tail: `Pr(B(n,p) ≥ na) ≤ e^{−n KL(a‖p)}`
/// for `a ≥ p` (returns 1 when `a < p` — the bound is vacuous there).
#[must_use]
pub fn chernoff_kl(n: u64, p: f64, a: f64) -> f64 {
    if a < p {
        return 1.0;
    }
    (-(n as f64) * kl_divergence(a, p)).exp().min(1.0)
}

/// One-sided Azuma–Hoeffding: for a martingale with `|X_i − X_{i−1}| ≤ c`
/// over `n` steps, `Pr(X_n − X_0 ≥ t) ≤ exp(−t²/(2nc²))`.
///
/// # Panics
/// Panics unless `c > 0` and `t ≥ 0`.
#[must_use]
pub fn azuma_upper(n: u64, c: f64, t: f64) -> f64 {
    assert!(c > 0.0, "Lipschitz constant must be positive");
    assert!(t >= 0.0, "deviation must be nonnegative");
    (-(t * t) / (2.0 * n as f64 * c * c)).exp().min(1.0)
}

/// Exact upper tail `Pr(B(n,p) ≥ k)` by stable forward summation of the
/// pmf (ratios, no factorials). Intended for `n` up to ~10⁶.
///
/// # Panics
/// Panics unless `p ∈ [0,1]`.
#[must_use]
pub fn binomial_tail(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    if k == 0 {
        return 1.0;
    }
    if k > n || p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0; // k <= n here
    }
    // Start at the mode-ish point k; pmf(k) via logs, then ratio-walk up.
    let ln_pmf_k = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    let mut pmf = ln_pmf_k.exp();
    let mut total = 0.0;
    for i in k..=n {
        total += pmf;
        if pmf < 1e-300 && total > 0.0 {
            break;
        }
        // pmf(i+1)/pmf(i) = (n−i)/(i+1) · p/(1−p)
        pmf *= (n - i) as f64 / (i + 1) as f64 * (p / (1.0 - p));
    }
    total.min(1.0)
}

/// `ln C(n, k)` via the log-gamma identity, using Stirling's series.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(n!)` — exact summation below 256, Stirling's series (to the
/// `1/(1260 n^5)` term) above; absolute error < 1e-10 in both regimes.
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
        + 1.0 / (1260.0 * x.powi(5))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_matches_paper_lemma2_form() {
        // Pr(B(n,p) >= 2np) <= e^{-np/3}.
        let n = 10_000;
        let p = 0.01;
        let bound = chernoff_upper(n, p, 1.0);
        let expected = (-(n as f64) * p / 3.0).exp();
        assert!((bound - expected).abs() < 1e-12);
    }

    #[test]
    fn chernoff_caps_at_one() {
        assert_eq!(chernoff_upper(1, 0.0, 1.0), 1.0);
        assert_eq!(chernoff_upper(0, 0.5, 2.0), 1.0);
    }

    #[test]
    fn kl_properties() {
        assert_eq!(kl_divergence(0.3, 0.3), 0.0);
        assert!(kl_divergence(0.6, 0.3) > 0.0);
        assert_eq!(kl_divergence(0.5, 0.0), f64::INFINITY);
        assert_eq!(
            kl_divergence(0.0, 0.5),
            (0.5f64).recip().ln() * 1.0 * 0.0 + (1.0f64 / 0.5).ln()
        );
        // KL(0 || p) = ln(1/(1-p)).
        assert!((kl_divergence(0.0, 0.5) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn kl_bound_dominates_lemma2_and_truth() {
        let n = 2000;
        let p = 0.02;
        let k = (2.0 * n as f64 * p) as u64; // the 2np point
        let exact = binomial_tail(n, p, k);
        let kl = chernoff_kl(n, p, k as f64 / n as f64);
        let lemma2 = chernoff_upper(n, p, 1.0);
        assert!(exact <= kl + 1e-12, "exact {exact} vs KL {kl}");
        assert!(kl <= lemma2 + 1e-12, "KL {kl} vs Lemma 2 {lemma2}");
    }

    #[test]
    fn azuma_scales_with_lipschitz() {
        let loose = azuma_upper(100, 2.0, 20.0);
        let tight = azuma_upper(100, 1.0, 20.0);
        assert!(tight < loose);
        // Paper's Lemma 5 shape: n steps, c = 2, t = n e^{-c}.
        let n = 1u64 << 14;
        let t = n as f64 * (-4.0f64).exp();
        let bound = azuma_upper(n, 2.0, t);
        assert!(bound < 1.0);
    }

    #[test]
    fn binomial_tail_exact_small_cases() {
        // B(3, 1/2): Pr(>=2) = 4/8 = 0.5; Pr(>=3) = 1/8.
        assert!((binomial_tail(3, 0.5, 2) - 0.5).abs() < 1e-12);
        assert!((binomial_tail(3, 0.5, 3) - 0.125).abs() < 1e-12);
        assert_eq!(binomial_tail(5, 0.3, 0), 1.0);
        assert_eq!(binomial_tail(5, 0.3, 6), 0.0);
        assert_eq!(binomial_tail(5, 0.0, 1), 0.0);
        assert_eq!(binomial_tail(5, 1.0, 5), 1.0);
    }

    #[test]
    fn binomial_tail_matches_normal_regime() {
        // n = 10^4, p = 0.5: Pr(B >= n/2 + 2σ) ≈ 0.0228 (normal approx).
        let n = 10_000u64;
        let sigma = (n as f64 * 0.25).sqrt();
        let k = (n as f64 / 2.0 + 2.0 * sigma).round() as u64;
        let tail = binomial_tail(n, 0.5, k);
        assert!((tail - 0.0228).abs() < 0.004, "tail {tail}");
    }

    #[test]
    fn ln_factorial_consistency_across_regimes() {
        // Stirling (n >= 256) must agree with exact summation at the seam.
        let exact: f64 = (2..=300u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - exact).abs() < 1e-8);
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_symmetry_and_pascal() {
        assert!((ln_choose(10, 3) - 120.0f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 3) - ln_choose(10, 7)).abs() < 1e-10);
        assert_eq!(ln_choose(5, 9), f64::NEG_INFINITY);
        // Pascal: C(n,k) = C(n-1,k-1) + C(n-1,k) — check in linear space.
        let c = |n: u64, k: u64| ln_choose(n, k).exp();
        assert!((c(20, 8) - (c(19, 7) + c(19, 8))).abs() < 1e-6);
    }
}
