//! A minimal fork-join runner for embarrassingly parallel Monte-Carlo trials.
//!
//! The paper's experimental tables are distributions over 1000 independent
//! trials; each trial is a full balls-into-bins simulation. Trials share no
//! state, so the only parallel machinery needed is "run `f(0..n)` on `t`
//! threads and collect results in index order". We implement that directly
//! on [`crossbeam::scope`] with an atomic work counter (dynamic scheduling:
//! trial costs vary because `n` differs per sweep point) rather than pulling
//! in a full work-stealing framework.
//!
//! Determinism: callers derive each trial's RNG from the *trial index*
//! ([`crate::rng::StreamSeeder`]), so scheduling order cannot affect results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns the number of worker threads to use by default: the value of the
/// `GEO2C_THREADS` environment variable if set, otherwise the machine's
/// available parallelism.
#[must_use]
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("GEO2C_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..n` using `threads` workers and returns
/// the results in index order.
///
/// Scheduling is dynamic: workers repeatedly claim the next unclaimed index
/// from a shared atomic counter, so a few slow trials do not straggle the
/// whole sweep. With `threads <= 1` (or `n <= 1`) the work runs inline on
/// the caller's thread.
///
/// # Panics
///
/// Propagates a panic from any worker (the scope joins all threads first).
///
/// ```
/// let squares = geo2c_util::parallel::parallel_map(8, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, T)> = Vec::with_capacity(n);

    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                local
            }));
        }
        for handle in handles {
            collected.extend(handle.join().expect("worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    collected.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(collected.len(), n);
    collected.into_iter().map(|(_, t)| t).collect()
}

/// Convenience wrapper: [`parallel_map`] with [`num_threads`] workers.
pub fn parallel_map_auto<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map(n, num_threads(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let v: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(v.is_empty());
    }

    #[test]
    fn single_threaded_path() {
        let v = parallel_map(5, 1, |i| i + 10);
        assert_eq!(v, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn results_in_index_order_under_contention() {
        let n = 1000;
        let v = parallel_map(n, 8, |i| i * 3);
        assert_eq!(v.len(), n);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn more_threads_than_items() {
        let v = parallel_map(3, 64, |i| i);
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn uneven_work_is_completed() {
        // Simulate wildly varying trial costs.
        let v = parallel_map(64, 4, |i| {
            let mut acc = 0u64;
            for k in 0..((i as u64) % 7) * 10_000 {
                acc = acc.wrapping_add(k);
            }
            std::hint::black_box(acc);
            i as u64
        });
        assert_eq!(v, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn matches_sequential_for_rng_workload() {
        use crate::rng::StreamSeeder;
        use rand::Rng;
        let seeder = StreamSeeder::new(77);
        let work = |i: usize| -> u64 {
            let mut rng = seeder.stream(i as u64);
            (0..100).map(|_| rng.gen_range(0..1000u64)).sum()
        };
        let seq: Vec<u64> = (0..32).map(work).collect();
        let par = parallel_map(32, 4, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
