//! Plain-text table rendering for experiment output.
//!
//! The `geo2c-bench` binaries print paper-style tables to stdout; this is a
//! dependency-free column-aligned renderer. Cells may span multiple lines
//! (the paper's table cells are themselves small distributions, one value
//! per line), and rows are padded so multi-line cells align.

/// A simple column-aligned text table with optional multi-line cells.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the column count.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with two-space column gutters and a rule under the
    /// header. Multi-line cells are expanded into extra physical lines.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        if ncols == 0 {
            return String::new();
        }

        // Column widths consider every line of every (possibly multi-line) cell.
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                for line in cell.lines() {
                    widths[i] = widths[i].max(line.chars().count());
                }
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }

        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String], widths: &[usize]| {
            let line_count = cells
                .iter()
                .map(|c| c.lines().count().max(1))
                .max()
                .unwrap_or(1);
            for li in 0..line_count {
                let mut line_out = String::new();
                for (ci, width) in widths.iter().enumerate() {
                    let text = cells.get(ci).and_then(|c| c.lines().nth(li)).unwrap_or("");
                    let pad = width.saturating_sub(text.chars().count());
                    line_out.push_str(text);
                    line_out.push_str(&" ".repeat(pad));
                    if ci + 1 < widths.len() {
                        line_out.push_str("  ");
                    }
                }
                out.push_str(line_out.trim_end());
                out.push('\n');
            }
        };

        if !self.header.is_empty() {
            render_row(&mut out, &self.header, &widths);
            let rule_len = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            out.push_str(&"-".repeat(rule_len));
            out.push('\n');
        }
        for row in &self.rows {
            render_row(&mut out, row, &widths);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["n", "d=1", "d=2"]);
        t.push_row(["256", "7", "4"]);
        t.push_row(["65536", "15", "5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("n"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // The d=1 column starts at the same offset in both data rows.
        let off2 = lines[2].find('7').unwrap();
        let off3 = lines[3].find("15").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn multiline_cells_expand() {
        let mut t = TextTable::new(["n", "dist"]);
        t.push_row(["256", "4: 88.1%\n5: 11.9%"]);
        let s = t.render();
        assert!(s.contains("4: 88.1%"));
        assert!(s.contains("5: 11.9%"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.push_row(["1"]);
        let s = t.render();
        assert!(s.contains('1'));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn empty_table_renders_empty() {
        let t = TextTable::new(Vec::<String>::new());
        assert_eq!(t.render(), "");
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(["x"]);
        t.push_row(["y"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
