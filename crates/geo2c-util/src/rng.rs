//! Deterministic, splittable random number generation.
//!
//! All simulations in this workspace are Monte-Carlo experiments whose
//! results must be *exactly* reproducible: the committed numbers in
//! `EXPERIMENTS.md` were produced by specific seeds, and the parallel trial
//! runner must give trial `i` the same stream no matter how trials are
//! scheduled onto threads.
//!
//! We therefore implement two tiny, well-known generators in-tree rather
//! than relying on `rand`'s unspecified `StdRng` algorithm:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. Used exclusively
//!   for *seed derivation* (it equidistributes even pathological seeds such
//!   as 0, 1, 2, …).
//! * [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++, the workhorse
//!   generator for the simulations. It is extremely fast (a few ns per
//!   `u64`), has a 2^256−1 period, and passes BigCrush.
//!
//! Both implement [`rand::RngCore`]/[`rand::SeedableRng`], so they compose
//! with the `rand` distribution machinery (`gen_range`, `gen::<f64>()`, …).
//!
//! # Stream derivation
//!
//! [`StreamSeeder`] maps `(experiment seed, trial index)` to an independent
//! generator. Internally it feeds both values through SplitMix64 so that
//! consecutive trial indices yield statistically unrelated streams.
//!
//! ```
//! use geo2c_util::rng::StreamSeeder;
//! use rand::Rng;
//!
//! let seeder = StreamSeeder::new(42);
//! let mut a = seeder.stream(0);
//! let mut b = seeder.stream(1);
//! // Streams are deterministic ...
//! assert_eq!(seeder.stream(0).gen::<u64>(), a.gen::<u64>());
//! // ... and distinct per trial.
//! assert_ne!(a.gen::<u64>(), b.gen::<u64>());
//! ```

use rand::{Error, RngCore, SeedableRng};

/// Golden-ratio increment used by SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// A counter-based generator: each output is a strong 64-bit mix of an
/// internal counter that advances by the golden-ratio constant. Its value
/// here is seed *expansion*: any 64-bit state — including 0 — produces a
/// high-entropy output sequence, which makes it the standard tool for
/// seeding larger-state generators such as xoshiro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose counter starts at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output and advances the counter.
    // Deliberately named after the reference C API; this is not an Iterator.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }
}

/// The SplitMix64 finalizer: a bijective avalanche mix of `z`.
#[inline]
#[must_use]
pub fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// xoshiro256++ pseudo-random generator (Blackman & Vigna, 2019).
///
/// 256 bits of state, period 2^256 − 1, ~0.8 ns per output on modern
/// hardware. This is the generator every simulation trial uses; see the
/// module docs for why we pin the algorithm in-tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator by expanding `seed` through SplitMix64, per the
    /// reference implementation's seeding recommendation.
    #[must_use]
    pub fn from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next();
        }
        // The all-zero state is the one fixed point; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway for from_seed paths.
        if s == [0, 0, 0, 0] {
            s = [GOLDEN_GAMMA, 1, 2, 3];
        }
        Self { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` using the top 53 bits, matching
    /// the reference `(x >> 11) * 2^-53` construction.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0, 0, 0, 0] {
            s = [GOLDEN_GAMMA, 1, 2, 3];
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::from_u64(state)
    }
}

/// Little-endian `u64`-at-a-time byte filling shared by both generators.
fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// Derives independent per-trial generators from a single experiment seed.
///
/// The derivation is `xoshiro256++` seeded by
/// `SplitMix64(mix(seed) ^ mix(trial + φ))`, so that neither sequential
/// seeds nor sequential trial indices produce correlated streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSeeder {
    root: u64,
}

impl StreamSeeder {
    /// Creates a seeder rooted at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { root: mix(seed) }
    }

    /// Returns the generator for `trial`. Calling this twice with the same
    /// index yields identical streams.
    #[must_use]
    pub fn stream(&self, trial: u64) -> Xoshiro256pp {
        Xoshiro256pp::from_u64(self.root ^ mix(trial.wrapping_add(GOLDEN_GAMMA)))
    }

    /// Derives a child seeder for a named sub-experiment, so that e.g. the
    /// "table1" and "table2" sweeps of the same run never share streams.
    #[must_use]
    pub fn child(&self, label: &str) -> Self {
        let mut h = self.root;
        for &b in label.as_bytes() {
            h = mix(h ^ u64::from(b));
        }
        Self { root: h }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed = 1234567 from the public-domain
        // splitmix64.c (Vigna). First three outputs.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next(), 6457827717110365317);
        assert_eq!(sm.next(), 3203168211198807973);
        assert_eq!(sm.next(), 9817491932198370423);
    }

    #[test]
    fn splitmix_zero_seed_is_fine() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next();
        let b = sm.next();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Cross-checked against an independent Python implementation of the
        // reference xoshiro256++ seeded by splitmix64(7).
        let mut rng = Xoshiro256pp::from_u64(7);
        assert_eq!(rng.next_u64(), 1021219803524665661);
        assert_eq!(rng.next_u64(), 3174977118032272916);
        assert_eq!(rng.next_u64(), 13236943193235544178);
        assert_eq!(rng.next_u64(), 7880630202246103356);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_seeds() {
        let mut a1 = Xoshiro256pp::from_u64(7);
        let mut a2 = Xoshiro256pp::from_u64(7);
        let mut b = Xoshiro256pp::from_u64(8);
        let xs1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn xoshiro_from_seed_round_trips_state_words() {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&1u64.to_le_bytes());
        seed[8..16].copy_from_slice(&2u64.to_le_bytes());
        seed[16..24].copy_from_slice(&3u64.to_le_bytes());
        seed[24..].copy_from_slice(&4u64.to_le_bytes());
        let rng = Xoshiro256pp::from_seed(seed);
        assert_eq!(rng.s, [1, 2, 3, 4]);
    }

    #[test]
    fn xoshiro_zero_seed_does_not_stick_at_zero() {
        let mut rng = Xoshiro256pp::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn next_f64_is_unit_interval_and_well_spread() {
        let mut rng = Xoshiro256pp::from_u64(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        // Mean of U[0,1) over 1e5 samples: s.e. ≈ 0.0009.
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256pp::from_u64(3);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..17);
            assert!(v < 17);
        }
    }

    #[test]
    fn stream_seeder_is_reproducible_and_label_sensitive() {
        let s = StreamSeeder::new(5);
        assert_eq!(s.stream(3).next_u64(), s.stream(3).next_u64());
        assert_ne!(s.stream(3).next_u64(), s.stream(4).next_u64());
        let c1 = s.child("table1");
        let c2 = s.child("table2");
        assert_ne!(c1.stream(0).next_u64(), c2.stream(0).next_u64());
        assert_eq!(
            s.child("table1").stream(0).next_u64(),
            c1.stream(0).next_u64()
        );
    }

    #[test]
    fn sequential_trial_streams_look_independent() {
        // Crude independence check: across 64 consecutive trial indices, the
        // first outputs should have no duplicated values and roughly half
        // the bits set.
        let s = StreamSeeder::new(1);
        let outs: Vec<u64> = (0..64).map(|t| s.stream(t).next_u64()).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
        let ones: u32 = outs.iter().map(|x| x.count_ones()).sum();
        let frac = f64::from(ones) / (64.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.05, "bit fraction {frac}");
    }

    #[test]
    fn fill_bytes_handles_non_multiple_of_eight() {
        let mut rng = Xoshiro256pp::from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
