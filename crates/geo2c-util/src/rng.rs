//! Deterministic, splittable random number generation.
//!
//! All simulations in this workspace are Monte-Carlo experiments whose
//! results must be *exactly* reproducible: the committed numbers in
//! `EXPERIMENTS.md` were produced by specific seeds, and the parallel trial
//! runner must give trial `i` the same stream no matter how trials are
//! scheduled onto threads.
//!
//! We therefore implement two tiny, well-known generators in-tree rather
//! than relying on `rand`'s unspecified `StdRng` algorithm:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. Used exclusively
//!   for *seed derivation* (it equidistributes even pathological seeds such
//!   as 0, 1, 2, …).
//! * [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++, the workhorse
//!   generator for the simulations. It is extremely fast (a few ns per
//!   `u64`), has a 2^256−1 period, and passes BigCrush.
//!
//! Both implement [`rand::RngCore`]/[`rand::SeedableRng`], so they compose
//! with the `rand` distribution machinery (`gen_range`, `gen::<f64>()`, …).
//!
//! # Stream derivation
//!
//! [`StreamSeeder`] maps `(experiment seed, trial index)` to an independent
//! generator. Internally it feeds both values through SplitMix64 so that
//! consecutive trial indices yield statistically unrelated streams.
//!
//! ```
//! use geo2c_util::rng::StreamSeeder;
//! use rand::Rng;
//!
//! let seeder = StreamSeeder::new(42);
//! let mut a = seeder.stream(0);
//! let mut b = seeder.stream(1);
//! // Streams are deterministic ...
//! assert_eq!(seeder.stream(0).gen::<u64>(), a.gen::<u64>());
//! // ... and distinct per trial.
//! assert_ne!(a.gen::<u64>(), b.gen::<u64>());
//! ```
//!
//! # Per-ball lanes (RNG stream contract v2)
//!
//! The insertion engine's randomness is *laned*: each ball `b` of a trial
//! draws its probe coordinates from its own counter-keyed generator
//! ([`BallLanes::probe`]) and resolves load ties from a second one
//! ([`BallLanes::tie`]), both derived from a single root
//! ([`SplitMix64::mixed`] with the [`PROBE_TAG`] / [`TIE_TAG`] domain
//! separators). Because no two balls — and no ball's probe and tie
//! draws — share a stream, probe generation is independent of tie
//! resolution and of every other ball, which is what lets the engine
//! draw many balls' probe blocks in one batched call regardless of the
//! tie-break policy. [`LaneSource`] abstracts the keying so alternative
//! probe sources (e.g. [`TabulationLanes`]) plug into the same engine.

use rand::{Error, RngCore, SeedableRng};

/// Golden-ratio increment used by SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// A counter-based generator: each output is a strong 64-bit mix of an
/// internal counter that advances by the golden-ratio constant. Its value
/// here is seed *expansion*: any 64-bit state — including 0 — produces a
/// high-entropy output sequence, which makes it the standard tool for
/// seeding larger-state generators such as xoshiro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose counter starts at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Counter-keyed lane constructor (RNG stream contract v2): the
    /// generator for lane `lane` of root `seed` in domain `tag`, with
    /// the key `mix(mix(seed ^ tag) ^ mix(lane + γ))`.
    ///
    /// Every input goes through the full avalanche [`mix`] before
    /// keying the counter, so sequential lane indices (ball 0, 1, 2, …)
    /// and sequential roots land at statistically unrelated counter
    /// positions — the same discipline [`StreamSeeder`] applies per
    /// trial, one level down. [`BallLanes`] precomputes the
    /// `mix(seed ^ tag)` half so per-ball lane construction costs two
    /// mixes.
    #[must_use]
    pub fn mixed(seed: u64, lane: u64, tag: u64) -> Self {
        Self::new(mix(mix(seed ^ tag) ^ mix(lane.wrapping_add(GOLDEN_GAMMA))))
    }

    /// Returns the next 64-bit output and advances the counter.
    // Deliberately named after the reference C API; this is not an Iterator.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }
}

/// The SplitMix64 finalizer: a bijective avalanche mix of `z`.
#[inline]
#[must_use]
pub fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// xoshiro256++ pseudo-random generator (Blackman & Vigna, 2019).
///
/// 256 bits of state, period 2^256 − 1, ~0.8 ns per output on modern
/// hardware. This is the generator every simulation trial uses; see the
/// module docs for why we pin the algorithm in-tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator by expanding `seed` through SplitMix64, per the
    /// reference implementation's seeding recommendation.
    #[must_use]
    pub fn from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next();
        }
        // The all-zero state is the one fixed point; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway for from_seed paths.
        if s == [0, 0, 0, 0] {
            s = [GOLDEN_GAMMA, 1, 2, 3];
        }
        Self { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` using the top 53 bits, matching
    /// the reference `(x >> 11) * 2^-53` construction.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0, 0, 0, 0] {
            s = [GOLDEN_GAMMA, 1, 2, 3];
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::from_u64(state)
    }
}

/// Little-endian `u64`-at-a-time byte filling shared by both generators.
fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// Derives independent per-trial generators from a single experiment seed.
///
/// The derivation is `xoshiro256++` seeded by
/// `SplitMix64(mix(seed) ^ mix(trial + φ))`, so that neither sequential
/// seeds nor sequential trial indices produce correlated streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSeeder {
    root: u64,
}

impl StreamSeeder {
    /// Creates a seeder rooted at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { root: mix(seed) }
    }

    /// Returns the generator for `trial`. Calling this twice with the same
    /// index yields identical streams.
    #[must_use]
    pub fn stream(&self, trial: u64) -> Xoshiro256pp {
        Xoshiro256pp::from_u64(self.root ^ mix(trial.wrapping_add(GOLDEN_GAMMA)))
    }

    /// Derives a child seeder for a named sub-experiment, so that e.g. the
    /// "table1" and "table2" sweeps of the same run never share streams.
    #[must_use]
    pub fn child(&self, label: &str) -> Self {
        let mut h = self.root;
        for &b in label.as_bytes() {
            h = mix(h ^ u64::from(b));
        }
        Self { root: h }
    }
}

// ---------------------------------------------------------------------------
// Per-ball lanes (RNG stream contract v2)
// ---------------------------------------------------------------------------

/// Domain-separation tag for probe-coordinate lanes (contract v2).
pub const PROBE_TAG: u64 = 0xA076_1D64_78BD_642F;

/// Domain-separation tag for tie-resolution lanes (contract v2).
pub const TIE_TAG: u64 = 0xE703_7ED1_A0B4_28DB;

/// Domain-separation tag for session-lifetime lanes (the serving
/// engine's event streams; see [`EventLanes`]).
pub const LIFE_TAG: u64 = 0x8CB9_2BA7_2F3D_8DD7;

/// Domain-separation tag for fault-schedule lanes: fault event `i` of a
/// randomized fault plan draws its crash time, victim, and downtime from
/// `SplitMix64::mixed(root, i, FAULT_TAG)`, so a fault schedule is a
/// pure function of its root and replays byte-identically with the
/// event stream it interleaves into.
pub const FAULT_TAG: u64 = 0x1F8B_08D9_66A3_553B;

/// Domain-separation tag for probe-*retry* lanes (the serving engine's
/// graceful-degradation path; see [`EventLanes::retry`]): when every
/// primary probe of event `e` is failed or at capacity, retry attempt
/// `j` redraws its probes (and any tie randomness) sequentially from
/// the event's private retry lane — never from the primary probe/tie
/// lanes, so a retry budget of zero leaves the primary streams
/// untouched and replays the retry-free engine byte-identically.
pub const RETRY_TAG: u64 = 0x53C5_BF3D_9AE1_6D2D;

/// A source of per-ball generator lanes: the abstraction the insertion
/// engine draws through under stream contract v2.
///
/// Implementations must guarantee that `probe(b)`, `tie(b)` and every
/// lane of every other ball are mutually decorrelated streams, and that
/// the mapping is pure: calling `probe(b)` twice yields identical
/// generators. [`BallLanes`] (SplitMix64 lanes) is the engine default;
/// [`TabulationLanes`] swaps the mixer for a simple tabulation hash.
pub trait LaneSource {
    /// The per-lane generator type.
    type Lane: RngCore;

    /// The probe-coordinate lane for ball `ball` (relative to this
    /// source's base offset).
    fn probe(&self, ball: u64) -> Self::Lane;

    /// The tie-resolution lane for ball `ball`.
    fn tie(&self, ball: u64) -> Self::Lane;

    /// A view of the same lanes with all ball indices shifted by
    /// `first_ball`: `source.block(k).probe(i) == source.probe(k + i)`.
    /// The engine hands each cross-ball block a shifted view so spaces
    /// index lanes by position within the block.
    #[must_use]
    fn block(&self, first_ball: u64) -> Self;
}

/// SplitMix64 per-ball lanes keyed from one root (the engine default).
///
/// `BallLanes::new(root).probe(b)` is exactly
/// [`SplitMix64::mixed`]`(root, b, PROBE_TAG)` (and `tie(b)` the same
/// with [`TIE_TAG`]); the `mix(root ^ tag)` halves are precomputed so a
/// lane costs two [`mix`] evaluations.
///
/// ```
/// use geo2c_util::rng::{BallLanes, LaneSource, SplitMix64, PROBE_TAG};
/// use rand::RngCore;
///
/// let lanes = BallLanes::new(7);
/// assert_eq!(
///     lanes.probe(3).next_u64(),
///     SplitMix64::mixed(7, 3, PROBE_TAG).next_u64(),
/// );
/// // Shifted views address the same lanes.
/// assert_eq!(lanes.block(2).probe(1).next_u64(), lanes.probe(3).next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BallLanes {
    probe_root: u64,
    tie_root: u64,
    base: u64,
}

impl BallLanes {
    /// Lanes keyed from `root` (one draw of the trial's stream).
    #[must_use]
    pub fn new(root: u64) -> Self {
        Self {
            probe_root: mix(root ^ PROBE_TAG),
            tie_root: mix(root ^ TIE_TAG),
            base: 0,
        }
    }

    #[inline]
    fn lane(half_mixed_root: u64, ball: u64) -> SplitMix64 {
        SplitMix64::new(mix(half_mixed_root ^ mix(ball.wrapping_add(GOLDEN_GAMMA))))
    }
}

impl LaneSource for BallLanes {
    type Lane = SplitMix64;

    #[inline]
    fn probe(&self, ball: u64) -> SplitMix64 {
        Self::lane(self.probe_root, self.base.wrapping_add(ball))
    }

    #[inline]
    fn tie(&self, ball: u64) -> SplitMix64 {
        Self::lane(self.tie_root, self.base.wrapping_add(ball))
    }

    fn block(&self, first_ball: u64) -> Self {
        Self {
            base: self.base.wrapping_add(first_ball),
            ..*self
        }
    }
}

/// Per-event lanes for open-ended serving streams: the [`BallLanes`]
/// probe/tie pair plus a session-*lifetime* lane per event under
/// [`LIFE_TAG`] and a probe-*retry* lane per event under [`RETRY_TAG`].
///
/// Event `e` of a stream rooted at `root` draws its probe coordinates
/// from [`SplitMix64::mixed`]`(root, e, PROBE_TAG)`, resolves routing
/// ties on the [`TIE_TAG`] lane, draws its session lifetime on the
/// [`LIFE_TAG`] lane, and — only when every primary probe is failed or
/// at capacity — redraws fresh probe sets on the [`RETRY_TAG`] lane:
/// four mutually decorrelated streams per event, none shared with any
/// other event. That is what makes serving runs *prefix-replayable*:
/// the state after the first `p` events is a pure function of
/// `(root, p)` (plus the fault schedule applied so far), no matter how
/// many events follow or how the engine batches its probe draws. The
/// retry lane is untouched on the happy path, so a retry budget of zero
/// replays the retry-free engine byte-identically.
///
/// ```
/// use geo2c_util::rng::{EventLanes, LaneSource, SplitMix64, LIFE_TAG, PROBE_TAG, RETRY_TAG};
/// use rand::RngCore;
///
/// let lanes = EventLanes::new(7);
/// // Probe/tie lanes are exactly the BallLanes keying …
/// assert_eq!(
///     lanes.probe(3).next_u64(),
///     SplitMix64::mixed(7, 3, PROBE_TAG).next_u64(),
/// );
/// // … and the lifetime/retry lanes are the same keying under their tags.
/// assert_eq!(
///     lanes.life(3).next_u64(),
///     SplitMix64::mixed(7, 3, LIFE_TAG).next_u64(),
/// );
/// assert_eq!(
///     lanes.retry(3).next_u64(),
///     SplitMix64::mixed(7, 3, RETRY_TAG).next_u64(),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLanes {
    balls: BallLanes,
    life_root: u64,
    retry_root: u64,
    base: u64,
}

impl EventLanes {
    /// Lanes keyed from `root` (one draw of the trial's stream).
    #[must_use]
    pub fn new(root: u64) -> Self {
        Self {
            balls: BallLanes::new(root),
            life_root: mix(root ^ LIFE_TAG),
            retry_root: mix(root ^ RETRY_TAG),
            base: 0,
        }
    }

    /// The session-lifetime lane for event `event`.
    #[inline]
    #[must_use]
    pub fn life(&self, event: u64) -> SplitMix64 {
        BallLanes::lane(self.life_root, self.base.wrapping_add(event))
    }

    /// The probe-retry lane for event `event`: retry attempt `j` draws
    /// its probe set (and any tie randomness) *sequentially* from this
    /// single per-event lane, so consumption depends only on how many
    /// attempts the event needed — never on other events.
    #[inline]
    #[must_use]
    pub fn retry(&self, event: u64) -> SplitMix64 {
        BallLanes::lane(self.retry_root, self.base.wrapping_add(event))
    }
}

impl LaneSource for EventLanes {
    type Lane = SplitMix64;

    #[inline]
    fn probe(&self, event: u64) -> SplitMix64 {
        self.balls.probe(event)
    }

    #[inline]
    fn tie(&self, event: u64) -> SplitMix64 {
        self.balls.tie(event)
    }

    fn block(&self, first_event: u64) -> Self {
        Self {
            balls: self.balls.block(first_event),
            life_root: self.life_root,
            retry_root: self.retry_root,
            base: self.base.wrapping_add(first_event),
        }
    }
}

// ---------------------------------------------------------------------------
// Simple tabulation hashing (Dahlgaard et al., SODA 2016)
// ---------------------------------------------------------------------------

/// Bytes of the hashed key; one lookup table per byte.
const TAB_BYTES: usize = 8;

/// A simple tabulation hash over 64-bit keys: `h(x) = ⊕ᵢ Tᵢ[byteᵢ(x)]`,
/// eight tables of 256 random words each.
///
/// Simple tabulation is only 3-independent, yet Dahlgaard, Knudsen,
/// Rotenberg & Thorup (SODA 2016) prove the two-choice maximum load
/// survives it — making it the natural "weak hashing" ablation for this
/// reproduction: [`TabulationLanes`] exposes it through the same
/// [`LaneSource`] interface the SplitMix64 lanes use, so the insertion
/// engine runs unmodified on either probe source and the max-load
/// distributions can be compared head-to-head (the `tabulation`
/// experiment in `EXPERIMENTS.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabulationHash {
    tables: Box<[[u64; 256]; TAB_BYTES]>,
}

impl TabulationHash {
    /// Fills the eight tables from `seed` via SplitMix64.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(mix(seed));
        let mut tables = Box::new([[0u64; 256]; TAB_BYTES]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = sm.next();
            }
        }
        Self { tables }
    }

    /// Hashes one 64-bit key: XOR of one entry per key byte.
    #[inline]
    #[must_use]
    pub fn hash(&self, x: u64) -> u64 {
        let mut h = 0u64;
        for (i, table) in self.tables.iter().enumerate() {
            h ^= table[((x >> (8 * i)) & 0xFF) as usize];
        }
        h
    }
}

/// Per-ball lanes whose generators are counter-mode tabulation hashing:
/// output `j` of a lane is `h(key + j)` for the lane's key.
///
/// Keys are derived exactly like [`BallLanes`] keys (mixed root ⊕ mixed
/// ball index under the probe/tie tags), so the *keying* is identical
/// and only the per-output mixer differs — isolating the hash-quality
/// question the Dahlgaard et al. comparison asks.
#[derive(Debug, Clone, Copy)]
pub struct TabulationLanes<'a> {
    hash: &'a TabulationHash,
    probe_root: u64,
    tie_root: u64,
    base: u64,
}

impl<'a> TabulationLanes<'a> {
    /// Lanes keyed from `root`, hashing through `hash`.
    #[must_use]
    pub fn new(hash: &'a TabulationHash, root: u64) -> Self {
        Self {
            hash,
            probe_root: mix(root ^ PROBE_TAG),
            tie_root: mix(root ^ TIE_TAG),
            base: 0,
        }
    }
}

impl<'a> LaneSource for TabulationLanes<'a> {
    type Lane = TabulationLane<'a>;

    fn probe(&self, ball: u64) -> TabulationLane<'a> {
        TabulationLane {
            hash: self.hash,
            key: self.probe_root ^ mix(self.base.wrapping_add(ball).wrapping_add(GOLDEN_GAMMA)),
            counter: 0,
        }
    }

    fn tie(&self, ball: u64) -> TabulationLane<'a> {
        TabulationLane {
            hash: self.hash,
            key: self.tie_root ^ mix(self.base.wrapping_add(ball).wrapping_add(GOLDEN_GAMMA)),
            counter: 0,
        }
    }

    fn block(&self, first_ball: u64) -> Self {
        Self {
            base: self.base.wrapping_add(first_ball),
            ..*self
        }
    }
}

/// One counter-mode lane of a [`TabulationHash`] (see
/// [`TabulationLanes`]).
#[derive(Debug, Clone, Copy)]
pub struct TabulationLane<'a> {
    hash: &'a TabulationHash,
    key: u64,
    counter: u64,
}

impl RngCore for TabulationLane<'_> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.hash.hash(self.key.wrapping_add(self.counter));
        self.counter = self.counter.wrapping_add(1);
        out
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed = 1234567 from the public-domain
        // splitmix64.c (Vigna). First three outputs.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next(), 6457827717110365317);
        assert_eq!(sm.next(), 3203168211198807973);
        assert_eq!(sm.next(), 9817491932198370423);
    }

    #[test]
    fn splitmix_zero_seed_is_fine() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next();
        let b = sm.next();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Cross-checked against an independent Python implementation of the
        // reference xoshiro256++ seeded by splitmix64(7).
        let mut rng = Xoshiro256pp::from_u64(7);
        assert_eq!(rng.next_u64(), 1021219803524665661);
        assert_eq!(rng.next_u64(), 3174977118032272916);
        assert_eq!(rng.next_u64(), 13236943193235544178);
        assert_eq!(rng.next_u64(), 7880630202246103356);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_seeds() {
        let mut a1 = Xoshiro256pp::from_u64(7);
        let mut a2 = Xoshiro256pp::from_u64(7);
        let mut b = Xoshiro256pp::from_u64(8);
        let xs1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn xoshiro_from_seed_round_trips_state_words() {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&1u64.to_le_bytes());
        seed[8..16].copy_from_slice(&2u64.to_le_bytes());
        seed[16..24].copy_from_slice(&3u64.to_le_bytes());
        seed[24..].copy_from_slice(&4u64.to_le_bytes());
        let rng = Xoshiro256pp::from_seed(seed);
        assert_eq!(rng.s, [1, 2, 3, 4]);
    }

    #[test]
    fn xoshiro_zero_seed_does_not_stick_at_zero() {
        let mut rng = Xoshiro256pp::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn next_f64_is_unit_interval_and_well_spread() {
        let mut rng = Xoshiro256pp::from_u64(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        // Mean of U[0,1) over 1e5 samples: s.e. ≈ 0.0009.
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256pp::from_u64(3);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..17);
            assert!(v < 17);
        }
    }

    #[test]
    fn stream_seeder_is_reproducible_and_label_sensitive() {
        let s = StreamSeeder::new(5);
        assert_eq!(s.stream(3).next_u64(), s.stream(3).next_u64());
        assert_ne!(s.stream(3).next_u64(), s.stream(4).next_u64());
        let c1 = s.child("table1");
        let c2 = s.child("table2");
        assert_ne!(c1.stream(0).next_u64(), c2.stream(0).next_u64());
        assert_eq!(
            s.child("table1").stream(0).next_u64(),
            c1.stream(0).next_u64()
        );
    }

    #[test]
    fn sequential_trial_streams_look_independent() {
        // Crude independence check: across 64 consecutive trial indices, the
        // first outputs should have no duplicated values and roughly half
        // the bits set.
        let s = StreamSeeder::new(1);
        let outs: Vec<u64> = (0..64).map(|t| s.stream(t).next_u64()).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
        let ones: u32 = outs.iter().map(|x| x.count_ones()).sum();
        let frac = f64::from(ones) / (64.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.05, "bit fraction {frac}");
    }

    #[test]
    fn fill_bytes_handles_non_multiple_of_eight() {
        let mut rng = Xoshiro256pp::from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn lane_reference_vectors_pin_contract_v2() {
        // The v2 lane keying is a *committed distribution contract*: the
        // numbers in results/*.json were produced through these exact
        // streams. Any change to the keying is a new contract version and
        // must regenerate the expectations — these vectors make such a
        // change impossible to miss. (First output of
        // SplitMix64::mixed(root, lane, tag) for pinned inputs, computed
        // once from the definition `mix(mix(root^tag) ^ mix(lane+γ))`.)
        let vector = |root: u64, lane: u64, tag: u64| SplitMix64::mixed(root, lane, tag).next();
        // Self-consistency with the documented definition.
        let manual = |root: u64, lane: u64, tag: u64| {
            SplitMix64::new(mix(mix(root ^ tag) ^ mix(lane.wrapping_add(GOLDEN_GAMMA)))).next()
        };
        for (root, lane) in [(0u64, 0u64), (42, 0), (42, 1), (7, u64::MAX)] {
            assert_eq!(vector(root, lane, PROBE_TAG), manual(root, lane, PROBE_TAG));
            assert_eq!(vector(root, lane, TIE_TAG), manual(root, lane, TIE_TAG));
            assert_eq!(vector(root, lane, FAULT_TAG), manual(root, lane, FAULT_TAG));
            assert_eq!(vector(root, lane, RETRY_TAG), manual(root, lane, RETRY_TAG));
        }
        // Frozen absolute values (independently computed from the
        // definition): recomputed == committed.
        let frozen: [(u64, u64, u64, u64); 4] = [
            (0, 0, PROBE_TAG, 13102172009130172927),
            (42, 1, TIE_TAG, 12934604033053490546),
            (0, 0, FAULT_TAG, 1420821127466699168),
            (42, 1, RETRY_TAG, 1939868151124495579),
        ];
        for (root, lane, tag, value) in frozen {
            assert_eq!(vector(root, lane, tag), value);
        }
        // Domain separation: the four tags give four distinct lanes for
        // the same (root, lane) pair.
        let tags = [PROBE_TAG, TIE_TAG, FAULT_TAG, RETRY_TAG];
        for (i, &a) in tags.iter().enumerate() {
            for &b in &tags[i + 1..] {
                assert_ne!(vector(5, 9, a), vector(5, 9, b));
            }
        }
    }

    #[test]
    fn ball_lanes_match_mixed_and_shift_correctly() {
        let lanes = BallLanes::new(123);
        for ball in [0u64, 1, 63, 64, 1_000_000] {
            assert_eq!(
                lanes.probe(ball).next(),
                SplitMix64::mixed(123, ball, PROBE_TAG).next(),
                "probe lane {ball}"
            );
            assert_eq!(
                lanes.tie(ball).next(),
                SplitMix64::mixed(123, ball, TIE_TAG).next(),
                "tie lane {ball}"
            );
        }
        let block = lanes.block(64).block(3);
        assert_eq!(block.probe(2).next(), lanes.probe(69).next());
        assert_eq!(block.tie(0).next(), lanes.tie(67).next());
    }

    #[test]
    fn event_lanes_extend_ball_lanes_with_lifetime_and_retry_lanes() {
        let lanes = EventLanes::new(321);
        let balls = BallLanes::new(321);
        for event in [0u64, 1, 63, 64, 9999] {
            assert_eq!(lanes.probe(event).next(), balls.probe(event).next());
            assert_eq!(lanes.tie(event).next(), balls.tie(event).next());
            assert_eq!(
                lanes.life(event).next(),
                SplitMix64::mixed(321, event, LIFE_TAG).next(),
                "life lane {event}"
            );
            assert_eq!(
                lanes.retry(event).next(),
                SplitMix64::mixed(321, event, RETRY_TAG).next(),
                "retry lane {event}"
            );
            // The four lanes of one event are mutually distinct streams.
            let outs = [
                lanes.probe(event).next(),
                lanes.tie(event).next(),
                lanes.life(event).next(),
                lanes.retry(event).next(),
            ];
            for (i, &a) in outs.iter().enumerate() {
                for &b in &outs[i + 1..] {
                    assert_ne!(a, b, "lane collision at event {event}");
                }
            }
        }
        // Shifted views address the same lanes, life/retry lanes included.
        let block = lanes.block(64).block(3);
        assert_eq!(block.probe(2).next(), lanes.probe(69).next());
        assert_eq!(block.life(2).next(), lanes.life(69).next());
        assert_eq!(block.retry(2).next(), lanes.retry(69).next());
    }

    #[test]
    fn lanes_are_mutually_decorrelated() {
        // First outputs across many lanes: no duplicates, balanced bits —
        // the same crude independence check the trial streams get.
        let lanes = BallLanes::new(9);
        let mut outs: Vec<u64> = (0..128).map(|b| lanes.probe(b).next()).collect();
        outs.extend((0..128).map(|b| lanes.tie(b).next()));
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
        let ones: u32 = outs.iter().map(|x| x.count_ones()).sum();
        let frac = f64::from(ones) / (256.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.05, "bit fraction {frac}");
    }

    #[test]
    fn tabulation_hash_is_deterministic_and_seed_sensitive() {
        let a = TabulationHash::from_seed(1);
        let b = TabulationHash::from_seed(1);
        let c = TabulationHash::from_seed(2);
        assert_eq!(a, b);
        for x in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(a.hash(x), b.hash(x));
        }
        assert!((0..64u64).any(|x| a.hash(x) != c.hash(x)));
    }

    #[test]
    fn tabulation_lane_is_counter_mode_and_keyed_like_splitmix_lanes() {
        let hash = TabulationHash::from_seed(3);
        let lanes = TabulationLanes::new(&hash, 77);
        let mut lane = lanes.probe(5);
        let first = lane.next_u64();
        let second = lane.next_u64();
        assert_ne!(first, second);
        // Re-derived lane restarts the counter.
        assert_eq!(lanes.probe(5).next_u64(), first);
        // Distinct balls and domains give distinct streams.
        assert_ne!(lanes.probe(6).next_u64(), first);
        assert_ne!(lanes.tie(5).next_u64(), first);
        // Shifted views address the same lanes.
        assert_eq!(
            lanes.block(4).probe(1).next_u64(),
            lanes.probe(5).next_u64()
        );
    }

    #[test]
    fn tabulation_lane_outputs_are_roughly_uniform() {
        // Counter-mode tabulation over one lane: top-4-bit buckets of 16k
        // outputs stay within ±25% of uniform (binomial s.d. ≈ 3%).
        let hash = TabulationHash::from_seed(8);
        let lanes = TabulationLanes::new(&hash, 1);
        let mut lane = lanes.probe(0);
        let mut buckets = [0u32; 16];
        let total = 16_384;
        for _ in 0..total {
            buckets[(lane.next_u64() >> 60) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let frac = f64::from(b) / f64::from(total);
            assert!(
                (frac - 1.0 / 16.0).abs() < 0.25 / 16.0,
                "bucket {i}: {frac}"
            );
        }
    }
}
