//! Length-prefixed, CRC-guarded binary framing for durable on-disk logs.
//!
//! The serving engine's checkpoint/journal files (see `geo2c-serve`'s
//! `journal` module) are sequences of *frames* appended to a fixed-size
//! file header. A frame is
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][payload: len bytes]
//! ```
//!
//! where `crc` is the CRC-32 (IEEE, reflected) of the payload. The
//! format is designed around one question a crash-recovery scan must
//! answer: *is a bad frame a crash artifact or real corruption?* An
//! append interrupted by a crash can only leave a short or garbled
//! **tail** — nothing ever writes beyond it — so [`scan_frames`]
//! classifies a bad frame whose extent reaches (or overruns) end-of-file
//! as [`Tail::Torn`], safe to truncate and resume past, while a bad
//! frame *followed by more bytes* is reported as a loud
//! [`FrameError`]: no crash writes valid data after a hole, so
//! silently truncating there would discard durable history.
//!
//! [`Header`] is the companion file preamble (magic, format version, and
//! two caller-chosen binding words) that lets a reader reject files of
//! the wrong kind, version, or provenance before trusting any frame.
//!
//! ```
//! use geo2c_util::frame::{append_frame, scan_frames, Tail};
//!
//! let mut buf = Vec::new();
//! append_frame(&mut buf, b"alpha");
//! append_frame(&mut buf, b"beta");
//! let whole = scan_frames(&buf).unwrap();
//! assert_eq!(whole.payloads, [&b"alpha"[..], b"beta"]);
//! assert!(matches!(whole.tail, Tail::Clean));
//!
//! // A crash mid-append tears the tail; the scan survives it.
//! let torn = scan_frames(&buf[..buf.len() - 2]).unwrap();
//! assert_eq!(torn.payloads, [b"alpha"]);
//! assert!(matches!(torn.tail, Tail::Torn { .. }));
//! ```

use std::fmt;

/// Bytes of framing (`len` + `crc`) preceding each payload.
pub const FRAME_OVERHEAD: usize = 8;

/// The CRC-32 lookup table (IEEE polynomial `0xEDB88320`, reflected),
/// computed at compile time so the crate stays dependency-free.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE, reflected — the zlib/PNG polynomial) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Appends `[len][crc][payload]` to `out`.
///
/// # Panics
/// Panics if the payload exceeds `u32::MAX` bytes.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame payload over 4 GiB");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// How a frame scan reached the end of its buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// The final frame ended exactly at end-of-buffer.
    Clean,
    /// The bytes from offset `at` to the end are a torn append — a short
    /// header, a frame extending past end-of-buffer, or a final frame
    /// failing its CRC. Truncating the file to `at` removes the artifact;
    /// every payload before `at` is intact.
    Torn {
        /// Byte offset (from the start of the scanned buffer) of the
        /// torn frame's header.
        at: usize,
    },
}

/// Every intact payload in a scanned buffer, in append order, plus how
/// the scan ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frames<'a> {
    /// The payloads of the frames that passed their CRC.
    pub payloads: Vec<&'a [u8]>,
    /// Whether the buffer ended cleanly or in a torn append.
    pub tail: Tail,
}

/// A frame failed its CRC with durable frames *after* it — real
/// corruption, never a crash artifact (appends only ever garble the
/// tail). Callers must fail loudly rather than truncate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameError {
    /// Byte offset (from the start of the scanned buffer) of the corrupt
    /// frame's header.
    pub at: usize,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corrupt non-tail frame at byte {}: CRC mismatch with durable frames after it",
            self.at
        )
    }
}

impl std::error::Error for FrameError {}

/// Scans `buf` as a frame sequence.
///
/// Returns the intact payloads and the tail classification; a torn tail
/// ([`Tail::Torn`]) is *not* an error — it is the expected residue of a
/// crash mid-append, and the caller truncates past it.
///
/// # Errors
/// [`FrameError`] when a frame fails its CRC but is *followed by more
/// bytes*: that cannot be a torn append, so the file has real corruption
/// and silently truncating would discard durable frames.
pub fn scan_frames(buf: &[u8]) -> Result<Frames<'_>, FrameError> {
    let mut payloads = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        let remaining = buf.len() - at;
        if remaining < FRAME_OVERHEAD {
            return Ok(Frames {
                payloads,
                tail: Tail::Torn { at },
            });
        }
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap());
        let end = at + FRAME_OVERHEAD + len;
        if end > buf.len() {
            return Ok(Frames {
                payloads,
                tail: Tail::Torn { at },
            });
        }
        let payload = &buf[at + FRAME_OVERHEAD..end];
        if crc32(payload) != want {
            if end == buf.len() {
                return Ok(Frames {
                    payloads,
                    tail: Tail::Torn { at },
                });
            }
            return Err(FrameError { at });
        }
        payloads.push(payload);
        at = end;
    }
    Ok(Frames {
        payloads,
        tail: Tail::Clean,
    })
}

/// Why a [`Header`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// Fewer than [`Header::LEN`] bytes.
    Short,
    /// The magic does not match — a file of a different kind.
    BadMagic,
    /// The magic matches but the format version does not.
    BadVersion {
        /// The version the file declares.
        found: u32,
    },
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Short => write!(f, "file shorter than its header"),
            Self::BadMagic => write!(f, "magic mismatch: not a file of this kind"),
            Self::BadVersion { found } => write!(f, "unsupported format version {found}"),
        }
    }
}

impl std::error::Error for HeaderError {}

/// A fixed-size file preamble: 8 magic bytes, a `u32` format version,
/// and two caller-chosen `u64` *binding words* (the serving journal
/// binds its lane root and a configuration fingerprint, so a checkpoint
/// can never be restored into an engine it was not taken from).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// File-kind magic.
    pub magic: [u8; 8],
    /// Format version.
    pub version: u32,
    /// Caller-chosen provenance words, checked by the caller.
    pub binds: [u64; 2],
}

impl Header {
    /// Encoded size in bytes.
    pub const LEN: usize = 8 + 4 + 16;

    /// The header's on-disk encoding (magic, then LE version, then the
    /// LE binding words).
    #[must_use]
    pub fn encode(&self) -> [u8; Self::LEN] {
        let mut out = [0u8; Self::LEN];
        out[..8].copy_from_slice(&self.magic);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        out[12..20].copy_from_slice(&self.binds[0].to_le_bytes());
        out[20..28].copy_from_slice(&self.binds[1].to_le_bytes());
        out
    }

    /// Decodes and checks a header from the start of `buf`, returning it
    /// (binding words are the caller's to verify).
    ///
    /// # Errors
    /// [`HeaderError`] when `buf` is short, the magic differs, or the
    /// version differs.
    pub fn decode(buf: &[u8], magic: [u8; 8], version: u32) -> Result<Self, HeaderError> {
        if buf.len() < Self::LEN {
            return Err(HeaderError::Short);
        }
        if buf[..8] != magic {
            return Err(HeaderError::BadMagic);
        }
        let found = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if found != version {
            return Err(HeaderError::BadVersion { found });
        }
        Ok(Self {
            magic,
            version,
            binds: [
                u64::from_le_bytes(buf[12..20].try_into().unwrap()),
                u64::from_le_bytes(buf[20..28].try_into().unwrap()),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_vectors() {
        // The standard check value for "123456789", and zlib's for empty.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"geo2c"), crc32(b"geo2c"));
        assert_ne!(crc32(b"geo2c"), crc32(b"geo2d"));
    }

    #[test]
    fn frames_round_trip_including_empty_payloads() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"");
        append_frame(&mut buf, b"payload");
        append_frame(&mut buf, &[0xFF; 300]);
        let frames = scan_frames(&buf).unwrap();
        assert_eq!(frames.payloads.len(), 3);
        assert_eq!(frames.payloads[0], b"");
        assert_eq!(frames.payloads[1], b"payload");
        assert_eq!(frames.payloads[2], &[0xFF; 300][..]);
        assert_eq!(frames.tail, Tail::Clean);
        assert_eq!(scan_frames(&[]).unwrap().tail, Tail::Clean);
    }

    #[test]
    fn every_truncation_point_is_a_torn_tail_never_an_error() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        append_frame(&mut buf, b"second");
        for cut in 0..buf.len() {
            let frames = scan_frames(&buf[..cut]).unwrap();
            // Intact prefix frames all survive; the cut is torn unless it
            // lands exactly on a frame boundary.
            let first_len = FRAME_OVERHEAD + 5;
            if cut == 0 {
                assert_eq!(frames.tail, Tail::Clean);
            } else if cut < first_len {
                assert_eq!(frames.payloads.len(), 0);
                assert_eq!(frames.tail, Tail::Torn { at: 0 });
            } else if cut == first_len {
                assert_eq!(frames.payloads, [b"first"]);
                assert_eq!(frames.tail, Tail::Clean);
            } else {
                assert_eq!(frames.payloads, [b"first"]);
                assert_eq!(frames.tail, Tail::Torn { at: first_len });
            }
        }
    }

    #[test]
    fn bit_flips_in_the_final_frame_are_torn_but_earlier_flips_are_loud() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        append_frame(&mut buf, b"second");
        let first_len = FRAME_OVERHEAD + 5;

        // Flip a payload bit in the *final* frame: torn tail at its header.
        let mut tail_flip = buf.clone();
        let last = tail_flip.len() - 1;
        tail_flip[last] ^= 0x10;
        let frames = scan_frames(&tail_flip).unwrap();
        assert_eq!(frames.payloads, [b"first"]);
        assert_eq!(frames.tail, Tail::Torn { at: first_len });

        // Flip a payload bit in the *first* frame: corruption, loud.
        let mut mid_flip = buf.clone();
        mid_flip[FRAME_OVERHEAD] ^= 0x10;
        assert_eq!(scan_frames(&mid_flip), Err(FrameError { at: 0 }));
        assert!(FrameError { at: 0 }.to_string().contains("corrupt"));
    }

    #[test]
    fn a_garbled_length_field_cannot_overrun_the_buffer() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"data");
        buf[0] = 0xFF;
        buf[1] = 0xFF; // length now absurd
        let frames = scan_frames(&buf).unwrap();
        assert_eq!(frames.payloads.len(), 0);
        assert_eq!(frames.tail, Tail::Torn { at: 0 });
    }

    #[test]
    fn headers_round_trip_and_reject_the_wrong_kind() {
        let header = Header {
            magic: *b"G2CTEST\0",
            version: 3,
            binds: [0xDEAD_BEEF, 42],
        };
        let mut bytes = header.encode().to_vec();
        bytes.extend_from_slice(b"frames follow");
        assert_eq!(
            Header::decode(&bytes, *b"G2CTEST\0", 3).unwrap(),
            header,
            "trailing bytes are ignored"
        );
        assert_eq!(
            Header::decode(&bytes[..10], *b"G2CTEST\0", 3),
            Err(HeaderError::Short)
        );
        assert_eq!(
            Header::decode(&bytes, *b"G2COTHER", 3),
            Err(HeaderError::BadMagic)
        );
        assert_eq!(
            Header::decode(&bytes, *b"G2CTEST\0", 4),
            Err(HeaderError::BadVersion { found: 3 })
        );
        assert!(HeaderError::Short.to_string().contains("shorter"));
    }
}
