//! Property tests pinning the simple-tabulation probe source
//! ([`geo2c_util::rng::TabulationHash`] in counter mode through
//! [`geo2c_util::rng::TabulationLanes`]) to the uniformity bounds the
//! two-choices comparison relies on.
//!
//! Simple tabulation is only 3-independent, but Dahlgaard et al. (SODA
//! 2016) show that is enough for two-choices max-load behaviour; the
//! `tabulation` experiment compares its max-load distribution against
//! the SplitMix64 lanes head-to-head. These tests keep the sampler
//! honest underneath that comparison: counter-mode output streams must
//! be deterministic, decorrelated across lanes, and bucket-uniform
//! within a lane — for *every* seed and lane key, not a hand-picked one.

use geo2c_util::rng::{LaneSource, TabulationHash, TabulationLanes};
use proptest::prelude::*;
use rand::RngCore as _;

/// Buckets for the uniformity checks (top 4 output bits).
const BUCKETS: usize = 16;

/// Samples per lane. Binomial s.d. of a bucket count is
/// `√(N·p·(1−p)) ≈ 15.5` at `N = 4096`, `p = 1/16`; the asserted slack
/// of ±96 counts is ≈ 6.2 s.d. — loose enough to never flicker, tight
/// enough that any structural bias (a dead table, a stuck byte, a
/// counter that fails to diffuse) fails immediately.
const SAMPLES: usize = 4096;
const SLACK: i64 = 96;

proptest! {
    #[test]
    fn counter_mode_outputs_are_bucket_uniform(
        seed in 0u64..1 << 48,
        root in 0u64..1 << 48,
        ball in 0u64..1 << 20,
    ) {
        let hash = TabulationHash::from_seed(seed);
        let lanes = TabulationLanes::new(&hash, root);
        let mut lane = lanes.probe(ball);
        let mut counts = [0i64; BUCKETS];
        for _ in 0..SAMPLES {
            counts[(lane.next_u64() >> 60) as usize] += 1;
        }
        let expected = (SAMPLES / BUCKETS) as i64;
        for (bucket, &count) in counts.iter().enumerate() {
            prop_assert!(
                (count - expected).abs() <= SLACK,
                "seed {seed} ball {ball} bucket {bucket}: {count} vs {expected} ± {SLACK}"
            );
        }
    }

    #[test]
    fn low_bits_are_uniform_too(
        seed in 0u64..1 << 48,
        root in 0u64..1 << 48,
    ) {
        // The f64 conversion consumes high bits, but gen_range walks low
        // bits; both ends must be unbiased.
        let hash = TabulationHash::from_seed(seed);
        let lanes = TabulationLanes::new(&hash, root);
        let mut lane = lanes.tie(0);
        let mut counts = [0i64; BUCKETS];
        for _ in 0..SAMPLES {
            counts[(lane.next_u64() & 0xF) as usize] += 1;
        }
        let expected = (SAMPLES / BUCKETS) as i64;
        for (bucket, &count) in counts.iter().enumerate() {
            prop_assert!(
                (count - expected).abs() <= SLACK,
                "seed {seed} low bucket {bucket}: {count} vs {expected} ± {SLACK}"
            );
        }
    }

    #[test]
    fn lanes_are_distinct_and_deterministic(
        seed in 0u64..1 << 48,
        root in 0u64..1 << 48,
        base in 0u64..1 << 30,
    ) {
        let hash = TabulationHash::from_seed(seed);
        let lanes = TabulationLanes::new(&hash, root).block(base);
        // First outputs across 64 consecutive balls (probe and tie
        // domains): all 128 distinct, and re-derivation reproduces them.
        let mut outs = Vec::with_capacity(128);
        for ball in 0..64 {
            outs.push(lanes.probe(ball).next_u64());
            outs.push(lanes.tie(ball).next_u64());
        }
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), outs.len(), "lane collision");
        for ball in 0..64 {
            prop_assert_eq!(lanes.probe(ball).next_u64(), outs[2 * ball as usize]);
        }
        // Bit balance across the lane ensemble (crude avalanche check).
        let ones: u32 = outs.iter().map(|x| x.count_ones()).sum();
        let frac = f64::from(ones) / (outs.len() as f64 * 64.0);
        prop_assert!((frac - 0.5).abs() < 0.06, "bit fraction {frac}");
    }
}
