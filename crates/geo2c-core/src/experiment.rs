//! Multi-trial sweeps: the machinery behind the paper's Tables 1–3.
//!
//! Each table cell in the paper is "the distribution of the maximum load
//! over 1000 independent trials" for one `(space, n, m, strategy)`
//! configuration. A trial re-draws *both* the server placement and the
//! ball probes (the theorems quantify over both sources of randomness).
//! [`sweep_max_load`] runs those trials in parallel with per-trial
//! deterministic streams, so any cell of any table is reproducible from
//! `(seed, label, trial index)` alone, independent of thread count.

use crate::sim::run_trial;
use crate::space::{Space, SpaceKind};
use crate::strategy::Strategy;
use geo2c_util::hist::Counter;
use geo2c_util::parallel::parallel_map;
use geo2c_util::rng::{StreamSeeder, Xoshiro256pp};
use geo2c_util::stats::RunningStats;
use rand::Rng;
#[cfg(test)]
use rand::RngCore as _;

/// Shared sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Number of independent trials per configuration (paper: 1000).
    pub trials: usize,
    /// Worker threads for the trial loop.
    pub threads: usize,
    /// Root seed; every `(configuration, trial)` derives its own stream.
    pub seed: u64,
}

impl SweepConfig {
    /// A sweep with the given trial count, automatic thread count, seed 0.
    #[must_use]
    pub fn new(trials: usize) -> Self {
        Self {
            trials,
            threads: geo2c_util::parallel::num_threads(),
            seed: 0,
        }
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Provenance description of this configuration as ordered key/value
    /// pairs — what a persisted experiment spec must record so a later
    /// run can reproduce (or refuse to compare against) these numbers.
    /// The `run_tables` driver logs these pairs for every suite run.
    ///
    /// The thread count is deliberately absent: results are
    /// thread-count-invariant by construction (per-trial streams), so it
    /// is an execution detail, not provenance.
    #[must_use]
    pub fn describe(&self) -> Vec<(String, String)> {
        vec![
            ("trials".to_string(), self.trials.to_string()),
            ("seed".to_string(), self.seed.to_string()),
        ]
    }
}

/// The outcome of one sweep cell: the max-load distribution over trials.
#[derive(Debug, Clone)]
pub struct MaxLoadCell {
    /// Servers per trial.
    pub n: usize,
    /// Balls per trial.
    pub m: usize,
    /// Strategy label (e.g. `"d=2 arc-smaller"`).
    pub strategy: String,
    /// Distribution of the per-trial maximum load.
    pub distribution: Counter,
    /// Summary statistics of the per-trial maximum load.
    pub stats: RunningStats,
}

impl MaxLoadCell {
    /// The paper-style cell text, e.g. `"4: 88.1%  5: 11.8%  6: 0.1%"`.
    #[must_use]
    pub fn paper_style(&self) -> String {
        self.distribution.paper_style()
    }

    /// The distribution as sorted `(max load, trial count)` pairs — the
    /// canonical form in which distributions cross into the report path
    /// (`geo2c-bench::experiments` → `geo2c-report`) and are persisted
    /// in the committed expectation files under `results/`.
    #[must_use]
    pub fn distribution_pairs(&self) -> Vec<(u64, u64)> {
        self.distribution.iter().collect()
    }
}

/// Runs `trials` independent trials — "`space_factory` from the trial's
/// private stream, then insert `m` balls with `strategy`" — on `threads`
/// workers through the vendored-crossbeam [`parallel_map`], returning
/// every trial's full [`crate::sim::TrialResult`] in trial order.
///
/// Byte-identical to the sequential loop for any thread count: each
/// trial's randomness comes only from `seeder.stream(trial)`, and under
/// RNG stream contract v2 the balls within a trial draw from per-ball
/// lanes keyed off that stream, so scheduling can influence nothing
/// (pinned by the `parallel_trials_byte_identical_to_sequential` test).
/// On a single-core host this is a correctness/throughput-neutral
/// routing — the win is on multicore, where trials are embarrassingly
/// parallel; [`sweep_max_load`] keeps only the max loads and is the
/// memory-frugal variant for big sweeps.
#[must_use]
pub fn run_many_trials<S, F>(
    space_factory: F,
    strategy: &Strategy,
    m: usize,
    seeder: &StreamSeeder,
    trials: usize,
    threads: usize,
) -> Vec<crate::sim::TrialResult>
where
    S: Space,
    F: Fn(&mut Xoshiro256pp) -> S + Sync,
{
    parallel_map(trials, threads, |t| {
        let mut rng = seeder.stream(t as u64);
        let space = space_factory(&mut rng);
        run_trial(&space, strategy, m, &mut rng)
    })
}

/// Runs `config.trials` independent trials of "`space_factory` then insert
/// `m` balls with `strategy`" and collects the max-load distribution.
///
/// `space_factory` receives the trial's private RNG and must build a fresh
/// space from it; the same RNG then drives the ball placement. Results are
/// independent of `config.threads`.
#[must_use]
pub fn sweep_max_load<S, F>(
    space_factory: F,
    strategy: Strategy,
    n: usize,
    m: usize,
    label: &str,
    config: &SweepConfig,
) -> MaxLoadCell
where
    S: Space,
    F: Fn(&mut Xoshiro256pp) -> S + Sync,
{
    let seeder = StreamSeeder::new(config.seed).child(label);
    let max_loads: Vec<u32> = parallel_map(config.trials, config.threads, |t| {
        let mut rng = seeder.stream(t as u64);
        let space = space_factory(&mut rng);
        run_trial(&space, &strategy, m, &mut rng).max_load
    });

    let mut distribution = Counter::new();
    let mut stats = RunningStats::new();
    for &ml in &max_loads {
        distribution.add(u64::from(ml));
        stats.push(f64::from(ml));
    }
    MaxLoadCell {
        n,
        m,
        strategy: strategy.label(),
        distribution,
        stats,
    }
}

/// Convenience: a sweep cell for one of the named geometries.
///
/// `label` feeds stream derivation, so e.g. Table 1 and Table 3 sweeps of
/// the same `(kind, n, d)` stay statistically independent.
#[must_use]
pub fn sweep_kind(
    kind: SpaceKind,
    strategy: Strategy,
    n: usize,
    m: usize,
    config: &SweepConfig,
) -> MaxLoadCell {
    let label = format!("{}/n{}/m{}/{}", kind.name(), n, m, strategy.label());
    sweep_max_load(
        move |rng: &mut Xoshiro256pp| kind.build(n, rng),
        strategy,
        n,
        m,
        &label,
        config,
    )
}

/// One row of the `m ≠ n` extension experiment (E9): how the max load
/// scales as the ball-to-server ratio grows, versus the
/// `m/n + log log n / log d` shape from the paper's §2 remark 3.
#[derive(Debug, Clone)]
pub struct HeavyLoadRow {
    /// Ball count for this row.
    pub m: usize,
    /// Mean observed maximum load.
    pub mean_max: f64,
    /// The trivial lower bound `⌈m/n⌉`.
    pub average_load: f64,
    /// Distribution over trials.
    pub distribution: Counter,
}

/// Sweeps `m` over multiples of `n` for a fixed strategy (experiment E9).
#[must_use]
pub fn heavy_load_sweep(
    kind: SpaceKind,
    strategy: Strategy,
    n: usize,
    m_values: &[usize],
    config: &SweepConfig,
) -> Vec<HeavyLoadRow> {
    m_values
        .iter()
        .map(|&m| {
            let cell = sweep_kind(kind, strategy, n, m, config);
            HeavyLoadRow {
                m,
                mean_max: cell.stats.mean(),
                average_load: m as f64 / n as f64,
                distribution: cell.distribution,
            }
        })
        .collect()
}

/// Mean per-height profile across trials: `profile[i]` is the average
/// number of servers with load ≥ `i+1`. Used to compare against the
/// fluid-limit predictor (theory module) on uniform bins.
#[must_use]
pub fn mean_load_profile<S, F>(
    space_factory: F,
    strategy: Strategy,
    m: usize,
    label: &str,
    config: &SweepConfig,
) -> Vec<f64>
where
    S: Space,
    F: Fn(&mut Xoshiro256pp) -> S + Sync,
{
    let seeder = StreamSeeder::new(config.seed).child(label);
    let profiles: Vec<Vec<u32>> = parallel_map(config.trials, config.threads, |t| {
        let mut rng = seeder.stream(t as u64);
        let space = space_factory(&mut rng);
        let result = run_trial(&space, &strategy, m, &mut rng);
        let max = result.max_load;
        (1..=max)
            .map(|i| result.bins_with_load_at_least(i) as u32)
            .collect()
    });

    let depth = profiles.iter().map(Vec::len).max().unwrap_or(0);
    let mut mean = vec![0.0; depth];
    for profile in &profiles {
        for (i, &count) in profile.iter().enumerate() {
            mean[i] += f64::from(count);
        }
    }
    for v in &mut mean {
        *v /= config.trials as f64;
    }
    mean
}

/// Sample a non-uniform ("clustered") probe model: a mixture of uniform
/// background and Gaussian-like clusters (the paper's footnote 2 remarks
/// that two choices helps even when the customer distribution is not
/// uniform; this is the executable version used by the ATM example).
#[derive(Debug, Clone)]
pub struct ClusterMix {
    /// Cluster centres (on the relevant space's coordinates).
    pub centers: Vec<(f64, f64)>,
    /// Standard deviation of each cluster.
    pub sigma: f64,
    /// Probability a probe comes from a cluster (vs uniform background).
    pub cluster_weight: f64,
}

impl ClusterMix {
    /// Samples a torus probe location from the mixture.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        if !self.centers.is_empty() && rng.gen::<f64>() < self.cluster_weight {
            let (cx, cy) = self.centers[rng.gen_range(0..self.centers.len())];
            // Box-Muller for a cheap Gaussian pair.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt() * self.sigma;
            let theta = 2.0 * std::f64::consts::PI * u2;
            (cx + r * theta.cos(), cy + r * theta.sin())
        } else {
            (rng.gen(), rng.gen())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::UniformSpace;

    fn quick_config() -> SweepConfig {
        SweepConfig::new(30).with_seed(42).with_threads(2)
    }

    #[test]
    fn sweep_counts_all_trials() {
        let cell = sweep_kind(
            SpaceKind::Uniform,
            Strategy::two_choice(),
            128,
            128,
            &quick_config(),
        );
        assert_eq!(cell.distribution.total(), 30);
        assert_eq!(cell.stats.count(), 30);
        assert_eq!(cell.n, 128);
        assert_eq!(cell.m, 128);
        assert_eq!(cell.strategy, "d=2");
        assert!(cell.stats.mean() >= 1.0);
    }

    #[test]
    fn parallel_trials_byte_identical_to_sequential() {
        // run_many_trials through parallel_map must reproduce the
        // sequential trial loop exactly — full load vectors, not just
        // summaries — for any thread count. (This box is single-core:
        // the assertion is equality, not speedup; on multicore the same
        // determinism argument makes the parallel routing free.)
        use crate::space::RingSpace;
        use geo2c_util::rng::StreamSeeder;
        let seeder = StreamSeeder::new(99).child("parallel-trials");
        let factory = |rng: &mut Xoshiro256pp| RingSpace::random(96, rng);
        let strategy = Strategy::two_choice();
        let sequential: Vec<crate::sim::TrialResult> = (0..12)
            .map(|t| {
                let mut rng = seeder.stream(t);
                let space = factory(&mut rng);
                crate::sim::run_trial(&space, &strategy, 96, &mut rng)
            })
            .collect();
        for threads in [1usize, 2, 5] {
            let parallel = run_many_trials(factory, &strategy, 96, &seeder, 12, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn sweep_deterministic_across_threads() {
        let a = sweep_kind(
            SpaceKind::Ring,
            Strategy::two_choice(),
            64,
            64,
            &SweepConfig::new(10).with_seed(7).with_threads(1),
        );
        let b = sweep_kind(
            SpaceKind::Ring,
            Strategy::two_choice(),
            64,
            64,
            &SweepConfig::new(10).with_seed(7).with_threads(4),
        );
        assert_eq!(a.distribution, b.distribution);
    }

    #[test]
    fn different_labels_differ() {
        let config = quick_config();
        let a = sweep_max_load(
            |rng: &mut Xoshiro256pp| {
                let _ = rng.next_u64();
                UniformSpace::new(64)
            },
            Strategy::one_choice(),
            64,
            64,
            "label-a",
            &config,
        );
        let b = sweep_max_load(
            |rng: &mut Xoshiro256pp| {
                let _ = rng.next_u64();
                UniformSpace::new(64)
            },
            Strategy::one_choice(),
            64,
            64,
            "label-b",
            &config,
        );
        // Same config, different stream labels → (almost surely) different
        // empirical distributions. Equality would indicate stream reuse.
        assert_ne!(a.distribution, b.distribution);
    }

    #[test]
    fn heavy_load_rows_track_m_over_n() {
        let rows = heavy_load_sweep(
            SpaceKind::Uniform,
            Strategy::two_choice(),
            64,
            &[64, 256, 1024],
            &quick_config(),
        );
        assert_eq!(rows.len(), 3);
        // Max load grows with m, and stays ≥ the average m/n.
        assert!(rows[0].mean_max < rows[1].mean_max);
        assert!(rows[1].mean_max < rows[2].mean_max);
        for row in &rows {
            assert!(row.mean_max >= row.average_load);
        }
        // With d=2, max load should hug the average: within
        // m/n + O(log log n) — generous check.
        let slack = rows[2].mean_max - rows[2].average_load;
        assert!(slack < 10.0, "slack {slack}");
    }

    #[test]
    fn mean_profile_is_decreasing() {
        let config = quick_config();
        let profile = mean_load_profile(
            |_rng: &mut Xoshiro256pp| UniformSpace::new(256),
            Strategy::two_choice(),
            256,
            "profile-test",
            &config,
        );
        assert!(!profile.is_empty());
        for w in profile.windows(2) {
            assert!(w[0] >= w[1], "ν_i must be non-increasing: {profile:?}");
        }
        // ν_1 ≤ n and ≥ n/4 (with m=n, a constant fraction of bins is hit).
        assert!(profile[0] <= 256.0);
        assert!(profile[0] >= 64.0);
    }

    #[test]
    fn cluster_mix_samples_cluster_and_background() {
        let mix = ClusterMix {
            centers: vec![(0.5, 0.5)],
            sigma: 0.01,
            cluster_weight: 0.8,
        };
        let mut rng = Xoshiro256pp::from_u64(3);
        let mut near = 0u32;
        let total = 10_000;
        for _ in 0..total {
            let (x, y) = mix.sample(&mut rng);
            let (dx, dy) = (x - 0.5, y - 0.5);
            if (dx * dx + dy * dy).sqrt() < 0.05 {
                near += 1;
            }
        }
        let frac = f64::from(near) / f64::from(total);
        // ~80% cluster mass (+ tiny background contribution near centre).
        assert!((frac - 0.8).abs() < 0.05, "cluster fraction {frac}");
    }

    #[test]
    fn paper_style_cell_renders() {
        let cell = sweep_kind(
            SpaceKind::Uniform,
            Strategy::two_choice(),
            64,
            64,
            &quick_config(),
        );
        let text = cell.paper_style();
        assert!(text.contains('%'));
    }

    #[test]
    fn distribution_pairs_match_counter() {
        let cell = sweep_kind(
            SpaceKind::Uniform,
            Strategy::two_choice(),
            64,
            64,
            &quick_config(),
        );
        let pairs = cell.distribution_pairs();
        assert_eq!(pairs.iter().map(|&(_, c)| c).sum::<u64>(), 30);
        for (value, count) in pairs {
            assert_eq!(cell.distribution.count(value), count);
        }
    }

    #[test]
    fn sweep_config_describe_is_provenance_only() {
        let config = SweepConfig::new(100).with_seed(9).with_threads(7);
        let described = config.describe();
        assert_eq!(
            described,
            vec![
                ("trials".to_string(), "100".to_string()),
                ("seed".to_string(), "9".to_string()),
            ]
        );
        // Threads are an execution detail, not provenance.
        assert!(described.iter().all(|(k, _)| k != "threads"));
    }
}
